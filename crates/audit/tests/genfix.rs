use tagger_audit::{Auditor, Counterexample, DepGraph};
use tagger_core::clos::clos_tagging;
use tagger_core::Tag;
use tagger_topo::{ClosConfig, FailureSet};

#[test]
#[ignore]
fn generate_fixtures() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let config = ClosConfig {
        pods: 2,
        leaves_per_pod: 2,
        tors_per_pod: 2,
        spines: 3,
        hosts_per_tor: 2,
    };
    let topo = config.build();
    let tagging = clos_tagging(&topo, 2).unwrap();
    let mut rules = tagging.rules().clone();
    let l1 = topo.expect_node("L1");
    let in_s1 = topo.port_towards(l1, topo.expect_node("S1")).unwrap();
    let out_s2 = topo.port_towards(l1, topo.expect_node("S2")).unwrap();
    rules.set(
        l1,
        tagger_core::SwitchRule {
            tag: Tag(2),
            in_port: in_s1,
            out_port: out_s2,
            new_tag: Tag(1),
        },
    );
    let text = tagger_audit::checkpoint::render(&config, 4, &topo, &rules);
    // Second, text-level defect for tagger-lint: a duplicate match key.
    // A first-match TCAM would apply the earlier (correct) line; the
    // last-write-wins table-text loader keeps the later (corrupt) one,
    // so the parsed RuleSet — and the audit goldens — are unchanged.
    let text = text.replace("rule 2 S1 S2 1\n", "rule 2 S1 S2 3\nrule 2 S1 S2 1\n");
    std::fs::write(format!("{root}/examples/corrupted.ckpt"), &text).unwrap();

    // Print the audit verdict so the golden test can pin exact values.
    let mut auditor = Auditor::new(topo.clone());
    let report = auditor.audit(4, &rules);
    println!("=== corrupted.ckpt audit ===");
    println!("{}", report.render(&topo));

    // Fig 1 DOT golden.
    let fig1 = std::fs::read_to_string(format!("{root}/examples/fig1_cycle.ckpt")).unwrap();
    let ckpt = tagger_audit::checkpoint::parse(&fig1).unwrap();
    let g = DepGraph::build(&ckpt.topo, &ckpt.rules, &FailureSet::none());
    let kahn = g.kahn();
    assert!(!kahn.is_acyclic());
    let cycle = g.minimal_cycle(&kahn.residual).unwrap();
    let cx = Counterexample::from_cycle(&ckpt.topo, &g, cycle, tagger_audit::REPLAY_END_NS);
    println!("=== fig1 cycle ===");
    println!("{}", cx.describe(&ckpt.topo));
    std::fs::write(format!("{root}/results/audit_fig1.dot"), cx.dot(&ckpt.topo)).unwrap();
}
