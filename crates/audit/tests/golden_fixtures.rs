//! Golden tests over the committed fixtures in `examples/` and
//! `results/`: the corrupted checkpoint must produce exactly the known
//! cycle (and its replay must actually deadlock), and the Figure 1
//! scenario must render exactly the committed highlighted DOT.

use tagger_audit::{checkpoint, Auditor, Counterexample, DepGraph, Finding};
use tagger_topo::FailureSet;

fn fixture(path: &str) -> String {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    std::fs::read_to_string(format!("{root}/{path}")).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn corrupted_checkpoint_yields_exactly_the_known_cycle() {
    let ckpt = checkpoint::parse(&fixture("examples/corrupted.ckpt")).unwrap();
    assert_eq!(ckpt.epoch, 4);
    let mut auditor = Auditor::new(ckpt.topo.clone());
    let report = auditor.audit(ckpt.epoch, &ckpt.rules);
    assert!(!report.is_certified());

    // The exact non-monotone edge.
    let decreases: Vec<String> = report
        .findings
        .iter()
        .filter_map(|f| match f {
            Finding::TagDecrease { from, to } => Some(format!(
                "{} -> {}",
                from.describe(&ckpt.topo),
                to.describe(&ckpt.topo)
            )),
            _ => None,
        })
        .collect();
    assert_eq!(
        decreases,
        vec!["L1[in S1, tag 2] -> S2[in L1, tag 1]".to_string()]
    );

    // The exact offending cycle, canonically rotated.
    let cycle = report
        .findings
        .iter()
        .find_map(|f| match f {
            Finding::CyclicDependency { cycle } => Some(cycle),
            _ => None,
        })
        .expect("cycle finding");
    let hops: Vec<String> = cycle.iter().map(|n| n.describe(&ckpt.topo)).collect();
    assert_eq!(
        hops,
        vec![
            "S1[in L2, tag 2]",
            "L1[in S1, tag 2]",
            "S2[in L1, tag 1]",
            "L2[in S2, tag 1]",
        ]
    );

    // The generated flows demonstrate the deadlock in the simulator.
    let cx = report.counterexample.as_ref().expect("counterexample");
    assert_eq!(cx.flows.len(), 4, "one flow per cycle hop");
    let (sim_report, _) = cx.replay(&ckpt.topo, &ckpt.rules, tagger_audit::REPLAY_END_NS);
    assert!(
        sim_report.deadlock.is_some(),
        "counterexample replay must reach a detected deadlock"
    );
}

#[test]
fn fig1_dump_matches_committed_dot() {
    let ckpt = checkpoint::parse(&fixture("examples/fig1_cycle.ckpt")).unwrap();
    let g = DepGraph::build(&ckpt.topo, &ckpt.rules, &FailureSet::none());
    let kahn = g.kahn();
    assert!(!kahn.is_acyclic(), "Figure 1 is the canonical CBD");
    let cycle = g.minimal_cycle(&kahn.residual).unwrap();
    let hops: Vec<String> = cycle.iter().map(|n| n.describe(&ckpt.topo)).collect();
    assert_eq!(
        hops,
        vec![
            "S1[in L1, tag 1]",
            "L3[in S1, tag 1]",
            "S2[in L3, tag 1]",
            "L1[in S2, tag 1]",
        ]
    );
    let cx = Counterexample::from_cycle(&ckpt.topo, &g, cycle, tagger_audit::REPLAY_END_NS);
    assert_eq!(cx.dot(&ckpt.topo), fixture("results/audit_fig1.dot"));
}
