//! Property tests for the decompile path: TCAM compression followed by
//! decompilation against the real port map must preserve the *exact*
//! rule function — on structured Clos taggings and on arbitrary rule
//! soups over random Jellyfish graphs alike. This is the invariant the
//! whole audit rests on: if decompilation were lossy, the dependency
//! graph would be built from fiction.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tagger_audit::decompile::check_program;
use tagger_audit::Auditor;
use tagger_core::clos::clos_tagging;
use tagger_core::tcam::{Compression, TcamProgram};
use tagger_core::{RuleSet, SwitchRule, Tag};
use tagger_topo::{ClosConfig, JellyfishConfig, PortId, Topology};

const LEVELS: [Compression; 3] = [Compression::None, Compression::InPort, Compression::Joint];

/// The rule function as a total map, for exact comparison.
fn function(rules: &RuleSet) -> BTreeMap<(u32, u16, u16, u16), u16> {
    rules
        .iter()
        .map(|(sw, r)| ((sw.0, r.tag.0, r.in_port.0, r.out_port.0), r.new_tag.0))
        .collect()
}

fn assert_round_trips(topo: &Topology, rules: &RuleSet) {
    for level in LEVELS {
        let program = TcamProgram::compile(topo, rules, level);
        let out = check_program(topo, rules, &program);
        assert!(
            out.findings.is_empty(),
            "{level:?} diverged: {:?}",
            out.findings.first()
        );
        assert_eq!(
            function(&out.decompiled),
            function(rules),
            "{level:?} round trip"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clos taggings of random dimensions survive compress -> decompile
    /// at every compression level, and the audit certifies them.
    #[test]
    fn clos_taggings_round_trip(
        dims in (1usize..3, 1usize..3, 1usize..3, 1usize..4, 0usize..3)
    ) {
        let (pods, leaves, tors, spines, k) = dims;
        let config = ClosConfig {
            pods,
            leaves_per_pod: leaves,
            tors_per_pod: tors,
            spines,
            hosts_per_tor: 2,
        };
        let topo = config.build();
        let tagging = clos_tagging(&topo, k).unwrap();
        assert_round_trips(&topo, tagging.rules());
        let mut auditor = Auditor::new(topo);
        prop_assert!(auditor.audit(0, tagging.rules()).is_certified());
    }

    /// Arbitrary rules within a random Jellyfish's real port bounds
    /// round trip exactly — compression must not rely on any Clos
    /// structure.
    #[test]
    fn random_jellyfish_rules_round_trip(
        shape in (4usize..10, 0u64..1000),
        raw in proptest::collection::vec((1u16..4, 0u16..6, 0u16..6, 1u16..4), 0..60)
    ) {
        let (switches, seed) = shape;
        let topo = JellyfishConfig::half_servers(switches, 6, seed).build();
        let mut rules = RuleSet::new();
        let switch_ids: Vec<_> = topo.switch_ids().collect();
        for (i, (tag, in_p, out_p, new_tag)) in raw.iter().enumerate() {
            let sw = switch_ids[i % switch_ids.len()];
            let ports = topo.node(sw).num_ports() as u16;
            if ports == 0 {
                continue;
            }
            let in_port = PortId(in_p % ports);
            let out_port = PortId(out_p % ports);
            if in_port == out_port {
                continue; // a rule never hairpins out its ingress port
            }
            rules.set(sw, SwitchRule {
                tag: Tag(*tag),
                in_port,
                out_port,
                new_tag: Tag(*new_tag),
            });
        }
        assert_round_trips(&topo, &rules);
    }
}
