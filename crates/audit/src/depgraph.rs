//! The auditor's own buffer-dependency graph.
//!
//! Independence is the point: this module re-derives the PFC dependency
//! structure from nothing but the *decompiled* `(tag, in-port, out-port)
//! → new-tag` tuples and the physical link adjacency. It shares no node
//! type, no traversal, and no verdict logic with
//! `tagger_core::TaggedGraph::verify` — where the controller's verifier
//! colors a DFS over graph edges it generated itself, the auditor runs
//! Kahn's algorithm over ingress buffers it reached by walking installed
//! rules from host-attach points. Agreement between the two is evidence;
//! disagreement is a bug in one of them, which is exactly what an audit
//! is for.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use tagger_core::{RuleSet, Tag};
use tagger_topo::{FailureSet, GlobalPort, NodeId, NodeKind, PortId, Topology};

/// One lossless ingress buffer: packets of `tag` arriving at `switch` on
/// `in_port`. These are the vertices that PFC PAUSE actually propagates
/// between, so a cycle over them is a real cyclic buffer dependency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DepNode {
    /// The switch holding the buffer.
    pub switch: NodeId,
    /// Ingress port the buffer belongs to.
    pub in_port: PortId,
    /// Lossless tag (priority) of the buffer.
    pub tag: Tag,
}

impl DepNode {
    /// Renders as `L1[in S1, tag 2]` for reports.
    pub fn describe(&self, topo: &Topology) -> String {
        let sw = &topo.node(self.switch).name;
        let up = topo
            .peer_of(GlobalPort::new(self.switch, self.in_port))
            .map(|p| topo.node(p.node).name.clone())
            .unwrap_or_else(|| format!("#{}", self.in_port.0));
        format!("{sw}[in {up}, tag {}]", self.tag.0)
    }
}

/// The reachable buffer-dependency graph induced by a rule table.
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    nodes: BTreeSet<DepNode>,
    succ: BTreeMap<DepNode, BTreeSet<DepNode>>,
    seeds: BTreeSet<DepNode>,
}

impl DepGraph {
    /// Walks the closure of the installed rules from every host attach
    /// point at [`Tag::INITIAL`], following only links that are up under
    /// `failures`. Every edge is a physical "this buffer can fill because
    /// that buffer paused" relation.
    pub fn build(topo: &Topology, rules: &RuleSet, failures: &FailureSet) -> DepGraph {
        let mut g = DepGraph::default();
        let mut work: VecDeque<DepNode> = VecDeque::new();
        for host in topo.host_ids() {
            let Some(sw) = topo.attached_switch(host) else {
                continue;
            };
            let Some(in_port) = topo.port_towards(sw, host) else {
                continue;
            };
            if !failures.link_up(topo, sw, host) {
                continue;
            }
            let seed = DepNode {
                switch: sw,
                in_port,
                tag: Tag::INITIAL,
            };
            g.seeds.insert(seed);
            if g.nodes.insert(seed) {
                work.push_back(seed);
            }
        }
        while let Some(node) = work.pop_front() {
            for rule in rules.rules_for(node.switch) {
                if rule.tag != node.tag || rule.in_port != node.in_port {
                    continue;
                }
                let Some(peer) = topo.peer_of(GlobalPort::new(node.switch, rule.out_port)) else {
                    continue;
                };
                if topo.node(peer.node).kind != NodeKind::Switch {
                    continue; // hosts sink traffic; they never propagate PAUSE onward
                }
                if !failures.link_up(topo, node.switch, peer.node) {
                    continue;
                }
                let next = DepNode {
                    switch: peer.node,
                    in_port: peer.port,
                    tag: rule.new_tag,
                };
                if g.nodes.insert(next) {
                    work.push_back(next);
                }
                g.succ.entry(node).or_default().insert(next);
            }
        }
        g
    }

    /// Number of reachable buffers.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.succ.values().map(|s| s.len()).sum()
    }

    /// All reachable buffers, sorted.
    pub fn nodes(&self) -> impl Iterator<Item = DepNode> + '_ {
        self.nodes.iter().copied()
    }

    /// Successors of a buffer (empty if it is a sink).
    pub fn successors(&self, node: DepNode) -> impl Iterator<Item = DepNode> + '_ {
        self.succ.get(&node).into_iter().flatten().copied()
    }

    /// All edges, sorted by source then target.
    pub fn edges(&self) -> impl Iterator<Item = (DepNode, DepNode)> + '_ {
        self.succ
            .iter()
            .flat_map(|(&from, tos)| tos.iter().map(move |&to| (from, to)))
    }

    /// The host-attach buffers the closure started from.
    pub fn seeds(&self) -> impl Iterator<Item = DepNode> + '_ {
        self.seeds.iter().copied()
    }

    /// Edges whose tag goes *down* — violations of the paper's
    /// monotonicity requirement (Theorem 5.1, condition 2).
    pub fn tag_decreases(&self) -> Vec<(DepNode, DepNode)> {
        self.edges().filter(|(f, t)| t.tag < f.tag).collect()
    }

    /// Kahn's algorithm over the whole graph. On success every node is in
    /// the returned order (a global topological witness); on failure the
    /// leftover nodes — exactly those on or downstream-and-upstream of a
    /// cycle — are returned as the residual.
    pub fn kahn(&self) -> KahnResult {
        let mut indeg: BTreeMap<DepNode, usize> = self.nodes.iter().map(|&n| (n, 0)).collect();
        for (_, to) in self.edges() {
            *indeg.entry(to).or_insert(0) += 1;
        }
        let mut ready: BTreeSet<DepNode> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(&node) = ready.iter().next() {
            ready.remove(&node);
            order.push(node);
            for next in self.successors(node) {
                let d = indeg.get_mut(&next).expect("edge target is a node");
                *d -= 1;
                if *d == 0 {
                    ready.insert(next);
                }
            }
        }
        let residual: Vec<DepNode> = self
            .nodes
            .iter()
            .copied()
            .filter(|n| indeg[n] > 0)
            .collect();
        KahnResult { order, residual }
    }

    /// Extracts a minimal cycle from the residual of a failed Kahn run:
    /// the shortest cycle through any residual node, preferring cycles
    /// whose hops sit on distinct switches (those make the cleanest
    /// counterexamples), ties broken lexicographically. Returns the hops
    /// in order, first hop smallest, without repeating the first at the
    /// end. `None` if the residual is empty.
    pub fn minimal_cycle(&self, residual: &[DepNode]) -> Option<Vec<DepNode>> {
        let residual_set: BTreeSet<DepNode> = residual.iter().copied().collect();
        let mut best: Option<Vec<DepNode>> = None;
        for &start in residual.iter().take(512) {
            if let Some(cycle) = self.shortest_cycle_through(start, &residual_set) {
                let better = match &best {
                    None => true,
                    Some(b) => {
                        let key = |c: &Vec<DepNode>| {
                            let distinct: BTreeSet<NodeId> = c.iter().map(|n| n.switch).collect();
                            (c.len(), c.len() - distinct.len(), c.clone())
                        };
                        key(&cycle) < key(b)
                    }
                };
                if better {
                    best = Some(cycle);
                }
            }
        }
        best.map(canonical_rotation)
    }

    /// Shortest residual-confined cycle through `start`, via BFS from its
    /// successors back to it.
    fn shortest_cycle_through(
        &self,
        start: DepNode,
        residual: &BTreeSet<DepNode>,
    ) -> Option<Vec<DepNode>> {
        let mut parent: BTreeMap<DepNode, DepNode> = BTreeMap::new();
        let mut queue = VecDeque::new();
        for next in self.successors(start) {
            if residual.contains(&next) && !parent.contains_key(&next) {
                parent.insert(next, start);
                queue.push_back(next);
            }
        }
        while let Some(node) = queue.pop_front() {
            if node == start {
                // Walk parents back to start to recover the cycle.
                let mut hops = vec![start];
                let mut cur = parent[&start];
                while cur != start {
                    hops.push(cur);
                    cur = parent[&cur];
                }
                hops.reverse();
                return Some(hops);
            }
            for next in self.successors(node) {
                if !residual.contains(&next) {
                    continue;
                }
                if next == start && !parent.contains_key(&start) {
                    parent.insert(start, node);
                    queue.push_back(start);
                } else if next != start && !parent.contains_key(&next) {
                    parent.insert(next, node);
                    queue.push_back(next);
                }
            }
        }
        None
    }
}

/// Outcome of [`DepGraph::kahn`].
#[derive(Clone, Debug)]
pub struct KahnResult {
    /// Topological order of every node that could be scheduled. A full
    /// order (residual empty) is the acyclicity witness.
    pub order: Vec<DepNode>,
    /// Nodes that could never reach in-degree zero — each sits on or
    /// inside a strongly connected component with a cycle.
    pub residual: Vec<DepNode>,
}

impl KahnResult {
    /// True when the graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.residual.is_empty()
    }
}

/// Rotates a cycle so its smallest hop comes first (stable identity for
/// golden tests and dedup).
fn canonical_rotation(cycle: Vec<DepNode>) -> Vec<DepNode> {
    let Some((min_idx, _)) = cycle.iter().enumerate().min_by_key(|(_, n)| **n) else {
        return cycle;
    };
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[min_idx..]);
    out.extend_from_slice(&cycle[..min_idx]);
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use tagger_core::clos::clos_tagging;
    use tagger_topo::ClosConfig;

    #[test]
    fn healthy_clos_tagging_is_acyclic_and_monotone() {
        let topo = ClosConfig::small().build();
        let tagging = clos_tagging(&topo, 2).unwrap();
        let g = DepGraph::build(&topo, tagging.rules(), &FailureSet::none());
        assert!(g.num_nodes() > 0, "closure reached some buffers");
        assert!(g.tag_decreases().is_empty());
        let kahn = g.kahn();
        assert!(kahn.is_acyclic());
        assert_eq!(kahn.order.len(), g.num_nodes());
        // The order really is topological: every edge goes forward.
        let pos: BTreeMap<DepNode, usize> = kahn
            .order
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        for (from, to) in g.edges() {
            assert!(pos[&from] < pos[&to], "edge goes backward in witness");
        }
    }

    #[test]
    fn corrupted_bounce_rule_yields_a_cycle() {
        let topo = ClosConfig::small().build();
        let tagging = clos_tagging(&topo, 2).unwrap();
        let mut rules = tagging.rules().clone();
        // Non-monotone corruption: L1's second bounce (tag 2, in S1,
        // out S2) rewrites back to 1 instead of up to 3.
        let l1 = topo.expect_node("L1");
        let in_s1 = topo.port_towards(l1, topo.expect_node("S1")).unwrap();
        let out_s2 = topo.port_towards(l1, topo.expect_node("S2")).unwrap();
        rules.set(
            l1,
            tagger_core::SwitchRule {
                tag: Tag(2),
                in_port: in_s1,
                out_port: out_s2,
                new_tag: Tag(1),
            },
        );
        let g = DepGraph::build(&topo, &rules, &FailureSet::none());
        assert!(!g.tag_decreases().is_empty(), "the 2->1 edge is visible");
        let kahn = g.kahn();
        assert!(!kahn.is_acyclic());
        let cycle = g.minimal_cycle(&kahn.residual).unwrap();
        assert_eq!(cycle.len(), 4, "minimal CBD is a 4-buffer loop");
        let switches: BTreeSet<NodeId> = cycle.iter().map(|n| n.switch).collect();
        assert_eq!(switches.len(), 4, "all hops on distinct switches");
    }
}
