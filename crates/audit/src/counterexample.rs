//! Minimal counterexamples: from an abstract buffer cycle to something
//! an operator can look at and a simulator can *run*.
//!
//! A failed audit yields a cycle of `(switch, in-port, tag)` buffers.
//! This module renders it three ways: a human-readable hop list, a
//! Graphviz drawing with the cycle highlighted
//! ([`Topology::to_dot_highlighted`]), and — the part that closes the
//! loop — a set of concrete [`FlowSpec`]s whose pinned paths approach the
//! cycle from real hosts carrying exactly the right tags, ride its edges,
//! and exit, so that `tagger-sim` replays the deadlock the cycle
//! predicts instead of asking anyone to take the auditor's word for it.

use crate::depgraph::{DepGraph, DepNode};
use std::collections::{BTreeSet, VecDeque};
use std::fmt::Write as _;
use tagger_core::RuleSet;
use tagger_sim::experiments::counterexample_replay;
use tagger_sim::{FlowSpec, SimReport};
use tagger_topo::{GlobalPort, NodeId, NodeKind, Topology};

/// Depth cap for the approach search; Clos approach paths are short and
/// anything longer would make a useless replay anyway.
const MAX_APPROACH_HOPS: usize = 12;

/// A concrete, replayable deadlock counterexample.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The offending buffer cycle, canonically rotated.
    pub cycle: Vec<DepNode>,
    /// Flows that drive traffic around the cycle, labelled with their
    /// pinned paths. Best-effort: hops whose approach or exit could not
    /// be routed loop-free are skipped.
    pub flows: Vec<(String, FlowSpec)>,
}

impl Counterexample {
    /// Builds the counterexample for `cycle`, generating one flow per
    /// cycle hop. Each flow enters at its hop with the hop's exact tag
    /// (guaranteed by approaching through the dependency graph itself),
    /// rides all but one of the cycle's edges, and drains to a host off
    /// the cycle; start times are staggered across the first fifth of
    /// `end_ns` so congestion builds before the last flow arrives.
    pub fn from_cycle(
        topo: &Topology,
        graph: &DepGraph,
        cycle: Vec<DepNode>,
        end_ns: u64,
    ) -> Counterexample {
        let k = cycle.len();
        let mut flows = Vec::new();
        for i in 0..k {
            if let Some(flow) = flow_for_entry(topo, graph, &cycle, i, end_ns) {
                flows.push(flow);
            }
        }
        Counterexample { cycle, flows }
    }

    /// The physical links the cycle rides, as node pairs for
    /// [`Topology::to_dot_highlighted`].
    pub fn hot_links(&self) -> Vec<(NodeId, NodeId)> {
        let k = self.cycle.len();
        (0..k)
            .map(|i| (self.cycle[i].switch, self.cycle[(i + 1) % k].switch))
            .collect()
    }

    /// Graphviz rendering of the topology with the cycle in red.
    pub fn dot(&self, topo: &Topology) -> String {
        topo.to_dot_highlighted(&self.hot_links())
    }

    /// One-line hop list, e.g.
    /// `L1[in S1, tag 2] -> S2[in L1, tag 1] -> ... -> (back)`.
    pub fn describe(&self, topo: &Topology) -> String {
        let mut out = String::new();
        for (i, hop) in self.cycle.iter().enumerate() {
            if i > 0 {
                out.push_str(" -> ");
            }
            let _ = write!(out, "{}", hop.describe(topo));
        }
        out.push_str(" -> (back)");
        out
    }

    /// Replays the generated flows against `rules` in the simulator and
    /// returns the report; `report.deadlock` being `Some` is the
    /// demonstration that the cycle is live, not just structural.
    pub fn replay(
        &self,
        topo: &Topology,
        rules: &RuleSet,
        end_ns: u64,
    ) -> (SimReport, Vec<String>) {
        counterexample_replay(topo, rules, self.flows.clone(), end_ns).run()
    }
}

/// Generates the flow entering the cycle at hop `entry_idx`.
fn flow_for_entry(
    topo: &Topology,
    graph: &DepGraph,
    cycle: &[DepNode],
    entry_idx: usize,
    end_ns: u64,
) -> Option<(String, FlowSpec)> {
    let k = cycle.len();
    if k < 2 {
        return None;
    }
    // The flow rides hops entry..entry+k-2 (all cycle switches except the
    // entry's upstream), so the approach is free to arrive through that
    // upstream switch — physically it has no other way in.
    let ride: Vec<DepNode> = (0..k - 1).map(|j| cycle[(entry_idx + j) % k]).collect();
    let forbidden: BTreeSet<NodeId> = ride.iter().map(|n| n.switch).collect();
    let approach = approach_path(graph, ride[0], &forbidden)?;
    let src = host_behind(topo, approach[0])?;

    let mut path: Vec<NodeId> = vec![src];
    path.extend(approach.iter().map(|n| n.switch));
    path.extend(ride.iter().skip(1).map(|n| n.switch));
    let mut used: BTreeSet<NodeId> = path.iter().copied().collect();
    if used.len() != path.len() {
        return None; // physical revisit slipped through; give up on this hop
    }
    let exit = exit_path(topo, *path.last().expect("non-empty"), &used)?;
    for &n in &exit {
        used.insert(n);
    }
    path.extend(exit.iter().copied());
    let dst = *path.last().expect("exit ends at a host");

    let start = entry_idx as u64 * end_ns / (5 * k as u64);
    let label = format!(
        "cx{entry_idx}: {}",
        path.iter()
            .map(|&n| topo.node(n).name.as_str())
            .collect::<Vec<_>>()
            .join(">")
    );
    Some((label, FlowSpec::new(src, dst, start).pinned(path)))
}

/// Searches the dependency graph for a physically loop-free walk from a
/// host seed to `target`, never touching `forbidden` switches (the
/// cycle portion the flow will ride) before arrival. Walking the
/// dependency graph rather than the topology is what guarantees the flow
/// carries `target.tag` when it gets there.
fn approach_path(
    graph: &DepGraph,
    target: DepNode,
    forbidden: &BTreeSet<NodeId>,
) -> Option<Vec<DepNode>> {
    let mut stack: Vec<DepNode> = Vec::new();
    let mut used: BTreeSet<NodeId> = BTreeSet::new();
    for seed in graph.seeds() {
        if seed != target && forbidden.contains(&seed.switch) {
            continue;
        }
        if dfs(graph, seed, target, forbidden, &mut stack, &mut used) {
            return Some(stack);
        }
    }
    None
}

fn dfs(
    graph: &DepGraph,
    node: DepNode,
    target: DepNode,
    forbidden: &BTreeSet<NodeId>,
    stack: &mut Vec<DepNode>,
    used: &mut BTreeSet<NodeId>,
) -> bool {
    stack.push(node);
    used.insert(node.switch);
    if node == target {
        return true;
    }
    if stack.len() < MAX_APPROACH_HOPS {
        for next in graph.successors(node) {
            if used.contains(&next.switch) {
                continue;
            }
            if next != target && forbidden.contains(&next.switch) {
                continue;
            }
            if dfs(graph, next, target, forbidden, stack, used) {
                return true;
            }
        }
    }
    stack.pop();
    used.remove(&node.switch);
    false
}

/// The host attached on the far side of a seed buffer's ingress port.
fn host_behind(topo: &Topology, seed: DepNode) -> Option<NodeId> {
    let peer = topo.peer_of(GlobalPort::new(seed.switch, seed.in_port))?;
    (topo.node(peer.node).kind == NodeKind::Host).then_some(peer.node)
}

/// Shortest topology walk from `from` to any host avoiding `used`
/// nodes; returns the walk *excluding* `from`.
fn exit_path(topo: &Topology, from: NodeId, used: &BTreeSet<NodeId>) -> Option<Vec<NodeId>> {
    let mut parent: std::collections::BTreeMap<NodeId, NodeId> = std::collections::BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    while let Some(node) = queue.pop_front() {
        for (_, _, next) in topo.neighbors(node) {
            if used.contains(&next) || parent.contains_key(&next) || next == from {
                continue;
            }
            parent.insert(next, node);
            if topo.node(next).kind == NodeKind::Host {
                let mut path = vec![next];
                let mut cur = node;
                while cur != from {
                    path.push(cur);
                    cur = parent[&cur];
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(next);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use tagger_core::clos::clos_tagging;
    use tagger_core::Tag;
    use tagger_topo::{ClosConfig, FailureSet};

    fn corrupted_small_3spine() -> (Topology, RuleSet) {
        let topo = ClosConfig {
            pods: 2,
            leaves_per_pod: 2,
            tors_per_pod: 2,
            spines: 3,
            hosts_per_tor: 2,
        }
        .build();
        let tagging = clos_tagging(&topo, 2).unwrap();
        let mut rules = tagging.rules().clone();
        let l1 = topo.expect_node("L1");
        let in_s1 = topo.port_towards(l1, topo.expect_node("S1")).unwrap();
        let out_s2 = topo.port_towards(l1, topo.expect_node("S2")).unwrap();
        rules.set(
            l1,
            tagger_core::SwitchRule {
                tag: Tag(2),
                in_port: in_s1,
                out_port: out_s2,
                new_tag: Tag(1),
            },
        );
        (topo, rules)
    }

    #[test]
    fn flows_enter_every_hop_and_replay_deadlocks() {
        let (topo, rules) = corrupted_small_3spine();
        let g = DepGraph::build(&topo, &rules, &FailureSet::none());
        let kahn = g.kahn();
        assert!(!kahn.is_acyclic());
        let cycle = g.minimal_cycle(&kahn.residual).unwrap();
        let end_ns = 2_000_000;
        let cx = Counterexample::from_cycle(&topo, &g, cycle.clone(), end_ns);
        assert_eq!(
            cx.flows.len(),
            cycle.len(),
            "every hop got a loop-free approach: {:?}",
            cx.describe(&topo)
        );
        let (report, _labels) = cx.replay(&topo, &rules, end_ns);
        assert!(
            report.deadlock.is_some(),
            "replay must demonstrate the deadlock"
        );
        // The highlighted drawing marks exactly the cycle's switches.
        let dot = cx.dot(&topo);
        assert_eq!(dot.matches("penwidth").count(), cycle.len());
    }

    #[test]
    fn healthy_tables_have_no_cycle_to_exploit() {
        let topo = ClosConfig::small().build();
        let tagging = clos_tagging(&topo, 2).unwrap();
        let g = DepGraph::build(&topo, tagging.rules(), &FailureSet::none());
        assert!(g.kahn().is_acyclic());
    }
}
