//! What-if audits: hypothetical link failures vs. k-bounce reroutes.
//!
//! The installed tables were certified for the fabric as it stands; an
//! operator planning maintenance wants to know what happens when links
//! go away and traffic takes bounce reroutes *without* recomputing the
//! tables. For each failure scenario this module re-certifies the
//! dependency graph restricted to surviving links (a table safe on the
//! full fabric stays safe on any subgraph, so a finding here means the
//! baseline audit was wrong — but the check is cheap and an auditor
//! trusts nothing), and walks every `≤ k`-bounce reroute path through
//! the rules to count which ones fall out of the lossless class — the
//! paper's intended, but operationally noteworthy, demotion behaviour.

use crate::depgraph::DepGraph;
use crate::Finding;
use tagger_core::{oracle, Elp, RuleSet, Tag, TagDecision};
use tagger_routing::all_paths_with_bounces;
use tagger_topo::{FailureSet, NodeKind, Topology};

/// Per-pair path cap for the reroute sweep; keeps the what-if tractable
/// on bigger fabrics without silently dropping whole pairs.
const CAP_PER_PAIR: usize = 8;

/// The audit verdict for one hypothetical failure scenario.
#[derive(Clone, Debug)]
pub struct WhatIfScenario {
    /// Human description, e.g. `fail L1-S1`.
    pub description: String,
    /// Safety findings on the restricted dependency graph (must be
    /// empty whenever the baseline audit was clean).
    pub findings: Vec<Finding>,
    /// Reroute paths examined.
    pub reroute_paths: usize,
    /// Reroute paths that get demoted to the lossy class somewhere.
    pub lossy_demotions: usize,
    /// Existence-oracle verdict on the reroute path set at the
    /// installed tables' tag budget, consulted *before* the demotion
    /// walk: `true` means some tagging could keep every reroute path
    /// lossless (demotions are a re-planning gap), `false` means no
    /// tagging at this budget can — the demotions are fundamental.
    pub oracle_feasible: bool,
    /// The oracle's one-line verdict summary.
    pub oracle_summary: String,
}

impl WhatIfScenario {
    /// True when the scenario keeps the deadlock-freedom certificate.
    pub fn is_safe(&self) -> bool {
        self.findings.is_empty()
    }

    /// One-line summary for the CLI.
    pub fn summarize(&self) -> String {
        format!(
            "{}: {} ({} reroute paths, {} demoted to lossy; oracle: {})",
            self.description,
            if self.is_safe() { "safe" } else { "UNSAFE" },
            self.reroute_paths,
            self.lossy_demotions,
            self.oracle_summary
        )
    }
}

/// Audits one failure scenario against committed tables.
pub fn whatif(
    topo: &Topology,
    rules: &RuleSet,
    failures: &FailureSet,
    description: impl Into<String>,
    max_bounces: usize,
) -> WhatIfScenario {
    let graph = DepGraph::build(topo, rules, failures);
    let mut findings: Vec<Finding> = graph
        .tag_decreases()
        .into_iter()
        .map(|(from, to)| Finding::TagDecrease { from, to })
        .collect();
    let kahn = graph.kahn();
    if !kahn.is_acyclic() {
        if let Some(cycle) = graph.minimal_cycle(&kahn.residual) {
            findings.push(Finding::CyclicDependency { cycle });
        }
    }

    let paths = all_paths_with_bounces(topo, failures, max_bounces, CAP_PER_PAIR);

    // Existence check first: could ANY tables at this tag budget keep
    // the reroute set lossless? The walk below then tells how the
    // *installed* tables actually treat it.
    let budget = rules.max_tag().map_or(1, |t| t.0 as usize).max(1);
    let verdict = oracle::decide(topo, &Elp::from_paths(paths.clone()), Some(budget));
    let (oracle_feasible, oracle_summary) = (verdict.is_feasible(), verdict.summary());

    let mut lossy_demotions = 0usize;
    for path in &paths {
        let nodes = path.nodes();
        let mut tag = Tag::INITIAL;
        for w in nodes.windows(3) {
            let (prev, here, next) = (w[0], w[1], w[2]);
            if topo.node(here).kind != NodeKind::Switch {
                continue;
            }
            let (Some(in_port), Some(out_port)) =
                (topo.port_towards(here, prev), topo.port_towards(here, next))
            else {
                continue;
            };
            match rules.decide(here, tag, in_port, out_port) {
                TagDecision::Lossless(next_tag) => tag = next_tag,
                TagDecision::Lossy => {
                    lossy_demotions += 1;
                    break;
                }
            }
        }
    }

    WhatIfScenario {
        description: description.into(),
        findings,
        reroute_paths: paths.len(),
        lossy_demotions,
        oracle_feasible,
        oracle_summary,
    }
}

/// Sweeps every single switch-to-switch link failure (host links would
/// only disconnect a host) and audits each.
pub fn sweep_single_links(
    topo: &Topology,
    rules: &RuleSet,
    max_bounces: usize,
) -> Vec<WhatIfScenario> {
    let mut out = Vec::new();
    for link_id in topo.link_ids() {
        let link = topo.link(link_id);
        let (na, nb) = (link.a.node, link.b.node);
        if topo.node(na).kind != NodeKind::Switch || topo.node(nb).kind != NodeKind::Switch {
            continue;
        }
        let mut failures = FailureSet::none();
        failures.fail(link_id);
        let description = format!("fail {}-{}", topo.node(na).name, topo.node(nb).name);
        out.push(whatif(topo, rules, &failures, description, max_bounces));
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use tagger_core::clos::clos_tagging;
    use tagger_topo::ClosConfig;

    #[test]
    fn healthy_tables_stay_safe_under_any_single_failure() {
        let topo = ClosConfig::small().build();
        let tagging = clos_tagging(&topo, 1).unwrap();
        let scenarios = sweep_single_links(&topo, tagging.rules(), 1);
        assert!(!scenarios.is_empty());
        for s in &scenarios {
            assert!(s.is_safe(), "{}", s.summarize());
            assert!(s.reroute_paths > 0, "{}", s.summarize());
        }
    }

    #[test]
    fn beyond_k_bounces_show_up_as_demotions() {
        let topo = ClosConfig::small().build();
        // Tables protect 0 bounces; asking about 1-bounce reroutes must
        // report demotions (bounced traffic leaves the lossless class).
        let tagging = clos_tagging(&topo, 0).unwrap();
        let mut failures = FailureSet::none();
        failures.fail_between(&topo, "L1", "S1");
        let s = whatif(&topo, tagging.rules(), &failures, "fail L1-S1", 1);
        assert!(s.is_safe());
        assert!(s.lossy_demotions > 0, "{}", s.summarize());
        // The 0-bounce tables have one lossless tag; the 1-bounce
        // reroute set provably does not fit in it, and the summary
        // carries the verdict.
        assert!(!s.oracle_feasible, "{}", s.summarize());
        assert!(
            s.summarize().contains("oracle: infeasible"),
            "{}",
            s.summarize()
        );
    }

    #[test]
    fn oracle_confirms_demotions_are_avoidable_at_matching_budget() {
        let topo = ClosConfig::small().build();
        // 1-bounce tables (two lossless tags) asked about 1-bounce
        // reroutes: the oracle must agree a tagging exists.
        let tagging = clos_tagging(&topo, 1).unwrap();
        let mut failures = FailureSet::none();
        failures.fail_between(&topo, "L1", "S1");
        let s = whatif(&topo, tagging.rules(), &failures, "fail L1-S1", 1);
        assert!(s.oracle_feasible, "{}", s.summarize());
    }
}
