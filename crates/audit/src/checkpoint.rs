//! Offline audit checkpoints.
//!
//! A checkpoint is the auditor's offline input: enough to rebuild the
//! topology and the committed tables without a live controller. The
//! format is deliberately line-oriented plain text so fixtures can be
//! reviewed (and corrupted!) by hand:
//!
//! ```text
//! # tagger-audit checkpoint v1
//! topo clos pods=2 leaves_per_pod=2 tors_per_pod=2 spines=3 hosts_per_tor=2
//! epoch 7
//! switch S1
//! rule 1 L1 L3 1
//! ...
//! ```
//!
//! The table body is exactly [`RuleSet::to_table_text`], so a checkpoint
//! round-trips through [`render`] / [`parse`] losslessly.

use std::fmt;
use tagger_core::RuleSet;
use tagger_topo::{ClosConfig, Topology};

/// A parsed checkpoint: rebuilt topology plus the tables to audit.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// The Clos dimensions the topology was rebuilt from.
    pub config: ClosConfig,
    /// Epoch the tables were committed at.
    pub epoch: u64,
    /// The rebuilt fabric.
    pub topo: Topology,
    /// The committed per-switch tables.
    pub rules: RuleSet,
    /// 1-based file line where the table body starts (the line after
    /// `epoch`) — lets tools map table-text spans to file coordinates.
    pub body_line: usize,
}

/// Serializes a checkpoint.
pub fn render(config: &ClosConfig, epoch: u64, topo: &Topology, rules: &RuleSet) -> String {
    format!(
        "# tagger-audit checkpoint v1\n\
         topo clos pods={} leaves_per_pod={} tors_per_pod={} spines={} hosts_per_tor={}\n\
         epoch {epoch}\n{}",
        config.pods,
        config.leaves_per_pod,
        config.tors_per_pod,
        config.spines,
        config.hosts_per_tor,
        rules.to_table_text(topo)
    )
}

/// The parsed checkpoint header: everything above the table body.
#[derive(Clone, Debug)]
pub struct CheckpointHeader {
    /// The Clos dimensions the topology is rebuilt from.
    pub config: ClosConfig,
    /// Epoch the tables were committed at.
    pub epoch: u64,
    /// 1-based file line where the table body starts.
    pub body_line: usize,
    /// The table body text, verbatim.
    pub body: String,
}

/// Parses just the checkpoint header, leaving the table body untouched —
/// the entry point for tools (like `tagger-lint`) that want to run their
/// own, more forgiving parse over the body.
pub fn parse_header(text: &str) -> Result<CheckpointHeader, CheckpointError> {
    let mut config: Option<ClosConfig> = None;
    let mut epoch: Option<u64> = None;
    let mut body = String::new();
    let mut body_started = false;
    let mut body_line = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if body_started {
            body.push_str(raw);
            body.push('\n');
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("topo ") {
            config = Some(parse_topo(rest, lineno)?);
        } else if let Some(rest) = line.strip_prefix("epoch ") {
            epoch = Some(rest.trim().parse().map_err(|_| CheckpointError {
                line: lineno,
                why: format!("epoch wants a number, got {rest:?}"),
            })?);
            body_started = true;
            body_line = lineno + 1;
        } else {
            return Err(CheckpointError {
                line: lineno,
                why: format!("expected `topo` or `epoch`, got {line:?}"),
            });
        }
    }
    let config = config.ok_or(CheckpointError {
        line: 0,
        why: "missing `topo clos ...` header".into(),
    })?;
    let epoch = epoch.ok_or(CheckpointError {
        line: 0,
        why: "missing `epoch N` header".into(),
    })?;
    Ok(CheckpointHeader {
        config,
        epoch,
        body_line,
        body,
    })
}

/// Parses a checkpoint, rebuilding the topology from the `topo clos`
/// header and the tables from the body.
pub fn parse(text: &str) -> Result<Checkpoint, CheckpointError> {
    let header = parse_header(text)?;
    let topo = header.config.build();
    let rules = RuleSet::from_table_text(&topo, &header.body).map_err(|e| {
        let file_span = e.span.offset_lines(header.body_line.saturating_sub(1));
        CheckpointError {
            line: file_span.line,
            why: format!("table body: col {}: {}", file_span.col, e.why),
        }
    })?;
    Ok(Checkpoint {
        config: header.config,
        epoch: header.epoch,
        topo,
        rules,
        body_line: header.body_line,
    })
}

fn parse_topo(rest: &str, line: usize) -> Result<ClosConfig, CheckpointError> {
    let mut parts = rest.split_whitespace();
    let kind = parts.next().unwrap_or_default();
    if kind != "clos" {
        return Err(CheckpointError {
            line,
            why: format!("only `topo clos` checkpoints are supported, got {kind:?}"),
        });
    }
    let mut config = ClosConfig {
        pods: 0,
        leaves_per_pod: 0,
        tors_per_pod: 0,
        spines: 0,
        hosts_per_tor: 0,
    };
    for kv in parts {
        let (key, value) = kv.split_once('=').ok_or_else(|| CheckpointError {
            line,
            why: format!("expected key=value, got {kv:?}"),
        })?;
        let value: usize = value.parse().map_err(|_| CheckpointError {
            line,
            why: format!("{key} wants a number, got {value:?}"),
        })?;
        match key {
            "pods" => config.pods = value,
            "leaves_per_pod" => config.leaves_per_pod = value,
            "tors_per_pod" => config.tors_per_pod = value,
            "spines" => config.spines = value,
            "hosts_per_tor" => config.hosts_per_tor = value,
            other => {
                return Err(CheckpointError {
                    line,
                    why: format!("unknown clos dimension {other:?}"),
                })
            }
        }
    }
    if config.pods == 0 || config.leaves_per_pod == 0 || config.tors_per_pod == 0 {
        return Err(CheckpointError {
            line,
            why: "clos dimensions must all be non-zero".into(),
        });
    }
    Ok(config)
}

/// A malformed checkpoint, with the offending line (0 for whole-file
/// problems).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointError {
    /// 1-based line number, 0 when no single line is to blame.
    pub line: usize,
    /// What went wrong.
    pub why: String,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "checkpoint: {}", self.why)
        } else {
            write!(f, "checkpoint line {}: {}", self.line, self.why)
        }
    }
}

impl std::error::Error for CheckpointError {}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use tagger_core::clos::clos_tagging;

    #[test]
    fn checkpoints_round_trip() {
        let config = ClosConfig::small();
        let topo = config.build();
        let tagging = clos_tagging(&topo, 1).unwrap();
        let text = render(&config, 42, &topo, tagging.rules());
        let ckpt = parse(&text).unwrap();
        assert_eq!(ckpt.epoch, 42);
        assert_eq!(ckpt.config, config);
        assert_eq!(ckpt.rules.num_rules(), tagging.rules().num_rules());
        // Re-render: byte-identical (stable fixture format).
        assert_eq!(render(&ckpt.config, 42, &ckpt.topo, &ckpt.rules), text);
    }

    #[test]
    fn malformed_checkpoints_are_rejected_with_line_numbers() {
        assert!(parse("").is_err());
        assert!(parse("epoch 1\n").is_err(), "missing topo");
        let e = parse("topo clos pods=2 leaves_per_pod=x\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse("topo mesh\nepoch 1\n").unwrap_err();
        assert!(e.why.contains("topo clos"));
    }
}
