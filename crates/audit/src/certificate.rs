//! Machine-checkable evidence that an audited table is deadlock-free.
//!
//! A certificate is not "the auditor said OK" — it carries a topological
//! order over every reachable buffer, projected per tag, that anyone can
//! re-check in linear time without rerunning the audit: if every edge of
//! the reconstructed dependency graph goes forward in the witness, no
//! cycle exists (Theorem 5.1, condition 1), and the recorded absence of
//! tag decreases gives condition 2.

use crate::depgraph::{DepGraph, DepNode};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use tagger_core::Tag;
use tagger_topo::Topology;

/// Evidence for one tag's subgraph `G_k`.
#[derive(Clone, Debug)]
pub struct TagCertificate {
    /// The tag this subgraph carries.
    pub tag: Tag,
    /// Buffers holding this tag.
    pub nodes: usize,
    /// Dependency edges staying within this tag.
    pub edges: usize,
    /// Topological order over this tag's buffers — the acyclicity
    /// witness for `G_k`.
    pub witness: Vec<DepNode>,
}

/// The auditor's certificate for one committed epoch.
#[derive(Clone, Debug)]
pub struct AuditCertificate {
    /// Epoch the certified tables belong to.
    pub epoch: u64,
    /// Total reachable buffers.
    pub total_nodes: usize,
    /// Total dependency edges.
    pub total_edges: usize,
    /// Per-tag evidence, ascending by tag.
    pub per_tag: Vec<TagCertificate>,
}

impl AuditCertificate {
    /// Builds the certificate from a graph and a *full* topological
    /// order of it (Kahn's output with an empty residual). The global
    /// order restricted to one tag is a valid order for that tag's
    /// subgraph, because `G_k`'s edges are a subset of the whole graph's.
    pub fn new(epoch: u64, graph: &DepGraph, order: &[DepNode]) -> AuditCertificate {
        assert_eq!(order.len(), graph.num_nodes(), "order must be total");
        let mut per_tag: BTreeMap<Tag, TagCertificate> = BTreeMap::new();
        for &node in order {
            per_tag
                .entry(node.tag)
                .or_insert_with(|| TagCertificate {
                    tag: node.tag,
                    nodes: 0,
                    edges: 0,
                    witness: Vec::new(),
                })
                .witness
                .push(node);
        }
        for (from, to) in graph.edges() {
            if from.tag == to.tag {
                if let Some(cert) = per_tag.get_mut(&from.tag) {
                    cert.edges += 1;
                }
            }
        }
        for cert in per_tag.values_mut() {
            cert.nodes = cert.witness.len();
        }
        AuditCertificate {
            epoch,
            total_nodes: graph.num_nodes(),
            total_edges: graph.num_edges(),
            per_tag: per_tag.into_values().collect(),
        }
    }

    /// Re-checks the witness against a graph: every within-tag edge must
    /// go forward in its tag's witness, and every buffer must be
    /// witnessed. This is the linear-time independent re-validation a
    /// consumer of the certificate runs.
    pub fn check(&self, graph: &DepGraph) -> bool {
        let mut pos: BTreeMap<DepNode, usize> = BTreeMap::new();
        let mut witnessed = 0usize;
        for cert in &self.per_tag {
            for (i, &n) in cert.witness.iter().enumerate() {
                pos.insert(n, i);
                witnessed += 1;
            }
        }
        if witnessed != graph.num_nodes() {
            return false;
        }
        graph.edges().all(|(from, to)| {
            from.tag != to.tag
                || matches!((pos.get(&from), pos.get(&to)), (Some(a), Some(b)) if a < b)
        })
    }

    /// A short stable identifier for this certificate, derived (FNV-1a)
    /// from the epoch, the graph dimensions and the full witness. Two
    /// audits of the same tables at the same epoch produce the same id,
    /// so external tools (`tagger-lint`, dashboards) can cross-reference
    /// a certificate without storing it.
    pub fn id(&self) -> String {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.epoch);
        mix(self.total_nodes as u64);
        mix(self.total_edges as u64);
        for cert in &self.per_tag {
            mix(cert.tag.0 as u64);
            mix(cert.edges as u64);
            for n in &cert.witness {
                mix(n.switch.0 as u64);
                mix(n.in_port.0 as u64);
                mix(n.tag.0 as u64);
            }
        }
        format!("cert-{h:016x}")
    }

    /// Plain-text rendering for logs and the CLI.
    pub fn render(&self, topo: &Topology) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "certificate: epoch {} deadlock-free ({} buffers, {} edges)",
            self.epoch, self.total_nodes, self.total_edges
        );
        for cert in &self.per_tag {
            let head: Vec<String> = cert
                .witness
                .iter()
                .take(3)
                .map(|n| n.describe(topo))
                .collect();
            let ellipsis = if cert.witness.len() > 3 { " ..." } else { "" };
            let _ = writeln!(
                out,
                "  G_{}: {} buffers, {} edges; witness {}{}",
                cert.tag.0,
                cert.nodes,
                cert.edges,
                head.join(" < "),
                ellipsis
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use tagger_core::clos::clos_tagging;
    use tagger_topo::{ClosConfig, FailureSet};

    #[test]
    fn certificate_witness_rechecks() {
        let topo = ClosConfig::small().build();
        let tagging = clos_tagging(&topo, 2).unwrap();
        let g = DepGraph::build(&topo, tagging.rules(), &FailureSet::none());
        let kahn = g.kahn();
        assert!(kahn.is_acyclic());
        let cert = AuditCertificate::new(7, &g, &kahn.order);
        assert!(cert.check(&g));
        assert_eq!(cert.total_nodes, g.num_nodes());
        assert!(cert.per_tag.len() >= 2, "tags 1..=3 reachable");
        let rendered = cert.render(&topo);
        assert!(rendered.contains("epoch 7"));
        assert!(rendered.contains("G_1:"));
    }

    #[test]
    fn certificate_ids_are_deterministic_and_input_sensitive() {
        let topo = ClosConfig::small().build();
        let tagging = clos_tagging(&topo, 2).unwrap();
        let g = DepGraph::build(&topo, tagging.rules(), &FailureSet::none());
        let kahn = g.kahn();
        let a = AuditCertificate::new(7, &g, &kahn.order);
        let b = AuditCertificate::new(7, &g, &kahn.order);
        assert_eq!(a.id(), b.id());
        assert!(a.id().starts_with("cert-"));
        let other_epoch = AuditCertificate::new(8, &g, &kahn.order);
        assert_ne!(a.id(), other_epoch.id());
    }

    #[test]
    fn tampered_witness_fails_recheck() {
        let topo = ClosConfig::small().build();
        let tagging = clos_tagging(&topo, 1).unwrap();
        let g = DepGraph::build(&topo, tagging.rules(), &FailureSet::none());
        let kahn = g.kahn();
        let mut cert = AuditCertificate::new(0, &g, &kahn.order);
        // Reverse one tag's witness: some edge now goes backward.
        cert.per_tag[0].witness.reverse();
        assert!(!cert.check(&g));
    }
}
