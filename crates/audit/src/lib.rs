//! # tagger-audit — independent deadlock-freedom certification
//!
//! The Tagger control plane (`tagger-ctrl`) verifies every epoch before
//! committing it — with the same code that generated it. This crate is
//! the second, independent line of defence the paper's operational story
//! needs: a verifier that starts from the *committed per-switch tables*
//! (live from a `tagger-ctrl` commit-observer hook, or offline from a
//! checkpoint file) and re-proves deadlock freedom from scratch:
//!
//! 1. **Decompile** ([`decompile`]): expand every TCAM-compressed,
//!    port-bitmap-masked entry back into concrete `(tag, in-port,
//!    out-port) → new-tag` tuples against the topology's real port
//!    map, flagging entries whose expansion disagrees with the
//!    uncompressed intent ([`Finding::TcamMismatch`]).
//! 2. **Reconstruct & certify** ([`depgraph`], [`certificate`]): rebuild
//!    the per-tag buffer-dependency graph purely from those tuples plus
//!    link adjacency, then certify acyclicity with Kahn's algorithm and
//!    tag monotonicity by edge inspection — none of the verdict logic is
//!    shared with `TaggedGraph::verify`. A clean audit emits an
//!    [`AuditCertificate`] carrying per-tag node/edge counts and a
//!    topological-order witness anyone can re-check in linear time.
//! 3. **Counterexample** ([`counterexample`]): on failure, extract a
//!    minimal buffer cycle, render it over the topology via Graphviz
//!    with the cycle highlighted, and generate concrete flows that
//!    `tagger-sim` replays to *demonstrate* the deadlock.
//! 4. **What-if** ([`whatif`]): audit hypothetical link failures against
//!    the committed tables and the `≤ k`-bounce reroutes they imply.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod certificate;
pub mod checkpoint;
pub mod counterexample;
pub mod decompile;
pub mod depgraph;
pub mod metrics;
pub mod whatif;

pub use certificate::{AuditCertificate, TagCertificate};
pub use checkpoint::{Checkpoint, CheckpointError};
pub use counterexample::Counterexample;
pub use depgraph::{DepGraph, DepNode, KahnResult};
pub use metrics::AuditMetrics;
pub use whatif::WhatIfScenario;

use std::fmt::Write as _;
use std::time::Instant;
use tagger_core::tcam::{Compression, TcamProgram};
use tagger_core::RuleSet;
use tagger_topo::{FailureSet, NodeId, Topology};

/// Simulated time horizon for counterexample replays, ns. Long enough
/// for staggered flows to fill the cycle's buffers and the deadlock
/// detector to trip.
pub const REPLAY_END_NS: u64 = 2_000_000;

/// One thing the auditor found wrong with a committed table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Finding {
    /// A TCAM entry's expansion disagrees with the uncompressed intent
    /// for one concrete `(tag, in, out)` tuple.
    TcamMismatch {
        /// Switch whose TCAM diverges.
        switch: NodeId,
        /// What the intent wanted for the tuple (`None`: the TCAM
        /// matches a tuple the intent never covered).
        expected: Option<tagger_core::SwitchRule>,
        /// What the TCAM actually does (`None`: the tuple was lost).
        got: Option<tagger_core::SwitchRule>,
    },
    /// A dependency edge whose tag goes down — a monotonicity violation
    /// (Theorem 5.1, condition 2).
    TagDecrease {
        /// Upstream buffer.
        from: DepNode,
        /// Downstream buffer with the smaller tag.
        to: DepNode,
    },
    /// A cycle over lossless buffers — a live CBD (Theorem 5.1,
    /// condition 1).
    CyclicDependency {
        /// The offending cycle, canonically rotated.
        cycle: Vec<DepNode>,
    },
}

impl Finding {
    /// Human rendering with switch/port names resolved.
    pub fn describe(&self, topo: &Topology) -> String {
        match self {
            Finding::TcamMismatch {
                switch,
                expected,
                got,
            } => {
                let name = &topo.node(*switch).name;
                let show = |r: &Option<tagger_core::SwitchRule>| match r {
                    Some(r) => format!(
                        "({}, in #{}, out #{}) -> {}",
                        r.tag.0, r.in_port.0, r.out_port.0, r.new_tag.0
                    ),
                    None => "nothing".to_string(),
                };
                format!(
                    "tcam mismatch on {name}: intent {} but tcam does {}",
                    show(expected),
                    show(got)
                )
            }
            Finding::TagDecrease { from, to } => format!(
                "tag decrease: {} -> {}",
                from.describe(topo),
                to.describe(topo)
            ),
            Finding::CyclicDependency { cycle } => {
                let hops: Vec<String> = cycle.iter().map(|n| n.describe(topo)).collect();
                format!("cyclic buffer dependency: {} -> (back)", hops.join(" -> "))
            }
        }
    }
}

/// Everything one audit produced.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Epoch audited.
    pub epoch: u64,
    /// Concrete tuples recovered from the installed TCAMs.
    pub rules_decompiled: u64,
    /// Violations, empty on a clean audit.
    pub findings: Vec<Finding>,
    /// Issued iff `findings` is empty.
    pub certificate: Option<AuditCertificate>,
    /// Extracted iff a cycle was found.
    pub counterexample: Option<Counterexample>,
}

impl AuditReport {
    /// True when the tables are certified deadlock-free.
    pub fn is_certified(&self) -> bool {
        self.findings.is_empty() && self.certificate.is_some()
    }

    /// Plain-text rendering for logs and the CLI.
    pub fn render(&self, topo: &Topology) -> String {
        let mut out = String::new();
        if let Some(cert) = &self.certificate {
            out.push_str(&cert.render(topo));
        } else {
            let _ = writeln!(
                out,
                "AUDIT FAILED: epoch {} has {} finding(s)",
                self.epoch,
                self.findings.len()
            );
            for f in &self.findings {
                let _ = writeln!(out, "  {}", f.describe(topo));
            }
            if let Some(cx) = &self.counterexample {
                let _ = writeln!(out, "  counterexample flows:");
                for (label, _) in &cx.flows {
                    let _ = writeln!(out, "    {label}");
                }
            }
        }
        out
    }
}

/// The auditor: owns the topology it certifies against and accumulates
/// [`AuditMetrics`] across epochs.
#[derive(Clone, Debug)]
pub struct Auditor {
    topo: Topology,
    /// Counters across every audit this auditor ran.
    pub metrics: AuditMetrics,
}

impl Auditor {
    /// An auditor for one fabric.
    pub fn new(topo: Topology) -> Auditor {
        Auditor {
            topo,
            metrics: AuditMetrics::default(),
        }
    }

    /// The fabric this auditor certifies against.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Audits committed `intent` tables as they would be installed:
    /// compiles them with joint bitmap compression (what the real
    /// southbound ships) and audits the result.
    pub fn audit(&mut self, epoch: u64, intent: &RuleSet) -> AuditReport {
        let program = TcamProgram::compile(&self.topo, intent, Compression::Joint);
        self.audit_program(epoch, intent, &program)
    }

    /// Audits an arbitrary installed TCAM `program` against `intent` —
    /// the entry point for tables that did not come from our own
    /// compiler, or that may have been corrupted in flight.
    pub fn audit_program(
        &mut self,
        epoch: u64,
        intent: &RuleSet,
        program: &TcamProgram,
    ) -> AuditReport {
        let t0 = Instant::now();
        let decompiled = decompile::check_program(&self.topo, intent, program);
        let mut findings = decompiled.findings;

        // The graph is built from what the hardware would actually do,
        // not from what the controller meant.
        let graph = DepGraph::build(&self.topo, &decompiled.decompiled, &FailureSet::none());
        findings.extend(
            graph
                .tag_decreases()
                .into_iter()
                .map(|(from, to)| Finding::TagDecrease { from, to }),
        );
        let kahn = graph.kahn();
        let mut counterexample = None;
        if !kahn.is_acyclic() {
            if let Some(cycle) = graph.minimal_cycle(&kahn.residual) {
                findings.push(Finding::CyclicDependency {
                    cycle: cycle.clone(),
                });
                counterexample = Some(Counterexample::from_cycle(
                    &self.topo,
                    &graph,
                    cycle,
                    REPLAY_END_NS,
                ));
            }
        }
        let certificate = if findings.is_empty() {
            Some(AuditCertificate::new(epoch, &graph, &kahn.order))
        } else {
            None
        };

        self.metrics.epochs_audited += 1;
        self.metrics.rules_decompiled += decompiled.rules_decompiled;
        self.metrics.findings += findings.len() as u64;
        if certificate.is_some() {
            self.metrics.certificates_issued += 1;
        }
        if counterexample.is_some() {
            self.metrics.counterexamples_found += 1;
        }
        self.metrics
            .record_latency_us(t0.elapsed().as_micros() as u64);

        AuditReport {
            epoch,
            rules_decompiled: decompiled.rules_decompiled,
            findings,
            certificate,
            counterexample,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use tagger_core::clos::clos_tagging;
    use tagger_core::Tag;
    use tagger_topo::ClosConfig;

    #[test]
    fn clean_tables_get_a_certificate() {
        let topo = ClosConfig::small().build();
        let tagging = clos_tagging(&topo, 2).unwrap();
        let mut auditor = Auditor::new(topo);
        let report = auditor.audit(3, tagging.rules());
        assert!(report.is_certified(), "{:?}", report.findings);
        assert!(report.rules_decompiled > 0);
        assert_eq!(auditor.metrics.certificates_issued, 1);
        assert_eq!(auditor.metrics.epochs_audited, 1);
        assert!(auditor.metrics.last_latency_us().is_some());
    }

    #[test]
    fn corrupted_tables_fail_with_cycle_and_counterexample() {
        let topo = ClosConfig::small().build();
        let tagging = clos_tagging(&topo, 2).unwrap();
        let mut rules = tagging.rules().clone();
        let l1 = topo.expect_node("L1");
        let in_s1 = topo.port_towards(l1, topo.expect_node("S1")).unwrap();
        let out_s2 = topo.port_towards(l1, topo.expect_node("S2")).unwrap();
        rules.set(
            l1,
            tagger_core::SwitchRule {
                tag: Tag(2),
                in_port: in_s1,
                out_port: out_s2,
                new_tag: Tag(1),
            },
        );
        let mut auditor = Auditor::new(topo.clone());
        let report = auditor.audit(5, &rules);
        assert!(!report.is_certified());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::TagDecrease { .. })));
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::CyclicDependency { .. })));
        assert!(report.counterexample.is_some());
        assert_eq!(auditor.metrics.counterexamples_found, 1);
        let rendered = report.render(&topo);
        assert!(rendered.contains("AUDIT FAILED"));
    }

    #[test]
    fn auditor_and_controller_verifier_agree_on_healthy_tables() {
        // Cross-check: the independent path and TaggedGraph::verify must
        // reach the same verdict on the same tagging.
        let topo = ClosConfig::medium().build();
        let tagging = clos_tagging(&topo, 1).unwrap();
        assert!(tagging.graph().verify().is_ok());
        let mut auditor = Auditor::new(topo);
        assert!(auditor.audit(0, tagging.rules()).is_certified());
    }
}
