//! TCAM decompilation and intent comparison.
//!
//! The controller installs bitmap-compressed TCAM entries; the auditor
//! refuses to trust the compressor. It expands every masked entry back
//! into concrete `(tag, in-port, out-port) → new-tag` tuples against the
//! switch's *real* port map ([`Tcam::decompile`]) and diffs the result
//! against the uncompressed intent. Any divergence — a tuple the intent
//! wanted but the TCAM lost, a tuple the masks accidentally cover, or a
//! tuple rewritten to the wrong tag — becomes a [`Finding::TcamMismatch`]
//! and the *decompiled* behaviour (what the hardware would actually do)
//! is what the dependency graph downstream is built from.

use crate::Finding;
use std::collections::BTreeMap;
use tagger_core::tcam::TcamProgram;
use tagger_core::{RuleSet, SwitchRule};
use tagger_topo::{NodeId, Topology};

/// Result of decompiling a TCAM program and checking it against intent.
#[derive(Clone, Debug)]
pub struct DecompileOutcome {
    /// The concrete rule function the installed TCAMs implement.
    pub decompiled: RuleSet,
    /// Concrete tuples recovered from masked entries.
    pub rules_decompiled: u64,
    /// One finding per tuple where TCAM behaviour diverges from intent.
    pub findings: Vec<Finding>,
}

/// Decompiles `program` against the topology's real port maps and diffs
/// the recovered tuples against the uncompressed `intent`.
pub fn check_program(topo: &Topology, intent: &RuleSet, program: &TcamProgram) -> DecompileOutcome {
    let decompiled = program.decompile(topo);
    let mut findings = Vec::new();
    let mut switches: Vec<NodeId> = intent.switches().collect();
    for sw in decompiled.switches() {
        if !switches.contains(&sw) {
            switches.push(sw);
        }
    }
    switches.sort();
    let mut rules_decompiled = 0u64;
    for sw in switches {
        let want = index(intent.rules_for(sw));
        let got = index(decompiled.rules_for(sw));
        rules_decompiled += got.len() as u64;
        for (key, &new_tag) in &want {
            match got.get(key) {
                Some(&actual) if actual == new_tag => {}
                other => findings.push(Finding::TcamMismatch {
                    switch: sw,
                    expected: Some(rule(*key, new_tag)),
                    got: other.map(|&t| rule(*key, t)),
                }),
            }
        }
        for (key, &actual) in &got {
            if !want.contains_key(key) {
                findings.push(Finding::TcamMismatch {
                    switch: sw,
                    expected: None,
                    got: Some(rule(*key, actual)),
                });
            }
        }
    }
    DecompileOutcome {
        decompiled,
        rules_decompiled,
        findings,
    }
}

type Key = (tagger_core::Tag, tagger_topo::PortId, tagger_topo::PortId);

fn index(rules: Vec<SwitchRule>) -> BTreeMap<Key, tagger_core::Tag> {
    rules
        .into_iter()
        .map(|r| ((r.tag, r.in_port, r.out_port), r.new_tag))
        .collect()
}

fn rule(key: Key, new_tag: tagger_core::Tag) -> SwitchRule {
    SwitchRule {
        tag: key.0,
        in_port: key.1,
        out_port: key.2,
        new_tag,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use tagger_core::clos::clos_tagging;
    use tagger_core::tcam::{Compression, PortSet, Tcam, TcamEntry};
    use tagger_core::Tag;
    use tagger_topo::ClosConfig;

    #[test]
    fn faithful_compilation_round_trips_clean() {
        let topo = ClosConfig::small().build();
        let tagging = clos_tagging(&topo, 2).unwrap();
        for level in [Compression::None, Compression::InPort, Compression::Joint] {
            let program = TcamProgram::compile(&topo, tagging.rules(), level);
            let out = check_program(&topo, tagging.rules(), &program);
            assert!(out.findings.is_empty(), "{level:?}: {:?}", out.findings);
            assert_eq!(out.decompiled.num_rules(), tagging.rules().num_rules());
        }
    }

    #[test]
    fn overbroad_mask_is_flagged_as_spurious() {
        let topo = ClosConfig::small().build();
        let tagging = clos_tagging(&topo, 1).unwrap();
        let mut program = TcamProgram::compile(&topo, tagging.rules(), Compression::Joint);
        // Miscompile one switch: an entry whose in-mask covers every port.
        let l1 = topo.expect_node("L1");
        let mut all = PortSet::empty();
        for p in 0..topo.node(l1).num_ports() as u16 {
            all.insert(tagger_topo::PortId(p));
        }
        let out_s1 = topo.port_towards(l1, topo.expect_node("S1")).unwrap();
        program.install(
            l1,
            Tcam::from_entries(vec![TcamEntry {
                tag: Tag(1),
                in_ports: all,
                out_ports: PortSet::single(out_s1),
                new_tag: Tag(1),
            }]),
        );
        let out = check_program(&topo, tagging.rules(), &program);
        assert!(
            out.findings
                .iter()
                .any(|f| matches!(f, Finding::TcamMismatch { expected: None, .. })),
            "spurious expansions flagged"
        );
        assert!(
            out.findings
                .iter()
                .any(|f| matches!(f, Finding::TcamMismatch { got: None, .. })),
            "lost intent tuples flagged"
        );
    }
}
