//! Audit counters and latency accounting, styled after
//! `tagger_ctrl::ControllerMetrics` so `tagger-ctrld` can print both
//! reports side by side.

use std::fmt::Write as _;

/// Counters accumulated across every audit an [`crate::Auditor`] runs.
#[derive(Clone, Debug, Default)]
pub struct AuditMetrics {
    /// Epochs audited.
    pub epochs_audited: u64,
    /// Concrete tuples recovered from installed TCAM entries.
    pub rules_decompiled: u64,
    /// Certificates issued (clean audits).
    pub certificates_issued: u64,
    /// Counterexamples extracted (audits that found a cycle).
    pub counterexamples_found: u64,
    /// Total findings of any kind.
    pub findings: u64,
    latencies_us: Vec<u64>,
}

impl std::ops::AddAssign for AuditMetrics {
    /// Fleet rollup: counters add and latency samples concatenate, so a
    /// fleet-wide mean/max is computed over every fabric's audits —
    /// mirroring `SwitchStats` / `ControllerMetrics` one-place rollups.
    fn add_assign(&mut self, rhs: AuditMetrics) {
        self.epochs_audited += rhs.epochs_audited;
        self.rules_decompiled += rhs.rules_decompiled;
        self.certificates_issued += rhs.certificates_issued;
        self.counterexamples_found += rhs.counterexamples_found;
        self.findings += rhs.findings;
        self.latencies_us.extend(rhs.latencies_us);
    }
}

impl std::iter::Sum for AuditMetrics {
    fn sum<I: Iterator<Item = AuditMetrics>>(iter: I) -> AuditMetrics {
        iter.fold(AuditMetrics::default(), |mut acc, m| {
            acc += m;
            acc
        })
    }
}

impl AuditMetrics {
    /// Records one audit's wall-clock latency.
    pub fn record_latency_us(&mut self, us: u64) {
        self.latencies_us.push(us);
    }

    /// Latency of the most recent audit, µs.
    pub fn last_latency_us(&self) -> Option<u64> {
        self.latencies_us.last().copied()
    }

    /// Mean audit latency, µs.
    pub fn mean_latency_us(&self) -> Option<u64> {
        if self.latencies_us.is_empty() {
            return None;
        }
        Some(self.latencies_us.iter().sum::<u64>() / self.latencies_us.len() as u64)
    }

    /// Worst audit latency, µs.
    pub fn max_latency_us(&self) -> Option<u64> {
        self.latencies_us.iter().max().copied()
    }

    /// Plain-text report in the `ControllerMetrics::report` style.
    pub fn report(&self) -> String {
        let mut out = String::from("audit metrics\n");
        let _ = writeln!(out, "  epochs audited      {:>8}", self.epochs_audited);
        let _ = writeln!(out, "  rules decompiled    {:>8}", self.rules_decompiled);
        let _ = writeln!(out, "  certificates issued {:>8}", self.certificates_issued);
        let _ = writeln!(
            out,
            "  counterexamples     {:>8}",
            self.counterexamples_found
        );
        let _ = writeln!(out, "  findings            {:>8}", self.findings);
        if let (Some(last), Some(mean), Some(max)) = (
            self.last_latency_us(),
            self.mean_latency_us(),
            self.max_latency_us(),
        ) {
            let _ = writeln!(
                out,
                "  audit latency µs    last {last} / mean {mean} / max {max}"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn report_includes_every_counter() {
        let mut m = AuditMetrics {
            epochs_audited: 3,
            rules_decompiled: 120,
            certificates_issued: 2,
            counterexamples_found: 1,
            findings: 4,
            ..AuditMetrics::default()
        };
        m.record_latency_us(100);
        m.record_latency_us(300);
        let r = m.report();
        assert!(r.contains("epochs audited"));
        assert!(r.contains("120"));
        assert!(r.contains("last 300 / mean 200 / max 300"));
    }

    #[test]
    fn sum_rolls_up_counters_and_concatenates_latencies() {
        let mut a = AuditMetrics {
            epochs_audited: 2,
            certificates_issued: 2,
            rules_decompiled: 40,
            ..AuditMetrics::default()
        };
        a.record_latency_us(10);
        let mut b = AuditMetrics {
            epochs_audited: 1,
            counterexamples_found: 1,
            findings: 2,
            rules_decompiled: 7,
            ..AuditMetrics::default()
        };
        b.record_latency_us(30);
        let total: AuditMetrics = [a, b].into_iter().sum();
        assert_eq!(total.epochs_audited, 3);
        assert_eq!(total.certificates_issued, 2);
        assert_eq!(total.counterexamples_found, 1);
        assert_eq!(total.findings, 2);
        assert_eq!(total.rules_decompiled, 47);
        assert_eq!(total.mean_latency_us(), Some(20));
        assert_eq!(total.max_latency_us(), Some(30));
        let zero: AuditMetrics = std::iter::empty().sum();
        assert_eq!(zero.epochs_audited, 0);
        assert_eq!(zero.mean_latency_us(), None);
    }
}
