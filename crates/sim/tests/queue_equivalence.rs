//! Property: the timing-wheel and binary-heap event queues produce
//! identical `(time, payload)` orderings on random push/pop schedules —
//! the contract that lets the simulator swap backends without changing
//! a single popped event.

use proptest::prelude::*;
use tagger_sim::queue::{BinaryHeapQueue, TimingWheel};

/// One schedule step: push an event some delta past the current time,
/// or pop. Pushes respect the wheel's contract (never behind the most
/// recently popped time) exactly as the simulator does — it only ever
/// schedules at `now + delta`.
#[derive(Clone, Debug)]
enum Op {
    /// Push at `last_popped + delta` (deltas up to ~16 M ns cross every
    /// wheel level a simulation horizon touches).
    Push(u64),
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Listed twice to bias toward pushes (the vendored `prop_oneof!`
    // takes no weights): queues that mostly grow exercise more levels.
    prop_oneof![
        (0u64..16_000_000).prop_map(Op::Push),
        (0u64..2_000).prop_map(Op::Push),
        Just(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wheel_and_heap_pop_identically(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut wheel = TimingWheel::default();
        let mut heap = BinaryHeapQueue::default();
        let mut now = 0u64;
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Push(delta) => {
                    wheel.push(now + delta, i);
                    heap.push(now + delta, i);
                }
                Op::Pop => {
                    let a = wheel.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a, b);
                    if let Some((t, _)) = a {
                        now = t;
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.is_empty(), heap.is_empty());
        }
        // Drain both to empty: tails must match element for element.
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Bursts of simultaneous events keep FIFO order on both backends.
    #[test]
    fn simultaneous_bursts_fifo(burst in 1usize..64, t in 0u64..1_000_000) {
        let mut wheel = TimingWheel::default();
        let mut heap = BinaryHeapQueue::default();
        for i in 0..burst {
            wheel.push(t, i);
            heap.push(t, i);
        }
        for i in 0..burst {
            prop_assert_eq!(wheel.pop(), Some((t, i)));
            prop_assert_eq!(heap.pop(), Some((t, i)));
        }
    }
}
