//! Simulation-level invariants: conservation, determinism, and the
//! lossless guarantee across randomized workloads.

use proptest::prelude::*;
use tagger_routing::Fib;
use tagger_sim::{FlowSpec, SimConfig, Simulator};
use tagger_switch::SwitchConfig;
use tagger_topo::{ClosConfig, FailureSet, NodeId};

fn build_sim(num_lossless: u8, end_ns: u64) -> Simulator {
    let topo = ClosConfig::small().build();
    let fib = Fib::shortest_path(&topo, &FailureSet::none());
    let cfg = SimConfig {
        switch: SwitchConfig {
            num_lossless,
            ..SwitchConfig::default()
        },
        end_time_ns: end_ns,
        ..SimConfig::default()
    };
    Simulator::new(topo, fib, None, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// With PFC and no Tagger demotions, lossless traffic is never
    /// dropped regardless of the (possibly heavily incast) workload, and
    /// delivered bytes never exceed injected line-rate budget.
    #[test]
    fn lossless_is_lossless(flow_seeds in proptest::collection::vec(0usize..256, 1..8)) {
        let mut sim = build_sim(1, 1_000_000);
        let topo = sim.topo().clone();
        let hosts: Vec<NodeId> = topo.host_ids().collect();
        for (i, s) in flow_seeds.iter().enumerate() {
            let src = hosts[s % hosts.len()];
            let dst = hosts[(s / hosts.len() + i + 1) % hosts.len()];
            if src != dst {
                sim.add_flow(FlowSpec::new(src, dst, 0));
            }
        }
        let report = sim.run();
        prop_assert_eq!(report.lossless_drops, 0);
        prop_assert_eq!(report.lossy_drops, 0); // nothing is ever demoted
        // 1 ms at 40G is at most 5 MB per flow.
        for f in &report.flows {
            prop_assert!(f.delivered_bytes <= 5_100_000);
        }
    }

    /// Bit-for-bit determinism across runs.
    #[test]
    fn deterministic(seed in 0usize..64) {
        let run = || {
            let mut sim = build_sim(2, 500_000);
            let topo = sim.topo().clone();
            let hosts: Vec<NodeId> = topo.host_ids().collect();
            let a = hosts[seed % hosts.len()];
            let b = hosts[(seed * 3 + 5) % hosts.len()];
            if a != b {
                sim.add_flow(FlowSpec::new(a, b, 0));
                sim.add_flow(FlowSpec::new(b, a, 100_000));
            }
            let r = sim.run();
            (
                r.total_delivered_bytes(),
                r.pauses_sent,
                r.flows.iter().map(|f| f.delivered_packets).collect::<Vec<_>>(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Initial-trigger attribution, whenever produced, names a member of
    /// the confirmed SCC it reports, and its timestamps are causally
    /// ordered — even with randomized background traffic layered on top
    /// of the deadlock-prone cycle workload.
    #[test]
    fn attribution_names_scc_member(noise in proptest::collection::vec(0usize..256, 0..6)) {
        use tagger_sim::experiments::{cycle_flows, unsafe_identity_rules, watchdog_rescue};
        let topo = ClosConfig::small().build();
        let rules = unsafe_identity_rules(&topo);
        let mut flows = cycle_flows(&topo, 4_000_000);
        let hosts: Vec<NodeId> = topo.host_ids().collect();
        for (i, s) in noise.iter().enumerate() {
            let src = hosts[s % hosts.len()];
            let dst = hosts[(s / 7 + 3 * i + 1) % hosts.len()];
            if src != dst {
                flows.push((format!("noise{i}"), FlowSpec::new(src, dst, 0).with_limit(100_000)));
            }
        }
        let wd = tagger_switch::WatchdogConfig::with_window(200_000);
        let (report, _) = watchdog_rescue(&topo, &rules, flows, Some(wd), 4_000_000).run();
        let w = report.watchdog.expect("watchdog armed");
        if let Some(trig) = w.trigger {
            prop_assert!(
                trig.scc.contains(&trig.queue()),
                "attributed queue {:?} outside its SCC {:?}", trig.queue(), trig.scc
            );
            prop_assert!(trig.attributed_at >= trig.pause_epoch);
            if let Some(first) = w.first_trip_at {
                prop_assert!(first >= trig.attributed_at);
            }
        }
    }
}

/// A flow with a byte limit injects exactly that many bytes and they all
/// arrive (no losses on a lossless fabric).
#[test]
fn limited_flows_complete_exactly() {
    let mut sim = build_sim(1, 4_000_000);
    let topo = sim.topo().clone();
    let pairs = [("H1", "H9"), ("H2", "H16"), ("H5", "H3")];
    let mut handles = Vec::new();
    for (a, b) in pairs {
        handles.push(sim.add_flow(
            FlowSpec::new(topo.expect_node(a), topo.expect_node(b), 0).with_limit(200_000),
        ));
    }
    let report = sim.run();
    for h in handles {
        assert_eq!(report.flows[h as usize].delivered_bytes, 200_000);
    }
    assert_eq!(report.lossless_drops, 0);
}

/// The simulator handles a medium fabric (40 switches, 128 hosts) with a
/// full random permutation at line rate — scale smoke test with Tagger
/// rules installed.
#[test]
fn medium_clos_permutation_with_tagger() {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let topo = ClosConfig::medium().build();
    let tagging = tagger_core::clos::clos_tagging(&topo, 1).unwrap();
    let fib = Fib::shortest_path(&topo, &FailureSet::none());
    let cfg = SimConfig {
        switch: SwitchConfig {
            num_lossless: 2,
            ..SwitchConfig::default()
        },
        end_time_ns: 500_000,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.clone(), fib, Some(tagging.rules().clone()), cfg);
    let hosts: Vec<NodeId> = topo.host_ids().collect();
    let mut dsts = hosts.clone();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    loop {
        dsts.shuffle(&mut rng);
        if hosts.iter().zip(&dsts).all(|(a, b)| a != b) {
            break;
        }
    }
    for (s, d) in hosts.iter().zip(&dsts) {
        sim.add_flow(FlowSpec::new(*s, *d, 0));
    }
    let report = sim.run();
    assert!(report.deadlock.is_none());
    assert_eq!(report.lossless_drops, 0);
    // 128 flows at up to 40G for 0.5 ms: aggregate goodput must be
    // substantial (permutation traffic is admissible on a Clos).
    assert!(
        report.aggregate_goodput_bps() > 1e12,
        "aggregate {:.2e}",
        report.aggregate_goodput_bps()
    );
}

/// Rate series sum to delivered bytes (accounting consistency).
#[test]
fn rate_series_accounts_for_bytes() {
    let mut sim = build_sim(1, 1_000_000);
    let topo = sim.topo().clone();
    sim.add_flow(FlowSpec::new(
        topo.expect_node("H1"),
        topo.expect_node("H9"),
        0,
    ));
    let report = sim.run();
    let f = &report.flows[0];
    let dt_s = report.sample_interval_ns as f64 / 1e9;
    let from_series: f64 = f.rate_series.iter().map(|r| r * dt_s / 8.0).sum();
    let diff = (from_series - f.delivered_bytes as f64).abs();
    // Residual under one sample interval's worth of line rate.
    assert!(diff <= 40e9 / 8.0 * dt_s, "diff {diff}");
}
