//! The Table 1 reroute-probability measurement (paper §3.2).
//!
//! The paper instruments production servers with IP-in-IP probes: the
//! probe travels up to a high-layer switch, is decapsulated there and
//! routed back; a returned TTL below the healthy-path value reveals that
//! the return path was rerouted. We reproduce the *methodology* over a
//! synthetic failure process (production traces are proprietary).
//!
//! The forwarding model matters: with instant global reconvergence a Clos
//! absorbs single failures into equal-cost alternatives and no TTL
//! deficit appears. Real fabrics reroute *locally* first — a switch whose
//! chosen downlink is dead sends the packet to the best live alternative,
//! which on the down-path means bouncing back up (paper §3.2, §4.2). The
//! probe trace below does exactly that: greedy downhill forwarding by
//! healthy distances, with local detours (excluding the arrival port)
//! when the preferred next hop is dead.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tagger_routing::{shortest_path_dag, ShortestPaths};
use tagger_topo::{FailureSet, NodeId, Topology};

/// Configuration of the probing campaign.
#[derive(Clone, Copy, Debug)]
pub struct ProbeConfig {
    /// Measurements per day (the paper's Table 1 reports hundreds of
    /// millions per day; scale to taste).
    pub measurements: u64,
    /// Probes per measurement (`n = 100` in the paper).
    pub probes_per_measurement: u32,
    /// Probability that any given link is down during one measurement.
    pub link_failure_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            measurements: 1_000_000,
            probes_per_measurement: 100,
            link_failure_probability: 2e-7,
            seed: 1,
        }
    }
}

/// One day's results, in the shape of the paper's Table 1 rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeDay {
    /// Total measurements (`N`).
    pub total: u64,
    /// Measurements that observed a reroute (`M`).
    pub rerouted: u64,
}

impl ProbeDay {
    /// `M / N`, the reroute probability the paper reports (≈1e-5).
    pub fn reroute_probability(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.rerouted as f64 / self.total as f64
        }
    }
}

/// Traces one probe from `src` toward `dst` under greedy local-reroute
/// forwarding, returning the hop count, or `None` if the probe was lost.
///
/// `dist` must be the *healthy* shortest-path distances from `dst` (what
/// switches believe before reconvergence). At each switch the probe
/// prefers a live downhill neighbor (ECMP-selected by `hash`); if none is
/// live it detours to the live neighbor closest to the destination,
/// excluding the one it arrived from — a bounce.
pub fn trace_local_reroute(
    topo: &Topology,
    dist: &ShortestPaths,
    failures: &FailureSet,
    src: NodeId,
    dst: NodeId,
    hash: u64,
) -> Option<usize> {
    const MAX_HOPS: usize = 30;
    let d = |n: NodeId| dist.distance(n);
    let mut here = src;
    let mut prev: Option<NodeId> = None;
    let mut hops = 0usize;
    while here != dst {
        if hops >= MAX_HOPS {
            return None; // forwarding loop: probe dies of TTL
        }
        let dh = d(here)?;
        // Preferred: live downhill neighbors (healthy ECMP set).
        let downhill: Vec<NodeId> = failures
            .live_neighbors(topo, here)
            .map(|(_, _, v)| v)
            .filter(|&v| d(v) == Some(dh.wrapping_sub(1)))
            .filter(|&v| v == dst || topo.node(v).kind == tagger_topo::NodeKind::Switch)
            .collect();
        let next = if !downhill.is_empty() {
            // Real switches hash with per-switch seeds; without this, a
            // bounced probe would re-descend into the same dead leaf
            // forever.
            downhill[(hash as usize + here.0 as usize) % downhill.len()]
        } else {
            // Local reroute: best live neighbor, not the one we came from.
            let mut best: Option<(u32, NodeId)> = None;
            for (_, _, v) in failures.live_neighbors(topo, here) {
                if Some(v) == prev {
                    continue;
                }
                if v != dst && topo.node(v).kind != tagger_topo::NodeKind::Switch {
                    continue;
                }
                if let Some(dv) = d(v) {
                    if best.is_none_or(|(bd, _)| dv < bd) {
                        best = Some((dv, v));
                    }
                }
            }
            best?.1
        };
        prev = Some(here);
        here = next;
        hops += 1;
    }
    Some(hops)
}

/// Runs one day of probing over `topo`.
pub fn run_probe_day(topo: &Topology, cfg: &ProbeConfig) -> ProbeDay {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let hosts: Vec<NodeId> = topo.host_ids().collect();
    let spines: Vec<NodeId> = topo
        .switch_ids()
        .filter(|&s| topo.node(s).layer == tagger_topo::Layer::Spine)
        .collect();
    assert!(
        !hosts.is_empty() && !spines.is_empty(),
        "need hosts and spines"
    );

    // Healthy distances from each host (switches' pre-failure view).
    let healthy: Vec<_> = hosts
        .iter()
        .map(|&h| shortest_path_dag(topo, &FailureSet::none(), h))
        .collect();

    let links: Vec<_> = topo.link_ids().collect();
    let mut rerouted = 0u64;
    for m in 0..cfg.measurements {
        let hi = (m as usize) % hosts.len();
        let host = hosts[hi];
        let spine = spines[(m as usize / hosts.len()) % spines.len()];

        // Sample this measurement's failure state.
        let mut failures = FailureSet::none();
        let mut any = false;
        for &l in &links {
            if rng.random::<f64>() < cfg.link_failure_probability {
                failures.fail(l);
                any = true;
            }
        }
        if !any {
            continue; // healthy: all probes return the base TTL
        }

        // n probes differ in their ECMP hash; the measurement detects a
        // reroute if any probe's hop count differs from the healthy
        // distance (TTL deficit) or the probe is lost to a loop.
        let base = healthy[hi].distance(spine).map(|d| d as usize);
        let detected = (0..cfg.probes_per_measurement as u64).any(|p| {
            let hops = trace_local_reroute(topo, &healthy[hi], &failures, spine, host, p);
            hops.map(|h| Some(h) != base).unwrap_or(true)
        });
        if detected {
            rerouted += 1;
        }
    }
    ProbeDay {
        total: cfg.measurements,
        rerouted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagger_topo::ClosConfig;

    #[test]
    fn healthy_network_has_zero_reroutes() {
        let topo = ClosConfig::small().build();
        let cfg = ProbeConfig {
            measurements: 10_000,
            link_failure_probability: 0.0,
            ..Default::default()
        };
        let day = run_probe_day(&topo, &cfg);
        assert_eq!(day.rerouted, 0);
        assert_eq!(day.reroute_probability(), 0.0);
    }

    #[test]
    fn dead_downlink_forces_a_bounce_with_ttl_deficit() {
        // Fail L1-T1: a probe descending S1 -> L1 must bounce back up and
        // arrives with 2 extra hops.
        let topo = ClosConfig::small().build();
        let h1 = topo.expect_node("H1");
        let s1 = topo.expect_node("S1");
        let healthy = shortest_path_dag(&topo, &FailureSet::none(), h1);
        let mut failures = FailureSet::none();
        failures.fail_between(&topo, "L1", "T1");
        // Hash 0 picks the first downhill (L1 by port order at S1).
        let hops = trace_local_reroute(&topo, &healthy, &failures, s1, h1, 0).expect("delivered");
        assert_eq!(healthy.distance(s1), Some(3));
        assert_eq!(hops, 5, "bounce adds two hops");
        // A probe hashed onto L2 sees no deficit.
        let hops2 = trace_local_reroute(&topo, &healthy, &failures, s1, h1, 1).expect("delivered");
        assert_eq!(hops2, 3);
    }

    #[test]
    fn measurement_detects_the_bounce() {
        let topo = ClosConfig::small().build();
        let cfg = ProbeConfig {
            measurements: 5_000,
            link_failure_probability: 2e-4,
            seed: 11,
            ..Default::default()
        };
        let day = run_probe_day(&topo, &cfg);
        assert!(day.rerouted > 0, "expected detected reroutes");
        assert!(day.reroute_probability() < 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = ClosConfig::small().build();
        let cfg = ProbeConfig {
            measurements: 20_000,
            link_failure_probability: 1e-4,
            seed: 3,
            ..Default::default()
        };
        assert_eq!(run_probe_day(&topo, &cfg), run_probe_day(&topo, &cfg));
    }

    #[test]
    fn isolated_host_loses_probes() {
        // Cut both of T1's uplinks: probes to H1 from the spine layer are
        // lost (or loop) and the measurement is flagged.
        let topo = ClosConfig::small().build();
        let h1 = topo.expect_node("H1");
        let s1 = topo.expect_node("S1");
        let healthy = shortest_path_dag(&topo, &FailureSet::none(), h1);
        let mut failures = FailureSet::none();
        failures.fail_between(&topo, "T1", "L1");
        failures.fail_between(&topo, "T1", "L2");
        let hops = trace_local_reroute(&topo, &healthy, &failures, s1, h1, 0);
        assert_eq!(hops, None);
    }
}
