//! Flow specifications and per-flow accounting.

use crate::event::SimTime;
use std::collections::BTreeMap;
use tagger_core::Tag;
use tagger_topo::{NodeId, PortId, Topology};

/// How a flow's packets are routed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Route {
    /// Destination-based forwarding through the simulator's FIB, with
    /// per-flow ECMP hashing.
    Fib,
    /// Pinned to an explicit node path (must be loop-free); used to
    /// reproduce the paper's exact scenarios. Stored as a per-node
    /// next-hop map, so any switch on the path knows where to send.
    Pinned(Vec<NodeId>),
}

/// A flow to inject: an RDMA-style long-lived transfer from `src` to
/// `dst`, sending fixed-size packets at line rate subject only to PFC.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Time the flow starts.
    pub start: SimTime,
    /// Routing mode.
    pub route: Route,
    /// Initial tag carried by the flow's packets (class initial tag;
    /// [`Tag::INITIAL`] for the single-class case).
    pub initial_tag: Tag,
    /// Optional total byte limit; `None` = run forever.
    pub limit_bytes: Option<u64>,
}

impl FlowSpec {
    /// A forever flow routed by the FIB starting at `start`.
    pub fn new(src: NodeId, dst: NodeId, start: SimTime) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            start,
            route: Route::Fib,
            initial_tag: Tag::INITIAL,
            limit_bytes: None,
        }
    }

    /// Pins the flow to an explicit path.
    pub fn pinned(mut self, path: Vec<NodeId>) -> FlowSpec {
        self.route = Route::Pinned(path);
        self
    }

    /// Sets the initial tag (multi-class experiments).
    pub fn with_initial_tag(mut self, tag: Tag) -> FlowSpec {
        self.initial_tag = tag;
        self
    }

    /// Caps the flow at a total byte count.
    pub fn with_limit(mut self, bytes: u64) -> FlowSpec {
        self.limit_bytes = Some(bytes);
        self
    }
}

/// Mutable per-flow state inside the simulator.
#[derive(Clone, Debug)]
pub(crate) struct FlowState {
    pub spec: FlowSpec,
    /// Next-hop map for pinned routes: node -> egress port.
    pub pinned_ports: Option<BTreeMap<NodeId, PortId>>,
    pub started: bool,
    pub injected_bytes: u64,
    pub delivered_bytes: u64,
    pub delivered_packets: u64,
    pub ttl_drops: u64,
    /// Packets of this flow sacrificed by a watchdog drain (Drop policy).
    pub wd_drops: u64,
    /// Delivered bytes at the last sample tick (for the rate series).
    pub last_sample_bytes: u64,
    /// Rate series in bits/s, one entry per sample interval.
    pub rate_series: Vec<f64>,
}

impl FlowState {
    pub fn new(spec: FlowSpec, topo: &Topology) -> FlowState {
        let pinned_ports = match &spec.route {
            Route::Fib => None,
            Route::Pinned(path) => {
                let mut map = BTreeMap::new();
                for w in path.windows(2) {
                    let port = topo.port_towards(w[0], w[1]).unwrap_or_else(|| {
                        panic!("pinned path hop not adjacent: {} -> {}", w[0], w[1])
                    });
                    map.insert(w[0], port);
                }
                Some(map)
            }
        };
        FlowState {
            spec,
            pinned_ports,
            started: false,
            injected_bytes: 0,
            delivered_bytes: 0,
            delivered_packets: 0,
            ttl_drops: 0,
            wd_drops: 0,
            last_sample_bytes: 0,
            rate_series: Vec::new(),
        }
    }

    /// True if the flow has bytes left to inject at the given time.
    pub fn wants_to_send(&self, now: SimTime) -> bool {
        self.started
            && now >= self.spec.start
            && self
                .spec
                .limit_bytes
                .is_none_or(|limit| self.injected_bytes < limit)
    }
}

/// Per-flow results of a simulation run.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Flow id (index in insertion order).
    pub flow: u32,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Bytes delivered to the destination.
    pub delivered_bytes: u64,
    /// Packets delivered.
    pub delivered_packets: u64,
    /// Packets dropped on TTL expiry (routing loops).
    pub ttl_drops: u64,
    /// Packets sacrificed by a PFC-watchdog drain (Drop policy only; 0
    /// when the watchdog is off or demoting).
    pub wd_drops: u64,
    /// Goodput time series in bits/s, one entry per sample interval.
    pub rate_series: Vec<f64>,
}

impl FlowReport {
    /// Mean goodput over the last `n` samples, in bits/s.
    pub fn tail_rate(&self, n: usize) -> f64 {
        if self.rate_series.is_empty() {
            return 0.0;
        }
        let take = n.min(self.rate_series.len());
        let tail = &self.rate_series[self.rate_series.len() - take..];
        tail.iter().sum::<f64>() / take as f64
    }

    /// True if the flow made no progress over the last `n` samples while
    /// earlier samples show it did run — the throughput signature of a
    /// deadlock-paused flow (paper Fig. 10).
    pub fn stalled(&self, n: usize) -> bool {
        self.rate_series.len() > n && self.tail_rate(n) == 0.0 && self.delivered_bytes > 0
    }

    /// True if the flow delivered nothing over the last `n` samples —
    /// whether it ran before (a stall) or was frozen from birth by PAUSE
    /// propagation (paper Fig. 12).
    pub fn frozen(&self, n: usize) -> bool {
        !self.rate_series.is_empty() && self.tail_rate(n) == 0.0
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use tagger_topo::ClosConfig;

    #[test]
    fn pinned_route_builds_next_hop_map() {
        let topo = ClosConfig::small().build();
        let path = ["H1", "T1", "L1", "S1", "L3", "T3", "H9"]
            .iter()
            .map(|n| topo.expect_node(n))
            .collect::<Vec<_>>();
        let spec = FlowSpec::new(path[0], path[6], 0).pinned(path.clone());
        let state = FlowState::new(spec, &topo);
        let map = state.pinned_ports.unwrap();
        assert_eq!(map.len(), 6);
        assert_eq!(
            map[&topo.expect_node("T1")],
            topo.port_towards(topo.expect_node("T1"), topo.expect_node("L1"))
                .unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn pinned_route_rejects_non_adjacent() {
        let topo = ClosConfig::small().build();
        let bad = vec![topo.expect_node("H1"), topo.expect_node("S1")];
        let spec = FlowSpec::new(bad[0], bad[1], 0).pinned(bad.clone());
        FlowState::new(spec, &topo);
    }

    #[test]
    fn limit_gates_wants_to_send() {
        let topo = ClosConfig::small().build();
        let spec =
            FlowSpec::new(topo.expect_node("H1"), topo.expect_node("H9"), 10).with_limit(1000);
        let mut st = FlowState::new(spec, &topo);
        st.started = true;
        assert!(!st.wants_to_send(5)); // before start
        assert!(st.wants_to_send(10));
        st.injected_bytes = 1000;
        assert!(!st.wants_to_send(20));
    }

    #[test]
    fn stalled_detects_zero_tail() {
        let r = FlowReport {
            flow: 0,
            src: NodeId(0),
            dst: NodeId(1),
            delivered_bytes: 100,
            delivered_packets: 1,
            ttl_drops: 0,
            wd_drops: 0,
            rate_series: vec![1e9, 1e9, 0.0, 0.0, 0.0],
        };
        assert!(r.stalled(3));
        assert!(!r.stalled(5)); // window includes the running samples
        assert_eq!(r.tail_rate(2), 0.0);
    }
}
