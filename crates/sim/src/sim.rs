//! The simulator core: event loop, forwarding, PFC delivery.

use crate::deadlock::{deadlocked_queues, detect_deadlock, DeadlockReport};
use crate::event::{Ev, EventQueue, SimTime};
use crate::flow::{FlowReport, FlowSpec, FlowState, Route};
use crate::nic::HostNic;
use crate::report::{SimReport, TriggerAttribution, WatchdogReport, WatchdogTripRecord};
use std::collections::{BTreeMap, BTreeSet};
use tagger_core::{RuleSet, TagDecision};
use tagger_routing::{EcmpMode, Fib};
use tagger_switch::{
    AdmitOutcome, Packet, PacketId, PfcFrame, QueueWatchdog, SwitchConfig, SwitchState,
    SwitchStats, TransitionMode, WatchdogConfig, WatchdogPolicy, WatchdogStats, WatchdogVerdict,
};
use tagger_topo::{GlobalPort, NodeId, NodeKind, PortId, Topology};

/// Global simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Per-switch buffer/PFC configuration.
    pub switch: SwitchConfig,
    /// Priority-transition behaviour (Fig. 8); the correct new-tag mode
    /// by default.
    pub transition: TransitionMode,
    /// Wire size of every injected packet.
    pub packet_bytes: u32,
    /// Extra PFC reaction delay on top of the link propagation delay
    /// (MAC processing, scheduling).
    pub pfc_extra_delay_ns: u64,
    /// Interval between rate samples (and deadlock checks).
    pub sample_interval_ns: u64,
    /// Simulation horizon.
    pub end_time_ns: u64,
    /// Run the structural deadlock detector at every sample tick.
    pub deadlock_check: bool,
    /// Egress queues whose byte depth is sampled each tick (reported in
    /// [`crate::SimReport::queue_series`]). A frozen deadlocked queue
    /// shows as a flat line; a healthy congested queue breathes.
    pub track_queues: Vec<(NodeId, PortId, u8)>,
    /// DCQCN-lite congestion control (paper §6): switches must also set
    /// [`SwitchConfig::ecn_threshold_bytes`] for marking to happen.
    pub dcqcn: Option<crate::dcqcn::DcqcnConfig>,
    /// PFC pause quanta: when set, a received PAUSE only gates for this
    /// long and the pausing switch refreshes it at half-quanta intervals
    /// while its ingress stays congested — the real 802.1Qbb timer
    /// behaviour. `None` models PAUSE/RESUME as level signals (the
    /// common simulator simplification). Deadlocks persist either way:
    /// a frozen ingress never drains, so refreshes never stop.
    pub pause_quanta_ns: Option<u64>,
    /// Detect-and-break recovery (the prior-work category the paper's §1
    /// critiques): when a deadlock cycle is detected, flush one of its
    /// gated queues — dropping lossless packets — to break it. The
    /// deadlock typically reforms moments later; see the
    /// `recovery_baseline` experiment.
    pub recovery: bool,
    /// Per-queue PFC watchdog (paper §4.4 escape hatch): a lossless queue
    /// that stays tx-paused with data for a full window — and sits on a
    /// structurally confirmed wait-for cycle — is tripped: drained to
    /// drop or demoted to the lossy class for a hold-down period.
    /// `None` = no watchdog (the default; deadlocks then persist).
    pub watchdog: Option<WatchdogConfig>,
    /// Event-queue backend (the timing wheel by default; the binary
    /// heap is kept as the benchmark baseline).
    pub queue: crate::QueueKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            switch: SwitchConfig::default(),
            transition: TransitionMode::EgressByNewTag,
            packet_bytes: 1_000,
            pfc_extra_delay_ns: 500,
            sample_interval_ns: 100_000, // 100 µs
            end_time_ns: 10_000_000,     // 10 ms
            deadlock_check: true,
            track_queues: Vec::new(),
            dcqcn: None,
            pause_quanta_ns: None,
            recovery: false,
            watchdog: None,
            queue: crate::QueueKind::default(),
        }
    }
}

/// A scripted change applied at a given simulation time — how experiments
/// model link failures (FIB reconvergence), routing errors and path
/// repinning.
#[derive(Clone, Debug)]
pub enum Action {
    /// Replace the whole FIB (e.g. post-failure reconvergence).
    ReplaceFib(Fib),
    /// Pin a flow to an explicit path from now on.
    PinFlow {
        /// Flow handle.
        flow: u32,
        /// The new path (must be loop-free and adjacent).
        path: Vec<NodeId>,
    },
    /// Return a flow to FIB routing.
    UnpinFlow {
        /// Flow handle.
        flow: u32,
    },
    /// Stop a flow injecting further packets.
    StopFlow {
        /// Flow handle.
        flow: u32,
    },
    /// Take a link down: transmitters on both ends stop starting new
    /// packets (in-flight ones still arrive). Routing does NOT change —
    /// pair with [`Action::ReplaceFib`] to model reconvergence, or leave
    /// the pre-failure FIB installed to model the paper's §3.2 transient
    /// window.
    FailLink {
        /// The link.
        link: tagger_topo::LinkId,
    },
    /// Bring a failed link back.
    RestoreLink {
        /// The link.
        link: tagger_topo::LinkId,
    },
    /// Replace the entire installed Tagger rule program — the blunt
    /// control-plane update (full-table reinstall).
    ReplaceRules(RuleSet),
    /// Apply incremental per-switch rule deltas to the installed Tagger
    /// program, as emitted by a `tagger-ctrl` commit. Applied
    /// atomically at the scheduled instant (the simulator has no notion
    /// of per-switch install skew); starting from no installed rules
    /// applies the deltas to an empty program.
    ApplyRuleDeltas(Vec<tagger_core::RuleDelta>),
}

/// The deterministic discrete-event simulator.
pub struct Simulator {
    topo: Topology,
    cfg: SimConfig,
    rules: Option<RuleSet>,
    fib: Fib,
    flows: Vec<FlowState>,
    switches: BTreeMap<NodeId, SwitchState>,
    nics: BTreeMap<NodeId, HostNic>,
    tx_busy: BTreeSet<GlobalPort>,
    /// Hosts' forwarded-vs-generated alternation state per port.
    host_tx_alt: BTreeSet<GlobalPort>,
    queue: EventQueue,
    now: SimTime,
    actions: Vec<(SimTime, Action)>,
    packet_seq: u64,
    no_route_drops: u64,
    failed_links: BTreeSet<tagger_topo::LinkId>,
    /// Receiver-side pause deadlines when quanta are modelled.
    pause_deadline: BTreeMap<(GlobalPort, u8), SimTime>,
    /// Per-flow congestion-control state (present when DCQCN is on).
    cc: Vec<crate::dcqcn::FlowCc>,
    deadlock: Option<DeadlockReport>,
    deadlock_streak: u32,
    recoveries: u64,
    recovery_drops: u64,
    link_down_drops: u64,
    queue_series: Vec<Vec<u64>>,
    /// Per-queue watchdog state machines, created lazily on first
    /// symptom (a paused, non-empty lossless queue).
    watchdogs: BTreeMap<(NodeId, PortId, u8), QueueWatchdog>,
    wd_stats: WatchdogStats,
    wd_trips: Vec<WatchdogTripRecord>,
    wd_first_trip_at: Option<SimTime>,
    wd_cleared_at: Option<SimTime>,
    /// Ground-truth pause log, independent of the in-band stamps it
    /// cross-checks: every pause-bout start per lossless egress queue,
    /// in time order. Resume does not erase history (a bout's start must
    /// remain checkable after xoff/xon flaps); watchdog trips and link
    /// failures reset the affected queue's history.
    pause_log: BTreeMap<(NodeId, PortId, u8), Vec<SimTime>>,
    /// Initial-trigger attribution of the first confirmed episode.
    wd_trigger: Option<TriggerAttribution>,
    /// Confirmed-SCC empty→non-empty transitions seen at watchdog ticks.
    wd_episodes: u64,
    /// Whether the last watchdog tick saw a non-empty confirmed SCC.
    scc_active: bool,
    /// Events dispatched by `run` (the denominator of events/sec).
    events_processed: u64,
}

impl Simulator {
    /// Creates a simulator over `topo`, forwarding through `fib`, with
    /// optional Tagger `rules` (no rules = vanilla single-tag RoCE: the
    /// packet's tag is never rewritten).
    pub fn new(topo: Topology, fib: Fib, rules: Option<RuleSet>, cfg: SimConfig) -> Simulator {
        cfg.switch.validate().expect("invalid switch config");
        let qkind = cfg.queue;
        // Every node gets a data plane: switches obviously, but hosts
        // too — in server-centric fabrics (BCube) servers forward, and a
        // forwarding server needs queues and PFC accounting exactly like
        // a switch. Pure-endpoint hosts simply never receive a packet to
        // forward.
        let mut switches = BTreeMap::new();
        let mut nics = BTreeMap::new();
        for n in topo.node_ids() {
            switches.insert(n, SwitchState::new(n, topo.node(n).num_ports(), cfg.switch));
            if topo.node(n).kind == NodeKind::Host {
                nics.insert(
                    n,
                    HostNic::new(topo.node(n).num_ports(), cfg.switch.num_lossless),
                );
            }
        }
        Simulator {
            topo,
            cfg,
            rules,
            fib,
            flows: Vec::new(),
            switches,
            nics,
            tx_busy: BTreeSet::new(),
            host_tx_alt: BTreeSet::new(),
            queue: EventQueue::new(qkind),
            now: 0,
            actions: Vec::new(),
            packet_seq: 0,
            no_route_drops: 0,
            failed_links: BTreeSet::new(),
            pause_deadline: BTreeMap::new(),
            cc: Vec::new(),
            deadlock: None,
            deadlock_streak: 0,
            recoveries: 0,
            recovery_drops: 0,
            link_down_drops: 0,
            queue_series: Vec::new(),
            watchdogs: BTreeMap::new(),
            wd_stats: WatchdogStats::default(),
            wd_trips: Vec::new(),
            wd_first_trip_at: None,
            wd_cleared_at: None,
            pause_log: BTreeMap::new(),
            wd_trigger: None,
            wd_episodes: 0,
            scc_active: false,
            events_processed: 0,
        }
    }

    /// Registers a flow; returns its handle.
    ///
    /// # Panics
    /// Panics if src/dst are not hosts.
    pub fn add_flow(&mut self, spec: FlowSpec) -> u32 {
        assert_eq!(
            self.topo.node(spec.src).kind,
            NodeKind::Host,
            "flow src must be a host"
        );
        assert_eq!(
            self.topo.node(spec.dst).kind,
            NodeKind::Host,
            "flow dst must be a host"
        );
        let id = self.flows.len() as u32;
        let mut state = FlowState::new(spec, &self.topo);
        state.started = true;
        let line_bps = self
            .topo
            .node(state.spec.src)
            .link_at(PortId(0))
            .map(|l| self.topo.link(l).capacity_bps as f64)
            .unwrap_or(40e9);
        self.nics
            .get_mut(&state.spec.src)
            .expect("host nic")
            .flows
            .push(id);
        self.flows.push(state);
        self.cc.push(crate::dcqcn::FlowCc::new(line_bps));
        id
    }

    /// Schedules a scripted action.
    pub fn at(&mut self, time: SimTime, action: Action) {
        self.actions.push((time, action));
    }

    /// Arms the per-queue PFC watchdog on an already-built simulator
    /// (equivalent to setting [`SimConfig::watchdog`]; must be called
    /// before [`Simulator::run`], which schedules the poll ticks).
    pub fn arm_watchdog(&mut self, cfg: WatchdogConfig) {
        self.cfg.watchdog = Some(cfg);
    }

    /// Read-only view of one node's data plane, for post-run inspection
    /// (queue occupancy, held trigger stamps, PFC gating).
    pub fn switch_state(&self, node: NodeId) -> Option<&SwitchState> {
        self.switches.get(&node)
    }

    /// The topology (for scenario builders).
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Runs the simulation to the horizon and reports.
    pub fn run(&mut self) -> SimReport {
        // Seed events: flow starts, samples, scripted actions. Each flow
        // kicks the port its first hop leaves through (multi-homed BCube
        // servers pick per-route ports; everything else uses port 0).
        let starts: Vec<(SimTime, GlobalPort)> = self
            .flows
            .iter()
            .map(|f| {
                let first_port = f
                    .pinned_ports
                    .as_ref()
                    .and_then(|m| m.get(&f.spec.src).copied())
                    .unwrap_or(PortId(0));
                let port = GlobalPort::new(f.spec.src, first_port);
                (f.spec.start, port)
            })
            .collect();
        for (t, port) in starts {
            self.queue.push(t, Ev::Kick { port });
        }
        let mut t = self.cfg.sample_interval_ns;
        while t <= self.cfg.end_time_ns {
            self.queue.push(t, Ev::Sample);
            t += self.cfg.sample_interval_ns;
        }
        for (i, (t, _)) in self.actions.iter().enumerate() {
            self.queue.push(*t, Ev::RunAction { index: i });
        }
        if let Some(wd) = self.cfg.watchdog {
            // Poll well inside the window so a trip fires at most a
            // quarter-window late, never a whole window late.
            let interval = (wd.window_ns / 4).max(1_000);
            let mut t = interval;
            while t <= self.cfg.end_time_ns {
                self.queue.push(t, Ev::WatchdogTick);
                t += interval;
            }
        }
        if let Some(dcqcn) = self.cfg.dcqcn {
            for (i, f) in self.flows.iter().enumerate() {
                self.queue.push(
                    f.spec.start + dcqcn.increase_interval_ns,
                    Ev::RateTick { flow: i as u32 },
                );
            }
        }

        while let Some((t, ev)) = self.queue.pop() {
            if t > self.cfg.end_time_ns {
                break;
            }
            self.now = t;
            self.events_processed += 1;
            match ev {
                Ev::Kick { port } => self.try_transmit(port),
                Ev::TxEnd { port } => {
                    self.tx_busy.remove(&port);
                    self.try_transmit(port);
                }
                Ev::Arrive { port, packet } => self.on_arrive(port, packet),
                Ev::Pfc { port, frame } => self.on_pfc(port, frame),
                Ev::PfcExpire {
                    port,
                    prio,
                    deadline,
                } => self.on_pfc_expire(port, prio, deadline),
                Ev::PfcRefresh { port, prio } => self.on_pfc_refresh(port, prio),
                Ev::Cnp { flow } => {
                    if let Some(dcqcn) = self.cfg.dcqcn {
                        self.cc[flow as usize].on_cnp(&dcqcn, self.now);
                    }
                }
                Ev::RateTick { flow } => {
                    if let Some(dcqcn) = self.cfg.dcqcn {
                        self.cc[flow as usize].on_tick(&dcqcn);
                        // A raised rate may unblock the pacer right away.
                        self.queue.push(
                            self.now,
                            Ev::Kick {
                                port: GlobalPort::new(
                                    self.flows[flow as usize].spec.src,
                                    PortId(0),
                                ),
                            },
                        );
                        let next = self.now + dcqcn.increase_interval_ns;
                        if next <= self.cfg.end_time_ns {
                            self.queue.push(next, Ev::RateTick { flow });
                        }
                    }
                }
                Ev::Sample => self.on_sample(),
                Ev::WatchdogTick => self.on_watchdog_tick(),
                Ev::RunAction { index } => self.run_action(index),
            }
        }

        self.report()
    }

    fn link_of(&self, port: GlobalPort) -> Option<&tagger_topo::Link> {
        self.topo
            .node(port.node)
            .link_at(port.port)
            .map(|l| self.topo.link(l))
    }

    fn serialization_ns(&self, port: GlobalPort, bytes: u32) -> u64 {
        let link = self.link_of(port).expect("wired port");
        (bytes as u64 * 8).saturating_mul(1_000_000_000) / link.capacity_bps
    }

    /// Attempts to start a transmission on `port` (idempotent; no-op when
    /// busy or nothing eligible).
    fn try_transmit(&mut self, port: GlobalPort) {
        if self.tx_busy.contains(&port) {
            return;
        }
        if let Some(l) = self.topo.node(port.node).link_at(port.port) {
            if self.failed_links.contains(&l) {
                return; // dead link: nothing leaves this port
            }
        }
        let Some(link) = self.link_of(port) else {
            return;
        };
        let latency = link.latency_ns;
        // Forwarded (queued) traffic and locally-generated traffic share
        // the port; hosts alternate between the two so neither starves
        // (a forwarding BCube server still gets to send its own flows).
        let is_host = self.topo.node(port.node).kind == NodeKind::Host;
        let prefer_generator = is_host && self.host_tx_alt.contains(&port);
        let mut packet = None;
        if prefer_generator {
            packet = self.next_host_packet(port.node, port.port);
        }
        if packet.is_none() {
            let sw = self.switches.get_mut(&port.node).expect("dataplane");
            let qp = sw.dequeue(port.port);
            self.flush_switch_pfc(port.node);
            packet = qp.map(|q| q.packet);
        }
        if packet.is_none() && is_host && !prefer_generator {
            packet = self.next_host_packet(port.node, port.port);
        }
        if is_host && packet.is_some() {
            if prefer_generator {
                self.host_tx_alt.remove(&port);
            } else {
                self.host_tx_alt.insert(port);
            }
        }
        let Some(packet) = packet else {
            return;
        };
        let ser = self.serialization_ns(port, packet.size_bytes);
        let peer = self.topo.peer_of(port).expect("wired port");
        self.tx_busy.insert(port);
        self.queue.push(self.now + ser, Ev::TxEnd { port });
        self.queue
            .push(self.now + ser + latency, Ev::Arrive { port: peer, packet });
    }

    /// Picks the next packet a host injects: round-robin over its active,
    /// un-paused flows, with DCQCN pacing if enabled. When every active
    /// flow is merely paced into the future, schedules a wake-up kick at
    /// the earliest eligible time.
    fn next_host_packet(&mut self, host: NodeId, out_port: PortId) -> Option<Packet> {
        let dcqcn = self.cfg.dcqcn.is_some();
        let nic = self.nics.get_mut(&host).expect("host nic");
        let n = nic.flows.len();
        let mut wake: Option<SimTime> = None;
        let mut chosen: Option<(usize, u32)> = None;
        for i in 0..n {
            let idx = (nic.rr + i) % n;
            let fid = nic.flows[idx];
            let flow = &self.flows[fid as usize];
            if !flow.wants_to_send(self.now) {
                continue;
            }
            // Only flows whose first hop leaves via this port (pinned
            // multi-homed hosts pick their route's port; FIB flows use
            // port 0).
            let first_port = flow
                .pinned_ports
                .as_ref()
                .and_then(|m| m.get(&host).copied())
                .unwrap_or(PortId(0));
            if first_port != out_port {
                continue;
            }
            // Hosts honor PFC for the priority their tag maps to.
            let tag = flow.spec.initial_tag;
            let prio = if tag.0 >= 1 && tag.0 <= self.cfg.switch.num_lossless as u16 {
                Some((tag.0 - 1) as u8)
            } else {
                None
            };
            if let Some(p) = prio {
                if nic.is_paused(out_port, p) {
                    continue;
                }
            }
            if dcqcn {
                let next_allowed = self.cc[fid as usize].next_allowed;
                if next_allowed > self.now {
                    wake = Some(wake.map_or(next_allowed, |w| w.min(next_allowed)));
                    continue;
                }
            }
            chosen = Some((idx, fid));
            break;
        }
        let Some((idx, fid)) = chosen else {
            if let Some(at) = wake {
                self.queue.push(
                    at,
                    Ev::Kick {
                        port: GlobalPort::new(host, out_port),
                    },
                );
            }
            return None;
        };
        self.nics.get_mut(&host).expect("host nic").rr = (idx + 1) % n;
        self.packet_seq += 1;
        let flow = &self.flows[fid as usize];
        let mut packet = Packet::new(
            PacketId(self.packet_seq),
            fid,
            flow.spec.dst,
            self.cfg.packet_bytes,
        );
        packet.tag = Some(flow.spec.initial_tag);
        self.flows[fid as usize].injected_bytes += packet.size_bytes as u64;
        if dcqcn {
            self.cc[fid as usize].after_send(self.now, packet.size_bytes as u64 * 8);
        }
        Some(packet)
    }

    /// Full packet arrival at `port`.
    fn on_arrive(&mut self, port: GlobalPort, mut packet: Packet) {
        let node = port.node;
        // Deliver at the destination host.
        if self.topo.node(node).kind == NodeKind::Host && packet.dst == node {
            let f = &mut self.flows[packet.flow as usize];
            f.delivered_bytes += packet.size_bytes as u64;
            f.delivered_packets += 1;
            // DCQCN: congestion-marked deliveries trigger a CNP back to
            // the source after the reverse-path delay.
            if packet.ecn {
                if let Some(dcqcn) = self.cfg.dcqcn {
                    self.queue
                        .push(self.now + dcqcn.cnp_delay_ns, Ev::Cnp { flow: packet.flow });
                }
            }
            return;
        }
        // Otherwise forward — switches always; hosts when the route says
        // so (BCube servers). A host with no onward route simply drops
        // the misrouted packet, as a real endpoint would.

        // TTL: what eventually kills looping packets (Fig 11).
        if packet.ttl <= 1 {
            self.flows[packet.flow as usize].ttl_drops += 1;
            return;
        }
        packet.ttl -= 1;

        // Forwarding decision.
        let flow = &self.flows[packet.flow as usize];
        let out_port = match &flow.pinned_ports {
            Some(map) => map.get(&node).copied(),
            None => {
                if self.topo.node(node).kind == NodeKind::Switch {
                    self.fib
                        .select(node, packet.dst, packet.flow as u64, EcmpMode::FlowHash)
                } else {
                    None // hosts have no FIB
                }
            }
        };
        let Some(out_port) = out_port else {
            self.no_route_drops += 1;
            return;
        };

        // Tagger pipeline step 2: tag rewrite (forwarding hosts carry
        // rules too in server-centric fabrics).
        let arriving = packet.tag;
        packet.tag = match (&self.rules, arriving) {
            (Some(rules), Some(t)) => match rules.decide(node, t, port.port, out_port) {
                TagDecision::Lossless(t2) => Some(t2),
                TagDecision::Lossy => None,
            },
            // Lossy is sticky: no rule ever matches an absent tag.
            (Some(_), None) => None,
            // No Tagger deployed: tags ride unchanged.
            (None, t) => t,
        };

        let sw = self.switches.get_mut(&node).expect("dataplane");
        let outcome = sw.admit(port.port, out_port, arriving, packet, self.cfg.transition);
        self.flush_switch_pfc(node);
        if matches!(outcome, AdmitOutcome::Enqueued { .. }) {
            self.try_transmit(GlobalPort::new(node, out_port));
        }
    }

    /// Delivers PFC frames a switch wants to emit to the relevant
    /// upstream neighbors, after the wire + reaction delay. With quanta
    /// modelling on, every emitted PAUSE also arms the refresh timer.
    fn flush_switch_pfc(&mut self, node: NodeId) {
        let emitted = self
            .switches
            .get_mut(&node)
            .expect("switch")
            .take_emitted_pfc();
        for (port, frame) in emitted {
            let gp = GlobalPort::new(node, port);
            self.send_pfc(gp, frame);
        }
    }

    /// Sends one PFC frame from `gp` to its peer.
    fn send_pfc(&mut self, gp: GlobalPort, frame: PfcFrame) {
        let Some(link) = self.link_of(gp) else {
            return;
        };
        let delay = link.latency_ns + self.cfg.pfc_extra_delay_ns;
        let peer = self.topo.peer_of(gp).expect("wired");
        self.queue
            .push(self.now + delay, Ev::Pfc { port: peer, frame });
        if let (Some(quanta), PfcFrame::Pause { priority, .. }) = (self.cfg.pause_quanta_ns, frame)
        {
            self.queue.push(
                self.now + quanta / 2,
                Ev::PfcRefresh {
                    port: gp,
                    prio: priority,
                },
            );
        }
    }

    /// Receiver-side quanta expiry: ungate unless a refresh moved the
    /// deadline.
    fn on_pfc_expire(&mut self, port: GlobalPort, prio: u8, deadline: SimTime) {
        if self.pause_deadline.get(&(port, prio)) != Some(&deadline) {
            return; // refreshed (or resumed) since this was scheduled
        }
        self.pause_deadline.remove(&(port, prio));
        self.apply_pfc(port, PfcFrame::Resume { priority: prio });
    }

    /// Pauser-side refresh: while the congestion that triggered the
    /// PAUSE persists, re-assert it before the peer's quanta runs out.
    fn on_pfc_refresh(&mut self, port: GlobalPort, prio: u8) {
        // Every node (forwarding hosts included) pauses from its data
        // plane's ingress accounting.
        let sw = self.switches.get(&port.node).expect("dataplane");
        if sw.pause_outstanding(port.port, prio) {
            // Refreshes carry current attribution: if we have since been
            // gated downstream ourselves, the stamp rides along.
            let trigger = sw.inherited_trigger(prio);
            self.send_pfc(
                port,
                PfcFrame::Pause {
                    priority: prio,
                    trigger,
                },
            );
        }
    }

    /// PFC frame arrival on the wire: manage quanta deadlines, then
    /// apply.
    fn on_pfc(&mut self, port: GlobalPort, frame: PfcFrame) {
        if let Some(quanta) = self.cfg.pause_quanta_ns {
            match frame {
                PfcFrame::Pause { priority, .. } => {
                    let deadline = self.now + quanta;
                    self.pause_deadline.insert((port, priority), deadline);
                    self.queue.push(
                        deadline,
                        Ev::PfcExpire {
                            port,
                            prio: priority,
                            deadline,
                        },
                    );
                }
                PfcFrame::Resume { priority } => {
                    self.pause_deadline.remove(&(port, priority));
                }
            }
        }
        self.apply_pfc(port, frame);
    }

    /// Applies a PFC state change to the receiving node: the data plane
    /// gate always, and (on hosts) the NIC's injection gate too.
    ///
    /// Also maintains the simulator's own pause-entry log — ground truth
    /// for cross-checking the in-band trigger stamps, tracked entirely
    /// outside the switch implementation.
    fn apply_pfc(&mut self, port: GlobalPort, frame: PfcFrame) {
        let num_lossless = self.cfg.switch.num_lossless;
        match frame {
            PfcFrame::Pause { priority, .. } if priority < num_lossless => {
                let was = self
                    .switches
                    .get(&port.node)
                    .expect("dataplane")
                    .is_tx_paused(port.port, priority);
                if !was {
                    self.pause_log
                        .entry((port.node, port.port, priority))
                        .or_default()
                        .push(self.now);
                }
            }
            // Resume does NOT erase bout history: attribution must be
            // able to corroborate a claim whose origin bout has since
            // resolved. Histories are forgotten on watchdog trips
            // (recovery resets a queue) and on link failure.
            _ => {}
        }
        self.switches
            .get_mut(&port.node)
            .expect("dataplane")
            .on_pfc(port.port, frame, self.now);
        if let Some(nic) = self.nics.get_mut(&port.node) {
            nic.on_pfc(port.port, frame);
        }
        if matches!(frame, PfcFrame::Resume { .. }) {
            self.try_transmit(port);
        }
    }

    /// Periodic sampling: per-flow rates, tracked queue depths, deadlock
    /// detection.
    fn on_sample(&mut self) {
        let dt_s = self.cfg.sample_interval_ns as f64 / 1e9;
        for f in &mut self.flows {
            let delta = f.delivered_bytes - f.last_sample_bytes;
            f.last_sample_bytes = f.delivered_bytes;
            f.rate_series.push(delta as f64 * 8.0 / dt_s);
        }
        if !self.cfg.track_queues.is_empty() {
            let row = self
                .cfg
                .track_queues
                .iter()
                .map(|&(node, port, queue)| {
                    self.switches
                        .get(&node)
                        .map(|sw| sw.queue_depth_bytes(port, queue))
                        .unwrap_or(0)
                })
                .collect();
            self.queue_series.push(row);
        }
        if self.cfg.deadlock_check {
            match detect_deadlock(&self.topo, &self.switches) {
                Some(cycle) => {
                    self.deadlock_streak += 1;
                    // Require persistence over 3 samples before declaring
                    // deadlock: transient pause cycles resolve themselves;
                    // real CBD deadlocks do not.
                    if self.deadlock_streak >= 3 && self.deadlock.is_none() {
                        self.deadlock = Some(DeadlockReport {
                            detected_at: self.now,
                            cycle: cycle.clone(),
                        });
                    }
                    if self.cfg.recovery {
                        self.break_deadlock(&cycle);
                    }
                }
                None => self.deadlock_streak = 0,
            }
        }
    }

    /// One PFC-watchdog poll: feed every queue's symptom (tx-paused with
    /// data) and cycle confirmation (membership in a wait-for-graph SCC,
    /// the structural stand-in for DCFIT's in-band probe) into its state
    /// machine, then act on the verdicts.
    fn on_watchdog_tick(&mut self) {
        let Some(wcfg) = self.cfg.watchdog else {
            return;
        };
        // Symptom scan: paused lossless queues holding data.
        let mut stuck: BTreeSet<(NodeId, PortId, u8)> = BTreeSet::new();
        for (&node, sw) in &self.switches {
            let nl = sw.config().num_lossless;
            for p in 0..sw.num_ports() as u16 {
                let port = PortId(p);
                for prio in 0..nl {
                    if sw.is_tx_paused(port, prio) && sw.queue_depth_bytes(port, prio) > 0 {
                        stuck.insert((node, port, prio));
                    }
                }
            }
        }
        // Confirmation witness, computed once per tick: queues on a
        // circular wait. A queue stuck behind plain incast backpressure
        // is not in any cycle, so its watchdog suppresses instead of
        // tripping — the false-positive guard.
        let confirmed = if stuck.is_empty() {
            BTreeSet::new()
        } else {
            deadlocked_queues(&self.topo, &self.switches)
        };
        // Episode accounting and initial-trigger attribution, computed
        // before any verdict mutates switch state this tick: a confirmed
        // SCC appearing after none marks a new deadlock episode, and the
        // first episode's attribution is frozen for the report.
        if !confirmed.is_empty() {
            if !self.scc_active {
                self.scc_active = true;
                self.wd_episodes += 1;
                if self.wd_trigger.is_none() {
                    self.wd_trigger = self.attribute_trigger(&confirmed);
                }
            }
        } else {
            self.scc_active = false;
        }
        // Poll every symptomatic queue plus every existing state machine
        // (those in Watching need to see recovery; those in HoldDown need
        // their restore).
        let mut keys: BTreeSet<(NodeId, PortId, u8)> = self.watchdogs.keys().copied().collect();
        keys.extend(stuck.iter().copied());
        for q in keys {
            let wd = self.watchdogs.entry(q).or_default();
            let verdict = wd.poll(self.now, stuck.contains(&q), confirmed.contains(&q), &wcfg);
            let (node, port, prio) = q;
            match verdict {
                WatchdogVerdict::None => {}
                WatchdogVerdict::Suppressed => self.wd_stats.suppressions += 1,
                WatchdogVerdict::Trip => {
                    self.wd_stats.trips += 1;
                    self.wd_first_trip_at.get_or_insert(self.now);
                    // Origin evidence must be read before the flush/demote
                    // below clears the queue's attribution state.
                    let origin = self
                        .switches
                        .get(&node)
                        .expect("switch")
                        .is_trigger_origin(port, prio);
                    if origin {
                        self.wd_stats.origin_trips += 1;
                    } else {
                        self.wd_stats.inherited_trips += 1;
                    }
                    self.wd_trips.push(WatchdogTripRecord {
                        at: self.now,
                        switch: node,
                        port,
                        prio,
                        origin,
                    });
                    let sw = self.switches.get_mut(&node).expect("switch");
                    match wcfg.policy {
                        WatchdogPolicy::Drop => {
                            let flushed = sw.flush_queue(port, prio);
                            self.wd_stats.drained_packets += flushed.len() as u64;
                            for qp in &flushed {
                                self.flows[qp.packet.flow as usize].wd_drops += 1;
                            }
                        }
                        WatchdogPolicy::Demote => {
                            self.wd_stats.demoted_packets += sw.demote_queue(port, prio) as u64;
                        }
                    }
                    // The trip ends this queue's pause episode; the
                    // ground-truth log must forget it so a later re-pause
                    // gets a fresh entry timestamp.
                    self.pause_log.remove(&q);
                    // Dropping/demoting released ingress accounting or
                    // cleared the gate: deliver any RESUMEs and wake the
                    // port so the lossy (or emptied) queue drains.
                    self.flush_switch_pfc(node);
                    self.try_transmit(GlobalPort::new(node, port));
                }
                WatchdogVerdict::Restore => {
                    self.wd_stats.restores += 1;
                    let sw = self.switches.get_mut(&node).expect("switch");
                    sw.restore_queue(port, prio);
                    self.try_transmit(GlobalPort::new(node, port));
                }
            }
        }
        // Bounded-recovery timestamp: first poll after a trip at which no
        // confirmed cycle remains anywhere.
        if self.wd_first_trip_at.is_some()
            && self.wd_cleared_at.is_none()
            && deadlocked_queues(&self.topo, &self.switches).is_empty()
        {
            self.wd_cleared_at = Some(self.now);
        }
    }

    /// DCFIT-style initial-trigger attribution over a confirmed SCC,
    /// driven by the in-band stamps. PAUSE refreshes carry the `older()`
    /// combinator, so every member's claim converges on the oldest
    /// reachable pause event — the storm's origin — even while
    /// individual queues bounce across the xoff/xon hysteresis band.
    /// The attributed trigger hop is then:
    ///
    /// 1. the claim's origin queue itself, when the cycle contains it
    ///    (the cycle seeded from its own congestion, e.g. a bounce or
    ///    routing-loop deadlock); otherwise
    /// 2. the SCC member paused *directly by the origin's switch* — the
    ///    edge through which an outside pause storm (e.g. an incast
    ///    tree) entered the cycle; otherwise
    /// 3. the member holding the claim at the fewest relay hops.
    ///
    /// Hop counts alone cannot pick the entry edge: once a cycle locks,
    /// claims circulate through it and members that flap re-inherit at
    /// whatever relay distance the circulating copy has accumulated.
    /// The claim's *identity* (origin queue + epoch) is what converges.
    /// The result is cross-checked against the simulator's independent
    /// `pause_log` (first-ever pause entry per queue).
    fn attribute_trigger(
        &self,
        confirmed: &BTreeSet<(NodeId, PortId, u8)>,
    ) -> Option<TriggerAttribution> {
        // The SCC's oldest claim, by (epoch, origin queue id).
        let held = |q: &(NodeId, PortId, u8)| {
            self.switches
                .get(&q.0)
                .and_then(|sw| sw.trigger_of(q.1, q.2))
        };
        let (pause_epoch, origin) = confirmed
            .iter()
            .filter_map(|q| held(q).map(|s| (s.pause_epoch, (s.switch, s.port, s.prio))))
            .min()?;
        let carries = |q: &(NodeId, PortId, u8)| {
            held(q)
                .filter(|s| s.pause_epoch == pause_epoch && s.names(origin.0, origin.1, origin.2))
        };
        // Shortest observed relay distance from the origin to the cycle.
        let hops = confirmed
            .iter()
            .filter_map(|q| carries(q).map(|s| s.hops))
            .min()
            .unwrap_or(0);
        let (node, port, prio) = if confirmed.contains(&origin) {
            origin
        } else {
            confirmed
                .iter()
                .copied()
                .filter(|&(n, p, _)| {
                    self.topo
                        .peer_of(GlobalPort::new(n, p))
                        .is_some_and(|peer| peer.node == origin.0)
                })
                .min()
                .or_else(|| {
                    confirmed
                        .iter()
                        .filter_map(|&q| carries(&q).map(|s| (s.hops, q)))
                        .min()
                        .map(|(_, q)| q)
                })?
        };
        // Ground-truth corroboration against the simulator's own bout
        // log: (a) the claim's origin really entered pause at exactly
        // the claimed epoch — the stamp is not fabricated or stale past
        // a recovery — and (b) no SCC member's *surviving* bout (its
        // latest pause entry; members are gated, so the latest bout is
        // the current one) predates the claim, i.e. nothing the claim
        // fails to explain seeded the cycle earlier.
        let origin_real = self
            .pause_log
            .get(&origin)
            .is_some_and(|bouts| bouts.binary_search(&pause_epoch).is_ok());
        let no_older_survivor = confirmed.iter().all(|q| {
            self.pause_log
                .get(q)
                .and_then(|bouts| bouts.last())
                .is_none_or(|&t| t >= pause_epoch)
        });
        let matches_ground_truth = origin_real && no_older_survivor;
        Some(TriggerAttribution {
            switch: node,
            port,
            prio,
            pause_epoch,
            hops,
            attributed_at: self.now,
            matches_ground_truth,
            scc: confirmed.iter().copied().collect(),
        })
    }

    /// Detect-and-break recovery: flush the first gated queue of the
    /// witness cycle, dropping its lossless packets, and wake the port.
    fn break_deadlock(&mut self, cycle: &[(NodeId, PortId, u8)]) {
        let Some(&(node, port, prio)) = cycle.first() else {
            return;
        };
        let sw = self.switches.get_mut(&node).expect("switch");
        let dropped = sw.flush_queue(port, prio);
        self.recoveries += 1;
        self.recovery_drops += dropped.len() as u64;
        self.flush_switch_pfc(node);
        self.try_transmit(GlobalPort::new(node, port));
    }

    fn run_action(&mut self, index: usize) {
        let action = self.actions[index].1.clone();
        match action {
            Action::ReplaceFib(fib) => self.fib = fib,
            Action::ReplaceRules(rules) => self.rules = Some(rules),
            Action::ApplyRuleDeltas(deltas) => {
                let rules = self.rules.get_or_insert_with(RuleSet::new);
                for delta in &deltas {
                    rules.apply_delta(delta);
                }
            }
            Action::PinFlow { flow, path } => {
                let spec = self.flows[flow as usize].spec.clone();
                let spec = FlowSpec {
                    route: Route::Pinned(path),
                    ..spec
                };
                let old = &mut self.flows[flow as usize];
                let fresh = FlowState::new(spec, &self.topo);
                old.spec = fresh.spec;
                old.pinned_ports = fresh.pinned_ports;
            }
            Action::UnpinFlow { flow } => {
                let f = &mut self.flows[flow as usize];
                f.spec.route = Route::Fib;
                f.pinned_ports = None;
            }
            Action::StopFlow { flow } => {
                let f = &mut self.flows[flow as usize];
                f.spec.limit_bytes = Some(f.injected_bytes);
            }
            Action::FailLink { link } => {
                self.failed_links.insert(link);
                // Carrier loss: real switches flush packets queued on a
                // dead interface (they would otherwise pin ingress PFC
                // accounting forever and freeze their upstreams).
                let l = self.topo.link(link);
                for gp in [l.a, l.b] {
                    let queues = self.cfg.switch.queues_per_port() as u8;
                    let sw = self.switches.get_mut(&gp.node).expect("dataplane");
                    for q in 0..queues {
                        self.link_down_drops += sw.flush_queue(gp.port, q).len() as u64;
                    }
                    for q in 0..self.cfg.switch.num_lossless {
                        self.pause_log.remove(&(gp.node, gp.port, q));
                    }
                    self.flush_switch_pfc(gp.node);
                }
            }
            Action::RestoreLink { link } => {
                if self.failed_links.remove(&link) {
                    // Wake both transmitters.
                    let l = self.topo.link(link);
                    let (a, b) = (l.a, l.b);
                    self.queue.push(self.now, Ev::Kick { port: a });
                    self.queue.push(self.now, Ev::Kick { port: b });
                }
            }
        }
    }

    fn report(&self) -> SimReport {
        let flows = self
            .flows
            .iter()
            .enumerate()
            .map(|(i, f)| FlowReport {
                flow: i as u32,
                src: f.spec.src,
                dst: f.spec.dst,
                delivered_bytes: f.delivered_bytes,
                delivered_packets: f.delivered_packets,
                ttl_drops: f.ttl_drops,
                wd_drops: f.wd_drops,
                rate_series: f.rate_series.clone(),
            })
            .collect();
        // Every per-switch counter is aggregated here, in one place:
        // `SwitchStats` implements `Sum`, so new counters added to it
        // flow into the report without another hand-rolled loop.
        let totals: SwitchStats = self.switches.values().map(|sw| sw.stats).sum();
        let watchdog = self.cfg.watchdog.map(|_| {
            let mut stats = self.wd_stats;
            stats.redirected_packets = totals.demoted_redirects;
            WatchdogReport {
                stats,
                trips: self.wd_trips.clone(),
                first_trip_at: self.wd_first_trip_at,
                cleared_at: self.wd_cleared_at,
                trigger: self.wd_trigger.clone(),
                episodes: self.wd_episodes,
            }
        });
        SimReport {
            flows,
            deadlock: self.deadlock.clone(),
            pauses_sent: totals.pauses_sent,
            lossy_drops: totals.lossy_drops,
            lossless_drops: totals.lossless_drops,
            no_route_drops: self.no_route_drops,
            recoveries: self.recoveries,
            recovery_drops: self.recovery_drops,
            link_down_drops: self.link_down_drops,
            watchdog,
            queue_series: self.queue_series.clone(),
            end_time_ns: self.cfg.end_time_ns,
            sample_interval_ns: self.cfg.sample_interval_ns,
            events_processed: self.events_processed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagger_topo::{ClosConfig, FailureSet};

    fn small_sim(rules: Option<RuleSet>, num_lossless: u8) -> Simulator {
        let topo = ClosConfig::small().build();
        let fib = Fib::shortest_path(&topo, &FailureSet::none());
        let cfg = SimConfig {
            switch: SwitchConfig {
                num_lossless,
                xoff_bytes: 20_000,
                xon_bytes: 10_000,
                ..SwitchConfig::default()
            },
            end_time_ns: 2_000_000, // 2 ms
            ..SimConfig::default()
        };
        Simulator::new(topo, fib, rules, cfg)
    }

    #[test]
    fn single_flow_reaches_line_rate() {
        let mut sim = small_sim(None, 1);
        let topo = sim.topo().clone();
        let f = sim.add_flow(FlowSpec::new(
            topo.expect_node("H1"),
            topo.expect_node("H9"),
            0,
        ));
        let report = sim.run();
        let r = &report.flows[f as usize];
        // 40G line rate, minus serialization pipelining slack: expect
        // > 90% of line rate in the last samples.
        assert!(
            r.tail_rate(5) > 36e9,
            "tail rate {} too low",
            r.tail_rate(5)
        );
        assert!(report.deadlock.is_none());
        assert_eq!(report.lossless_drops, 0);
    }

    #[test]
    fn two_flows_share_a_bottleneck_fairly() {
        let mut sim = small_sim(None, 1);
        let topo = sim.topo().clone();
        // Both flows into H1: bottleneck is the T1 -> H1 access link.
        let a = sim.add_flow(FlowSpec::new(
            topo.expect_node("H2"),
            topo.expect_node("H1"),
            0,
        ));
        let b = sim.add_flow(FlowSpec::new(
            topo.expect_node("H3"),
            topo.expect_node("H1"),
            0,
        ));
        let report = sim.run();
        let ra = report.flows[a as usize].tail_rate(5);
        let rb = report.flows[b as usize].tail_rate(5);
        assert!(ra + rb > 36e9, "sum {}", ra + rb);
        let ratio = ra / rb;
        assert!((0.8..1.25).contains(&ratio), "unfair split {ratio}");
        // PFC must have throttled the sources.
        assert!(report.pauses_sent > 0);
        assert_eq!(report.lossless_drops, 0);
    }

    #[test]
    fn limited_flow_stops() {
        let mut sim = small_sim(None, 1);
        let topo = sim.topo().clone();
        let f = sim.add_flow(
            FlowSpec::new(topo.expect_node("H1"), topo.expect_node("H5"), 0).with_limit(50_000),
        );
        let report = sim.run();
        assert_eq!(report.flows[f as usize].delivered_bytes, 50_000);
    }

    #[test]
    fn pinned_flow_follows_its_path() {
        let mut sim = small_sim(None, 1);
        let topo = sim.topo().clone();
        let path: Vec<NodeId> = ["H1", "T1", "L2", "S2", "L4", "T4", "H13"]
            .iter()
            .map(|n| topo.expect_node(n))
            .collect();
        let f = sim.add_flow(
            FlowSpec::new(path[0], path[6], 0)
                .pinned(path)
                .with_limit(10_000),
        );
        let report = sim.run();
        assert_eq!(report.flows[f as usize].delivered_bytes, 10_000);
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let mut sim = small_sim(None, 1);
            let topo = sim.topo().clone();
            sim.add_flow(FlowSpec::new(
                topo.expect_node("H1"),
                topo.expect_node("H9"),
                0,
            ));
            sim.add_flow(FlowSpec::new(
                topo.expect_node("H2"),
                topo.expect_node("H9"),
                50_000,
            ));
            let r = sim.run();
            (
                r.flows[0].delivered_bytes,
                r.flows[1].delivered_bytes,
                r.pauses_sent,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pause_quanta_do_not_change_steady_state() {
        // Incast with and without quanta modelling reaches the same
        // sharing; refreshes keep pauses alive exactly as level signals
        // would.
        let run = |quanta: Option<u64>| {
            let topo = ClosConfig::small().build();
            let fib = Fib::shortest_path(&topo, &FailureSet::none());
            let cfg = SimConfig {
                switch: SwitchConfig {
                    num_lossless: 1,
                    xoff_bytes: 20_000,
                    xon_bytes: 10_000,
                    ..SwitchConfig::default()
                },
                pause_quanta_ns: quanta,
                end_time_ns: 2_000_000,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(topo.clone(), fib, None, cfg);
            sim.add_flow(FlowSpec::new(
                topo.expect_node("H2"),
                topo.expect_node("H1"),
                0,
            ));
            sim.add_flow(FlowSpec::new(
                topo.expect_node("H3"),
                topo.expect_node("H1"),
                0,
            ));
            let r = sim.run();
            (
                r.lossless_drops,
                r.flows[0].tail_rate(5) + r.flows[1].tail_rate(5),
            )
        };
        let (drops_level, sum_level) = run(None);
        let (drops_quanta, sum_quanta) = run(Some(50_000));
        assert_eq!(drops_level, 0);
        assert_eq!(drops_quanta, 0);
        assert!(sum_level > 36e9);
        assert!(sum_quanta > 36e9);
    }

    #[test]
    fn expired_pause_without_refresh_ungates() {
        // Deliver a PAUSE whose sender immediately drains (so no refresh
        // follows): the gate must lift after one quanta. Construct by
        // letting the incast clear: single short flow, then observe the
        // network quiesces with no stuck gates (all bytes delivered).
        let topo = ClosConfig::small().build();
        let fib = Fib::shortest_path(&topo, &FailureSet::none());
        let cfg = SimConfig {
            switch: SwitchConfig {
                num_lossless: 1,
                xoff_bytes: 4_000,
                xon_bytes: 1_000,
                ..SwitchConfig::default()
            },
            pause_quanta_ns: Some(20_000),
            end_time_ns: 3_000_000,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(topo.clone(), fib, None, cfg);
        let a = sim.add_flow(
            FlowSpec::new(topo.expect_node("H2"), topo.expect_node("H1"), 0).with_limit(400_000),
        );
        let b = sim.add_flow(
            FlowSpec::new(topo.expect_node("H3"), topo.expect_node("H1"), 0).with_limit(400_000),
        );
        let report = sim.run();
        assert_eq!(report.flows[a as usize].delivered_bytes, 400_000);
        assert_eq!(report.flows[b as usize].delivered_bytes, 400_000);
        assert_eq!(report.lossless_drops, 0);
    }

    #[test]
    fn stopped_flow_frees_bandwidth() {
        let mut sim = small_sim(None, 1);
        let topo = sim.topo().clone();
        let a = sim.add_flow(FlowSpec::new(
            topo.expect_node("H2"),
            topo.expect_node("H1"),
            0,
        ));
        let b = sim.add_flow(FlowSpec::new(
            topo.expect_node("H3"),
            topo.expect_node("H1"),
            0,
        ));
        sim.at(1_000_000, Action::StopFlow { flow: a });
        let report = sim.run();
        // After a stops, b should climb back toward line rate.
        let rb = report.flows[b as usize].tail_rate(3);
        assert!(rb > 30e9, "b tail rate {rb}");
        let _ = a;
    }
}
