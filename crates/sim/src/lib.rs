//! # tagger-sim — deterministic discrete-event PFC network simulator
//!
//! Replaces the paper's hardware testbed (§8): hosts inject line-rate
//! RDMA-style flows, switches run the [`tagger_switch`] data plane with
//! real PFC PAUSE/RESUME dynamics, and the simulator observes per-flow
//! throughput, PAUSE propagation and deadlock formation.
//!
//! Fidelity choices (see `DESIGN.md` for the full substitution table):
//!
//! - store-and-forward switching with per-link serialization and
//!   propagation delay;
//! - PFC frames delivered after the wire delay, bypassing data queues
//!   (as MAC control frames do);
//! - hosts honor PFC on their uplink (RoCE NIC behaviour) and otherwise
//!   inject at line rate — like the paper's testbed, no DCQCN, so PFC is
//!   the only backpressure and deadlock phenomena appear undamped;
//! - destination-based forwarding through a [`tagger_routing::Fib`], with
//!   per-flow pinned paths available for reproducing exact scenarios
//!   (Figures 3, 10, 12), and FIB overrides for routing loops (Figure 11).
//!
//! Everything is deterministic: same inputs, same event order, same
//! results.
//!
//! ```
//! use tagger_sim::{FlowSpec, SimConfig, Simulator};
//! use tagger_routing::Fib;
//! use tagger_topo::{ClosConfig, FailureSet};
//!
//! let topo = ClosConfig::small().build();
//! let fib = Fib::shortest_path(&topo, &FailureSet::none());
//! let cfg = SimConfig { end_time_ns: 200_000, ..SimConfig::default() };
//! let mut sim = Simulator::new(topo.clone(), fib, None, cfg);
//! sim.add_flow(FlowSpec::new(
//!     topo.expect_node("H1"),
//!     topo.expect_node("H9"),
//!     0,
//! ));
//! let report = sim.run();
//! assert!(report.deadlock.is_none());
//! assert!(report.flows[0].delivered_bytes > 0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

mod dcqcn;
mod deadlock;
mod event;
mod flow;
mod nic;
mod report;
mod sim;

pub mod queue;

pub mod experiments;
pub mod probe;

pub use dcqcn::DcqcnConfig;
pub use deadlock::DeadlockReport;
pub use event::{QueueKind, SimTime};
pub use experiments::Experiment;
pub use flow::{FlowReport, FlowSpec, Route};
pub use report::{SimReport, TriggerAttribution, WatchdogReport, WatchdogTripRecord};
pub use sim::{Action, SimConfig, Simulator};
