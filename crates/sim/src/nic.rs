//! Host NIC model: line-rate injection gated by PFC.

use tagger_switch::PfcFrame;
use tagger_topo::PortId;

/// The sending side of a host NIC.
///
/// RoCE NICs honor PFC on their access links: when a switch pauses a
/// priority on a port, the NIC stops *injecting* packets of that priority
/// there. The NIC round-robins among the host's active flows, which
/// models multiple queue pairs sharing the link fairly. Multi-homed hosts
/// (BCube servers) track pause state per port; their *forwarded* traffic
/// is handled by the host's own data-plane [`tagger_switch::SwitchState`]
/// in the simulator, not here.
#[derive(Clone, Debug)]
pub(crate) struct HostNic {
    /// Flow ids sourced at this host.
    pub flows: Vec<u32>,
    /// Round-robin pointer into `flows`.
    pub rr: usize,
    /// Per-(port, priority) pause state set by received PFC frames.
    paused: Vec<bool>,
    num_lossless: usize,
}

impl HostNic {
    pub fn new(ports: usize, num_lossless: u8) -> HostNic {
        HostNic {
            flows: Vec::new(),
            rr: 0,
            paused: vec![false; ports.max(1) * num_lossless as usize],
            num_lossless: num_lossless as usize,
        }
    }

    fn index(&self, port: PortId, priority: u8) -> Option<usize> {
        let i = port.index() * self.num_lossless + priority as usize;
        ((priority as usize) < self.num_lossless && i < self.paused.len()).then_some(i)
    }

    /// Applies a PFC frame received on `port`.
    pub fn on_pfc(&mut self, port: PortId, frame: PfcFrame) {
        let (priority, value) = match frame {
            PfcFrame::Pause { priority, .. } => (priority, true),
            PfcFrame::Resume { priority } => (priority, false),
        };
        if let Some(i) = self.index(port, priority) {
            self.paused[i] = value;
        }
    }

    /// True if the given lossless priority is paused on `port`.
    pub fn is_paused(&self, port: PortId, priority: u8) -> bool {
        self.index(port, priority)
            .map(|i| self.paused[i])
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pause_resume_round_trip() {
        let mut nic = HostNic::new(1, 2);
        assert!(!nic.is_paused(PortId(0), 0));
        nic.on_pfc(
            PortId(0),
            PfcFrame::Pause {
                priority: 0,
                trigger: None,
            },
        );
        assert!(nic.is_paused(PortId(0), 0));
        assert!(!nic.is_paused(PortId(0), 1));
        nic.on_pfc(PortId(0), PfcFrame::Resume { priority: 0 });
        assert!(!nic.is_paused(PortId(0), 0));
    }

    #[test]
    fn ports_are_independent() {
        let mut nic = HostNic::new(2, 2);
        nic.on_pfc(
            PortId(1),
            PfcFrame::Pause {
                priority: 1,
                trigger: None,
            },
        );
        assert!(nic.is_paused(PortId(1), 1));
        assert!(!nic.is_paused(PortId(0), 1));
    }

    #[test]
    fn out_of_range_priority_ignored() {
        let mut nic = HostNic::new(1, 2);
        nic.on_pfc(
            PortId(0),
            PfcFrame::Pause {
                priority: 7,
                trigger: None,
            },
        );
        assert!(!nic.is_paused(PortId(0), 7));
    }
}
