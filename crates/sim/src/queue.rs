//! Deterministic event-queue backends: the hierarchical timing wheel
//! used on the hot path, and the reference binary heap it is verified
//! against.
//!
//! Both backends honour the same ordering contract: entries pop in
//! `(time, push sequence)` order, so simultaneous events fire in
//! insertion order and runs are fully deterministic regardless of the
//! backing structure. The equivalence is pinned by a property test
//! (`tests/queue_equivalence.rs`) that drives both backends through
//! random push/pop schedules and demands identical output.
//!
//! One contract restriction makes the wheel possible: a push may not
//! name a time earlier than the most recently popped entry's time. The
//! simulator always schedules at `now + delta`, so it satisfies this by
//! construction; the wheel debug-asserts and clamps otherwise.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Bits per wheel level: 64 slots each.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Level-0 tick granularity in bits: one bucket spans `2^TICK_SHIFT`
/// nanoseconds. Simulator deltas are link-serialization scale (a 1 KB
/// packet at 40 Gbps is 200 ns; propagation is 500 ns; PFC reaction
/// 1 µs), so 128 ns buckets put the overwhelming majority of pushes
/// directly into level 0's 8.2 µs window — one placement, no cascade.
const TICK_SHIFT: u32 = 7;
/// 10 levels x 6 bits on top of the 7-bit tick = 67 bits, covering the
/// whole `u64` time range.
const LEVELS: usize = 10;
/// Cap on the recycled-slot-vector pool (see [`TimingWheel`] docs).
const POOL_CAP: usize = 64;

/// One queued entry: `(time, sequence, payload)`.
type Entry<T> = (u64, u64, T);

/// Hierarchical timing wheel (Varghese–Lauck style): 10 levels of 64
/// slots over a 128 ns tick, level `l` bucketing times by bit block
/// `[7 + 6l, 7 + 6l + 6)` relative to the cursor. A level-0 bucket
/// spans one tick and may hold several timestamps; it is sorted by
/// `(time, sequence)` once when the cursor harvests it, which
/// reproduces the heap's order exactly. Higher-level slots cascade
/// down as the cursor enters their window, but with the tick matched
/// to the simulator's event deltas cascades are rare.
///
/// Push and pop are O(1) amortised — a pop advances the cursor with one
/// `trailing_zeros` per occupancy word instead of the heap's O(log n)
/// sift, which is what makes million-packet scenario sweeps viable.
///
/// Allocation on the hot path is avoided entirely: level-0 buckets are
/// drained in place (capacity retained for the cursor's next lap), and
/// the slot vectors emptied by cascades return to a small freelist and
/// are reused instead of being dropped, so steady-state operation
/// allocates nothing.
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// `LEVELS * SLOTS` slot vectors, level-major.
    slots: Vec<Vec<Entry<T>>>,
    /// Per-level occupancy bitmask (bit `i` = slot `i` non-empty).
    occ: [u64; LEVELS],
    /// Current bucket (time >> `TICK_SHIFT`) of the wheel: the bucket
    /// most recently harvested into `ready`.
    cursor: u64,
    /// Exact time of the most recently popped entry — the contract's
    /// lower bound for pushes (finer-grained than the bucket cursor).
    floor: u64,
    /// True once the bucket at `cursor` has been harvested into
    /// `ready` — same-bucket pushes must then insert into `ready`
    /// directly (in sorted position) rather than into the slot.
    harvested: bool,
    /// Entries of the harvested bucket, sorted by `(time, sequence)`.
    ready: VecDeque<Entry<T>>,
    /// Recycled slot vectors (pooled allocation).
    pool: Vec<Vec<Entry<T>>>,
    len: usize,
    seq: u64,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        let mut slots = Vec::with_capacity(LEVELS * SLOTS);
        slots.resize_with(LEVELS * SLOTS, Vec::new);
        TimingWheel {
            slots,
            occ: [0; LEVELS],
            cursor: 0,
            floor: 0,
            harvested: false,
            ready: VecDeque::new(),
            pool: Vec::new(),
            len: 0,
            seq: 0,
        }
    }
}

impl<T> TimingWheel<T> {
    /// Enqueues `item` at `at`. Times earlier than the last popped time
    /// are outside the contract: debug builds assert, release builds
    /// clamp to the cursor.
    pub fn push(&mut self, at: u64, item: T) {
        self.seq += 1;
        self.len += 1;
        let seq = self.seq;
        self.place((at, seq, item));
    }

    /// Dequeues the entry with the smallest `(time, sequence)`.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            if let Some((t, _, item)) = self.ready.pop_front() {
                self.len -= 1;
                self.floor = t;
                return Some((t, item));
            }
            self.advance();
        }
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Files an entry into `ready` (same-bucket fast path) or the slot
    /// its bucket belongs to relative to the cursor.
    fn place(&mut self, entry: (u64, u64, T)) {
        let (at, seq, item) = entry;
        debug_assert!(at >= self.floor, "push at {at} behind floor {}", self.floor);
        let at = at.max(self.floor);
        let bucket = at >> TICK_SHIFT;
        if bucket == self.cursor && self.harvested {
            // The cursor's bucket is already draining: insert in
            // `(time, seq)` position. Entries already popped all sort
            // strictly below `(floor, ..)` ≤ `(at, seq)`, so order
            // across the whole pop stream is preserved.
            let pos = self.ready.partition_point(|e| (e.0, e.1) <= (at, seq));
            self.ready.insert(pos, (at, seq, item));
            return;
        }
        let diff = bucket ^ self.cursor;
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        };
        let slot = ((bucket >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push((at, seq, item));
        self.occ[level] |= 1 << slot;
    }

    /// Moves the cursor to the next pending bucket and harvests it into
    /// `ready`. Caller guarantees `len > 0`.
    fn advance(&mut self) {
        loop {
            // Scan the rest of the level-0 window (64 consecutive
            // buckets) for the next occupied slot.
            let start = (self.cursor & (SLOTS as u64 - 1)) as u32;
            let mask = self.occ[0] & (!0u64 << start);
            if mask != 0 {
                let idx = mask.trailing_zeros();
                self.cursor = (self.cursor & !(SLOTS as u64 - 1)) | idx as u64;
                self.harvested = true;
                self.occ[0] &= !(1 << idx);
                // Drain in place (split borrow): the slot keeps its
                // capacity for the cursor's next lap, so the hot path
                // allocates nothing and moves no Vec headers around.
                let (slots, ready) = (&mut self.slots, &mut self.ready);
                let slot = &mut slots[idx as usize];
                // A bucket spans one tick and can hold many timestamps
                // in push order; one sort here reproduces the heap's
                // global `(time, seq)` order.
                slot.sort_unstable_by_key(|e| (e.0, e.1));
                ready.extend(slot.drain(..));
                return;
            }
            self.cascade();
        }
    }

    /// The level-0 window is exhausted: jump the cursor to the next
    /// occupied higher-level slot's window and redistribute its entries
    /// into lower levels.
    fn cascade(&mut self) {
        for level in 1..LEVELS {
            let shift = SLOT_BITS * level as u32;
            let idx = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as u32;
            // Slot `idx` was expanded when the cursor entered it; slots
            // before it are in the past. Only strictly-later slots count.
            if idx as usize + 1 >= SLOTS {
                continue;
            }
            let mask = self.occ[level] & (!0u64 << (idx + 1));
            if mask == 0 {
                continue;
            }
            let nidx = mask.trailing_zeros();
            // Jump to the found window's start: keep the bits above this
            // level, substitute the slot index, zero everything below.
            let above = if shift + SLOT_BITS >= 64 {
                0
            } else {
                self.cursor & !((1u64 << (shift + SLOT_BITS)) - 1)
            };
            self.cursor = above | (nidx as u64) << shift;
            self.harvested = false;
            self.occ[level] &= !(1 << nidx);
            let mut vec = std::mem::replace(
                &mut self.slots[level * SLOTS + nidx as usize],
                self.pool.pop().unwrap_or_default(),
            );
            for entry in vec.drain(..) {
                self.place(entry);
            }
            if self.pool.len() < POOL_CAP {
                self.pool.push(vec);
            }
            return;
        }
        unreachable!(
            "timing wheel corrupt: {} pending but no occupied slot",
            self.len
        );
    }
}

/// The reference backend: a `BinaryHeap` over `(time, seq)` — the
/// pre-wheel implementation, kept for the equivalence property test and
/// for before/after benchmarking (`BENCH_scenarios.json`).
#[derive(Debug)]
pub struct BinaryHeapQueue<T> {
    heap: BinaryHeap<Reverse<Keyed<T>>>,
    seq: u64,
}

impl<T> Default for BinaryHeapQueue<T> {
    fn default() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

/// Heap element ordered by `(time, seq)` only; the payload is never
/// compared.
#[derive(Debug)]
struct Keyed<T>(u64, u64, T);

impl<T> PartialEq for Keyed<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.0, self.1) == (other.0, other.1)
    }
}
impl<T> Eq for Keyed<T> {}
impl<T> PartialOrd for Keyed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Keyed<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0, self.1).cmp(&(other.0, other.1))
    }
}

impl<T> BinaryHeapQueue<T> {
    /// Enqueues `item` at `at`.
    pub fn push(&mut self, at: u64, item: T) {
        self.seq += 1;
        self.heap.push(Reverse(Keyed(at, self.seq, item)));
    }

    /// Dequeues the entry with the smallest `(time, sequence)`.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|Reverse(Keyed(t, _, item))| (t, item))
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn wheel_pops_in_time_order() {
        let mut q = TimingWheel::default();
        for &t in &[30u64, 10, 20, 1_000_000, 65, 64, 63, 4096, 262144] {
            q.push(t, t);
        }
        let mut out = Vec::new();
        while let Some((t, v)) = q.pop() {
            assert_eq!(t, v);
            out.push(t);
        }
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(out, sorted);
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn wheel_simultaneous_fifo() {
        let mut q = TimingWheel::default();
        q.push(5, 1u32);
        q.push(5, 2);
        q.push(5, 3);
        let vals: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn wheel_interleaved_push_pop_keeps_order() {
        // A same-timestamp push landing while its slot is draining, and
        // a far-future entry cascading down next to a near one pushed
        // later — both must keep (time, seq) order.
        let mut q = TimingWheel::default();
        q.push(100, 1u32); // level 1 (cursor 0)
        q.push(1_000_000, 2);
        assert_eq!(q.pop(), Some((100, 1)));
        q.push(100, 3); // same time as the cursor, slot already drained
        q.push(100, 4);
        assert_eq!(q.pop(), Some((100, 3)));
        assert_eq!(q.pop(), Some((100, 4)));
        q.push(1_000_000, 5); // direct push beside the cascaded entry
        assert_eq!(q.pop(), Some((1_000_000, 2)));
        assert_eq!(q.pop(), Some((1_000_000, 5)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_matches_heap_on_dense_schedule() {
        let mut wheel = TimingWheel::default();
        let mut heap = BinaryHeapQueue::default();
        // Deterministic pseudo-random mixed schedule.
        let mut x = 0x12345678u64;
        let mut now = 0u64;
        let step = |s: &mut u64| {
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            *s
        };
        for round in 0..5_000u64 {
            let jitter = step(&mut x) % 10_000;
            wheel.push(now + jitter, round);
            heap.push(now + jitter, round);
            if step(&mut x) % 3 == 0 {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b);
                if let Some((t, _)) = a {
                    now = t;
                }
            }
        }
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn len_and_empty() {
        let mut q: TimingWheel<u8> = TimingWheel::default();
        assert!(q.is_empty());
        q.push(1, 0);
        q.push(1 << 40, 1);
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
