//! DCQCN-lite: ECN-driven end-to-end congestion control (paper §6).
//!
//! The paper positions DCQCN as a *complement* to Tagger: rate control
//! minimizes how often PFC fires, but cannot make deadlocks impossible —
//! transients still push queues past Xoff, and one unlucky transient is
//! enough (deadlocks were observed in production fleets running DCQCN).
//! This module implements the simplified loop the ablation needs:
//!
//! - switches ECN-mark lossless packets that queue behind more than a
//!   threshold ([`tagger_switch::SwitchConfig::ecn_threshold_bytes`]);
//! - the receiving NIC returns a CNP to the source after the reverse-path
//!   delay (CNPs ride their own class in real deployments — the paper's
//!   §6 multi-class example);
//! - the source multiplicatively cuts its injection rate per CNP (with
//!   coalescing) and additively recovers on a timer.
//!
//! Compared to full DCQCN this drops the alpha EWMA and the
//! fast-recovery stages; the control character (MD on congestion, AI
//! recovery, per-flow pacing) is what the experiments exercise.

/// DCQCN-lite parameters.
#[derive(Clone, Copy, Debug)]
pub struct DcqcnConfig {
    /// Reverse-path latency of a CNP, NIC to NIC.
    pub cnp_delay_ns: u64,
    /// Minimum spacing between rate cuts per flow (CNP coalescing).
    pub cut_interval_ns: u64,
    /// Multiplicative decrease factor applied per (coalesced) CNP.
    pub decrease_factor: f64,
    /// Additive-increase period.
    pub increase_interval_ns: u64,
    /// Additive-increase step in bits/s.
    pub increase_step_bps: f64,
    /// Rate floor in bits/s.
    pub min_rate_bps: f64,
}

impl Default for DcqcnConfig {
    fn default() -> Self {
        DcqcnConfig {
            cnp_delay_ns: 4_000,
            cut_interval_ns: 50_000,
            decrease_factor: 0.5,
            increase_interval_ns: 55_000,
            increase_step_bps: 2.0e9,
            min_rate_bps: 100.0e6,
        }
    }
}

/// Per-flow congestion-control state.
#[derive(Clone, Debug)]
pub(crate) struct FlowCc {
    /// Current injection rate, bits/s.
    pub rate_bps: f64,
    /// Line rate of the source link (the rate ceiling).
    pub line_bps: f64,
    /// Earliest time the next packet may start serializing.
    pub next_allowed: u64,
    /// Time of the last rate cut (for CNP coalescing).
    pub last_cut: u64,
}

impl FlowCc {
    pub fn new(line_bps: f64) -> FlowCc {
        FlowCc {
            rate_bps: line_bps,
            line_bps,
            next_allowed: 0,
            last_cut: 0,
        }
    }

    /// Handles a CNP at `now`: multiplicative decrease, coalesced.
    pub fn on_cnp(&mut self, cfg: &DcqcnConfig, now: u64) {
        if now >= self.last_cut + cfg.cut_interval_ns || self.last_cut == 0 {
            self.rate_bps = (self.rate_bps * cfg.decrease_factor).max(cfg.min_rate_bps);
            self.last_cut = now;
        }
    }

    /// Periodic additive increase.
    pub fn on_tick(&mut self, cfg: &DcqcnConfig) {
        self.rate_bps = (self.rate_bps + cfg.increase_step_bps).min(self.line_bps);
    }

    /// Advances the pacing clock after sending `bits`.
    pub fn after_send(&mut self, now: u64, bits: u64) {
        let gap = (bits as f64 / self.rate_bps * 1e9) as u64;
        self.next_allowed = now + gap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnp_halves_rate_with_floor() {
        let cfg = DcqcnConfig::default();
        let mut cc = FlowCc::new(40e9);
        cc.on_cnp(&cfg, 1_000_000);
        assert_eq!(cc.rate_bps, 20e9);
        // Coalesced: a CNP right after does nothing.
        cc.on_cnp(&cfg, 1_010_000);
        assert_eq!(cc.rate_bps, 20e9);
        // After the window, cuts apply again, down to the floor.
        let mut t = 1_000_000;
        for _ in 0..20 {
            t += cfg.cut_interval_ns;
            cc.on_cnp(&cfg, t);
        }
        assert_eq!(cc.rate_bps, cfg.min_rate_bps);
    }

    #[test]
    fn ticks_recover_to_line_rate() {
        let cfg = DcqcnConfig::default();
        let mut cc = FlowCc::new(40e9);
        cc.on_cnp(&cfg, 1);
        for _ in 0..100 {
            cc.on_tick(&cfg);
        }
        assert_eq!(cc.rate_bps, 40e9);
    }

    #[test]
    fn pacing_gap_matches_rate() {
        let cfg = DcqcnConfig::default();
        let mut cc = FlowCc::new(40e9);
        cc.on_cnp(&cfg, 0); // 20G
        cc.on_cnp(&cfg, cfg.cut_interval_ns); // 10G
        cc.after_send(1_000, 8_000); // 1 KB at 10 Gb/s = 800 ns
        assert_eq!(cc.next_allowed, 1_800);
    }
}
