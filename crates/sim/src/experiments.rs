//! Prebuilt scenarios reproducing the paper's testbed experiments (§8.1).
//!
//! Each builder returns an [`Experiment`]: a configured simulator plus
//! flow labels, ready to `run()`. The same scenarios are used by the
//! examples, the integration tests and the figure-regenerating bench
//! binaries, so the numbers in `EXPERIMENTS.md` come from exactly this
//! code.

use crate::{Action, FlowSpec, SimConfig, Simulator};
use tagger_core::clos::clos_tagging;
use tagger_routing::Fib;
use tagger_switch::SwitchConfig;
use tagger_topo::{ClosConfig, FailureSet, NodeId, Topology};

/// A ready-to-run scenario.
pub struct Experiment {
    /// The configured simulator.
    pub sim: Simulator,
    /// Human labels for each flow, in handle order.
    pub labels: Vec<String>,
}

impl Experiment {
    /// Runs and returns the report (convenience).
    pub fn run(mut self) -> (crate::SimReport, Vec<String>) {
        (self.sim.run(), self.labels)
    }
}

/// Switch configuration used by the testbed reproductions: small
/// thresholds so PFC engages at the microsecond timescale of the
/// simulations (the paper's switches behave identically at the second
/// timescale of real traffic).
pub fn testbed_switch_config(num_lossless: u8) -> SwitchConfig {
    SwitchConfig {
        num_lossless,
        buffer_bytes: 12 * 1024 * 1024,
        xoff_bytes: 40_000,
        xon_bytes: 4_000,
        lossy_queue_bytes: 200_000,
        ecn_threshold_bytes: None,
    }
}

/// PFC reaction delay used by the testbed reproductions (µs-scale, like
/// real MAC + scheduling latency). Together with
/// [`testbed_switch_config`]'s thresholds this sits in the regime where a
/// cyclic buffer dependency actually *locks* rather than resolving into a
/// paced steady state — the same property the paper's hardware exhibits.
pub const TESTBED_PFC_DELAY_NS: u64 = 3_000;

fn testbed_sim(topo: &Topology, with_tagger: bool, bounces: usize, end_ns: u64) -> Simulator {
    let fib = Fib::shortest_path(topo, &FailureSet::none());
    let (rules, queues) = if with_tagger {
        let tagging = clos_tagging(topo, bounces).expect("clos fabric");
        (Some(tagging.rules().clone()), (bounces + 1) as u8)
    } else {
        (None, 1)
    };
    let cfg = SimConfig {
        switch: testbed_switch_config(queues),
        pfc_extra_delay_ns: TESTBED_PFC_DELAY_NS,
        end_time_ns: end_ns,
        ..SimConfig::default()
    };
    Simulator::new(topo.clone(), fib, rules, cfg)
}

fn names(topo: &Topology, path: &[&str]) -> Vec<NodeId> {
    path.iter().map(|n| topo.expect_node(n)).collect()
}

/// **Figure 10** — deadlock due to 1-bounce paths (the Figure 3
/// scenario): the blue flow (H1→H13) bounces at L3, the green flow
/// (H9→H1) bounces at L1; together they close the CBD
/// `L1 → S1 → L3 → S2 → L1`. Blue starts at t=0, green at 1/5 of the
/// horizon. Without Tagger both rates collapse to zero; with Tagger
/// (1-bounce ELP, 2 lossless queues) neither is affected.
pub fn fig10_bounce_deadlock(with_tagger: bool, end_ns: u64) -> Experiment {
    let topo = ClosConfig::small().build();
    let mut sim = testbed_sim(&topo, with_tagger, 1, end_ns);
    let blue_path = names(
        &topo,
        &["H1", "T1", "L1", "S1", "L3", "S2", "L4", "T4", "H13"],
    );
    let green_path = names(
        &topo,
        &["H9", "T3", "L3", "S2", "L1", "S1", "L2", "T1", "H1"],
    );
    let h1 = topo.expect_node("H1");
    let h13 = topo.expect_node("H13");
    let h9 = topo.expect_node("H9");
    sim.add_flow(FlowSpec::new(h1, h13, 0).pinned(blue_path));
    sim.add_flow(FlowSpec::new(h9, h1, end_ns / 5).pinned(green_path));
    Experiment {
        sim,
        labels: vec!["blue(H1->H13)".into(), "green(H9->H1)".into()],
    }
}

/// **Figure 11** — deadlock due to a routing loop: F1 (H1→H5) and F2
/// (H2→H6) run normally; at 1/5 of the horizon a bad route is installed
/// at L1 sending H5-bound traffic back to T1, closing a T1↔L1 forwarding
/// loop on F1. Without Tagger the loop's lossless packets create a
/// two-switch CBD that pauses F2 as well; with Tagger the looping
/// packets hairpin into the lossy class at L1 and F2 is untouched (F1's
/// goodput is zero either way — its packets die of TTL).
pub fn fig11_routing_loop(with_tagger: bool, end_ns: u64) -> Experiment {
    let topo = ClosConfig::small().build();
    let mut sim = testbed_sim(&topo, with_tagger, 1, end_ns);
    let h1 = topo.expect_node("H1");
    let h2 = topo.expect_node("H2");
    let h5 = topo.expect_node("H5");
    let h6 = topo.expect_node("H6");
    let t1 = topo.expect_node("T1");
    let l1 = topo.expect_node("L1");
    // F2 pinned through L1 so it shares the looping link.
    let f2_path = names(&topo, &["H2", "T1", "L1", "T2", "H6"]);
    sim.add_flow(FlowSpec::new(h1, h5, 0));
    sim.add_flow(FlowSpec::new(h2, h6, 0).pinned(f2_path));
    // The bad route: T1 sends H5 traffic up to L1; L1 sends it back down
    // to T1.
    let mut bad_fib = Fib::shortest_path(&topo, &FailureSet::none());
    bad_fib.set_override_towards(&topo, t1, h5, l1);
    bad_fib.set_override_towards(&topo, l1, h5, t1);
    sim.at(end_ns / 5, Action::ReplaceFib(bad_fib));
    Experiment {
        sim,
        labels: vec!["F1(H1->H5)".into(), "F2(H2->H6)".into()],
    }
}

/// **Figure 12** — PAUSE propagation from a deadlock: a 4-to-1 shuffle
/// (H9, H10, H13, H14 → H1) and a 1-to-4 shuffle (H5 → H2, H11, H15,
/// H16) run together; the H9→H1 and H5→H15 flows are pinned onto
/// 1-bounce paths that close a CBD. Without Tagger, PAUSE propagates
/// until **all eight** flows are frozen; with Tagger none are affected.
pub fn fig12_pause_propagation(with_tagger: bool, end_ns: u64) -> Experiment {
    let topo = ClosConfig::small().build();
    let mut sim = testbed_sim(&topo, with_tagger, 1, end_ns);
    let h = |n: &str| topo.expect_node(n);
    let mut labels = Vec::new();
    // All eight flows are pinned, mirroring the manually-set routing
    // tables of the paper's testbed. The two bouncing flows close the
    // CBD; the other six cross links the resulting pauses gate, so PAUSE
    // propagation freezes everything. The bouncing flows start first
    // (staggered — simultaneous ramp-up shares the bottleneck smoothly
    // and the race never trips) so the cycle locks before the shuffles
    // pile in; the paper's testbed reaches the same state with its own
    // timing.
    let second = end_ns / 10;
    let later = 2 * end_ns / 5;
    let routes: [(&str, &str, u64, &[&str]); 8] = [
        // 4-to-1 shuffle into H1; H9 takes the bouncing path at L1.
        (
            "H9",
            "H1",
            0,
            &["H9", "T3", "L3", "S2", "L1", "S1", "L2", "T1", "H1"],
        ),
        (
            "H10",
            "H1",
            later,
            &["H10", "T3", "L3", "S1", "L2", "T1", "H1"],
        ),
        (
            "H13",
            "H1",
            later,
            &["H13", "T4", "L4", "S2", "L1", "T1", "H1"],
        ),
        (
            "H14",
            "H1",
            later,
            &["H14", "T4", "L4", "S2", "L1", "T1", "H1"],
        ),
        // 1-to-4 shuffle out of H5; the H15 leg bounces at L3.
        (
            "H5",
            "H15",
            second,
            &["H5", "T2", "L1", "S1", "L3", "S2", "L4", "T4", "H15"],
        ),
        ("H5", "H2", later, &["H5", "T2", "L1", "T1", "H2"]),
        (
            "H5",
            "H11",
            later,
            &["H5", "T2", "L1", "S1", "L3", "T3", "H11"],
        ),
        (
            "H5",
            "H16",
            later,
            &["H5", "T2", "L1", "S1", "L4", "T4", "H16"],
        ),
    ];
    for (src, dst, start, path) in routes {
        sim.add_flow(FlowSpec::new(h(src), h(dst), start).pinned(names(&topo, path)));
        labels.push(format!("{src}->{dst}"));
    }
    Experiment { sim, labels }
}

/// One trial of the **failure sweep**: a random permutation workload on
/// the small Clos; at 1/4 of the horizon, `nfail` random switch-switch
/// links (seeded) die and the FIB degrades to stale-routes-with-local-
/// detours; at 3/4 routing reconverges. Returns the report.
///
/// The sweep over many seeds validates the headline guarantee
/// statistically: *without* Tagger some failure patterns deadlock the
/// fabric; *with* Tagger (1-bounce ELP) none ever do.
pub fn failure_trial(with_tagger: bool, seed: u64, nfail: usize, end_ns: u64) -> crate::SimReport {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let topo = ClosConfig::small().build();
    let mut sim = testbed_sim(&topo, with_tagger, 1, end_ns);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    // Random permutation traffic.
    let hosts: Vec<NodeId> = topo.host_ids().collect();
    let mut dsts = hosts.clone();
    loop {
        dsts.shuffle(&mut rng);
        if hosts.iter().zip(&dsts).all(|(a, b)| a != b) {
            break;
        }
    }
    for (s, d) in hosts.iter().zip(&dsts) {
        sim.add_flow(FlowSpec::new(*s, *d, 0));
    }

    // Random switch-switch link failures.
    let mut candidates: Vec<_> = topo
        .link_ids()
        .filter(|&l| {
            let link = topo.link(l);
            topo.node(link.a.node).kind == tagger_topo::NodeKind::Switch
                && topo.node(link.b.node).kind == tagger_topo::NodeKind::Switch
        })
        .collect();
    candidates.shuffle(&mut rng);
    let mut failures = FailureSet::none();
    for &l in candidates.iter().take(nfail) {
        failures.fail(l);
        sim.at(end_ns / 4, Action::FailLink { link: l });
    }
    sim.at(
        end_ns / 4,
        Action::ReplaceFib(Fib::local_reroute(&topo, &failures)),
    );
    sim.at(
        3 * end_ns / 4,
        Action::ReplaceFib(Fib::shortest_path(&topo, &failures)),
    );
    sim.run()
}

/// **BCube deadlock** (paper §5.3's substrate, simulated end to end):
/// four flows on BCube(2,1) whose mixed digit-correction orders close a
/// cyclic buffer dependency *through the forwarding servers*:
///
/// ```text
/// H1 → B0_0 → H0 → B1_0 → H2      H2 → B0_1 → H3 → B1_1 → H1
/// H0 → B1_0 → H2 → B0_1 → H3      H3 → B1_1 → H1 → B0_0 → H0
/// ```
///
/// Without Tagger (one lossless priority) the ring locks — server NIC
/// buffers are part of the CBD, which is why BCube needs per-level tags.
/// With the Tagger rules compiled from the multi-path ELP (2 lossless
/// priorities, rules installed on servers too) the same workload runs
/// deadlock-free and lossless.
pub fn bcube_ring(with_tagger: bool, end_ns: u64) -> Experiment {
    use tagger_core::{Elp, Tagging};
    use tagger_routing::bcube_paths;
    let cfg2 = tagger_topo::BCubeConfig { n: 2, k: 1 };
    let topo = tagger_topo::bcube(2, 1);
    let elp = Elp::from_paths(bcube_paths(&cfg2, &topo, true));
    let (rules, queues) = if with_tagger {
        let tagging = Tagging::from_elp(&topo, &elp).expect("pipeline");
        let n = tagging.num_lossless_tags_on(&topo) as u8;
        (Some(tagging.rules().clone()), n)
    } else {
        (None, 1)
    };
    let fib = Fib::shortest_path(&topo, &FailureSet::none());
    let cfg = SimConfig {
        switch: testbed_switch_config(queues),
        pfc_extra_delay_ns: TESTBED_PFC_DELAY_NS,
        end_time_ns: end_ns,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.clone(), fib, rules, cfg);
    let routes: [&[&str]; 4] = [
        &["H1", "B0_0", "H0", "B1_0", "H2"],
        &["H0", "B1_0", "H2", "B0_1", "H3"],
        &["H2", "B0_1", "H3", "B1_1", "H1"],
        &["H3", "B1_1", "H1", "B0_0", "H0"],
    ];
    let mut labels = Vec::new();
    for (i, r) in routes.iter().enumerate() {
        let path = names(&topo, r);
        // Staggered starts trip the locking race, as in Fig 12.
        sim.add_flow(
            FlowSpec::new(
                path[0],
                *path.last().expect("non-empty route"),
                i as u64 * end_ns / 20,
            )
            .pinned(path),
        );
        labels.push(format!("{}->{}", r[0], r[r.len() - 1]));
    }
    Experiment { sim, labels }
}

/// **DCQCN ablation** (paper §6 "PFC alternatives"): an 8-to-1 incast
/// into H1 with and without DCQCN-lite congestion control. DCQCN slashes
/// the PFC PAUSE count (rate control keeps queues below Xoff) at
/// comparable goodput — the "minimizing PFC generation" complement the
/// paper mentions. It does not replace Tagger: rate control reacts in
/// RTTs, transients are immediate, and production fleets running DCQCN
/// still saw deadlocks.
pub fn dcqcn_incast(with_dcqcn: bool, end_ns: u64) -> Experiment {
    let topo = ClosConfig::small().build();
    let fib = Fib::shortest_path(&topo, &FailureSet::none());
    let cfg = SimConfig {
        switch: SwitchConfig {
            ecn_threshold_bytes: with_dcqcn.then_some(30_000),
            ..testbed_switch_config(1)
        },
        pfc_extra_delay_ns: TESTBED_PFC_DELAY_NS,
        dcqcn: with_dcqcn.then(crate::DcqcnConfig::default),
        end_time_ns: end_ns,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.clone(), fib, None, cfg);
    let mut labels = Vec::new();
    for src in ["H5", "H6", "H7", "H8", "H9", "H10", "H13", "H14"] {
        sim.add_flow(FlowSpec::new(
            topo.expect_node(src),
            topo.expect_node("H1"),
            0,
        ));
        labels.push(format!("{src}->H1"));
    }
    Experiment { sim, labels }
}

/// **Recovery baseline** — the prior-work category the paper's §1
/// critiques: detect the deadlock, break it by flushing a queue. Runs
/// the Figure 10 workload *without* Tagger but with detect-and-break
/// recovery enabled, and with the green (bouncing) traffic arriving in
/// waves, as flows do in production. Every wave re-races the cycle:
/// the deadlock is broken, reforms on the next wave, is broken again …
/// — "these solutions do not address the root cause of the problem, and
/// hence cannot guarantee that the deadlock would not immediately
/// reappear" — and every break sacrifices lossless packets, violating
/// the very contract PFC exists to provide. With Tagger the same
/// workload needs zero recoveries (set `with_tagger`).
pub fn recovery_baseline(with_tagger: bool, end_ns: u64) -> Experiment {
    let topo = ClosConfig::small().build();
    let fib = Fib::shortest_path(&topo, &FailureSet::none());
    let (rules, queues) = if with_tagger {
        let tagging = clos_tagging(&topo, 1).expect("clos fabric");
        (Some(tagging.rules().clone()), 2)
    } else {
        (None, 1)
    };
    let cfg = SimConfig {
        switch: testbed_switch_config(queues),
        pfc_extra_delay_ns: TESTBED_PFC_DELAY_NS,
        end_time_ns: end_ns,
        recovery: !with_tagger,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.clone(), fib, rules, cfg);
    let blue = names(
        &topo,
        &["H1", "T1", "L1", "S1", "L3", "S2", "L4", "T4", "H13"],
    );
    let green = names(
        &topo,
        &["H9", "T3", "L3", "S2", "L1", "S1", "L2", "T1", "H1"],
    );
    let h1 = topo.expect_node("H1");
    let h13 = topo.expect_node("H13");
    let h9 = topo.expect_node("H9");
    sim.add_flow(FlowSpec::new(h1, h13, 0).pinned(blue.clone()));
    let mut labels = vec!["blue(H1->H13)".to_string()];
    // Green waves: each transfers ~5 MB starting at 1/5, 2/5, 3/5, 4/5
    // of the horizon, leaving gaps where blue returns to line rate — so
    // every wave re-creates the race that locks the cycle.
    for wave in 1..=4u64 {
        sim.add_flow(
            FlowSpec::new(h9, h1, wave * end_ns / 5)
                .pinned(green.clone())
                .with_limit(5_000_000),
        );
        labels.push(format!("green wave {wave}"));
    }
    Experiment { sim, labels }
}

/// **Transient failure** — the paper's §1/§3.2 narrative, end to end,
/// with *real* failure mechanics instead of pinned paths:
///
/// 1. a green flow (H9→H1) and a victim flow (H13→H6, descending
///    through the S1→L1 link) run normally;
/// 2. at 1/5 of the horizon the L1–T1 link dies. Routing has not
///    converged: switches run the pre-failure FIB patched only with
///    *local* detours ([`Fib::local_reroute`]), so green's packets
///    descend into L1 and ricochet back up — a transient forwarding
///    loop, exactly the §3.2 hazard;
/// 3. at 3/5 of the horizon routing reconverges (global shortest paths
///    avoiding the dead link) and green has a clean route again.
///
/// Without Tagger the ricocheting lossless packets deadlock the T1/L1/S1
/// neighborhood, the victim freezes, **and reconvergence does not help**
/// — "once a deadlock forms, it does not go away even after the
/// conditions that caused its formation have abated" (paper §1). With
/// Tagger the ricochets go lossy at the first hairpin, the victim never
/// notices, and green recovers the moment routing converges.
pub fn transient_failure(with_tagger: bool, end_ns: u64) -> Experiment {
    let topo = ClosConfig::small().build();
    let mut sim = testbed_sim(&topo, with_tagger, 1, end_ns);
    let h9 = topo.expect_node("H9");
    let h1 = topo.expect_node("H1");
    let h13 = topo.expect_node("H13");
    let h6 = topo.expect_node("H6");
    // Flow 0 (green): FIB-routed; its ECMP hash (= flow id 0) descends
    // through S1 into L1. Flow 1 (victim): pinned through the S1->L1
    // link the ricochets will choke; its own path never touches the
    // dead L1-T1 link.
    sim.add_flow(FlowSpec::new(h9, h1, 0));
    let victim_path = names(&topo, &["H13", "T4", "L4", "S1", "L1", "T2", "H6"]);
    sim.add_flow(FlowSpec::new(h13, h6, 0).pinned(victim_path));

    let dead = topo
        .link_between(topo.expect_node("L1"), topo.expect_node("T1"))
        .expect("adjacent");
    let mut failures = FailureSet::none();
    failures.fail(dead);
    let t_fail = end_ns / 5;
    let t_converge = 3 * end_ns / 5;
    sim.at(t_fail, Action::FailLink { link: dead });
    sim.at(
        t_fail,
        Action::ReplaceFib(Fib::local_reroute(&topo, &failures)),
    );
    sim.at(
        t_converge,
        Action::ReplaceFib(Fib::shortest_path(&topo, &failures)),
    );
    Experiment {
        sim,
        labels: vec!["green(H9->H1)".into(), "victim(H13->H6)".into()],
    }
}

/// **Transient failure, controller-driven** — the same §1/§3.2 reroute
/// scenario as [`transient_failure`], but with the Tagger tables managed
/// end-to-end by the [`tagger_ctrl::Controller`] instead of being
/// hand-wired:
///
/// 1. epoch 0: the controller bootstraps a verified tagging for the
///    healthy fabric (1-bounce ELP policy) and its tables are installed
///    wholesale before traffic starts;
/// 2. at 1/5 of the horizon the L1–T1 link dies. The data plane reacts
///    first (stale FIB with local detours — the transient-loop window);
///    the controller consumes the `LinkDown` event, stages a reroute
///    tagging against the failure-filtered ELP, verifies it, and
///    commits per-switch deltas;
/// 3. at 3/5 of the horizon routing reconverges and the committed
///    deltas are applied — an incremental install, not a full-table
///    reinstall.
///
/// Returns the experiment plus the controller's commit report for the
/// failure epoch, so callers can check the delta economy (deltas much
/// smaller than the tables they update) alongside the usual
/// no-deadlock / no-lossless-drop assertions.
///
/// # Panics
/// Panics if the controller cannot bootstrap or the `LinkDown` commit
/// rolls back — for the healthy small Clos both always succeed.
pub fn transient_failure_via_controller(end_ns: u64) -> (Experiment, tagger_ctrl::CommitReport) {
    use tagger_ctrl::{Controller, CtrlEvent, ElpPolicy};

    let topo = ClosConfig::small().build();
    let mut ctrl = Controller::new(topo.clone(), ElpPolicy::with_bounces(1))
        .expect("healthy small Clos bootstraps");
    let epoch0 = ctrl.committed().rules.clone();

    let dead = topo
        .link_between(topo.expect_node("L1"), topo.expect_node("T1"))
        .expect("adjacent");
    let report = ctrl
        .handle(&CtrlEvent::LinkDown(dead))
        .expect("valid link id")
        .committed()
        .cloned()
        .expect("single-link reroute commits");

    // Lossless queues must cover every priority either epoch can assign.
    let max_tag = |r: &tagger_core::RuleSet| r.max_tag().map_or(1, |t| t.0 as usize);
    let queues = max_tag(&epoch0).max(max_tag(&ctrl.committed().rules)) as u8;
    let cfg = SimConfig {
        switch: testbed_switch_config(queues),
        pfc_extra_delay_ns: TESTBED_PFC_DELAY_NS,
        end_time_ns: end_ns,
        ..SimConfig::default()
    };
    let fib = Fib::shortest_path(&topo, &FailureSet::none());
    let mut sim = Simulator::new(topo.clone(), fib, Some(epoch0), cfg);

    let h9 = topo.expect_node("H9");
    let h1 = topo.expect_node("H1");
    let h13 = topo.expect_node("H13");
    let h6 = topo.expect_node("H6");
    sim.add_flow(FlowSpec::new(h9, h1, 0));
    let victim_path = names(&topo, &["H13", "T4", "L4", "S1", "L1", "T2", "H6"]);
    sim.add_flow(FlowSpec::new(h13, h6, 0).pinned(victim_path));

    let mut failures = FailureSet::none();
    failures.fail(dead);
    let t_fail = end_ns / 5;
    let t_converge = 3 * end_ns / 5;
    sim.at(t_fail, Action::FailLink { link: dead });
    sim.at(
        t_fail,
        Action::ReplaceFib(Fib::local_reroute(&topo, &failures)),
    );
    sim.at(
        t_converge,
        Action::ReplaceFib(Fib::shortest_path(&topo, &failures)),
    );
    sim.at(t_converge, Action::ApplyRuleDeltas(report.deltas.clone()));
    (
        Experiment {
            sim,
            labels: vec!["green(H9->H1)".into(), "victim(H13->H6)".into()],
        },
        report,
    )
}

/// **Transient failure under a chaotic southbound** — the reroute of
/// [`transient_failure_via_controller`], but nothing between controller
/// and switches is reliable anymore: the failure epoch's deltas are
/// installed through a [`tagger_ctrl::ChaosSouthbound`] that refuses,
/// times out, and partially applies installs from a seeded schedule.
/// The controller retries with exponential backoff and enforces its
/// commit barrier, so the fleet ends the rollout on *exactly one*
/// verified epoch — the new one if every switch eventually acked, the
/// old one (rolled back) if a switch exhausted its attempt budget.
///
/// The simulation then runs whatever tables the chaotic rollout left on
/// the switches. The safety claim this experiment pins down: for **any**
/// seed, the victim flow sees no deadlock and no lossless drop — chaos
/// can delay the reroute's table update or abort it, but it can never
/// produce a mixed-epoch fabric, and both pure epochs carry Theorem 5.1
/// certificates.
///
/// Returns the experiment, the failure epoch's outcome, and the
/// controller metrics (retries, recorded backoff, rollback installs).
///
/// # Panics
/// Panics if the controller cannot bootstrap, or if the chaotic rollout
/// violates the barrier invariant (fleet != committed tables).
pub fn transient_failure_chaotic_controller(
    seed: u64,
    fail_rate: f64,
    end_ns: u64,
) -> (
    Experiment,
    tagger_ctrl::EpochOutcome,
    tagger_ctrl::ControllerMetrics,
) {
    use tagger_ctrl::{
        ChaosConfig, ChaosSouthbound, Controller, CtrlEvent, ElpPolicy, InstallPolicy, Southbound,
    };

    let topo = ClosConfig::small().build();
    let mut ctrl = Controller::new(topo.clone(), ElpPolicy::with_bounces(1))
        .expect("healthy small Clos bootstraps");
    let epoch0 = ctrl.committed().rules.clone();

    let mut sb = ChaosSouthbound::new(ChaosConfig::new(seed, fail_rate));
    sb.bootstrap(&epoch0);

    let dead = topo
        .link_between(topo.expect_node("L1"), topo.expect_node("T1"))
        .expect("adjacent");
    let outcome = ctrl
        .handle_via(
            &CtrlEvent::LinkDown(dead),
            &mut sb,
            &InstallPolicy::default(),
        )
        .expect("valid link id");
    // The barrier invariant this experiment exists to exercise: whatever
    // chaos did, the fleet runs exactly the committed (verified) tables.
    assert_eq!(
        sb.fleet(),
        &ctrl.committed().rules,
        "chaotic rollout left the fleet mixed-epoch (seed {seed})"
    );
    assert!(ctrl.committed().graph.verify().is_ok());
    let fleet_rules = sb.fleet().clone();

    let max_tag = |r: &tagger_core::RuleSet| r.max_tag().map_or(1, |t| t.0 as usize);
    let queues = max_tag(&epoch0).max(max_tag(&fleet_rules)) as u8;
    let cfg = SimConfig {
        switch: testbed_switch_config(queues),
        pfc_extra_delay_ns: TESTBED_PFC_DELAY_NS,
        end_time_ns: end_ns,
        ..SimConfig::default()
    };
    let fib = Fib::shortest_path(&topo, &FailureSet::none());
    let mut sim = Simulator::new(topo.clone(), fib, Some(epoch0), cfg);

    let h9 = topo.expect_node("H9");
    let h1 = topo.expect_node("H1");
    let h13 = topo.expect_node("H13");
    let h6 = topo.expect_node("H6");
    sim.add_flow(FlowSpec::new(h9, h1, 0));
    let victim_path = names(&topo, &["H13", "T4", "L4", "S1", "L1", "T2", "H6"]);
    sim.add_flow(FlowSpec::new(h13, h6, 0).pinned(victim_path));

    let mut failures = FailureSet::none();
    failures.fail(dead);
    let t_fail = end_ns / 5;
    let t_converge = 3 * end_ns / 5;
    sim.at(t_fail, Action::FailLink { link: dead });
    sim.at(
        t_fail,
        Action::ReplaceFib(Fib::local_reroute(&topo, &failures)),
    );
    sim.at(
        t_converge,
        Action::ReplaceFib(Fib::shortest_path(&topo, &failures)),
    );
    // The switches run what the chaotic rollout actually installed — not
    // what the controller wished for.
    sim.at(t_converge, Action::ReplaceRules(fleet_rules));
    (
        Experiment {
            sim,
            labels: vec!["green(H9->H1)".into(), "victim(H13->H6)".into()],
        },
        outcome,
        ctrl.metrics().clone(),
    )
}

/// **Figure 8** — priority-transition handling ablation.
///
/// Flow A rides a 1-bounce path (tag 1 → 2 at L1) into a bottleneck it
/// shares with flow B at T1→H1; PFC back-pressure for priority 1
/// eventually reaches L1. With the correct Fig. 8(b) behaviour (egress
/// queue = new tag) the PAUSE gates exactly the queue holding A's
/// rewritten packets and nothing is lost. With the default Fig. 8(a)
/// behaviour (egress queue = old tag) the PAUSE gates an empty queue, L1
/// keeps transmitting, and S1's lossless ingress overflows — lossless
/// packet drops, the failure the paper's implementation section exists
/// to prevent. The buffer is kept small so the overflow shows quickly.
pub fn fig8_priority_transition(correct: bool, end_ns: u64) -> Experiment {
    let topo = ClosConfig::small().build();
    let fib = Fib::shortest_path(&topo, &FailureSet::none());
    let tagging = clos_tagging(&topo, 1).expect("clos fabric");
    let cfg = SimConfig {
        switch: SwitchConfig {
            buffer_bytes: 150_000,
            ..testbed_switch_config(2)
        },
        pfc_extra_delay_ns: TESTBED_PFC_DELAY_NS,
        transition: if correct {
            tagger_switch::TransitionMode::EgressByNewTag
        } else {
            tagger_switch::TransitionMode::EgressByOldTag
        },
        end_time_ns: end_ns,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.clone(), fib, Some(tagging.rules().clone()), cfg);
    let a_path = names(
        &topo,
        &["H9", "T3", "L3", "S2", "L1", "S1", "L2", "T1", "H1"],
    );
    let h9 = topo.expect_node("H9");
    let h1 = topo.expect_node("H1");
    let h2 = topo.expect_node("H2");
    sim.add_flow(FlowSpec::new(h9, h1, 0).pinned(a_path));
    sim.add_flow(FlowSpec::new(h2, h1, 0));
    Experiment {
        sim,
        labels: vec!["A(H9->H1, bounce)".into(), "B(H2->H1)".into()],
    }
}

/// **Performance penalty** (§8, "Tagger imposes negligible performance
/// penalty"): a random permutation workload on the healthy fabric, with
/// or without Tagger. No failures, no bounces — Tagger only rewrites
/// DSCP, so goodput should be statistically identical.
pub fn perf_penalty(with_tagger: bool, seed: u64, end_ns: u64) -> Experiment {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let topo = ClosConfig::small().build();
    let mut sim = testbed_sim(&topo, with_tagger, 1, end_ns);
    let hosts: Vec<NodeId> = topo.host_ids().collect();
    let mut dsts = hosts.clone();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Derangement-ish: shuffle until no host sends to itself.
    loop {
        dsts.shuffle(&mut rng);
        if hosts.iter().zip(&dsts).all(|(a, b)| a != b) {
            break;
        }
    }
    let mut labels = Vec::new();
    for (src, dst) in hosts.iter().zip(&dsts) {
        sim.add_flow(FlowSpec::new(*src, *dst, 0));
        labels.push(format!(
            "{}->{}",
            topo.node(*src).name,
            topo.node(*dst).name
        ));
    }
    Experiment { sim, labels }
}

/// **Counterexample replay** — demonstrates a cyclic buffer dependency
/// found by an auditor in an *installed* rule table actually deadlocking.
///
/// Runs the given pinned flows against the audited `rules` (the suspect
/// tables themselves, not a known-good tagging) under the testbed PFC
/// regime, with the structural deadlock detector armed. The flows are
/// generated from the audit counterexample so that together they keep
/// every hop of the cyclic dependency loaded; if the cycle is real, the
/// PFC wait-for graph closes and `report.deadlock` carries the witness.
pub fn counterexample_replay(
    topo: &Topology,
    rules: &tagger_core::RuleSet,
    flows: Vec<(String, FlowSpec)>,
    end_ns: u64,
) -> Experiment {
    let fib = Fib::shortest_path(topo, &FailureSet::none());
    let num_lossless = rules.max_tag().map(|t| t.0 as u8).unwrap_or(1).max(1);
    let cfg = SimConfig {
        switch: testbed_switch_config(num_lossless),
        pfc_extra_delay_ns: TESTBED_PFC_DELAY_NS,
        end_time_ns: end_ns,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.clone(), fib, Some(rules.clone()), cfg);
    let mut labels = Vec::new();
    for (label, spec) in flows {
        sim.add_flow(spec);
        labels.push(label);
    }
    Experiment { sim, labels }
}

/// **Watchdog rescue** — the data-plane safety net in action. Same
/// setup as [`counterexample_replay`] (suspect rule tables, pinned
/// cycle-covering flows, testbed PFC regime) but with the per-queue PFC
/// watchdog armed when `watchdog` is `Some`. With the watchdog off the
/// cycle locks permanently; with it on, every stuck queue that the
/// structural detector confirms as cycle-resident trips within the
/// configured window and is drained (Drop) or demoted to lossy
/// (Demote, the paper's §4.4 escape hatch), after which the fabric
/// recovers. Feed the resulting report to [`quarantine_events`] to
/// close the loop into the controller.
pub fn watchdog_rescue(
    topo: &Topology,
    rules: &tagger_core::RuleSet,
    flows: Vec<(String, FlowSpec)>,
    watchdog: Option<tagger_switch::WatchdogConfig>,
    end_ns: u64,
) -> Experiment {
    let fib = Fib::shortest_path(topo, &FailureSet::none());
    let num_lossless = rules.max_tag().map(|t| t.0 as u8).unwrap_or(1).max(1);
    let cfg = SimConfig {
        switch: testbed_switch_config(num_lossless),
        pfc_extra_delay_ns: TESTBED_PFC_DELAY_NS,
        end_time_ns: end_ns,
        watchdog,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.clone(), fib, Some(rules.clone()), cfg);
    let mut labels = Vec::new();
    for (label, spec) in flows {
        sim.add_flow(spec);
        labels.push(label);
    }
    Experiment { sim, labels }
}

/// Maps a finished run's watchdog trips to controller events, one
/// [`CtrlEvent::WatchdogTrip`](tagger_ctrl::CtrlEvent::WatchdogTrip)
/// per distinct `(switch, port, priority)` — repeat trips of the same
/// queue (hold-down expiry, re-trip) collapse into the one quarantine
/// they would produce. Priority `p` carries tag `p + 1`, the inverse of
/// the tag→queue mapping the data plane uses.
///
/// When the run attributed an initial trigger, every trip of that
/// episode carries it as [`tagger_ctrl::TriggerInfo`] so the controller
/// quarantines the *cause*; runs without attribution produce exactly the
/// events they always did (victim-directed fallback).
pub fn quarantine_events(report: &crate::SimReport) -> Vec<tagger_ctrl::CtrlEvent> {
    let Some(wd) = &report.watchdog else {
        return Vec::new();
    };
    let trigger = wd.trigger.as_ref().map(|t| tagger_ctrl::TriggerInfo {
        switch: t.switch,
        port: t.port,
        tag: tagger_core::Tag(t.prio as u16 + 1),
    });
    let mut seen = std::collections::BTreeSet::new();
    let mut events = Vec::new();
    for t in &wd.trips {
        if seen.insert((t.switch, t.port, t.prio)) {
            events.push(tagger_ctrl::CtrlEvent::WatchdogTrip {
                switch: t.switch,
                port: t.port,
                tag: tagger_core::Tag(t.prio as u16 + 1),
                trigger,
            });
        }
    }
    events
}

/// **Incast false-positive guard** — the scenario a naive timeout-only
/// watchdog gets wrong: an 8-to-1 incast into H1 holds queues paused
/// well past the watchdog window, but no cyclic buffer dependency
/// exists. With cycle confirmation (a stuck queue only trips if the
/// structural detector places it on a CBD) the armed watchdog must
/// record *zero* trips here, no matter how heavy the congestion.
pub fn incast_false_positive_guard(window_ns: u64, end_ns: u64) -> Experiment {
    let topo = ClosConfig::small().build();
    let fib = Fib::shortest_path(&topo, &FailureSet::none());
    let cfg = SimConfig {
        switch: testbed_switch_config(1),
        pfc_extra_delay_ns: TESTBED_PFC_DELAY_NS,
        end_time_ns: end_ns,
        watchdog: Some(tagger_switch::WatchdogConfig::with_window(window_ns)),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.clone(), fib, None, cfg);
    let mut labels = Vec::new();
    for src in ["H5", "H6", "H7", "H8", "H9", "H10", "H13", "H14"] {
        sim.add_flow(FlowSpec::new(
            topo.expect_node(src),
            topo.expect_node("H1"),
            0,
        ));
        labels.push(format!("{src}->H1"));
    }
    Experiment { sim, labels }
}

/// The adversarial single-priority program (keep tag 1 across every
/// port pair): its dependency graph contains the Fig. 3 CBD. This is
/// the canonical "corrupted tables" input for the safety-net and
/// attribution drills — one lossless priority, no tag increments, so
/// any circular route can lock.
pub fn unsafe_identity_rules(topo: &Topology) -> tagger_core::RuleSet {
    let mut rules = tagger_core::RuleSet::new();
    for sw in topo.switch_ids() {
        let ports: Vec<_> = topo.neighbors(sw).map(|(p, _, _)| p).collect();
        for &i in &ports {
            for &o in &ports {
                if i != o {
                    rules
                        .add(
                            sw,
                            tagger_core::SwitchRule {
                                tag: tagger_core::Tag(1),
                                in_port: i,
                                out_port: o,
                                new_tag: tagger_core::Tag(1),
                            },
                        )
                        .expect("identity rule");
                }
            }
        }
    }
    rules
}

/// Pinned flows that together keep every hop of the Fig. 3 CBD
/// (`L1 → S1 → L3 → S2 → L1`) loaded; green starts at `end_ns / 5`.
pub fn cycle_flows(topo: &Topology, end_ns: u64) -> Vec<(String, FlowSpec)> {
    let blue = names(
        topo,
        &["H1", "T1", "L1", "S1", "L3", "S2", "L4", "T4", "H13"],
    );
    let green = names(
        topo,
        &["H9", "T3", "L3", "S2", "L1", "S1", "L2", "T1", "H1"],
    );
    vec![
        (
            "blue".to_string(),
            FlowSpec::new(blue[0], *blue.last().expect("non-empty path"), 0).pinned(blue),
        ),
        (
            "green".to_string(),
            FlowSpec::new(green[0], *green.last().expect("non-empty path"), end_ns / 5)
                .pinned(green),
        ),
    ]
}

/// `rules` minus every rule leaving `switch` through `port` — the
/// data-plane meaning of a controller quarantine of that hop. Packets
/// that would cross the masked hop stop matching in the tag table and
/// travel the lossy class instead, so the hop can no longer take part
/// in a PFC cycle (and no longer pauses its upstream).
pub fn mask_hop(
    rules: &tagger_core::RuleSet,
    switch: NodeId,
    port: tagger_topo::PortId,
) -> tagger_core::RuleSet {
    let mut masked = tagger_core::RuleSet::new();
    for (sw, rule) in rules.iter() {
        if sw == switch && rule.out_port == port {
            continue;
        }
        masked.set(sw, rule);
    }
    masked
}

/// **Two-cycle incast** — the cause-vs-victim recovery comparison at
/// the heart of trigger attribution. A persistent 4-to-1 incast into
/// H12 is pinned through `S1 → L3`, backing that hop up and making it
/// the ground-truth *initial trigger*. Two distinct CBDs then close
/// through the congested hop, in waves of limited flows:
///
/// * cycle A: `L1 → S1 → L3 → S2 → L1` (the Fig. 3 cycle), and
/// * cycle B: `S1 → L3 → S2 → L2 → S1`,
///
/// sharing the edges `S1 → L3` and `L3 → S2` but nothing else. The
/// armed watchdog detects and demotes each episode; the queue that
/// trips *first* (the victim a victim-directed controller would
/// quarantine) is a single-cycle edge, not the trigger.
///
/// At `end_ns / 2` the corrective fix lands: `ReplaceRules` with the
/// tables minus the rules through `mask` (see [`mask_hop`]), modelling
/// the controller quarantining that hop. A second wave then probes
/// whether the deadlock *re-forms*: masking the victim hop kills only
/// one cycle and the other re-locks (`episodes >= 2`); masking the
/// attributed trigger starves both cycles and the incast pressure
/// itself, and the fabric stays clean (`episodes == 1`). `mask: None`
/// runs the diagnosis pass that yields the victim and trigger hops.
pub fn incast_two_cycle(mask: Option<(NodeId, tagger_topo::PortId)>, end_ns: u64) -> Experiment {
    let topo = ClosConfig::small().build();
    let fib = Fib::shortest_path(&topo, &FailureSet::none());
    let rules = unsafe_identity_rules(&topo);
    let cfg = SimConfig {
        switch: testbed_switch_config(1),
        pfc_extra_delay_ns: TESTBED_PFC_DELAY_NS,
        // PAUSE refreshes keep long-lived gates alive and let the
        // `older()` combinator upgrade a queue's trigger claim to the
        // oldest one reachable — the in-band attribution mechanism.
        pause_quanta_ns: Some(20_000),
        end_time_ns: end_ns,
        watchdog: Some(tagger_switch::WatchdogConfig::with_window(200_000)),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.clone(), fib, Some(rules.clone()), cfg);
    let mut labels = Vec::new();

    // The persistent incast converges on H12 in two arms. The L4 arm
    // (H5, H7) starts first and parks a steady 40 Gb/s on T3's ingress
    // from L4, congesting S2 on the way (its pauses touch no cycle
    // edge). The L3 arm then ramps: H1 alone makes T3's ingress 2:1
    // oversubscribed, so T3 pauses `L3 -> T3` — which self-stamps the
    // *origin* claim of everything that follows. Once H2 joins, L3
    // itself is 2:1 oversubscribed and pauses `S1 -> L3`; its claim,
    // first stamped in the race with T3's pause, converges via PAUSE
    // refreshes onto `L3 -> T3`'s strictly older claim. The hop that
    // seeds every later cycle therefore carries a stamp inherited from
    // the congestion tree *outside* the cycle — exactly what the
    // attribution must surface.
    for (src, start, path) in [
        ("H5", 0, ["H5", "T2", "L1", "S2", "L4", "T3", "H12"]),
        ("H7", 0, ["H7", "T2", "L2", "S2", "L4", "T3", "H12"]),
        ("H1", 250_000, ["H1", "T1", "L1", "S1", "L3", "T3", "H12"]),
        ("H2", 350_000, ["H2", "T1", "L2", "S2", "L3", "T3", "H12"]),
    ] {
        let p = names(&topo, &path);
        sim.add_flow(FlowSpec::new(p[0], *p.last().expect("non-empty path"), start).pinned(p));
        labels.push(format!("incast({src}->H12)"));
    }

    // Limited cycle-covering flows, sent in two waves: wave 1 locks the
    // cycles before the fix, wave 2 probes re-formation after it.
    const WAVE_BYTES: u64 = 600_000;
    let wave_paths: [(&str, &[&str]); 5] = [
        // Cycle A (blue + green, the Fig. 10 pair on fresh hosts).
        (
            "blue",
            &["H3", "T1", "L1", "S1", "L3", "S2", "L4", "T4", "H13"],
        ),
        (
            "green",
            &["H10", "T3", "L3", "S2", "L1", "S1", "L2", "T1", "H4"],
        ),
        // Cycle B: w1 loads L3 -> S2 -> L2, r and r2 bounce through it.
        ("w1", &["H9", "T3", "L3", "S2", "L2", "T2", "H8"]),
        (
            "r",
            &["H13", "T4", "L4", "S2", "L2", "S1", "L3", "T3", "H9"],
        ),
        (
            "r2",
            &["H6", "T2", "L2", "S1", "L3", "S2", "L4", "T4", "H15"],
        ),
    ];
    for wave_start in [end_ns / 6, 3 * end_ns / 5] {
        for (label, path) in &wave_paths {
            let p = names(&topo, path);
            sim.add_flow(
                FlowSpec::new(p[0], *p.last().expect("non-empty path"), wave_start)
                    .pinned(p)
                    .with_limit(WAVE_BYTES),
            );
            labels.push(format!("{label}@{wave_start}"));
        }
    }

    // The corrective commit: quarantine `mask` (or re-install the same
    // tables, for the diagnosis pass) halfway through the horizon.
    let fixed = match mask {
        Some((sw, port)) => mask_hop(&rules, sw, port),
        None => rules,
    };
    sim.at(end_ns / 2, Action::ReplaceRules(fixed));

    Experiment { sim, labels }
}

/// **Routing-loop deadlock with the watchdog armed** — the Fig. 11
/// scenario (a T1 ↔ L1 forwarding loop filling both directions of the
/// link) run without Tagger but with the per-queue watchdog, so the
/// two-switch CBD is detected, attributed and demoted instead of
/// freezing F2 forever.
pub fn routing_loop_watchdog(window_ns: u64, end_ns: u64) -> Experiment {
    let mut exp = fig11_routing_loop(false, end_ns);
    exp.sim
        .arm_watchdog(tagger_switch::WatchdogConfig::with_window(window_ns));
    exp
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    const END: u64 = 4_000_000; // 4 ms

    #[test]
    fn fig10_without_tagger_deadlocks() {
        let (report, _) = fig10_bounce_deadlock(false, END).run();
        assert!(report.deadlock.is_some(), "expected deadlock");
        // Both flows frozen at the end.
        assert_eq!(report.stalled_flows(5), 2);
        assert_eq!(report.lossless_drops, 0); // PFC never drops, it freezes
    }

    #[test]
    fn counterexample_replay_deadlocks_on_unsafe_tables() {
        // Replaying flows that cover the cycle of the adversarial tables
        // must actually deadlock.
        let topo = ClosConfig::small().build();
        let rules = unsafe_identity_rules(&topo);
        let flows = cycle_flows(&topo, END);
        let (report, _) = counterexample_replay(&topo, &rules, flows.clone(), END).run();
        assert!(report.deadlock.is_some(), "unsafe tables must deadlock");

        // The same flows on the verified 1-bounce tagging stay live.
        let safe = clos_tagging(&topo, 1).unwrap();
        let (report, _) = counterexample_replay(&topo, safe.rules(), flows, END).run();
        assert!(report.deadlock.is_none());
    }

    #[test]
    fn watchdog_rescue_recovers_from_unsafe_tables() {
        let topo = ClosConfig::small().build();
        let rules = unsafe_identity_rules(&topo);
        let mut flows = cycle_flows(&topo, END);
        // An off-cycle lossless victim: H3→H4 stays under T2 and never
        // touches the CBD; recovery must not cost it a single packet.
        flows.push((
            "victim".to_string(),
            FlowSpec::new(topo.expect_node("H3"), topo.expect_node("H4"), 0),
        ));

        // Watchdog off: the cycle locks and stays locked.
        let (report, _) = watchdog_rescue(&topo, &rules, flows.clone(), None, END).run();
        assert!(report.deadlock.is_some(), "baseline must deadlock");
        assert!(report.watchdog.is_none());

        // Demote policy (default): confirmed stuck queues fall to lossy,
        // the cycle clears within two windows of the first trip, and the
        // off-cycle victim is untouched.
        let wd = tagger_switch::WatchdogConfig::with_window(200_000);
        let (report, labels) = watchdog_rescue(&topo, &rules, flows.clone(), Some(wd), END).run();
        let w = report.watchdog.clone().expect("watchdog report");
        assert!(w.stats.trips >= 1, "confirmed cycle must trip: {w:?}");
        let first = w.first_trip_at.expect("first trip time");
        let cleared = w.cleared_at.expect("cycle must clear after demotion");
        assert!(
            cleared - first <= 2 * wd.window_ns,
            "recovery took {} ns (> 2 windows)",
            cleared - first
        );
        assert!(
            w.stats.demoted_packets + w.stats.redirected_packets > 0,
            "demotion must move packets to lossy: {:?}",
            w.stats
        );
        let vic = labels.iter().position(|l| l == "victim").unwrap();
        assert_eq!(report.flows[vic].wd_drops, 0);
        assert!(report.flows[vic].delivered_bytes > 0);

        // The trips collapse into deduplicated controller quarantines.
        let events = quarantine_events(&report);
        assert!(!events.is_empty());
        assert!(events.len() as u64 <= w.stats.trips);

        // Drop policy: recovery by sacrifice — the drained packets are
        // accounted, and the cycle still clears.
        let wd = tagger_switch::WatchdogConfig::with_policy(
            200_000,
            tagger_switch::WatchdogPolicy::Drop,
        );
        let (report, _) = watchdog_rescue(&topo, &rules, flows, Some(wd), END).run();
        let w = report.watchdog.expect("watchdog report");
        assert!(w.stats.trips >= 1);
        assert!(w.cleared_at.is_some(), "drain must clear the cycle");
        assert!(w.stats.drained_packets > 0);
        let drained: u64 = report.flows.iter().map(|f| f.wd_drops).sum();
        assert_eq!(drained, w.stats.drained_packets, "per-flow attribution");
    }

    #[test]
    fn incast_guard_never_trips() {
        // Heavy 8-to-1 incast pauses queues far longer than the window,
        // but there is no cycle — confirmation must hold the trigger.
        let (report, _) = incast_false_positive_guard(200_000, END).run();
        let w = report.watchdog.clone().expect("watchdog report");
        assert_eq!(w.stats.trips, 0, "incast must never trip: {:?}", w.stats);
        assert!(w.trips.is_empty() && w.first_trip_at.is_none());
        assert!(report.pauses_sent > 0, "PFC must actually engage");
        assert!(report.deadlock.is_none());
        assert!(quarantine_events(&report).is_empty());
    }

    #[test]
    fn fig10_with_tagger_no_deadlock() {
        let (report, _) = fig10_bounce_deadlock(true, END).run();
        assert!(report.deadlock.is_none());
        assert_eq!(report.stalled_flows(5), 0);
        for f in &report.flows {
            assert!(f.tail_rate(5) > 10e9, "flow {} too slow", f.flow);
        }
        assert_eq!(report.lossless_drops, 0);
    }

    #[test]
    fn fig11_without_tagger_pauses_victim() {
        let (report, _) = fig11_routing_loop(false, END).run();
        // F2 (index 1) must be frozen by the loop-induced deadlock.
        assert!(report.flows[1].stalled(5), "F2 should be stalled");
        assert!(report.deadlock.is_some());
    }

    #[test]
    fn fig11_with_tagger_victim_unaffected() {
        let (report, _) = fig11_routing_loop(true, END).run();
        assert!(report.deadlock.is_none());
        let f2 = &report.flows[1];
        assert!(f2.tail_rate(5) > 5e9, "F2 rate {}", f2.tail_rate(5));
        // F1's packets loop and die of TTL (goodput ~0 after the loop).
        let f1 = &report.flows[0];
        assert_eq!(f1.tail_rate(3), 0.0);
        assert!(f1.ttl_drops > 0 || report.lossy_drops > 0);
    }

    #[test]
    fn fig12_without_tagger_freezes_all_eight() {
        let (report, _) = fig12_pause_propagation(false, END).run();
        assert!(report.deadlock.is_some());
        // All eight flows deliver nothing at the end; the two bouncing
        // flows additionally show the ran-then-stalled signature.
        assert_eq!(report.frozen_flows(5), 8, "all flows must freeze");
        assert!(report.stalled_flows(5) >= 2);
    }

    #[test]
    fn fig12_with_tagger_all_run() {
        let (report, _) = fig12_pause_propagation(true, END).run();
        assert!(report.deadlock.is_none());
        assert_eq!(report.frozen_flows(5), 0);
    }

    #[test]
    fn failure_sweep_tagger_never_deadlocks() {
        let mut vanilla_deadlocks = 0;
        for seed in 0..6u64 {
            let vanilla = failure_trial(false, seed, 2, 4_000_000);
            if vanilla.deadlock.is_some() {
                vanilla_deadlocks += 1;
            }
            let tagger = failure_trial(true, seed, 2, 4_000_000);
            assert!(
                tagger.deadlock.is_none(),
                "seed {seed} deadlocked with Tagger"
            );
            assert_eq!(
                tagger.frozen_flows(3),
                0,
                "seed {seed}: frozen flows with Tagger"
            );
            assert_eq!(tagger.lossless_drops, 0);
        }
        assert!(
            vanilla_deadlocks > 0,
            "the sweep should produce at least one vanilla deadlock"
        );
    }

    #[test]
    fn bcube_ring_deadlocks_without_tagger() {
        let (report, _) = bcube_ring(false, 8_000_000).run();
        assert!(report.deadlock.is_some(), "server-buffer CBD must lock");
        assert_eq!(report.frozen_flows(5), 4);
    }

    #[test]
    fn bcube_ring_with_tagger_runs_losslessly() {
        let (report, _) = bcube_ring(true, 8_000_000).run();
        assert!(report.deadlock.is_none());
        assert_eq!(report.frozen_flows(5), 0);
        assert_eq!(report.lossless_drops, 0);
        assert_eq!(report.lossy_drops, 0); // ELP covers every route
        for f in &report.flows {
            assert!(
                f.tail_rate(5) > 15e9,
                "flow {} at {}",
                f.flow,
                f.tail_rate(5)
            );
        }
    }

    #[test]
    fn dcqcn_slashes_pause_count_at_similar_goodput() {
        let (without, _) = dcqcn_incast(false, 5_000_000).run();
        let (with, _) = dcqcn_incast(true, 5_000_000).run();
        assert!(
            with.pauses_sent * 5 < without.pauses_sent,
            "expected >5x PAUSE reduction: {} vs {}",
            with.pauses_sent,
            without.pauses_sent
        );
        let ratio = with.aggregate_goodput_bps() / without.aggregate_goodput_bps();
        assert!(
            (0.85..1.15).contains(&ratio),
            "goodput ratio {ratio} out of range"
        );
        assert_eq!(with.lossless_drops, 0);
    }

    #[test]
    fn deadlock_persists_under_pause_quanta() {
        // Real PFC pauses expire unless refreshed; a CBD deadlock's
        // ingress never drains, so the refresh never stops and the
        // deadlock is just as permanent (paper §1: deadlocks are not
        // transient).
        let topo = ClosConfig::small().build();
        let fib = Fib::shortest_path(&topo, &FailureSet::none());
        let cfg = crate::SimConfig {
            switch: testbed_switch_config(1),
            pfc_extra_delay_ns: TESTBED_PFC_DELAY_NS,
            pause_quanta_ns: Some(50_000),
            end_time_ns: END,
            ..crate::SimConfig::default()
        };
        let mut sim = Simulator::new(topo.clone(), fib, None, cfg);
        let blue = names(
            &topo,
            &["H1", "T1", "L1", "S1", "L3", "S2", "L4", "T4", "H13"],
        );
        let green = names(
            &topo,
            &["H9", "T3", "L3", "S2", "L1", "S1", "L2", "T1", "H1"],
        );
        sim.add_flow(FlowSpec::new(blue[0], *blue.last().unwrap(), 0).pinned(blue.clone()));
        sim.add_flow(
            FlowSpec::new(green[0], *green.last().unwrap(), END / 5).pinned(green.clone()),
        );
        let report = sim.run();
        assert!(
            report.deadlock.is_some(),
            "deadlock must survive quanta expiry"
        );
        assert_eq!(report.frozen_flows(5), 2);
    }

    #[test]
    fn recovery_fires_repeatedly_without_tagger() {
        let (report, _) = recovery_baseline(false, 20_000_000).run();
        assert!(
            report.recoveries >= 2,
            "expected recurring deadlocks, got {} recoveries",
            report.recoveries
        );
        assert!(report.recovery_drops > 0, "recovery must sacrifice packets");
    }

    #[test]
    fn recovery_never_needed_with_tagger() {
        let (report, _) = recovery_baseline(true, 20_000_000).run();
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.recovery_drops, 0);
        assert!(report.deadlock.is_none());
    }

    #[test]
    fn transient_failure_via_controller_matches_hand_wired_tagger() {
        let (exp, commit) = transient_failure_via_controller(10_000_000);
        // The commit is a real incremental update: it touches tables,
        // but costs far less than withdrawing and reinstalling them.
        assert!(commit.switches_touched() > 0);
        assert!(
            commit.delta_ops() < commit.full_reinstall_ops(),
            "deltas ({} ops) must beat full reinstall ({} ops)",
            commit.delta_ops(),
            commit.full_reinstall_ops()
        );
        let (report, _) = exp.run();
        // Same safety outcome as the hand-wired Tagger run: no deadlock,
        // ricochets absorbed lossy, lossless class untouched, and both
        // flows back at line rate after the controller's tables land.
        assert!(report.deadlock.is_none());
        assert_eq!(report.lossless_drops, 0);
        assert_eq!(report.frozen_flows(5), 0);
        for f in &report.flows {
            assert!(
                f.tail_rate(5) > 35e9,
                "flow {} did not recover: {}",
                f.flow,
                f.tail_rate(5)
            );
        }
    }

    #[test]
    fn chaotic_reroute_is_safe_for_every_seed() {
        let mut aborted = 0;
        let mut retried = 0;
        for seed in 0..5u64 {
            let (exp, outcome, metrics) =
                transient_failure_chaotic_controller(seed, 0.4, 10_000_000);
            if outcome.committed().is_none() {
                aborted += 1;
            }
            if metrics.install_retries > 0 {
                retried += 1;
            }
            let (report, _) = exp.run();
            // The safety floor chaos cannot lower: no deadlock, no
            // lossless drop, the victim never freezes.
            assert!(report.deadlock.is_none(), "seed {seed} deadlocked");
            assert_eq!(report.lossless_drops, 0, "seed {seed} dropped lossless");
            assert!(
                !report.flows[1].stalled(5),
                "seed {seed}: victim flow froze"
            );
        }
        assert!(
            retried > 0,
            "40% chaos over 5 seeds must force at least one retry"
        );
        // Aborted epochs (if any) are safe too — that is the point — but
        // the default 5-attempt budget rides out most 40% schedules.
        assert!(aborted <= 5);
    }

    #[test]
    fn transient_failure_deadlock_survives_reconvergence_without_tagger() {
        let (report, _) = transient_failure(false, 10_000_000).run();
        assert!(report.deadlock.is_some());
        // Routing reconverged at 6 ms, yet both flows stay frozen to the
        // end — the paper's §1 persistence claim.
        assert_eq!(report.frozen_flows(10), 2);
    }

    #[test]
    fn transient_failure_with_tagger_recovers() {
        let (report, _) = transient_failure(true, 10_000_000).run();
        assert!(report.deadlock.is_none());
        // The ricocheting packets were absorbed by the lossy class...
        assert!(report.lossy_drops > 0);
        assert_eq!(report.lossless_drops, 0);
        // ...the victim was never frozen, and both flows are back at
        // line rate after reconvergence.
        for f in &report.flows {
            assert!(
                f.tail_rate(5) > 35e9,
                "flow {} did not recover: {}",
                f.flow,
                f.tail_rate(5)
            );
        }
    }

    #[test]
    fn fig8_correct_transition_never_drops() {
        let (report, _) = fig8_priority_transition(true, END).run();
        assert_eq!(report.lossless_drops, 0);
        // Flow A still makes progress under PFC back-pressure.
        assert!(report.flows[0].tail_rate(5) > 1e9);
    }

    #[test]
    fn fig8_old_tag_transition_drops_lossless() {
        let (report, _) = fig8_priority_transition(false, END).run();
        assert!(
            report.lossless_drops > 0,
            "expected lossless drops from the Fig 8(a) bug"
        );
    }

    #[test]
    fn perf_penalty_parity() {
        let (with, _) = perf_penalty(true, 42, END).run();
        let (without, _) = perf_penalty(false, 42, END).run();
        assert!(with.deadlock.is_none());
        assert!(without.deadlock.is_none());
        let a = with.aggregate_goodput_bps();
        let b = without.aggregate_goodput_bps();
        let penalty = (b - a) / b;
        assert!(
            penalty.abs() < 0.02,
            "tagger penalty {penalty:.3} exceeds 2% (with={a:.3e}, without={b:.3e})"
        );
    }

    #[test]
    fn attribution_matches_ground_truth_on_bounce_deadlock() {
        let topo = ClosConfig::small().build();
        let rules = unsafe_identity_rules(&topo);
        let flows = cycle_flows(&topo, END);
        let wd = tagger_switch::WatchdogConfig::with_window(200_000);
        let (report, _) = watchdog_rescue(&topo, &rules, flows, Some(wd), END).run();
        let w = report.watchdog.expect("watchdog report");
        assert!(w.stats.trips >= 1);
        let trig = w
            .trigger
            .clone()
            .expect("confirmed cycle must be attributed");
        assert!(
            trig.matches_ground_truth,
            "attribution disagrees with the pause-log ground truth: {trig:?}"
        );
        assert!(trig.scc.contains(&trig.queue()));
        assert_eq!(w.episodes, 1);
        let ttd = w.time_to_detect().expect("detect after trigger pause");
        assert!(ttd > 0, "detection cannot precede the trigger pause");
    }

    #[test]
    fn attribution_matches_ground_truth_on_routing_loop() {
        let (report, _) = routing_loop_watchdog(200_000, END).run();
        let w = report.watchdog.expect("watchdog report");
        assert!(w.stats.trips >= 1, "loop CBD must trip: {:?}", w.stats);
        let trig = w.trigger.expect("confirmed loop must be attributed");
        assert!(
            trig.matches_ground_truth,
            "attribution disagrees with the pause-log ground truth: {trig:?}"
        );
        assert!(trig.scc.contains(&trig.queue()));
        // The loop fills T1 <-> L1 in both directions; the trigger must
        // name one of the loop's own queues.
        let topo = ClosConfig::small().build();
        let t1 = topo.expect_node("T1");
        let l1 = topo.expect_node("L1");
        assert!(
            trig.switch == t1 || trig.switch == l1,
            "trigger {trig:?} outside the forwarding loop"
        );
    }

    /// The tentpole regression: cause-directed recovery (quarantine the
    /// attributed trigger hop) prevents the deadlock from re-forming
    /// where victim-directed recovery (quarantine the first-tripped
    /// queue) does not — on the two-cycle incast scenario where the
    /// trigger and the victim are different hops.
    #[test]
    fn cause_directed_recovery_prevents_cycle_reformation() {
        const E: u64 = 12_000_000;
        let topo = ClosConfig::small().build();
        let s1 = topo.expect_node("S1");
        let l3 = topo.expect_node("L3");
        let s1_to_l3 = topo.port_towards(s1, l3).unwrap();

        // Diagnosis pass (no fix): the watchdog detects, attributes the
        // incast-congested hop, and the second wave re-locks.
        let (diag, _) = incast_two_cycle(None, E).run();
        let wd = diag.watchdog.clone().expect("watchdog armed");
        let trig = wd.trigger.clone().expect("episode must be attributed");
        assert!(
            trig.matches_ground_truth,
            "attribution disagrees with the pause-log ground truth: {trig:?}"
        );
        assert_eq!(
            trig.queue(),
            (s1, s1_to_l3, 0),
            "the incast-congested hop S1->L3 is the ground-truth trigger"
        );
        assert!(
            trig.hops >= 1,
            "the trigger pause is inherited from the incast tree outside the cycle: {trig:?}"
        );
        let ttd = wd.time_to_detect().expect("detect after trigger pause");
        assert!(ttd > 0);
        let victim = *wd.trips.first().expect("episode must trip");
        assert_ne!(
            (victim.switch, victim.port),
            (trig.switch, trig.port),
            "the first-tripped victim must differ from the trigger for the comparison"
        );
        assert!(
            wd.episodes >= 2,
            "without a fix the second wave must re-lock, got {} episode(s)",
            wd.episodes
        );

        // Victim-directed: masking the first-tripped hop kills only the
        // cycle it sits on; the other re-forms on the second wave.
        let (vic, _) = incast_two_cycle(Some((victim.switch, victim.port)), E).run();
        let wv = vic.watchdog.expect("watchdog armed");
        assert!(
            wv.episodes >= 2,
            "victim-directed recovery must let the deadlock re-form, got {} episode(s)",
            wv.episodes
        );

        // Cause-directed: masking the attributed trigger hop starves
        // both cycles and the incast pressure itself.
        let mut cause = incast_two_cycle(Some((trig.switch, trig.port)), E);
        let report = cause.sim.run();
        let wc = report.watchdog.expect("watchdog armed");
        assert_eq!(
            wc.episodes, 1,
            "cause-directed recovery must prevent re-formation"
        );

        // No stale attribution in lossy traffic: every packet parked in
        // a lossy queue at the end carries no trigger stamp.
        let nodes: Vec<NodeId> = cause.sim.topo().node_ids().collect();
        for n in nodes {
            let sw = cause.sim.switch_state(n).expect("switch state");
            for qp in sw.queued_packets() {
                if qp.egress_queue >= 1 {
                    assert!(
                        qp.packet.trigger.is_none(),
                        "lossy packet at {n:?} holds a stale trigger stamp"
                    );
                }
            }
        }
    }
}
