//! Aggregated results of a simulation run.

use crate::deadlock::DeadlockReport;
use crate::event::SimTime;
use crate::flow::FlowReport;
use tagger_switch::WatchdogStats;
use tagger_topo::{NodeId, PortId};

/// One PFC-watchdog trip: the queue whose lossless service was suspended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogTripRecord {
    /// Time of the trip.
    pub at: SimTime,
    /// Switch owning the tripped queue.
    pub switch: NodeId,
    /// Egress port of the tripped queue.
    pub port: PortId,
    /// Lossless priority (= queue index) that tripped.
    pub prio: u8,
    /// True if the queue's own trigger attribution named itself as the
    /// episode origin at trip time ("I started this"); false when the
    /// pause was inherited from downstream — the victim trips that
    /// cause-directed recovery redirects.
    pub origin: bool,
}

/// DCFIT-style initial-trigger attribution for a deadlock episode: the
/// cycle member through which the pause storm entered, identified as the
/// SCC queue holding the *oldest* in-band pause claim (fewest relay hops
/// on ties) and cross-checked against the simulator's independent
/// first-pause log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriggerAttribution {
    /// Switch owning the trigger queue.
    pub switch: NodeId,
    /// Egress port of the trigger queue.
    pub port: PortId,
    /// Lossless priority of the trigger queue.
    pub prio: u8,
    /// Epoch of the pause claim the trigger queue held: when the
    /// *origin* of its claim entered PAUSE — the onset of the pause
    /// condition that seeded the episode (claims survive origin flaps
    /// via the `older()` refresh combinator).
    pub pause_epoch: SimTime,
    /// Hop count of the stamp the trigger queue held: 0 means the queue
    /// originated its own pause; >0 means it inherited pause from a
    /// queue *outside* the cycle (e.g. the incast tree below it) before
    /// the cycle closed through it.
    pub hops: u8,
    /// When the attribution was computed (the first watchdog tick with
    /// a confirmed SCC) — always at or before the first trip.
    pub attributed_at: SimTime,
    /// Cross-check against the simulator's independently tracked pause
    /// log: the claim's origin really entered pause at the claimed
    /// epoch, and no SCC member's surviving pause bout predates the
    /// claim (nothing the claim fails to explain seeded the cycle).
    pub matches_ground_truth: bool,
    /// The confirmed SCC membership at attribution time.
    pub scc: Vec<(NodeId, PortId, u8)>,
}

impl TriggerAttribution {
    /// The attributed queue as a `(switch, port, prio)` triple.
    pub fn queue(&self) -> (NodeId, PortId, u8) {
        (self.switch, self.port, self.prio)
    }

    /// Attribution latency: from the trigger's pause entry to the tick
    /// that produced this attribution.
    pub fn time_to_attribute(&self) -> SimTime {
        self.attributed_at.saturating_sub(self.pause_epoch)
    }
}

/// What the PFC watchdog did over a run (present only when armed).
#[derive(Clone, Debug, Default)]
pub struct WatchdogReport {
    /// Aggregate counters across every switch and queue.
    pub stats: WatchdogStats,
    /// Every trip, in time order.
    pub trips: Vec<WatchdogTripRecord>,
    /// Time of the first trip, if any.
    pub first_trip_at: Option<SimTime>,
    /// First watchdog poll after a trip at which the wait-for graph held
    /// no confirmed cycle — the bounded-recovery timestamp.
    pub cleared_at: Option<SimTime>,
    /// Initial-trigger attribution of the first deadlock episode, if
    /// one was confirmed.
    pub trigger: Option<TriggerAttribution>,
    /// Distinct deadlock episodes: confirmed-SCC empty→non-empty
    /// transitions across watchdog ticks. 2+ means a cycle re-formed
    /// after recovery.
    pub episodes: u64,
}

impl WatchdogReport {
    /// Detection latency: from the attributed trigger's pause entry to
    /// the first trip. `None` without both an attribution and a trip.
    pub fn time_to_detect(&self) -> Option<SimTime> {
        let t = self.trigger.as_ref()?;
        Some(self.first_trip_at?.saturating_sub(t.pause_epoch))
    }
}

/// Everything a simulation run produced.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Per-flow results, in flow-handle order.
    pub flows: Vec<FlowReport>,
    /// First persistent deadlock detected, if any.
    pub deadlock: Option<DeadlockReport>,
    /// Total PFC PAUSE frames emitted across all switches.
    pub pauses_sent: u64,
    /// Total lossy tail drops.
    pub lossy_drops: u64,
    /// Total lossless drops (0 unless thresholds/transition are broken).
    pub lossless_drops: u64,
    /// Packets dropped for lack of a route (blackholes).
    pub no_route_drops: u64,
    /// Times the detect-and-break recovery fired (0 unless
    /// [`crate::SimConfig::recovery`] is on).
    pub recoveries: u64,
    /// Lossless packets sacrificed by recovery flushes.
    pub recovery_drops: u64,
    /// Packets flushed from interfaces that lost carrier (link failures).
    pub link_down_drops: u64,
    /// PFC-watchdog activity; `None` when no watchdog was configured.
    pub watchdog: Option<WatchdogReport>,
    /// Sampled byte depths of the queues named in
    /// [`crate::SimConfig::track_queues`]: one row per sample tick, one
    /// column per tracked queue.
    pub queue_series: Vec<Vec<u64>>,
    /// Simulation horizon.
    pub end_time_ns: SimTime,
    /// Sample interval used for the rate series.
    pub sample_interval_ns: SimTime,
    /// Events the run loop dispatched — the denominator for events/sec
    /// benchmarking (`BENCH_scenarios.json`).
    pub events_processed: u64,
}

impl SimReport {
    /// Sum of delivered bytes over all flows.
    pub fn total_delivered_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.delivered_bytes).sum()
    }

    /// Mean aggregate goodput over the whole run, bits/s.
    pub fn aggregate_goodput_bps(&self) -> f64 {
        self.total_delivered_bytes() as f64 * 8.0 / (self.end_time_ns as f64 / 1e9)
    }

    /// Number of flows whose goodput is zero over the last `n` samples
    /// despite having run before — the deadlock victim count.
    pub fn stalled_flows(&self, n: usize) -> usize {
        self.flows.iter().filter(|f| f.stalled(n)).count()
    }

    /// Number of flows delivering nothing over the last `n` samples,
    /// including flows frozen from birth by PAUSE propagation.
    pub fn frozen_flows(&self, n: usize) -> usize {
        self.flows.iter().filter(|f| f.frozen(n)).count()
    }

    /// Renders per-flow rate series as a TSV table (time in µs, rates in
    /// Gb/s) — what the bench binaries print for the paper's figures.
    pub fn rates_tsv(&self, labels: &[&str]) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("time_us");
        for (i, f) in self.flows.iter().enumerate() {
            let label = labels.get(i).copied().unwrap_or("");
            if label.is_empty() {
                let _ = write!(out, "\tflow{}", f.flow);
            } else {
                let _ = write!(out, "\t{label}");
            }
        }
        out.push('\n');
        let samples = self
            .flows
            .iter()
            .map(|f| f.rate_series.len())
            .max()
            .unwrap_or(0);
        for s in 0..samples {
            let t_us = (s as u64 + 1) * self.sample_interval_ns / 1_000;
            let _ = write!(out, "{t_us}");
            for f in &self.flows {
                let rate = f.rate_series.get(s).copied().unwrap_or(0.0) / 1e9;
                let _ = write!(out, "\t{rate:.2}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagger_topo::NodeId;

    fn flow(rates: Vec<f64>, delivered: u64) -> FlowReport {
        FlowReport {
            flow: 0,
            src: NodeId(0),
            dst: NodeId(1),
            delivered_bytes: delivered,
            delivered_packets: delivered / 1000,
            ttl_drops: 0,
            wd_drops: 0,
            rate_series: rates,
        }
    }

    #[test]
    fn aggregate_math() {
        let r = SimReport {
            flows: vec![flow(vec![1e9; 4], 1_000_000), flow(vec![2e9; 4], 2_000_000)],
            deadlock: None,
            pauses_sent: 0,
            lossy_drops: 0,
            lossless_drops: 0,
            no_route_drops: 0,
            recoveries: 0,
            recovery_drops: 0,
            link_down_drops: 0,
            watchdog: None,
            queue_series: Vec::new(),
            end_time_ns: 1_000_000,
            sample_interval_ns: 250_000,
            events_processed: 0,
        };
        assert_eq!(r.total_delivered_bytes(), 3_000_000);
        assert!((r.aggregate_goodput_bps() - 24e9).abs() < 1e6);
        assert_eq!(r.stalled_flows(2), 0);
    }

    #[test]
    fn tsv_has_header_and_rows() {
        let r = SimReport {
            flows: vec![flow(vec![40e9, 0.0], 1000)],
            deadlock: None,
            pauses_sent: 0,
            lossy_drops: 0,
            lossless_drops: 0,
            no_route_drops: 0,
            recoveries: 0,
            recovery_drops: 0,
            link_down_drops: 0,
            watchdog: None,
            queue_series: Vec::new(),
            end_time_ns: 200_000,
            sample_interval_ns: 100_000,
            events_processed: 0,
        };
        let tsv = r.rates_tsv(&["green"]);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "time_us\tgreen");
        assert_eq!(lines[1], "100\t40.00");
        assert_eq!(lines[2], "200\t0.00");
    }
}
