//! Simulation time and the deterministic event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tagger_switch::{Packet, PfcFrame};
use tagger_topo::GlobalPort;

/// Simulation time in nanoseconds since start.
pub type SimTime = u64;

/// One nanosecond-scale event.
#[derive(Clone, Debug)]
pub(crate) enum Ev {
    /// A packet finished arriving at `port` (fully received).
    Arrive {
        /// Receiving port.
        port: GlobalPort,
        /// The packet, tag as sent by the upstream node.
        packet: Packet,
    },
    /// The transmitter on `port` finished serializing its current packet.
    TxEnd {
        /// Sending port.
        port: GlobalPort,
    },
    /// A PFC frame arrives at `port`.
    Pfc {
        /// Receiving port.
        port: GlobalPort,
        /// The frame.
        frame: PfcFrame,
    },
    /// Poke the transmitter on `port` (flow start, unpause, etc.).
    Kick {
        /// Port to poke.
        port: GlobalPort,
    },
    /// A received PAUSE's quanta ran out: ungate unless refreshed since.
    PfcExpire {
        /// Gated port.
        port: GlobalPort,
        /// Priority.
        prio: u8,
        /// The deadline this event was scheduled for (stale events are
        /// ignored when a refresh moved the deadline).
        deadline: SimTime,
    },
    /// The pausing side re-asserts an outstanding PAUSE (real PFC
    /// refreshes before the quanta expires).
    PfcRefresh {
        /// The congested ingress port (pause destination = its peer).
        port: GlobalPort,
        /// Priority.
        prio: u8,
    },
    /// A congestion-notification packet reaches a flow's source NIC.
    Cnp {
        /// The congested flow.
        flow: u32,
    },
    /// Periodic DCQCN additive-increase tick for one flow.
    RateTick {
        /// The flow.
        flow: u32,
    },
    /// Periodic statistics sample.
    Sample,
    /// Periodic PFC-watchdog poll (finer-grained than `Sample`, present
    /// only when a watchdog is configured).
    WatchdogTick,
    /// Run the scripted action with this index.
    RunAction {
        /// Index into the simulator's action list.
        index: usize,
    },
}

/// Min-heap event queue ordered by `(time, sequence)` — the sequence
/// number makes simultaneous events fire in insertion order, keeping runs
/// fully deterministic.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, EvBox)>>,
    seq: u64,
}

/// Wrapper giving `Ev` total order by sequence only (never compared).
#[derive(Clone, Debug)]
pub(crate) struct EvBox(pub Ev);

impl PartialEq for EvBox {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for EvBox {}
impl PartialOrd for EvBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EvBox {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl EventQueue {
    pub fn push(&mut self, at: SimTime, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, EvBox(ev))));
    }

    pub fn pop(&mut self) -> Option<(SimTime, Ev)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e.0))
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagger_topo::{NodeId, PortId};

    fn kick(n: u32) -> Ev {
        Ev::Kick {
            port: GlobalPort::new(NodeId(n), PortId(0)),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::default();
        q.push(30, kick(3));
        q.push(10, kick(1));
        q.push(20, kick(2));
        let order: Vec<SimTime> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::default();
        q.push(5, kick(1));
        q.push(5, kick(2));
        q.push(5, kick(3));
        let mut ids = Vec::new();
        while let Some((_, Ev::Kick { port })) = q.pop() {
            ids.push(port.node.0);
        }
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::default();
        assert!(q.is_empty());
        q.push(1, Ev::Sample);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
