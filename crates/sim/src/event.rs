//! Simulation time and the deterministic event queue.

use crate::queue::{BinaryHeapQueue, TimingWheel};
use tagger_switch::{Packet, PfcFrame};
use tagger_topo::GlobalPort;

/// Simulation time in nanoseconds since start.
pub type SimTime = u64;

/// One nanosecond-scale event.
#[derive(Clone, Debug)]
pub(crate) enum Ev {
    /// A packet finished arriving at `port` (fully received).
    Arrive {
        /// Receiving port.
        port: GlobalPort,
        /// The packet, tag as sent by the upstream node.
        packet: Packet,
    },
    /// The transmitter on `port` finished serializing its current packet.
    TxEnd {
        /// Sending port.
        port: GlobalPort,
    },
    /// A PFC frame arrives at `port`.
    Pfc {
        /// Receiving port.
        port: GlobalPort,
        /// The frame.
        frame: PfcFrame,
    },
    /// Poke the transmitter on `port` (flow start, unpause, etc.).
    Kick {
        /// Port to poke.
        port: GlobalPort,
    },
    /// A received PAUSE's quanta ran out: ungate unless refreshed since.
    PfcExpire {
        /// Gated port.
        port: GlobalPort,
        /// Priority.
        prio: u8,
        /// The deadline this event was scheduled for (stale events are
        /// ignored when a refresh moved the deadline).
        deadline: SimTime,
    },
    /// The pausing side re-asserts an outstanding PAUSE (real PFC
    /// refreshes before the quanta expires).
    PfcRefresh {
        /// The congested ingress port (pause destination = its peer).
        port: GlobalPort,
        /// Priority.
        prio: u8,
    },
    /// A congestion-notification packet reaches a flow's source NIC.
    Cnp {
        /// The congested flow.
        flow: u32,
    },
    /// Periodic DCQCN additive-increase tick for one flow.
    RateTick {
        /// The flow.
        flow: u32,
    },
    /// Periodic statistics sample.
    Sample,
    /// Periodic PFC-watchdog poll (finer-grained than `Sample`, present
    /// only when a watchdog is configured).
    WatchdogTick,
    /// Run the scripted action with this index.
    RunAction {
        /// Index into the simulator's action list.
        index: usize,
    },
}

/// Which backend the event queue runs on. Both are deterministic and
/// produce identical event orderings (pinned by a property test); the
/// wheel is the fast default, the heap the reference baseline kept for
/// before/after benchmarking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueKind {
    /// Hierarchical timing wheel (O(1) amortised push/pop) — default.
    #[default]
    TimingWheel,
    /// `BinaryHeap` reference implementation (O(log n) push/pop).
    BinaryHeap,
}

impl QueueKind {
    /// Stable label used in benches and reports.
    pub fn label(&self) -> &'static str {
        match self {
            QueueKind::TimingWheel => "timing-wheel",
            QueueKind::BinaryHeap => "binary-heap",
        }
    }
}

/// Event queue ordered by `(time, sequence)` — the sequence number makes
/// simultaneous events fire in insertion order, keeping runs fully
/// deterministic whichever backend is selected.
#[derive(Debug)]
pub(crate) enum EventQueue {
    Wheel(TimingWheel<Ev>),
    Heap(BinaryHeapQueue<Ev>),
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new(QueueKind::default())
    }
}

impl EventQueue {
    pub fn new(kind: QueueKind) -> EventQueue {
        match kind {
            QueueKind::TimingWheel => EventQueue::Wheel(TimingWheel::default()),
            QueueKind::BinaryHeap => EventQueue::Heap(BinaryHeapQueue::default()),
        }
    }

    pub fn push(&mut self, at: SimTime, ev: Ev) {
        match self {
            EventQueue::Wheel(q) => q.push(at, ev),
            EventQueue::Heap(q) => q.push(at, ev),
        }
    }

    pub fn pop(&mut self) -> Option<(SimTime, Ev)> {
        match self {
            EventQueue::Wheel(q) => q.pop(),
            EventQueue::Heap(q) => q.pop(),
        }
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        match self {
            EventQueue::Wheel(q) => q.is_empty(),
            EventQueue::Heap(q) => q.is_empty(),
        }
    }

    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(q) => q.len(),
            EventQueue::Heap(q) => q.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagger_topo::{NodeId, PortId};

    fn kick(n: u32) -> Ev {
        Ev::Kick {
            port: GlobalPort::new(NodeId(n), PortId(0)),
        }
    }

    #[test]
    fn pops_in_time_order() {
        for kind in [QueueKind::TimingWheel, QueueKind::BinaryHeap] {
            let mut q = EventQueue::new(kind);
            q.push(30, kick(3));
            q.push(10, kick(1));
            q.push(20, kick(2));
            let order: Vec<SimTime> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
            assert_eq!(order, vec![10, 20, 30], "{}", kind.label());
        }
    }

    #[test]
    fn simultaneous_events_fifo() {
        for kind in [QueueKind::TimingWheel, QueueKind::BinaryHeap] {
            let mut q = EventQueue::new(kind);
            q.push(5, kick(1));
            q.push(5, kick(2));
            q.push(5, kick(3));
            let mut ids = Vec::new();
            while let Some((_, Ev::Kick { port })) = q.pop() {
                ids.push(port.node.0);
            }
            assert_eq!(ids, vec![1, 2, 3], "{}", kind.label());
        }
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::default();
        assert!(q.is_empty());
        q.push(1, Ev::Sample);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
