//! Structural deadlock detection over live PFC state.
//!
//! A PFC deadlock is a cycle of *gated* queues each waiting on the next:
//! egress queue `Q = (switch, port, prio)` is gated by a PAUSE from its
//! downstream neighbor; that neighbor's congested ingress drains through
//! its own egress queues; if those are gated too, follow the chain. A
//! cycle means nobody can ever make progress — the paper's Figure 3
//! situation frozen in the simulator's state.

use crate::event::SimTime;
use std::collections::BTreeMap;
use tagger_switch::SwitchState;
use tagger_topo::{NodeId, PortId, Topology};

/// A detected deadlock: when, and the cycle of gated queues.
#[derive(Clone, Debug)]
pub struct DeadlockReport {
    /// Simulation time of (persistent) detection.
    pub detected_at: SimTime,
    /// The witness cycle of `(switch, egress port, priority)` queues.
    pub cycle: Vec<(NodeId, PortId, u8)>,
}

/// Searches the current PFC state for a cycle of mutually-waiting gated
/// queues. Returns a witness cycle if one exists.
pub(crate) fn detect_deadlock(
    topo: &Topology,
    switches: &BTreeMap<NodeId, SwitchState>,
) -> Option<Vec<(NodeId, PortId, u8)>> {
    type Q = (NodeId, PortId, u8);
    // Collect gated, non-empty lossless egress queues and their wait-for
    // edges.
    let mut edges: BTreeMap<Q, Vec<Q>> = BTreeMap::new();
    for (&node, sw) in switches {
        let nl = sw.config().num_lossless;
        for port in 0..sw.num_ports() as u16 {
            let port = PortId(port);
            for prio in 0..nl {
                if !sw.is_tx_paused(port, prio) || sw.queue_depth_bytes(port, prio) == 0 {
                    continue;
                }
                let q: Q = (node, port, prio);
                // The downstream neighbor that paused us.
                let Some(peer) = topo.peer_of(tagger_topo::GlobalPort::new(node, port)) else {
                    continue;
                };
                let Some(down) = switches.get(&peer.node) else {
                    continue; // host paused us: no onward dependency
                };
                // Packets accounted at the downstream's congested ingress
                // (peer.port, prio) sit in its egress queues; gated ones
                // are what we're waiting on.
                let mut deps: Vec<Q> = Vec::new();
                for qp in down.queued_packets() {
                    if qp.in_port == peer.port && qp.ingress_prio == Some(prio) {
                        let eq = (peer.node, qp.out_port, qp.egress_queue);
                        if (qp.egress_queue) < down.config().num_lossless
                            && down.is_tx_paused(qp.out_port, qp.egress_queue)
                            && !deps.contains(&eq)
                        {
                            deps.push(eq);
                        }
                    }
                }
                edges.insert(q, deps);
            }
        }
    }

    // Cycle detection (iterative DFS, coloring).
    let nodes: Vec<Q> = edges.keys().copied().collect();
    let index: BTreeMap<Q, usize> = nodes.iter().enumerate().map(|(i, &q)| (q, i)).collect();
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|q| {
            edges[q]
                .iter()
                .filter_map(|d| index.get(d).copied())
                .collect()
        })
        .collect();
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; nodes.len()];
    let mut parent = vec![usize::MAX; nodes.len()];
    for start in 0..nodes.len() {
        if color[start] != WHITE {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color[start] = GRAY;
        while let Some(&(u, ci)) = stack.last() {
            if ci < adj[u].len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let v = adj[u][ci];
                match color[v] {
                    WHITE => {
                        color[v] = GRAY;
                        parent[v] = u;
                        stack.push((v, 0));
                    }
                    GRAY => {
                        // Reconstruct the cycle v ... u -> v.
                        let mut cycle = vec![nodes[v]];
                        let mut w = u;
                        let mut rev = Vec::new();
                        while w != v {
                            rev.push(nodes[w]);
                            w = parent[w];
                        }
                        cycle.extend(rev.into_iter().rev());
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[u] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagger_switch::{Packet, PacketId, PfcFrame, SwitchConfig, TransitionMode};
    use tagger_topo::{Layer, Topology};

    /// Hand-build a two-switch mutual pause and check the detector sees
    /// the 2-cycle.
    #[test]
    fn detects_two_switch_cycle() {
        let mut topo = Topology::new();
        let a = topo.add_switch("A", Layer::Flat);
        let b = topo.add_switch("B", Layer::Flat);
        topo.connect(a, b); // port 0 on both
        let h1 = topo.add_host("H1");
        let h2 = topo.add_host("H2");
        topo.connect(h1, a); // a port 1
        topo.connect(h2, b); // b port 1

        let cfg = SwitchConfig {
            num_lossless: 1,
            xoff_bytes: 1_500,
            xon_bytes: 500,
            ..SwitchConfig::default()
        };
        let mut swa = SwitchState::new(a, 2, cfg);
        let mut swb = SwitchState::new(b, 2, cfg);
        let pkt = |id: u64, dst: NodeId| Packet::new(PacketId(id), 0, dst, 1_000);

        // A holds packets from B (in port 0) destined back out port 0;
        // B symmetric. Each pauses the other.
        for i in 0..2 {
            swa.admit(
                PortId(0),
                PortId(0),
                Some(tagger_core::Tag(1)),
                pkt(i, h2),
                TransitionMode::EgressByNewTag,
            );
            swb.admit(
                PortId(0),
                PortId(0),
                Some(tagger_core::Tag(1)),
                pkt(10 + i, h1),
                TransitionMode::EgressByNewTag,
            );
        }
        // Both crossed Xoff (2000 > 1500) and want to pause the peer.
        assert!(!swa.take_emitted_pfc().is_empty());
        assert!(!swb.take_emitted_pfc().is_empty());
        swa.on_pfc(PortId(0), PfcFrame::Pause { priority: 0 });
        swb.on_pfc(PortId(0), PfcFrame::Pause { priority: 0 });

        let mut switches = BTreeMap::new();
        switches.insert(a, swa);
        switches.insert(b, swb);
        let cycle = detect_deadlock(&topo, &switches).expect("deadlock");
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn no_deadlock_when_one_side_can_drain() {
        let mut topo = Topology::new();
        let a = topo.add_switch("A", Layer::Flat);
        let b = topo.add_switch("B", Layer::Flat);
        topo.connect(a, b);
        let h = topo.add_host("H");
        topo.connect(h, b); // b port 1

        let cfg = SwitchConfig {
            num_lossless: 1,
            xoff_bytes: 1_500,
            xon_bytes: 500,
            ..SwitchConfig::default()
        };
        let mut swa = SwitchState::new(a, 1, cfg);
        let swb = SwitchState::new(b, 2, cfg);
        // A has a gated queue toward B, but B's ingress is empty: the
        // dependency dead-ends and no cycle exists.
        swa.admit(
            PortId(0),
            PortId(0),
            Some(tagger_core::Tag(1)),
            Packet::new(PacketId(1), 0, h, 1_000),
            TransitionMode::EgressByNewTag,
        );
        swa.on_pfc(PortId(0), PfcFrame::Pause { priority: 0 });
        let mut switches = BTreeMap::new();
        switches.insert(a, swa);
        switches.insert(b, swb);
        assert!(detect_deadlock(&topo, &switches).is_none());
    }
}
