//! Structural deadlock detection over live PFC state.
//!
//! A PFC deadlock is a cycle of *gated* queues each waiting on the next:
//! egress queue `Q = (switch, port, prio)` is gated by a PAUSE from its
//! downstream neighbor; that neighbor's congested ingress drains through
//! its own egress queues; if those are gated too, follow the chain. A
//! cycle means nobody can ever make progress — the paper's Figure 3
//! situation frozen in the simulator's state.

use crate::event::SimTime;
use std::collections::BTreeMap;
use tagger_switch::SwitchState;
use tagger_topo::{NodeId, PortId, Topology};

/// A detected deadlock: when, and the cycle of gated queues.
#[derive(Clone, Debug)]
pub struct DeadlockReport {
    /// Simulation time of (persistent) detection.
    pub detected_at: SimTime,
    /// The witness cycle of `(switch, egress port, priority)` queues.
    pub cycle: Vec<(NodeId, PortId, u8)>,
}

/// A gated lossless egress queue: `(switch, egress port, priority)`.
pub(crate) type Q = (NodeId, PortId, u8);

/// Builds the wait-for graph over the current PFC state: one node per
/// gated, non-empty lossless egress queue, one edge per "the packets I
/// hold drain into a downstream queue that is itself gated" dependency.
fn wait_edges(topo: &Topology, switches: &BTreeMap<NodeId, SwitchState>) -> BTreeMap<Q, Vec<Q>> {
    let mut edges: BTreeMap<Q, Vec<Q>> = BTreeMap::new();
    for (&node, sw) in switches {
        let nl = sw.config().num_lossless;
        for port in 0..sw.num_ports() as u16 {
            let port = PortId(port);
            for prio in 0..nl {
                if !sw.is_tx_paused(port, prio) || sw.queue_depth_bytes(port, prio) == 0 {
                    continue;
                }
                let q: Q = (node, port, prio);
                // The downstream neighbor that paused us.
                let Some(peer) = topo.peer_of(tagger_topo::GlobalPort::new(node, port)) else {
                    continue;
                };
                let Some(down) = switches.get(&peer.node) else {
                    continue; // host paused us: no onward dependency
                };
                // Packets accounted at the downstream's congested ingress
                // (peer.port, prio) sit in its egress queues; gated ones
                // are what we're waiting on.
                let mut deps: Vec<Q> = Vec::new();
                for qp in down.queued_packets() {
                    if qp.in_port == peer.port && qp.ingress_prio == Some(prio) {
                        let eq = (peer.node, qp.out_port, qp.egress_queue);
                        if (qp.egress_queue) < down.config().num_lossless
                            && down.is_tx_paused(qp.out_port, qp.egress_queue)
                            && !deps.contains(&eq)
                        {
                            deps.push(eq);
                        }
                    }
                }
                edges.insert(q, deps);
            }
        }
    }
    edges
}

/// Searches the current PFC state for a cycle of mutually-waiting gated
/// queues. Returns a witness cycle if one exists.
pub(crate) fn detect_deadlock(
    topo: &Topology,
    switches: &BTreeMap<NodeId, SwitchState>,
) -> Option<Vec<(NodeId, PortId, u8)>> {
    let edges = wait_edges(topo, switches);

    // Cycle detection (iterative DFS, coloring).
    let nodes: Vec<Q> = edges.keys().copied().collect();
    let index: BTreeMap<Q, usize> = nodes.iter().enumerate().map(|(i, &q)| (q, i)).collect();
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|q| {
            edges[q]
                .iter()
                .filter_map(|d| index.get(d).copied())
                .collect()
        })
        .collect();
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; nodes.len()];
    let mut parent = vec![usize::MAX; nodes.len()];
    for start in 0..nodes.len() {
        if color[start] != WHITE {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color[start] = GRAY;
        while let Some(&(u, ci)) = stack.last() {
            if ci < adj[u].len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let v = adj[u][ci];
                match color[v] {
                    WHITE => {
                        color[v] = GRAY;
                        parent[v] = u;
                        stack.push((v, 0));
                    }
                    GRAY => {
                        // Reconstruct the cycle v ... u -> v.
                        let mut cycle = vec![nodes[v]];
                        let mut w = u;
                        let mut rev = Vec::new();
                        while w != v {
                            rev.push(nodes[w]);
                            w = parent[w];
                        }
                        cycle.extend(rev.into_iter().rev());
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[u] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

/// The **full membership** of every circular wait: all queues sitting on
/// some cycle of the wait-for graph (a non-trivial strongly connected
/// component, or a self-loop), not just one witness cycle. This is the
/// watchdog's in-band cycle confirmation: a queue paused past the window
/// but absent from this set is congested, not deadlocked, and must not
/// be demoted.
pub(crate) fn deadlocked_queues(
    topo: &Topology,
    switches: &BTreeMap<NodeId, SwitchState>,
) -> std::collections::BTreeSet<Q> {
    let edges = wait_edges(topo, switches);
    let nodes: Vec<Q> = edges.keys().copied().collect();
    let index: BTreeMap<Q, usize> = nodes.iter().enumerate().map(|(i, &q)| (q, i)).collect();
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|q| {
            edges[q]
                .iter()
                .filter_map(|d| index.get(d).copied())
                .collect()
        })
        .collect();

    // Tarjan's SCC, iteratively.
    let n = nodes.len();
    let mut idx = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc_stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut result = std::collections::BTreeSet::new();
    for root in 0..n {
        if idx[root] != usize::MAX {
            continue;
        }
        // (node, next child to visit)
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (u, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                idx[u] = next_index;
                low[u] = next_index;
                next_index += 1;
                scc_stack.push(u);
                on_stack[u] = true;
            }
            if *ci < adj[u].len() {
                let v = adj[u][*ci];
                *ci += 1;
                if idx[v] == usize::MAX {
                    call.push((v, 0));
                } else if on_stack[v] {
                    low[u] = low[u].min(idx[v]);
                }
            } else {
                if low[u] == idx[u] {
                    // u is an SCC root; pop its component.
                    let mut comp = Vec::new();
                    loop {
                        let w = scc_stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == u {
                            break;
                        }
                    }
                    let cyclic = comp.len() > 1 || adj[u].contains(&u);
                    if cyclic {
                        result.extend(comp.into_iter().map(|w| nodes[w]));
                    }
                }
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[u]);
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagger_switch::{Packet, PacketId, PfcFrame, SwitchConfig, TransitionMode};
    use tagger_topo::{Layer, Topology};

    /// A stampless priority-0 PAUSE.
    fn pause0() -> PfcFrame {
        PfcFrame::Pause {
            priority: 0,
            trigger: None,
        }
    }

    /// Hand-build a two-switch mutual pause and check the detector sees
    /// the 2-cycle.
    #[test]
    fn detects_two_switch_cycle() {
        let mut topo = Topology::new();
        let a = topo.add_switch("A", Layer::Flat);
        let b = topo.add_switch("B", Layer::Flat);
        topo.connect(a, b); // port 0 on both
        let h1 = topo.add_host("H1");
        let h2 = topo.add_host("H2");
        topo.connect(h1, a); // a port 1
        topo.connect(h2, b); // b port 1

        let cfg = SwitchConfig {
            num_lossless: 1,
            xoff_bytes: 1_500,
            xon_bytes: 500,
            ..SwitchConfig::default()
        };
        let mut swa = SwitchState::new(a, 2, cfg);
        let mut swb = SwitchState::new(b, 2, cfg);
        let pkt = |id: u64, dst: NodeId| Packet::new(PacketId(id), 0, dst, 1_000);

        // A holds packets from B (in port 0) destined back out port 0;
        // B symmetric. Each pauses the other.
        for i in 0..2 {
            swa.admit(
                PortId(0),
                PortId(0),
                Some(tagger_core::Tag(1)),
                pkt(i, h2),
                TransitionMode::EgressByNewTag,
            );
            swb.admit(
                PortId(0),
                PortId(0),
                Some(tagger_core::Tag(1)),
                pkt(10 + i, h1),
                TransitionMode::EgressByNewTag,
            );
        }
        // Both crossed Xoff (2000 > 1500) and want to pause the peer.
        assert!(!swa.take_emitted_pfc().is_empty());
        assert!(!swb.take_emitted_pfc().is_empty());
        swa.on_pfc(PortId(0), pause0(), 0);
        swb.on_pfc(PortId(0), pause0(), 0);

        let mut switches = BTreeMap::new();
        switches.insert(a, swa);
        switches.insert(b, swb);
        let cycle = detect_deadlock(&topo, &switches).expect("deadlock");
        assert_eq!(cycle.len(), 2);
    }

    /// A 3-switch ring A→B→C→A of gated queues: the witness cycle has
    /// all three hops, and [`deadlocked_queues`] returns exactly the
    /// ring — a stuck queue that merely dead-ends at a pausing host is
    /// *not* reported, because it sits on no circular wait.
    #[test]
    fn three_switch_cycle_full_membership() {
        let mut topo = Topology::new();
        let a = topo.add_switch("A", Layer::Flat);
        let b = topo.add_switch("B", Layer::Flat);
        let c = topo.add_switch("C", Layer::Flat);
        topo.connect(a, b); // a0 <-> b0
        topo.connect(b, c); // b1 <-> c0
        topo.connect(c, a); // c1 <-> a1
        let ha = topo.add_host("HA");
        topo.connect(ha, a); // a2

        let cfg = SwitchConfig {
            num_lossless: 1,
            xoff_bytes: 1_500,
            xon_bytes: 500,
            ..SwitchConfig::default()
        };
        let mut swa = SwitchState::new(a, 3, cfg);
        let mut swb = SwitchState::new(b, 2, cfg);
        let mut swc = SwitchState::new(c, 2, cfg);
        let pkt = |id: u64| Packet::new(PacketId(id), 0, ha, 1_000);
        // Around the ring: each switch holds traffic that arrived from
        // its upstream and drains toward its gated downstream.
        for i in 0..2 {
            swa.admit(
                PortId(1),
                PortId(0),
                Some(tagger_core::Tag(1)),
                pkt(i),
                TransitionMode::EgressByNewTag,
            );
            swb.admit(
                PortId(0),
                PortId(1),
                Some(tagger_core::Tag(1)),
                pkt(10 + i),
                TransitionMode::EgressByNewTag,
            );
            swc.admit(
                PortId(0),
                PortId(1),
                Some(tagger_core::Tag(1)),
                pkt(20 + i),
                TransitionMode::EgressByNewTag,
            );
        }
        swa.on_pfc(PortId(0), pause0(), 0);
        swb.on_pfc(PortId(1), pause0(), 0);
        swc.on_pfc(PortId(1), pause0(), 0);
        // An unrelated stuck queue: A's uplink to the host is paused and
        // non-empty, but the wait dead-ends at the host.
        swa.admit(
            PortId(1),
            PortId(2),
            Some(tagger_core::Tag(1)),
            pkt(30),
            TransitionMode::EgressByNewTag,
        );
        swa.on_pfc(PortId(2), pause0(), 0);

        let mut switches = BTreeMap::new();
        switches.insert(a, swa);
        switches.insert(b, swb);
        switches.insert(c, swc);

        let cycle = detect_deadlock(&topo, &switches).expect("deadlock");
        assert_eq!(cycle.len(), 3, "witness carries every hop: {cycle:?}");
        let members = deadlocked_queues(&topo, &switches);
        let expect: std::collections::BTreeSet<Q> =
            [(a, PortId(0), 0), (b, PortId(1), 0), (c, PortId(1), 0)]
                .into_iter()
                .collect();
        assert_eq!(members, expect);
        assert!(
            !members.contains(&(a, PortId(2), 0)),
            "host-gated queue is stuck but not on a cycle"
        );
        assert!(cycle.iter().all(|q| members.contains(q)));
    }

    #[test]
    fn no_deadlock_when_one_side_can_drain() {
        let mut topo = Topology::new();
        let a = topo.add_switch("A", Layer::Flat);
        let b = topo.add_switch("B", Layer::Flat);
        topo.connect(a, b);
        let h = topo.add_host("H");
        topo.connect(h, b); // b port 1

        let cfg = SwitchConfig {
            num_lossless: 1,
            xoff_bytes: 1_500,
            xon_bytes: 500,
            ..SwitchConfig::default()
        };
        let mut swa = SwitchState::new(a, 1, cfg);
        let swb = SwitchState::new(b, 2, cfg);
        // A has a gated queue toward B, but B's ingress is empty: the
        // dependency dead-ends and no cycle exists.
        swa.admit(
            PortId(0),
            PortId(0),
            Some(tagger_core::Tag(1)),
            Packet::new(PacketId(1), 0, h, 1_000),
            TransitionMode::EgressByNewTag,
        );
        swa.on_pfc(PortId(0), pause0(), 0);
        let mut switches = BTreeMap::new();
        switches.insert(a, swa);
        switches.insert(b, swb);
        assert!(detect_deadlock(&topo, &switches).is_none());
        assert!(deadlocked_queues(&topo, &switches).is_empty());
    }
}
