//! The two-phase controller: stage → validate → commit-or-rollback.

use crate::event::CtrlEvent;
use crate::metrics::ControllerMetrics;
use crate::state::{ElpPolicy, NetworkState};
use std::fmt;
use std::time::{Duration, Instant};
use tagger_core::tcam::{Compression, TcamProgram};
use tagger_core::{RuleDelta, RuleError, RuleSet, TaggedGraph, Tagging};
use tagger_topo::{LinkId, Topology};

/// Hard errors: the event itself is malformed and no epoch was staged.
///
/// Everything else — a candidate tagging that fails certification, a
/// table that blows the TCAM budget — is *not* an error but a normal
/// [`EpochOutcome::RolledBack`]; the controller keeps running on the
/// previous committed snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtrlError {
    /// A link event referenced a link id outside the topology.
    UnknownLink(LinkId),
    /// The initial (epoch 0) tagging could not be built, so there is no
    /// safe snapshot to fall back to.
    Bootstrap(RuleError),
    /// The initial tagging is valid but already exceeds the TCAM budget;
    /// a controller that cannot even bootstrap would have nothing safe
    /// to roll back to, so this is a construction error.
    BootstrapBudget {
        /// Entries the worst switch needs for the healthy network.
        worst_switch_entries: usize,
        /// The configured ceiling.
        budget: usize,
    },
}

impl fmt::Display for CtrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrlError::UnknownLink(l) => {
                write!(f, "event references unknown link id {}", l.index())
            }
            CtrlError::Bootstrap(e) => write!(f, "cannot build initial tagging: {e}"),
            CtrlError::BootstrapBudget {
                worst_switch_entries,
                budget,
            } => write!(
                f,
                "bootstrap tagging needs {worst_switch_entries} TCAM entries on the worst switch, budget is {budget}"
            ),
        }
    }
}

impl std::error::Error for CtrlError {}

/// Why a staged epoch was abandoned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RollbackReason {
    /// The candidate tagging failed deadlock-freedom certification
    /// (Theorem 5.1) or left an ELP path lossy.
    VerifyFailed(String),
    /// The candidate's worst per-switch TCAM table exceeds the budget.
    BudgetExceeded {
        /// Entries the worst switch would need (after joint compression).
        worst_switch_entries: usize,
        /// The configured ceiling.
        budget: usize,
    },
}

impl fmt::Display for RollbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RollbackReason::VerifyFailed(e) => write!(f, "verification failed: {e}"),
            RollbackReason::BudgetExceeded {
                worst_switch_entries,
                budget,
            } => write!(
                f,
                "TCAM budget exceeded: worst switch needs {worst_switch_entries} entries, budget is {budget}"
            ),
        }
    }
}

/// What a committed epoch shipped.
#[derive(Clone, Debug)]
pub struct CommitReport {
    /// The epoch number this commit created.
    pub epoch: u64,
    /// The network-state version the new snapshot reflects.
    pub version: u64,
    /// Per-switch deltas against the previous committed snapshot, sorted
    /// by switch id. Switches absent from the list are untouched.
    pub deltas: Vec<RuleDelta>,
    /// Rules installed across all deltas.
    pub rules_added: usize,
    /// Rules withdrawn across all deltas.
    pub rules_removed: usize,
    /// Total rules in the previous committed tables.
    pub prev_table_rules: usize,
    /// Total rules in the new committed tables.
    pub new_table_rules: usize,
    /// Lossless priorities the new tagging consumes.
    pub lossless_tags: usize,
    /// Worst per-switch TCAM entries (joint compression).
    pub tcam_worst_switch: usize,
    /// ELP paths the new tagging covers.
    pub elp_paths: usize,
    /// Stage latency for this epoch.
    pub recompute: Duration,
}

impl CommitReport {
    /// Switches whose tables changed this epoch.
    pub fn switches_touched(&self) -> usize {
        self.deltas.len()
    }

    /// Total delta operations (installs + withdrawals).
    pub fn delta_ops(&self) -> usize {
        self.deltas.iter().map(RuleDelta::len).sum()
    }

    /// Cost of the naive alternative the deltas replace: withdrawing
    /// every previous rule and installing every new one.
    pub fn full_reinstall_ops(&self) -> usize {
        self.prev_table_rules + self.new_table_rules
    }
}

/// The result of successfully processing one event.
#[derive(Clone, Debug)]
pub enum EpochOutcome {
    /// The staged tagging validated; deltas were emitted and the
    /// snapshot advanced.
    Committed(CommitReport),
    /// The staged tagging was rejected; the previous snapshot (and the
    /// previous network-state view) remain in force.
    RolledBack {
        /// The state version that was staged and then abandoned.
        abandoned_version: u64,
        /// Why validation rejected it.
        reason: RollbackReason,
    },
}

impl EpochOutcome {
    /// The commit report, if this outcome committed.
    pub fn committed(&self) -> Option<&CommitReport> {
        match self {
            EpochOutcome::Committed(r) => Some(r),
            EpochOutcome::RolledBack { .. } => None,
        }
    }
}

/// A committed configuration: the deadlock-freedom certificate plus the
/// exact rule tables switches are running.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Commit counter; 0 is the bootstrap tagging for the healthy
    /// network.
    pub epoch: u64,
    /// The [`NetworkState::version`] this snapshot was computed from.
    pub version: u64,
    /// The verified tagged graph (Theorem 5.1 certificate).
    pub graph: TaggedGraph,
    /// The committed per-switch rule tables.
    pub rules: RuleSet,
    /// Lossless priorities consumed.
    pub lossless_tags: usize,
    /// Worst per-switch TCAM footprint (joint compression).
    pub tcam_worst_switch: usize,
    /// ELP paths covered.
    pub elp_paths: usize,
}

/// The control-plane daemon core: consumes [`CtrlEvent`]s, maintains the
/// committed [`Snapshot`], and emits [`RuleDelta`]s.
///
/// Rollout is two-phase. *Stage*: apply the event to a scratch copy of
/// the network state and recompute the tagging from the policy ELP.
/// *Validate*: the recompute must produce a certified tagged graph
/// (monotone + per-tag acyclic, with every ELP path lossless) and, if a
/// TCAM budget is set, fit the worst switch within it. Only then does
/// the controller *commit*: the scratch state becomes current, the
/// snapshot advances one epoch, and the per-switch diffs against the
/// previous tables are returned for installation. On rollback nothing
/// moves — including the network-state mutation itself, so a `LinkDown`
/// whose reroute tagging is rejected leaves the controller deliberately
/// blind to that failure rather than half-converged (a later `Resync`
/// or any subsequent event retries from scratch).
#[derive(Clone, Debug)]
pub struct Controller {
    topo: Topology,
    policy: ElpPolicy,
    tcam_budget: Option<usize>,
    state: NetworkState,
    committed: Snapshot,
    metrics: ControllerMetrics,
}

impl Controller {
    /// Builds a controller for a healthy network and commits epoch 0.
    pub fn new(topo: Topology, policy: ElpPolicy) -> Result<Self, CtrlError> {
        Self::with_budget(topo, policy, None)
    }

    /// Like [`Controller::new`] but enforcing a per-switch TCAM budget
    /// (entries after joint compression) on every epoch, including
    /// epoch 0.
    pub fn with_budget(
        topo: Topology,
        policy: ElpPolicy,
        tcam_budget: Option<usize>,
    ) -> Result<Self, CtrlError> {
        let state = NetworkState::initial();
        let (snapshot, _) = stage(&topo, &policy, &state, 0).map_err(CtrlError::Bootstrap)?;
        if let Some(budget) = tcam_budget {
            if snapshot.tcam_worst_switch > budget {
                return Err(CtrlError::BootstrapBudget {
                    worst_switch_entries: snapshot.tcam_worst_switch,
                    budget,
                });
            }
        }
        Ok(Controller {
            topo,
            policy,
            tcam_budget,
            state,
            committed: snapshot,
            metrics: ControllerMetrics::default(),
        })
    }

    /// The topology under management.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// The ELP policy in force.
    pub fn policy(&self) -> ElpPolicy {
        self.policy
    }

    /// The committed network-state view.
    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    /// The committed snapshot (always verified).
    pub fn committed(&self) -> &Snapshot {
        &self.committed
    }

    /// Metrics so far.
    pub fn metrics(&self) -> &ControllerMetrics {
        &self.metrics
    }

    /// Processes one event through the two-phase rollout.
    pub fn handle(&mut self, event: &CtrlEvent) -> Result<EpochOutcome, CtrlError> {
        let mut staged_state = self.state.clone();
        staged_state.apply(&self.topo, event)?;
        self.metrics.events += 1;

        let t0 = Instant::now();
        let staged = stage(
            &self.topo,
            &self.policy,
            &staged_state,
            self.committed.epoch + 1,
        );
        let dt = t0.elapsed();
        self.metrics.epochs_staged += 1;
        self.metrics.record_recompute(dt);

        let (candidate, elp_len) = match staged {
            Ok(ok) => ok,
            Err(e) => {
                self.metrics.verify_failures += 1;
                self.metrics.rollbacks += 1;
                return Ok(EpochOutcome::RolledBack {
                    abandoned_version: staged_state.version,
                    reason: RollbackReason::VerifyFailed(e.to_string()),
                });
            }
        };

        if let Some(budget) = self.tcam_budget {
            if candidate.tcam_worst_switch > budget {
                self.metrics.budget_rejections += 1;
                self.metrics.rollbacks += 1;
                return Ok(EpochOutcome::RolledBack {
                    abandoned_version: staged_state.version,
                    reason: RollbackReason::BudgetExceeded {
                        worst_switch_entries: candidate.tcam_worst_switch,
                        budget,
                    },
                });
            }
        }

        // Validation passed: commit. Deltas are diffed against the
        // previously committed tables, so a switch applying them in
        // epoch order tracks the snapshot exactly.
        let deltas = self.committed.rules.diff(&candidate.rules);
        let rules_added = deltas.iter().map(|d| d.add.len()).sum();
        let rules_removed = deltas.iter().map(|d| d.remove.len()).sum();
        let report = CommitReport {
            epoch: candidate.epoch,
            version: candidate.version,
            rules_added,
            rules_removed,
            prev_table_rules: self.committed.rules.num_rules(),
            new_table_rules: candidate.rules.num_rules(),
            lossless_tags: candidate.lossless_tags,
            tcam_worst_switch: candidate.tcam_worst_switch,
            elp_paths: elp_len,
            recompute: dt,
            deltas,
        };
        self.metrics.epochs_committed += 1;
        self.metrics.rules_added += rules_added as u64;
        self.metrics.rules_removed += rules_removed as u64;
        self.state = staged_state;
        self.committed = candidate;
        Ok(EpochOutcome::Committed(report))
    }

    /// Replays a whole trace, stopping at the first malformed event.
    pub fn replay<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a CtrlEvent>,
    ) -> Result<Vec<EpochOutcome>, CtrlError> {
        events.into_iter().map(|e| self.handle(e)).collect()
    }
}

/// Stage step: recompute the tagging for a state and certify it.
///
/// Returns the candidate snapshot and the ELP size. The version stamped
/// into the snapshot is the state's; the epoch is the caller's.
fn stage(
    topo: &Topology,
    policy: &ElpPolicy,
    state: &NetworkState,
    epoch: u64,
) -> Result<(Snapshot, usize), RuleError> {
    let elp = policy.elp(topo, &state.failures, &state.extra_paths);
    let tagging = Tagging::from_elp(topo, &elp)?;
    // `from_elp` already certified the closure graph; re-verify here so
    // the commit decision never depends on a distant invariant.
    tagging
        .graph()
        .verify()
        .map_err(RuleError::NotDeadlockFree)?;
    let tcam = TcamProgram::compile(topo, tagging.rules(), Compression::Joint);
    Ok((
        Snapshot {
            epoch,
            version: state.version,
            lossless_tags: tagging.num_lossless_tags_on(topo),
            tcam_worst_switch: tcam.max_entries_per_switch(),
            elp_paths: elp.len(),
            graph: tagging.graph().clone(),
            rules: tagging.rules().clone(),
        },
        elp.len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_trace;
    use tagger_topo::ClosConfig;

    fn small_controller() -> Controller {
        Controller::new(ClosConfig::small().build(), ElpPolicy::with_bounces(1)).unwrap()
    }

    #[test]
    fn bootstrap_commits_a_verified_epoch_zero() {
        let ctrl = small_controller();
        assert_eq!(ctrl.committed().epoch, 0);
        assert!(ctrl.committed().graph.verify().is_ok());
        assert!(ctrl.committed().rules.num_rules() > 0);
        // The general greedy pipeline is near-optimal here: the §4
        // Clos-specific construction would use 2 priorities for 1-bounce
        // ELPs, the greedy merge lands within one of that.
        assert!(ctrl.committed().lossless_tags <= 3);
    }

    #[test]
    fn link_down_commits_incremental_deltas() {
        let mut ctrl = small_controller();
        let full_before = ctrl.committed().rules.num_rules();
        let events = parse_trace(ctrl.topo(), "down L1 T1").unwrap();
        let outcome = ctrl.handle(&events[0]).unwrap();
        let report = outcome.committed().expect("single link down must commit");
        assert_eq!(report.epoch, 1);
        assert!(!report.deltas.is_empty(), "reroute must change some tables");
        assert!(
            report.delta_ops() < report.full_reinstall_ops(),
            "deltas ({} ops) must beat full reinstall ({} ops)",
            report.delta_ops(),
            report.full_reinstall_ops()
        );
        assert!(report.full_reinstall_ops() >= full_before);
        assert!(ctrl.committed().graph.verify().is_ok());
    }

    #[test]
    fn link_up_restores_the_original_tables() {
        let mut ctrl = small_controller();
        let original = ctrl.committed().rules.clone();
        let events = parse_trace(ctrl.topo(), "down L1 T1\nup L1 T1").unwrap();
        let outcomes = ctrl.replay(events.iter()).unwrap();
        assert!(outcomes.iter().all(|o| o.committed().is_some()));
        assert_eq!(ctrl.committed().epoch, 2);
        assert_eq!(
            ctrl.committed().rules,
            original,
            "recovering the link must converge back to the healthy tables"
        );
    }

    #[test]
    fn deltas_replayed_in_order_reproduce_committed_tables() {
        let mut ctrl = small_controller();
        let mut mirror = ctrl.committed().rules.clone();
        let trace = "down L1 T1\ndown L3 T3\nup L1 T1\nresync\nup L3 T3";
        let events = parse_trace(ctrl.topo(), trace).unwrap();
        for outcome in ctrl.replay(events.iter()).unwrap() {
            if let Some(report) = outcome.committed() {
                for delta in &report.deltas {
                    mirror.apply_delta(delta);
                }
            }
        }
        assert_eq!(mirror, ctrl.committed().rules);
    }

    #[test]
    fn tight_tcam_budget_rolls_back_and_preserves_state() {
        let topo = ClosConfig::small().build();
        let healthy = Controller::new(topo.clone(), ElpPolicy::with_bounces(1)).unwrap();
        let budget = healthy.committed().tcam_worst_switch;
        // Budget exactly at the healthy footprint: bootstrap fits, but a
        // failure's reroute tagging (more bounce variety through fewer
        // links) needs more entries somewhere and must be rejected.
        let mut ctrl =
            Controller::with_budget(topo, ElpPolicy::with_bounces(1), Some(budget)).unwrap();
        let before_rules = ctrl.committed().rules.clone();
        let before_version = ctrl.state().version;
        let events = parse_trace(ctrl.topo(), "down L1 T1").unwrap();
        match ctrl.handle(&events[0]).unwrap() {
            EpochOutcome::RolledBack { reason, .. } => {
                assert!(matches!(reason, RollbackReason::BudgetExceeded { .. }));
            }
            EpochOutcome::Committed(r) => {
                // If the reroute happens to fit the budget, the commit
                // must still respect it.
                assert!(r.tcam_worst_switch <= budget);
                return;
            }
        }
        assert_eq!(
            ctrl.committed().epoch,
            0,
            "rollback must not advance epochs"
        );
        assert_eq!(ctrl.committed().rules, before_rules);
        assert_eq!(
            ctrl.state().version,
            before_version,
            "rollback must also revert the staged state mutation"
        );
        assert_eq!(ctrl.metrics().rollbacks, 1);
        assert_eq!(ctrl.metrics().budget_rejections, 1);
    }

    #[test]
    fn impossible_budget_fails_bootstrap() {
        let topo = ClosConfig::small().build();
        let err = Controller::with_budget(topo, ElpPolicy::updown(), Some(1)).unwrap_err();
        assert!(matches!(err, CtrlError::BootstrapBudget { budget: 1, .. }));
    }

    #[test]
    fn elp_add_then_remove_round_trips() {
        let mut ctrl = small_controller();
        let original = ctrl.committed().rules.clone();
        // A 2-bounce path (bounces at T2 and T3) — outside the 1-bounce
        // policy enumeration, so pinning it genuinely changes the ELP.
        let trace = "elp-add H1 T1 L1 T2 L2 S1 L3 T3 L4 T4 H13\n\
                     elp-remove H1 T1 L1 T2 L2 S1 L3 T3 L4 T4 H13";
        let events = parse_trace(ctrl.topo(), trace).unwrap();
        let outcomes = ctrl.replay(events.iter()).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.committed().is_some()));
        assert_eq!(ctrl.committed().rules, original);
        assert!(ctrl.state().extra_paths.is_empty());
    }

    #[test]
    fn malformed_event_is_a_hard_error_not_a_rollback() {
        let mut ctrl = small_controller();
        let bogus = tagger_topo::LinkId(ctrl.topo().num_links() as u32 + 7);
        let err = ctrl.handle(&CtrlEvent::LinkDown(bogus)).unwrap_err();
        assert_eq!(err, CtrlError::UnknownLink(bogus));
        assert_eq!(ctrl.metrics().events, 0);
        assert_eq!(ctrl.committed().epoch, 0);
    }
}
