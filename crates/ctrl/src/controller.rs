//! The two-phase controller: stage → validate → commit-or-rollback.

use crate::event::CtrlEvent;
use crate::metrics::ControllerMetrics;
use crate::southbound::Southbound;
use crate::state::{ElpPolicy, NetworkState};
use std::fmt;
use std::time::{Duration, Instant};
use tagger_core::tcam::{Compression, TcamProgram};
use tagger_core::{InstallError, RuleDelta, RuleError, RuleSet, TaggedGraph, Tagging};
use tagger_topo::{LinkId, NodeId, Topology};

/// Hard errors: the event itself is malformed and no epoch was staged.
///
/// Everything else — a candidate tagging that fails certification, a
/// table that blows the TCAM budget — is *not* an error but a normal
/// [`EpochOutcome::RolledBack`]; the controller keeps running on the
/// previous committed snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtrlError {
    /// A link event referenced a link id outside the topology.
    UnknownLink(LinkId),
    /// The initial (epoch 0) tagging could not be built, so there is no
    /// safe snapshot to fall back to.
    Bootstrap(RuleError),
    /// The initial tagging is valid but already exceeds the TCAM budget;
    /// a controller that cannot even bootstrap would have nothing safe
    /// to roll back to, so this is a construction error.
    BootstrapBudget {
        /// Entries the worst switch needs for the healthy network.
        worst_switch_entries: usize,
        /// The configured ceiling.
        budget: usize,
    },
    /// Crash recovery replayed a journal entry marked *committed* but
    /// the deterministic recompute rolled it back — the journal does not
    /// describe the topology/policy it is being replayed against.
    RecoveryDiverged(String),
}

impl fmt::Display for CtrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrlError::UnknownLink(l) => {
                write!(f, "event references unknown link id {}", l.index())
            }
            CtrlError::Bootstrap(e) => write!(f, "cannot build initial tagging: {e}"),
            CtrlError::BootstrapBudget {
                worst_switch_entries,
                budget,
            } => write!(
                f,
                "bootstrap tagging needs {worst_switch_entries} TCAM entries on the worst switch, budget is {budget}"
            ),
            CtrlError::RecoveryDiverged(why) => {
                write!(f, "journal replay diverged from its recorded outcome: {why}")
            }
        }
    }
}

impl std::error::Error for CtrlError {}

/// Why a staged epoch was abandoned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RollbackReason {
    /// The candidate tagging failed deadlock-freedom certification
    /// (Theorem 5.1) or left an ELP path lossy.
    VerifyFailed(String),
    /// The candidate's worst per-switch TCAM table exceeds the budget.
    BudgetExceeded {
        /// Entries the worst switch would need (after joint compression).
        worst_switch_entries: usize,
        /// The configured ceiling.
        budget: usize,
    },
    /// The candidate verified, but a switch exhausted its install
    /// attempt budget; every switch already updated was rolled back to
    /// the previous verified tables, so the fleet is never left running
    /// a mix of epochs.
    InstallAborted {
        /// The switch whose installs kept failing.
        switch: NodeId,
        /// Attempts spent on it before giving up.
        attempts: u32,
        /// The last southbound error, rendered.
        error: String,
    },
}

impl fmt::Display for RollbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RollbackReason::VerifyFailed(e) => write!(f, "verification failed: {e}"),
            RollbackReason::BudgetExceeded {
                worst_switch_entries,
                budget,
            } => write!(
                f,
                "TCAM budget exceeded: worst switch needs {worst_switch_entries} entries, budget is {budget}"
            ),
            RollbackReason::InstallAborted {
                switch,
                attempts,
                error,
            } => write!(
                f,
                "install aborted: switch {switch} failed {attempts} attempts ({error}); \
                 epoch rolled back fleet-wide"
            ),
        }
    }
}

/// What a committed epoch shipped.
#[derive(Clone, Debug)]
pub struct CommitReport {
    /// The epoch number this commit created.
    pub epoch: u64,
    /// The network-state version the new snapshot reflects.
    pub version: u64,
    /// Per-switch deltas against the previous committed snapshot, sorted
    /// by switch id. Switches absent from the list are untouched.
    pub deltas: Vec<RuleDelta>,
    /// Rules installed across all deltas.
    pub rules_added: usize,
    /// Rules withdrawn across all deltas.
    pub rules_removed: usize,
    /// Total rules in the previous committed tables.
    pub prev_table_rules: usize,
    /// Total rules in the new committed tables.
    pub new_table_rules: usize,
    /// Lossless priorities the new tagging consumes.
    pub lossless_tags: usize,
    /// Worst per-switch TCAM entries (joint compression).
    pub tcam_worst_switch: usize,
    /// ELP paths the new tagging covers.
    pub elp_paths: usize,
    /// Stage latency for this epoch.
    pub recompute: Duration,
    /// Southbound install attempts this epoch needed (one per switch
    /// when the network behaves; more under retries). Zero for plan-only
    /// commits that never touched a southbound.
    pub install_attempts: u64,
    /// Total backoff the retry schedule imposed this epoch (simulated —
    /// the controller records rather than sleeps it, keeping replays
    /// deterministic and fast).
    pub install_backoff: Duration,
}

impl CommitReport {
    /// Switches whose tables changed this epoch.
    pub fn switches_touched(&self) -> usize {
        self.deltas.len()
    }

    /// Total delta operations (installs + withdrawals).
    pub fn delta_ops(&self) -> usize {
        self.deltas.iter().map(RuleDelta::len).sum()
    }

    /// Cost of the naive alternative the deltas replace: withdrawing
    /// every previous rule and installing every new one.
    pub fn full_reinstall_ops(&self) -> usize {
        self.prev_table_rules + self.new_table_rules
    }
}

/// Retry discipline for southbound installs: exponential backoff with a
/// bounded per-switch attempt budget.
///
/// Backoff is *recorded*, not slept: the controller is driven by event
/// replay in tests and simulations, where wall-clock sleeping would only
/// slow the suite without changing any decision. A production wrapper
/// would sleep [`InstallPolicy::backoff_before`] between attempts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstallPolicy {
    /// Attempts per switch per epoch before the epoch is aborted and
    /// rolled back. Must be at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry after that.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff interval.
    pub max_backoff: Duration,
}

impl InstallPolicy {
    /// The backoff to wait before attempt `attempt` (1-based; attempt 1
    /// is immediate, attempt 2 waits `base_backoff`, attempt 3 twice
    /// that, … capped at `max_backoff`).
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        let doublings = (attempt - 2).min(20);
        (self.base_backoff * 2u32.pow(doublings)).min(self.max_backoff)
    }
}

impl Default for InstallPolicy {
    /// Five attempts, 1 ms initial backoff, 64 ms cap — enough to ride
    /// out bursty faults without stalling an epoch behind a dead switch.
    fn default() -> Self {
        InstallPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(64),
        }
    }
}

/// The result of successfully processing one event.
#[derive(Clone, Debug)]
pub enum EpochOutcome {
    /// The staged tagging validated; deltas were emitted and the
    /// snapshot advanced.
    Committed(CommitReport),
    /// The staged tagging was rejected; the previous snapshot (and the
    /// previous network-state view) remain in force.
    RolledBack {
        /// The state version that was staged and then abandoned.
        abandoned_version: u64,
        /// Why validation rejected it.
        reason: RollbackReason,
    },
}

impl EpochOutcome {
    /// The commit report, if this outcome committed.
    pub fn committed(&self) -> Option<&CommitReport> {
        match self {
            EpochOutcome::Committed(r) => Some(r),
            EpochOutcome::RolledBack { .. } => None,
        }
    }
}

/// A committed configuration: the deadlock-freedom certificate plus the
/// exact rule tables switches are running.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Commit counter; 0 is the bootstrap tagging for the healthy
    /// network.
    pub epoch: u64,
    /// The [`NetworkState::version`] this snapshot was computed from.
    pub version: u64,
    /// The verified tagged graph (Theorem 5.1 certificate).
    pub graph: TaggedGraph,
    /// The committed per-switch rule tables.
    pub rules: RuleSet,
    /// Lossless priorities consumed.
    pub lossless_tags: usize,
    /// Worst per-switch TCAM footprint (joint compression).
    pub tcam_worst_switch: usize,
    /// ELP paths covered.
    pub elp_paths: usize,
}

impl Snapshot {
    /// Exports the committed rule tables in the plain-text form
    /// ([`tagger_core::RuleSet::to_table_text`]) offline verification
    /// tooling consumes — the payload of an audit checkpoint.
    pub fn export_tables(&self, topo: &Topology) -> String {
        self.rules.to_table_text(topo)
    }
}

/// The control-plane daemon core: consumes [`CtrlEvent`]s, maintains the
/// committed [`Snapshot`], and emits [`RuleDelta`]s.
///
/// Rollout is two-phase. *Stage*: apply the event to a scratch copy of
/// the network state and recompute the tagging from the policy ELP.
/// *Validate*: the recompute must produce a certified tagged graph
/// (monotone + per-tag acyclic, with every ELP path lossless) and, if a
/// TCAM budget is set, fit the worst switch within it. Only then does
/// the controller *commit*: the scratch state becomes current, the
/// snapshot advances one epoch, and the per-switch diffs against the
/// previous tables are returned for installation. On rollback nothing
/// moves — including the network-state mutation itself, so a `LinkDown`
/// whose reroute tagging is rejected leaves the controller deliberately
/// blind to that failure rather than half-converged (a later `Resync`
/// or any subsequent event retries from scratch).
#[derive(Clone, Debug)]
pub struct Controller {
    topo: Topology,
    policy: ElpPolicy,
    tcam_budget: Option<usize>,
    state: NetworkState,
    committed: Snapshot,
    metrics: ControllerMetrics,
}

impl Controller {
    /// Builds a controller for a healthy network and commits epoch 0.
    pub fn new(topo: Topology, policy: ElpPolicy) -> Result<Self, CtrlError> {
        Self::with_budget(topo, policy, None)
    }

    /// Like [`Controller::new`] but enforcing a per-switch TCAM budget
    /// (entries after joint compression) on every epoch, including
    /// epoch 0.
    pub fn with_budget(
        topo: Topology,
        policy: ElpPolicy,
        tcam_budget: Option<usize>,
    ) -> Result<Self, CtrlError> {
        let state = NetworkState::initial();
        let (snapshot, _) = stage(&topo, &policy, &state, 0).map_err(CtrlError::Bootstrap)?;
        if let Some(budget) = tcam_budget {
            if snapshot.tcam_worst_switch > budget {
                return Err(CtrlError::BootstrapBudget {
                    worst_switch_entries: snapshot.tcam_worst_switch,
                    budget,
                });
            }
        }
        Ok(Controller {
            topo,
            policy,
            tcam_budget,
            state,
            committed: snapshot,
            metrics: ControllerMetrics::default(),
        })
    }

    /// Rebuilds a controller from a recovered network state, as read
    /// back from a journal checkpoint: the tagging for `state` is
    /// recomputed deterministically and committed as `epoch`. Because
    /// staging is a pure function of `(topo, policy, state)`, the
    /// snapshot this produces is byte-for-byte the one the crashed
    /// controller had committed at that checkpoint.
    pub fn resume(
        topo: Topology,
        policy: ElpPolicy,
        tcam_budget: Option<usize>,
        state: NetworkState,
        epoch: u64,
    ) -> Result<Self, CtrlError> {
        let (snapshot, _) = stage(&topo, &policy, &state, epoch).map_err(CtrlError::Bootstrap)?;
        if let Some(budget) = tcam_budget {
            if snapshot.tcam_worst_switch > budget {
                return Err(CtrlError::BootstrapBudget {
                    worst_switch_entries: snapshot.tcam_worst_switch,
                    budget,
                });
            }
        }
        Ok(Controller {
            topo,
            policy,
            tcam_budget,
            state,
            committed: snapshot,
            metrics: ControllerMetrics::default(),
        })
    }

    /// The topology under management.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// The ELP policy in force.
    pub fn policy(&self) -> ElpPolicy {
        self.policy
    }

    /// The committed network-state view.
    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    /// The committed snapshot (always verified).
    pub fn committed(&self) -> &Snapshot {
        &self.committed
    }

    /// Metrics so far.
    pub fn metrics(&self) -> &ControllerMetrics {
        &self.metrics
    }

    /// Counts a checkpoint written by the journal layer.
    pub(crate) fn bump_checkpoints(&mut self) {
        self.metrics.checkpoints += 1;
    }

    /// Counts link transitions absorbed by flap damping. Public so
    /// external batching layers that run their own [`DampingPolicy`]
    /// (e.g. a fleet ingest queue) and call
    /// [`Controller::handle_batch_via`] directly can keep this metric
    /// truthful: bump by `batch.len() - 1` per damped batch, matching
    /// what [`Controller::replay_damped_via`] records.
    ///
    /// [`DampingPolicy`]: crate::DampingPolicy
    pub fn bump_flaps_damped(&mut self, n: u64) {
        self.metrics.flaps_damped += n;
    }

    /// Records how many events the most recent crash recovery replayed.
    pub(crate) fn set_recovery_replays(&mut self, n: u64) {
        self.metrics.recovery_replays = n;
    }

    /// Processes one event through the two-phase rollout, assuming a
    /// perfectly reliable install path (PR 1 semantics: the commit *is*
    /// the install). Production callers that own a real southbound
    /// should use [`Controller::handle_via`] instead.
    pub fn handle(&mut self, event: &CtrlEvent) -> Result<EpochOutcome, CtrlError> {
        self.handle_batch(std::slice::from_ref(event))
    }

    /// Like [`Controller::handle`] but staging one recompute for a whole
    /// batch of events — the primitive flap damping is built from. All
    /// state mutations land (the version bumps once per event), but only
    /// one epoch is staged, validated and committed; on rollback the
    /// entire batch's mutations are abandoned together.
    pub fn handle_batch(&mut self, events: &[CtrlEvent]) -> Result<EpochOutcome, CtrlError> {
        match self.plan(events)? {
            Plan::Reject(outcome) => Ok(outcome),
            Plan::Commit {
                staged_state,
                candidate,
                report,
            } => {
                self.advance(staged_state, candidate, &report);
                Ok(EpochOutcome::Committed(report))
            }
        }
    }

    /// The hardened rollout: stage → validate → **install → barrier →
    /// commit-or-rollback**.
    ///
    /// Each per-switch delta is pushed through `southbound` with
    /// per-switch retry and exponential backoff under `policy`. The
    /// epoch commits only when *every* touched switch acks — the commit
    /// barrier. If any switch exhausts its attempt budget, every switch
    /// already updated (including the failing one, which may hold a
    /// partial apply) is driven back to the previous verified tables
    /// with unbounded retries, so the fleet is never left running a mix
    /// of epochs; the outcome is then a rollback with
    /// [`RollbackReason::InstallAborted`] and the controller's own state
    /// does not advance either.
    pub fn handle_via(
        &mut self,
        event: &CtrlEvent,
        southbound: &mut dyn Southbound,
        policy: &InstallPolicy,
    ) -> Result<EpochOutcome, CtrlError> {
        self.handle_batch_via(std::slice::from_ref(event), southbound, policy)
    }

    /// Batch form of [`Controller::handle_via`]; see
    /// [`Controller::handle_batch`] for batch semantics.
    pub fn handle_batch_via(
        &mut self,
        events: &[CtrlEvent],
        southbound: &mut dyn Southbound,
        policy: &InstallPolicy,
    ) -> Result<EpochOutcome, CtrlError> {
        let (staged_state, candidate, mut report) = match self.plan(events)? {
            Plan::Reject(outcome) => return Ok(outcome),
            Plan::Commit {
                staged_state,
                candidate,
                report,
            } => (staged_state, candidate, report),
        };

        let mut attempts_total = 0u64;
        let mut backoff_total = Duration::ZERO;
        let mut touched: Vec<&RuleDelta> = Vec::new();
        let mut abort: Option<(NodeId, u32, InstallError)> = None;
        for delta in &report.deltas {
            // Even a failed install may have mutated the switch (partial
            // apply, lost-ack timeout), so the switch is "touched" — and
            // rolled back on abort — no matter how the attempt ends.
            touched.push(delta);
            match self.install_with_retry(southbound, candidate.epoch, delta, policy) {
                Ok((attempts, backoff)) => {
                    attempts_total += u64::from(attempts);
                    backoff_total += backoff;
                }
                Err((attempts, backoff, error)) => {
                    attempts_total += u64::from(attempts);
                    backoff_total += backoff;
                    abort = Some((delta.switch, attempts, error));
                    break;
                }
            }
        }

        if let Some((switch, attempts, error)) = abort {
            // Roll the stragglers back to the previous verified tables.
            // These installs retry without an attempt bound: leaving the
            // fleet mixed-epoch is the one outcome that voids the
            // Theorem 5.1 certificate, so the controller insists. The
            // chaos schedule's clamped fault rates guarantee termination.
            for delta in touched {
                self.force_install(southbound, self.committed.epoch, &delta.inverse());
            }
            self.metrics.install_aborts += 1;
            self.metrics.rollbacks += 1;
            return Ok(EpochOutcome::RolledBack {
                abandoned_version: staged_state.version,
                reason: RollbackReason::InstallAborted {
                    switch,
                    attempts,
                    error: error.to_string(),
                },
            });
        }

        report.install_attempts = attempts_total;
        report.install_backoff = backoff_total;
        debug_assert_eq!(
            southbound.fleet(),
            &candidate.rules,
            "commit barrier: an acked epoch must leave the fleet on the new tables"
        );
        self.advance(staged_state, candidate, &report);
        Ok(EpochOutcome::Committed(report))
    }

    /// Replays a whole trace, stopping at the first malformed event.
    pub fn replay<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a CtrlEvent>,
    ) -> Result<Vec<EpochOutcome>, CtrlError> {
        events.into_iter().map(|e| self.handle(e)).collect()
    }

    /// Replays a trace through a southbound with **flap damping**: a
    /// maximal run of consecutive link events on the *same* link (a
    /// flapping transceiver re-announcing down/up/down/up…) is debounced
    /// into a single recompute of its net effect, instead of staging a
    /// full tagging per transition. Returns one outcome per damped
    /// batch; [`ControllerMetrics::flaps_damped`] counts the recomputes
    /// saved.
    pub fn replay_damped_via<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a CtrlEvent>,
        southbound: &mut dyn Southbound,
        policy: &InstallPolicy,
    ) -> Result<Vec<EpochOutcome>, CtrlError> {
        self.replay_damped_via_observed(events, southbound, policy, &mut crate::NoopObserver)
    }

    /// Like [`Controller::replay_damped_via`], but invoking `observer`
    /// after every committed epoch (rollbacks are not observed) — the
    /// entry point for running an independent audit of each epoch's
    /// installed tables alongside the replay.
    pub fn replay_damped_via_observed<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a CtrlEvent>,
        southbound: &mut dyn Southbound,
        policy: &InstallPolicy,
        observer: &mut dyn crate::CommitObserver,
    ) -> Result<Vec<EpochOutcome>, CtrlError> {
        let events: Vec<&CtrlEvent> = events.into_iter().collect();
        let mut outcomes = Vec::new();
        for batch in coalesce_flaps(&events) {
            self.metrics.flaps_damped += batch.len() as u64 - 1;
            let owned: Vec<CtrlEvent> = batch.iter().map(|&e| e.clone()).collect();
            let outcome = self.handle_batch_via(&owned, southbound, policy)?;
            if let EpochOutcome::Committed(report) = &outcome {
                observer.on_commit(&self.topo, &self.committed, report);
            }
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }

    /// Drives the fleet to the committed tables: diffs what the
    /// southbound reports the switches are running against the committed
    /// snapshot and installs the difference (with unbounded retries —
    /// reconciliation is the step that *repairs* divergence, it cannot
    /// be allowed to leave any). Returns the number of switches fixed.
    ///
    /// This is the last step of crash recovery: a controller that died
    /// mid-epoch may have left partial installs behind, and the journal
    /// cannot know which — the fleet itself is the authority.
    pub fn reconcile(&mut self, southbound: &mut dyn Southbound) -> usize {
        let deltas = southbound.fleet().diff(&self.committed.rules);
        let fixed = deltas.len();
        for delta in deltas {
            self.force_install(southbound, self.committed.epoch, &delta);
        }
        debug_assert_eq!(southbound.fleet(), &self.committed.rules);
        fixed
    }

    /// Stage + validate a batch of events; does not mutate committed
    /// state (metrics only).
    fn plan(&mut self, events: &[CtrlEvent]) -> Result<Plan, CtrlError> {
        let mut staged_state = self.state.clone();
        for event in events {
            staged_state.apply(&self.topo, event)?;
        }
        self.metrics.events += events.len() as u64;
        // Classify watchdog activity against the quarantine set as it
        // evolves through the batch: cause-directed vs victim-fallback
        // quarantines, and trips whose effective hop was already masked.
        let mut quarantined = self.state.quarantines.clone();
        for event in events {
            match event {
                CtrlEvent::WatchdogTrip { trigger, .. } => {
                    self.metrics.watchdog_trips += 1;
                    let target = event
                        .effective_quarantine()
                        .expect("WatchdogTrip has a target");
                    if !quarantined.insert(target) {
                        self.metrics.attribution_dedups += 1;
                    } else if trigger.is_some() {
                        self.metrics.trigger_quarantines += 1;
                    } else {
                        self.metrics.victim_fallbacks += 1;
                    }
                }
                CtrlEvent::WatchdogClear { switch, port, tag } => {
                    self.metrics.watchdog_clears += 1;
                    quarantined.remove(&(*switch, *port, tag.0));
                }
                _ => {}
            }
        }

        let t0 = Instant::now();
        let staged = stage(
            &self.topo,
            &self.policy,
            &staged_state,
            self.committed.epoch + 1,
        );
        let dt = t0.elapsed();
        self.metrics.epochs_staged += 1;
        self.metrics.record_recompute(dt);

        let (candidate, elp_len) = match staged {
            Ok(ok) => ok,
            Err(e) => {
                self.metrics.verify_failures += 1;
                self.metrics.rollbacks += 1;
                return Ok(Plan::Reject(EpochOutcome::RolledBack {
                    abandoned_version: staged_state.version,
                    reason: RollbackReason::VerifyFailed(e.to_string()),
                }));
            }
        };

        if let Some(budget) = self.tcam_budget {
            if candidate.tcam_worst_switch > budget {
                self.metrics.budget_rejections += 1;
                self.metrics.rollbacks += 1;
                return Ok(Plan::Reject(EpochOutcome::RolledBack {
                    abandoned_version: staged_state.version,
                    reason: RollbackReason::BudgetExceeded {
                        worst_switch_entries: candidate.tcam_worst_switch,
                        budget,
                    },
                }));
            }
        }

        // Validation passed. Deltas are diffed against the previously
        // committed tables, so a switch applying them in epoch order
        // tracks the snapshot exactly.
        let deltas = self.committed.rules.diff(&candidate.rules);
        let rules_added = deltas.iter().map(|d| d.add.len()).sum();
        let rules_removed = deltas.iter().map(|d| d.remove.len()).sum();
        let report = CommitReport {
            epoch: candidate.epoch,
            version: candidate.version,
            rules_added,
            rules_removed,
            prev_table_rules: self.committed.rules.num_rules(),
            new_table_rules: candidate.rules.num_rules(),
            lossless_tags: candidate.lossless_tags,
            tcam_worst_switch: candidate.tcam_worst_switch,
            elp_paths: elp_len,
            recompute: dt,
            install_attempts: 0,
            install_backoff: Duration::ZERO,
            deltas,
        };
        Ok(Plan::Commit {
            staged_state,
            candidate,
            report,
        })
    }

    /// The commit point: the staged view becomes current.
    fn advance(&mut self, staged_state: NetworkState, candidate: Snapshot, report: &CommitReport) {
        self.metrics.epochs_committed += 1;
        self.metrics.rules_added += report.rules_added as u64;
        self.metrics.rules_removed += report.rules_removed as u64;
        self.state = staged_state;
        self.committed = candidate;
    }

    /// One switch's install under the retry policy. Returns the attempts
    /// spent and backoff accrued either way.
    fn install_with_retry(
        &mut self,
        southbound: &mut dyn Southbound,
        epoch: u64,
        delta: &RuleDelta,
        policy: &InstallPolicy,
    ) -> Result<(u32, Duration), (u32, Duration, InstallError)> {
        let mut backoff = Duration::ZERO;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            backoff += policy.backoff_before(attempt);
            self.metrics.install_attempts += 1;
            match southbound.install(epoch, delta) {
                Ok(()) => {
                    self.metrics.install_backoff += backoff;
                    return Ok((attempt, backoff));
                }
                Err(e) => {
                    self.metrics.install_failures += 1;
                    if !e.is_retryable() || attempt >= policy.max_attempts.max(1) {
                        self.metrics.install_backoff += backoff;
                        return Err((attempt, backoff, e));
                    }
                    self.metrics.install_retries += 1;
                }
            }
        }
    }

    /// An install that must land: retries until the southbound acks.
    /// Used for rollback and reconciliation, where giving up would leave
    /// the fleet mixed-epoch. The attempt cap exists only to turn a
    /// southbound that can *never* succeed (fault rate 1 — outside the
    /// supported model, [`crate::ChaosConfig`] clamps below it) into a
    /// loud panic instead of a hang.
    fn force_install(&mut self, southbound: &mut dyn Southbound, epoch: u64, delta: &RuleDelta) {
        const CAP: u32 = 100_000;
        for _ in 0..CAP {
            self.metrics.install_attempts += 1;
            match southbound.install(epoch, delta) {
                Ok(()) => {
                    self.metrics.rollback_installs += 1;
                    return;
                }
                Err(e) => {
                    self.metrics.install_failures += 1;
                    assert!(
                        e.is_retryable(),
                        "rollback to previously-fitting tables hit a permanent error: {e}"
                    );
                }
            }
        }
        panic!("southbound refused a rollback install {CAP} times; fault model violated");
    }
}

/// What [`Controller::plan`] decided for one staged batch.
enum Plan {
    /// Validation rejected the candidate; nothing may move.
    Reject(EpochOutcome),
    /// Validation passed; the caller decides how commit meets install.
    Commit {
        staged_state: NetworkState,
        candidate: Snapshot,
        report: CommitReport,
    },
}

/// Splits an event stream into damping batches: maximal runs of
/// consecutive link events on the same link collapse into one batch
/// (one recompute of the run's net effect); every other event is its
/// own singleton batch.
pub fn coalesce_flaps<'a>(events: &'a [&'a CtrlEvent]) -> Vec<&'a [&'a CtrlEvent]> {
    fn link_of(e: &CtrlEvent) -> Option<LinkId> {
        match e {
            CtrlEvent::LinkDown(l) | CtrlEvent::LinkUp(l) => Some(*l),
            _ => None,
        }
    }
    let mut batches = Vec::new();
    let mut start = 0;
    while start < events.len() {
        let mut end = start + 1;
        if let Some(link) = link_of(events[start]) {
            while end < events.len() && link_of(events[end]) == Some(link) {
                end += 1;
            }
        }
        batches.push(&events[start..end]);
        start = end;
    }
    batches
}

/// Stage step: recompute the tagging for a state and certify it.
///
/// Returns the candidate snapshot and the ELP size. The version stamped
/// into the snapshot is the state's; the epoch is the caller's.
fn stage(
    topo: &Topology,
    policy: &ElpPolicy,
    state: &NetworkState,
    epoch: u64,
) -> Result<(Snapshot, usize), RuleError> {
    let elp = policy.elp_for(topo, state);
    let tagging = Tagging::from_elp(topo, &elp)?;
    // `from_elp` already certified the closure graph; re-verify here so
    // the commit decision never depends on a distant invariant.
    tagging
        .graph()
        .verify()
        .map_err(RuleError::NotDeadlockFree)?;
    let tcam = TcamProgram::compile(topo, tagging.rules(), Compression::Joint);
    Ok((
        Snapshot {
            epoch,
            version: state.version,
            lossless_tags: tagging.num_lossless_tags_on(topo),
            tcam_worst_switch: tcam.max_entries_per_switch(),
            elp_paths: elp.len(),
            graph: tagging.graph().clone(),
            rules: tagging.rules().clone(),
        },
        elp.len(),
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::event::parse_trace;
    use tagger_topo::ClosConfig;

    fn small_controller() -> Controller {
        Controller::new(ClosConfig::small().build(), ElpPolicy::with_bounces(1)).unwrap()
    }

    #[test]
    fn bootstrap_commits_a_verified_epoch_zero() {
        let ctrl = small_controller();
        assert_eq!(ctrl.committed().epoch, 0);
        assert!(ctrl.committed().graph.verify().is_ok());
        assert!(ctrl.committed().rules.num_rules() > 0);
        // The general greedy pipeline is near-optimal here: the §4
        // Clos-specific construction would use 2 priorities for 1-bounce
        // ELPs, the greedy merge lands within one of that.
        assert!(ctrl.committed().lossless_tags <= 3);
    }

    #[test]
    fn link_down_commits_incremental_deltas() {
        let mut ctrl = small_controller();
        let full_before = ctrl.committed().rules.num_rules();
        let events = parse_trace(ctrl.topo(), "down L1 T1").unwrap();
        let outcome = ctrl.handle(&events[0]).unwrap();
        let report = outcome.committed().expect("single link down must commit");
        assert_eq!(report.epoch, 1);
        assert!(!report.deltas.is_empty(), "reroute must change some tables");
        assert!(
            report.delta_ops() < report.full_reinstall_ops(),
            "deltas ({} ops) must beat full reinstall ({} ops)",
            report.delta_ops(),
            report.full_reinstall_ops()
        );
        assert!(report.full_reinstall_ops() >= full_before);
        assert!(ctrl.committed().graph.verify().is_ok());
    }

    #[test]
    fn link_up_restores_the_original_tables() {
        let mut ctrl = small_controller();
        let original = ctrl.committed().rules.clone();
        let events = parse_trace(ctrl.topo(), "down L1 T1\nup L1 T1").unwrap();
        let outcomes = ctrl.replay(events.iter()).unwrap();
        assert!(outcomes.iter().all(|o| o.committed().is_some()));
        assert_eq!(ctrl.committed().epoch, 2);
        assert_eq!(
            ctrl.committed().rules,
            original,
            "recovering the link must converge back to the healthy tables"
        );
    }

    #[test]
    fn deltas_replayed_in_order_reproduce_committed_tables() {
        let mut ctrl = small_controller();
        let mut mirror = ctrl.committed().rules.clone();
        let trace = "down L1 T1\ndown L3 T3\nup L1 T1\nresync\nup L3 T3";
        let events = parse_trace(ctrl.topo(), trace).unwrap();
        for outcome in ctrl.replay(events.iter()).unwrap() {
            if let Some(report) = outcome.committed() {
                for delta in &report.deltas {
                    mirror.apply_delta(delta);
                }
            }
        }
        assert_eq!(mirror, ctrl.committed().rules);
    }

    #[test]
    fn tight_tcam_budget_rolls_back_and_preserves_state() {
        let topo = ClosConfig::small().build();
        let healthy = Controller::new(topo.clone(), ElpPolicy::with_bounces(1)).unwrap();
        let budget = healthy.committed().tcam_worst_switch;
        // Budget exactly at the healthy footprint: bootstrap fits, but a
        // failure's reroute tagging (more bounce variety through fewer
        // links) needs more entries somewhere and must be rejected.
        let mut ctrl =
            Controller::with_budget(topo, ElpPolicy::with_bounces(1), Some(budget)).unwrap();
        let before_rules = ctrl.committed().rules.clone();
        let before_version = ctrl.state().version;
        let events = parse_trace(ctrl.topo(), "down L1 T1").unwrap();
        match ctrl.handle(&events[0]).unwrap() {
            EpochOutcome::RolledBack { reason, .. } => {
                assert!(matches!(reason, RollbackReason::BudgetExceeded { .. }));
            }
            EpochOutcome::Committed(r) => {
                // If the reroute happens to fit the budget, the commit
                // must still respect it.
                assert!(r.tcam_worst_switch <= budget);
                return;
            }
        }
        assert_eq!(
            ctrl.committed().epoch,
            0,
            "rollback must not advance epochs"
        );
        assert_eq!(ctrl.committed().rules, before_rules);
        assert_eq!(
            ctrl.state().version,
            before_version,
            "rollback must also revert the staged state mutation"
        );
        assert_eq!(ctrl.metrics().rollbacks, 1);
        assert_eq!(ctrl.metrics().budget_rejections, 1);
    }

    #[test]
    fn impossible_budget_fails_bootstrap() {
        let topo = ClosConfig::small().build();
        let err = Controller::with_budget(topo, ElpPolicy::updown(), Some(1)).unwrap_err();
        assert!(matches!(err, CtrlError::BootstrapBudget { budget: 1, .. }));
    }

    #[test]
    fn elp_add_then_remove_round_trips() {
        let mut ctrl = small_controller();
        let original = ctrl.committed().rules.clone();
        // A 2-bounce path (bounces at T2 and T3) — outside the 1-bounce
        // policy enumeration, so pinning it genuinely changes the ELP.
        let trace = "elp-add H1 T1 L1 T2 L2 S1 L3 T3 L4 T4 H13\n\
                     elp-remove H1 T1 L1 T2 L2 S1 L3 T3 L4 T4 H13";
        let events = parse_trace(ctrl.topo(), trace).unwrap();
        let outcomes = ctrl.replay(events.iter()).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.committed().is_some()));
        assert_eq!(ctrl.committed().rules, original);
        assert!(ctrl.state().extra_paths.is_empty());
    }

    #[test]
    fn watchdog_trip_commits_a_corrective_delta_and_clear_restores() {
        let mut ctrl = small_controller();
        let original = ctrl.committed().rules.clone();
        let events = parse_trace(ctrl.topo(), "watchdog L1 0 2").unwrap();
        let outcome = ctrl.handle(&events[0]).unwrap();
        let report = outcome.committed().expect("quarantine must commit");
        assert_eq!(report.epoch, 1);
        assert!(
            !report.deltas.is_empty(),
            "quarantining a spine-facing hop must change some tables"
        );
        assert_eq!(ctrl.state().quarantines.len(), 1);
        assert!(ctrl.committed().graph.verify().is_ok());
        assert_eq!(ctrl.metrics().watchdog_trips, 1);

        let events = parse_trace(ctrl.topo(), "watchdog-clear L1 0 2").unwrap();
        let outcome = ctrl.handle(&events[0]).unwrap();
        assert!(outcome.committed().is_some());
        assert!(ctrl.state().quarantines.is_empty());
        assert_eq!(
            ctrl.committed().rules,
            original,
            "lifting the quarantine must converge back to the healthy tables"
        );
        assert_eq!(ctrl.metrics().watchdog_clears, 1);
    }

    #[test]
    fn reliable_southbound_commits_track_the_fleet() {
        let mut ctrl = small_controller();
        let mut sb = crate::ReliableSouthbound::new();
        sb.bootstrap(&ctrl.committed().rules);
        let policy = InstallPolicy::default();
        let events = parse_trace(ctrl.topo(), "down L1 T1\nup L1 T1").unwrap();
        for e in &events {
            let outcome = ctrl.handle_via(e, &mut sb, &policy).unwrap();
            let report = outcome.committed().expect("reliable installs commit");
            assert_eq!(report.install_attempts, report.deltas.len() as u64);
            assert_eq!(report.install_backoff, Duration::ZERO);
            assert_eq!(sb.fleet(), &ctrl.committed().rules);
        }
    }

    #[test]
    fn chaotic_installs_never_leave_the_fleet_mixed_epoch() {
        use crate::{ChaosConfig, ChaosSouthbound};
        let mut ctrl = small_controller();
        let mut sb = ChaosSouthbound::new(ChaosConfig::new(5, 0.4));
        sb.bootstrap(&ctrl.committed().rules);
        let policy = InstallPolicy {
            max_attempts: 2, // tight budget so some epochs abort
            ..InstallPolicy::default()
        };
        let trace = "down L1 T1\ndown L3 T3\nup L1 T1\nup L3 T3\nresync";
        let events = parse_trace(ctrl.topo(), trace).unwrap();
        let mut aborted = 0;
        for e in &events {
            match ctrl.handle_via(e, &mut sb, &policy).unwrap() {
                EpochOutcome::Committed(_) => {}
                EpochOutcome::RolledBack { reason, .. } => {
                    assert!(matches!(reason, RollbackReason::InstallAborted { .. }));
                    aborted += 1;
                }
            }
            // The barrier invariant, checked against the fleet's ground
            // truth after *every* event, committed or aborted:
            assert_eq!(
                sb.fleet(),
                &ctrl.committed().rules,
                "fleet must always run exactly the committed (verified) tables"
            );
            assert!(ctrl.committed().graph.verify().is_ok());
        }
        assert!(sb.faults_injected() > 0, "40% chaos must inject faults");
        let m = ctrl.metrics();
        assert!(m.install_attempts > events.len() as u64);
        assert!(m.install_failures > 0);
        if aborted > 0 {
            assert_eq!(m.install_aborts, aborted);
            assert!(m.rollback_installs > 0);
        }
    }

    #[test]
    fn retries_accrue_recorded_backoff() {
        use crate::{ChaosConfig, ChaosSouthbound};
        let mut ctrl = small_controller();
        let mut sb = ChaosSouthbound::new(ChaosConfig::new(9, 0.6));
        sb.bootstrap(&ctrl.committed().rules);
        let policy = InstallPolicy::default();
        let events = parse_trace(ctrl.topo(), "down L1 T1\nup L1 T1\nresync").unwrap();
        for e in &events {
            ctrl.handle_via(e, &mut sb, &policy).unwrap();
        }
        let m = ctrl.metrics();
        assert!(m.install_retries > 0, "60% chaos must force retries");
        assert!(m.install_backoff > Duration::ZERO);
    }

    #[test]
    fn backoff_schedule_doubles_up_to_the_cap() {
        let p = InstallPolicy::default();
        assert_eq!(p.backoff_before(1), Duration::ZERO);
        assert_eq!(p.backoff_before(2), Duration::from_millis(1));
        assert_eq!(p.backoff_before(3), Duration::from_millis(2));
        assert_eq!(p.backoff_before(8), Duration::from_millis(64));
        assert_eq!(p.backoff_before(40), Duration::from_millis(64), "capped");
    }

    #[test]
    fn flap_damping_coalesces_repeated_transitions() {
        let mut ctrl = small_controller();
        let mut sb = crate::ReliableSouthbound::new();
        sb.bootstrap(&ctrl.committed().rules);
        let original = ctrl.committed().rules.clone();
        // 4 down/up pairs on one link then a real failure elsewhere.
        let events = parse_trace(ctrl.topo(), "flap L1 T1 4\ndown L2 T2").unwrap();
        assert_eq!(events.len(), 9);
        let outcomes = ctrl
            .replay_damped_via(events.iter(), &mut sb, &InstallPolicy::default())
            .unwrap();
        assert_eq!(outcomes.len(), 2, "8 flap events + 1 failure → 2 epochs");
        assert_eq!(ctrl.metrics().flaps_damped, 7);
        assert_eq!(ctrl.metrics().epochs_staged, 2);
        // The flap's net effect is "nothing": its batch commits the same
        // tables (empty deltas), then the real failure reroutes.
        let flap_report = outcomes[0].committed().unwrap();
        assert!(flap_report.deltas.is_empty());
        assert_eq!(flap_report.version, 8);
        assert_ne!(ctrl.committed().rules, original);
        assert_eq!(sb.fleet(), &ctrl.committed().rules);
    }

    #[test]
    fn resume_rebuilds_the_same_snapshot() {
        let mut ctrl = small_controller();
        let events = parse_trace(ctrl.topo(), "down L1 T1\ndown L2 T2").unwrap();
        ctrl.replay(events.iter()).unwrap();
        let resumed = Controller::resume(
            ctrl.topo().clone(),
            ctrl.policy(),
            None,
            ctrl.state().clone(),
            ctrl.committed().epoch,
        )
        .unwrap();
        assert_eq!(resumed.committed().rules, ctrl.committed().rules);
        assert_eq!(resumed.committed().epoch, ctrl.committed().epoch);
        assert_eq!(resumed.state(), ctrl.state());
    }

    #[test]
    fn reconcile_repairs_a_diverged_fleet() {
        let mut ctrl = small_controller();
        let mut sb = crate::ReliableSouthbound::new();
        // Deliberately bootstrap the fleet with nothing: maximal
        // divergence from the committed tables.
        sb.bootstrap(&RuleSet::new());
        let fixed = ctrl.reconcile(&mut sb);
        assert!(fixed > 0);
        assert_eq!(sb.fleet(), &ctrl.committed().rules);
        assert_eq!(ctrl.reconcile(&mut sb), 0, "second pass has nothing to do");
    }

    #[test]
    fn malformed_event_is_a_hard_error_not_a_rollback() {
        let mut ctrl = small_controller();
        let bogus = tagger_topo::LinkId(ctrl.topo().num_links() as u32 + 7);
        let err = ctrl.handle(&CtrlEvent::LinkDown(bogus)).unwrap_err();
        assert_eq!(err, CtrlError::UnknownLink(bogus));
        assert_eq!(ctrl.metrics().events, 0);
        assert_eq!(ctrl.committed().epoch, 0);
    }
}
