//! Controller observability: counters, latencies, and a text report.

use std::fmt::Write as _;
use std::time::Duration;

/// Counters the [`Controller`](crate::Controller) maintains across its
/// lifetime. All counters are cumulative; latencies cover the *stage*
/// step (ELP enumeration + tagging recompute + certification), which is
/// the expensive part of an epoch.
#[derive(Clone, Debug, Default)]
pub struct ControllerMetrics {
    /// Events accepted (malformed events that return an error do not
    /// count).
    pub events: u64,
    /// Epochs staged: a candidate tagging was computed.
    pub epochs_staged: u64,
    /// Epochs committed: the candidate passed validation and its deltas
    /// were emitted.
    pub epochs_committed: u64,
    /// Epochs rolled back for any reason.
    pub rollbacks: u64,
    /// Rollbacks caused by Theorem 5.1 verification failure.
    pub verify_failures: u64,
    /// Rollbacks caused by the per-switch TCAM budget.
    pub budget_rejections: u64,
    /// Total rules installed across all committed deltas.
    pub rules_added: u64,
    /// Total rules withdrawn across all committed deltas.
    pub rules_removed: u64,
    /// Stage latency of the most recent epoch.
    pub last_recompute: Duration,
    /// Worst stage latency seen.
    pub max_recompute: Duration,
    /// Sum of all stage latencies (for the mean).
    pub total_recompute: Duration,
}

impl ControllerMetrics {
    /// Mean stage latency over all staged epochs.
    pub fn mean_recompute(&self) -> Duration {
        if self.epochs_staged == 0 {
            Duration::ZERO
        } else {
            self.total_recompute / self.epochs_staged as u32
        }
    }

    /// Records one stage latency sample.
    pub(crate) fn record_recompute(&mut self, d: Duration) {
        self.last_recompute = d;
        self.max_recompute = self.max_recompute.max(d);
        self.total_recompute += d;
    }

    /// Plain-text report, one metric per line.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "controller metrics");
        let _ = writeln!(out, "  events processed    {:>8}", self.events);
        let _ = writeln!(out, "  epochs staged       {:>8}", self.epochs_staged);
        let _ = writeln!(out, "  epochs committed    {:>8}", self.epochs_committed);
        let _ = writeln!(out, "  rollbacks           {:>8}", self.rollbacks);
        let _ = writeln!(out, "    verify failures   {:>8}", self.verify_failures);
        let _ = writeln!(out, "    budget rejections {:>8}", self.budget_rejections);
        let _ = writeln!(out, "  rules added         {:>8}", self.rules_added);
        let _ = writeln!(out, "  rules removed       {:>8}", self.rules_removed);
        let _ = writeln!(
            out,
            "  recompute last/mean/max  {:?} / {:?} / {:?}",
            self.last_recompute,
            self.mean_recompute(),
            self.max_recompute
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_mentions_every_counter() {
        let mut m = ControllerMetrics {
            events: 7,
            epochs_staged: 6,
            epochs_committed: 5,
            rollbacks: 1,
            budget_rejections: 1,
            ..ControllerMetrics::default()
        };
        m.record_recompute(Duration::from_millis(3));
        m.record_recompute(Duration::from_millis(1));
        let r = m.report();
        for needle in [
            "events processed",
            "epochs staged",
            "epochs committed",
            "rollbacks",
            "verify failures",
            "budget rejections",
            "rules added",
            "rules removed",
            "recompute",
        ] {
            assert!(r.contains(needle), "report missing {needle:?}:\n{r}");
        }
        assert_eq!(m.max_recompute, Duration::from_millis(3));
        assert_eq!(m.last_recompute, Duration::from_millis(1));
        assert_eq!(
            m.mean_recompute(),
            Duration::from_micros(666) + Duration::from_nanos(666)
        )
    }
}
