//! Controller observability: counters, latencies, and a text report.

use std::fmt::Write as _;
use std::time::Duration;

/// Counters the [`Controller`](crate::Controller) maintains across its
/// lifetime. All counters are cumulative; latencies cover the *stage*
/// step (ELP enumeration + tagging recompute + certification), which is
/// the expensive part of an epoch.
#[derive(Clone, Debug, Default)]
pub struct ControllerMetrics {
    /// Events accepted (malformed events that return an error do not
    /// count).
    pub events: u64,
    /// Epochs staged: a candidate tagging was computed.
    pub epochs_staged: u64,
    /// Epochs committed: the candidate passed validation and its deltas
    /// were emitted.
    pub epochs_committed: u64,
    /// Epochs rolled back for any reason.
    pub rollbacks: u64,
    /// Rollbacks caused by Theorem 5.1 verification failure.
    pub verify_failures: u64,
    /// Rollbacks caused by the per-switch TCAM budget.
    pub budget_rejections: u64,
    /// Total rules installed across all committed deltas.
    pub rules_added: u64,
    /// Total rules withdrawn across all committed deltas.
    pub rules_removed: u64,
    /// Southbound install attempts (first tries, retries, rollback and
    /// reconcile installs alike).
    pub install_attempts: u64,
    /// Install attempts that were retries of an earlier failed attempt.
    pub install_retries: u64,
    /// Install attempts the southbound failed (refused, timed out, or
    /// partially applied).
    pub install_failures: u64,
    /// Epochs aborted because a switch exhausted its attempt budget
    /// (each also counts in [`ControllerMetrics::rollbacks`]).
    pub install_aborts: u64,
    /// Successful inverse-delta / reconcile installs that undid or
    /// repaired fleet state.
    pub rollback_installs: u64,
    /// Total backoff the retry schedule imposed (simulated — recorded,
    /// never slept).
    pub install_backoff: Duration,
    /// Link events absorbed by flap damping: transitions that were
    /// coalesced into a neighbouring recompute instead of staging their
    /// own epoch.
    pub flaps_damped: u64,
    /// Watchdog trip events accepted: (switch, port, tag) hops
    /// quarantined out of the ELP.
    pub watchdog_trips: u64,
    /// Trips that carried initial-trigger attribution and quarantined
    /// the attributed trigger hop (cause-directed recovery).
    pub trigger_quarantines: u64,
    /// Trips without attribution that fell back to quarantining the
    /// tripping victim hop (the pre-attribution behaviour).
    pub victim_fallbacks: u64,
    /// Trips whose effective hop was already quarantined — later trips
    /// of an episode collapsing into the existing quarantine.
    pub attribution_dedups: u64,
    /// Watchdog clear events accepted: quarantines lifted.
    pub watchdog_clears: u64,
    /// Checkpoints written to the journal.
    pub checkpoints: u64,
    /// Events replayed from the journal during the most recent crash
    /// recovery.
    pub recovery_replays: u64,
    /// Stage latency of the most recent epoch.
    pub last_recompute: Duration,
    /// Worst stage latency seen.
    pub max_recompute: Duration,
    /// Sum of all stage latencies (for the mean).
    pub total_recompute: Duration,
}

impl std::ops::AddAssign for ControllerMetrics {
    /// Fleet rollup: counters and cumulative durations add; worst-case
    /// latency takes the max; `last_recompute` takes the right-hand
    /// side's sample when it staged anything (the most recently merged
    /// fabric wins), mirroring `SwitchStats`'s one-place rollup.
    fn add_assign(&mut self, rhs: ControllerMetrics) {
        self.events += rhs.events;
        self.epochs_staged += rhs.epochs_staged;
        self.epochs_committed += rhs.epochs_committed;
        self.rollbacks += rhs.rollbacks;
        self.verify_failures += rhs.verify_failures;
        self.budget_rejections += rhs.budget_rejections;
        self.rules_added += rhs.rules_added;
        self.rules_removed += rhs.rules_removed;
        self.install_attempts += rhs.install_attempts;
        self.install_retries += rhs.install_retries;
        self.install_failures += rhs.install_failures;
        self.install_aborts += rhs.install_aborts;
        self.rollback_installs += rhs.rollback_installs;
        self.install_backoff += rhs.install_backoff;
        self.flaps_damped += rhs.flaps_damped;
        self.watchdog_trips += rhs.watchdog_trips;
        self.trigger_quarantines += rhs.trigger_quarantines;
        self.victim_fallbacks += rhs.victim_fallbacks;
        self.attribution_dedups += rhs.attribution_dedups;
        self.watchdog_clears += rhs.watchdog_clears;
        self.checkpoints += rhs.checkpoints;
        self.recovery_replays += rhs.recovery_replays;
        if rhs.epochs_staged > 0 {
            self.last_recompute = rhs.last_recompute;
        }
        self.max_recompute = self.max_recompute.max(rhs.max_recompute);
        self.total_recompute += rhs.total_recompute;
    }
}

impl std::iter::Sum for ControllerMetrics {
    fn sum<I: Iterator<Item = ControllerMetrics>>(iter: I) -> ControllerMetrics {
        iter.fold(ControllerMetrics::default(), |mut acc, m| {
            acc += m;
            acc
        })
    }
}

impl ControllerMetrics {
    /// Mean stage latency over all staged epochs.
    pub fn mean_recompute(&self) -> Duration {
        if self.epochs_staged == 0 {
            Duration::ZERO
        } else {
            self.total_recompute / self.epochs_staged as u32
        }
    }

    /// Records one stage latency sample.
    pub(crate) fn record_recompute(&mut self, d: Duration) {
        self.last_recompute = d;
        self.max_recompute = self.max_recompute.max(d);
        self.total_recompute += d;
    }

    /// Plain-text report, one metric per line.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "controller metrics");
        let _ = writeln!(out, "  events processed    {:>8}", self.events);
        let _ = writeln!(out, "  epochs staged       {:>8}", self.epochs_staged);
        let _ = writeln!(out, "  epochs committed    {:>8}", self.epochs_committed);
        let _ = writeln!(out, "  rollbacks           {:>8}", self.rollbacks);
        let _ = writeln!(out, "    verify failures   {:>8}", self.verify_failures);
        let _ = writeln!(out, "    budget rejections {:>8}", self.budget_rejections);
        let _ = writeln!(out, "    install aborts    {:>8}", self.install_aborts);
        let _ = writeln!(out, "  rules added         {:>8}", self.rules_added);
        let _ = writeln!(out, "  rules removed       {:>8}", self.rules_removed);
        let _ = writeln!(out, "  install attempts    {:>8}", self.install_attempts);
        let _ = writeln!(out, "    install retries   {:>8}", self.install_retries);
        let _ = writeln!(out, "    install failures  {:>8}", self.install_failures);
        let _ = writeln!(out, "  rollback installs   {:>8}", self.rollback_installs);
        let _ = writeln!(out, "  install backoff     {:>8?}", self.install_backoff);
        let _ = writeln!(out, "  flaps damped        {:>8}", self.flaps_damped);
        let _ = writeln!(out, "  watchdog trips      {:>8}", self.watchdog_trips);
        let _ = writeln!(
            out,
            "    trigger quarantines {:>6}",
            self.trigger_quarantines
        );
        let _ = writeln!(out, "    victim fallbacks  {:>8}", self.victim_fallbacks);
        let _ = writeln!(out, "    attribution dedups{:>8}", self.attribution_dedups);
        let _ = writeln!(out, "  watchdog clears     {:>8}", self.watchdog_clears);
        let _ = writeln!(out, "  checkpoints written {:>8}", self.checkpoints);
        let _ = writeln!(out, "  recovery replays    {:>8}", self.recovery_replays);
        let _ = writeln!(
            out,
            "  recompute last/mean/max  {:?} / {:?} / {:?}",
            self.last_recompute,
            self.mean_recompute(),
            self.max_recompute
        );
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn report_mentions_every_counter() {
        let mut m = ControllerMetrics {
            events: 7,
            epochs_staged: 6,
            epochs_committed: 5,
            rollbacks: 1,
            budget_rejections: 1,
            ..ControllerMetrics::default()
        };
        m.record_recompute(Duration::from_millis(3));
        m.record_recompute(Duration::from_millis(1));
        let r = m.report();
        for needle in [
            "events processed",
            "epochs staged",
            "epochs committed",
            "rollbacks",
            "verify failures",
            "budget rejections",
            "rules added",
            "rules removed",
            "install attempts",
            "install retries",
            "install failures",
            "install aborts",
            "rollback installs",
            "install backoff",
            "flaps damped",
            "watchdog trips",
            "trigger quarantines",
            "victim fallbacks",
            "attribution dedups",
            "watchdog clears",
            "checkpoints written",
            "recovery replays",
            "recompute",
        ] {
            assert!(r.contains(needle), "report missing {needle:?}:\n{r}");
        }
        assert_eq!(m.max_recompute, Duration::from_millis(3));
        assert_eq!(m.last_recompute, Duration::from_millis(1));
        assert_eq!(
            m.mean_recompute(),
            Duration::from_micros(666) + Duration::from_nanos(666)
        )
    }

    #[test]
    fn sum_rolls_up_counters_and_latencies() {
        let mut a = ControllerMetrics {
            events: 3,
            epochs_staged: 2,
            epochs_committed: 2,
            rules_added: 10,
            install_backoff: Duration::from_millis(4),
            ..ControllerMetrics::default()
        };
        a.record_recompute(Duration::from_millis(5));
        let mut b = ControllerMetrics {
            events: 4,
            epochs_staged: 1,
            epochs_committed: 0,
            rollbacks: 1,
            rules_added: 1,
            install_backoff: Duration::from_millis(1),
            ..ControllerMetrics::default()
        };
        b.record_recompute(Duration::from_millis(2));
        let total: ControllerMetrics = [a.clone(), b.clone()].into_iter().sum();
        assert_eq!(total.events, 7);
        assert_eq!(total.epochs_staged, 3);
        assert_eq!(total.epochs_committed, 2);
        assert_eq!(total.rollbacks, 1);
        assert_eq!(total.rules_added, 11);
        assert_eq!(total.install_backoff, Duration::from_millis(5));
        assert_eq!(total.max_recompute, Duration::from_millis(5));
        assert_eq!(total.last_recompute, b.last_recompute);
        assert_eq!(total.total_recompute, Duration::from_millis(7));
        // Empty sum is the identity.
        let zero: ControllerMetrics = std::iter::empty().sum();
        assert_eq!(zero.events, 0);
        assert_eq!(zero.total_recompute, Duration::ZERO);
    }
}
