//! Controller observability: counters, latencies, and a text report.

use std::fmt::Write as _;
use std::time::Duration;

/// Counters the [`Controller`](crate::Controller) maintains across its
/// lifetime. All counters are cumulative; latencies cover the *stage*
/// step (ELP enumeration + tagging recompute + certification), which is
/// the expensive part of an epoch.
#[derive(Clone, Debug, Default)]
pub struct ControllerMetrics {
    /// Events accepted (malformed events that return an error do not
    /// count).
    pub events: u64,
    /// Epochs staged: a candidate tagging was computed.
    pub epochs_staged: u64,
    /// Epochs committed: the candidate passed validation and its deltas
    /// were emitted.
    pub epochs_committed: u64,
    /// Epochs rolled back for any reason.
    pub rollbacks: u64,
    /// Rollbacks caused by Theorem 5.1 verification failure.
    pub verify_failures: u64,
    /// Rollbacks caused by the per-switch TCAM budget.
    pub budget_rejections: u64,
    /// Total rules installed across all committed deltas.
    pub rules_added: u64,
    /// Total rules withdrawn across all committed deltas.
    pub rules_removed: u64,
    /// Southbound install attempts (first tries, retries, rollback and
    /// reconcile installs alike).
    pub install_attempts: u64,
    /// Install attempts that were retries of an earlier failed attempt.
    pub install_retries: u64,
    /// Install attempts the southbound failed (refused, timed out, or
    /// partially applied).
    pub install_failures: u64,
    /// Epochs aborted because a switch exhausted its attempt budget
    /// (each also counts in [`ControllerMetrics::rollbacks`]).
    pub install_aborts: u64,
    /// Successful inverse-delta / reconcile installs that undid or
    /// repaired fleet state.
    pub rollback_installs: u64,
    /// Total backoff the retry schedule imposed (simulated — recorded,
    /// never slept).
    pub install_backoff: Duration,
    /// Link events absorbed by flap damping: transitions that were
    /// coalesced into a neighbouring recompute instead of staging their
    /// own epoch.
    pub flaps_damped: u64,
    /// Watchdog trip events accepted: (switch, port, tag) hops
    /// quarantined out of the ELP.
    pub watchdog_trips: u64,
    /// Watchdog clear events accepted: quarantines lifted.
    pub watchdog_clears: u64,
    /// Checkpoints written to the journal.
    pub checkpoints: u64,
    /// Events replayed from the journal during the most recent crash
    /// recovery.
    pub recovery_replays: u64,
    /// Stage latency of the most recent epoch.
    pub last_recompute: Duration,
    /// Worst stage latency seen.
    pub max_recompute: Duration,
    /// Sum of all stage latencies (for the mean).
    pub total_recompute: Duration,
}

impl ControllerMetrics {
    /// Mean stage latency over all staged epochs.
    pub fn mean_recompute(&self) -> Duration {
        if self.epochs_staged == 0 {
            Duration::ZERO
        } else {
            self.total_recompute / self.epochs_staged as u32
        }
    }

    /// Records one stage latency sample.
    pub(crate) fn record_recompute(&mut self, d: Duration) {
        self.last_recompute = d;
        self.max_recompute = self.max_recompute.max(d);
        self.total_recompute += d;
    }

    /// Plain-text report, one metric per line.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "controller metrics");
        let _ = writeln!(out, "  events processed    {:>8}", self.events);
        let _ = writeln!(out, "  epochs staged       {:>8}", self.epochs_staged);
        let _ = writeln!(out, "  epochs committed    {:>8}", self.epochs_committed);
        let _ = writeln!(out, "  rollbacks           {:>8}", self.rollbacks);
        let _ = writeln!(out, "    verify failures   {:>8}", self.verify_failures);
        let _ = writeln!(out, "    budget rejections {:>8}", self.budget_rejections);
        let _ = writeln!(out, "    install aborts    {:>8}", self.install_aborts);
        let _ = writeln!(out, "  rules added         {:>8}", self.rules_added);
        let _ = writeln!(out, "  rules removed       {:>8}", self.rules_removed);
        let _ = writeln!(out, "  install attempts    {:>8}", self.install_attempts);
        let _ = writeln!(out, "    install retries   {:>8}", self.install_retries);
        let _ = writeln!(out, "    install failures  {:>8}", self.install_failures);
        let _ = writeln!(out, "  rollback installs   {:>8}", self.rollback_installs);
        let _ = writeln!(out, "  install backoff     {:>8?}", self.install_backoff);
        let _ = writeln!(out, "  flaps damped        {:>8}", self.flaps_damped);
        let _ = writeln!(out, "  watchdog trips      {:>8}", self.watchdog_trips);
        let _ = writeln!(out, "  watchdog clears     {:>8}", self.watchdog_clears);
        let _ = writeln!(out, "  checkpoints written {:>8}", self.checkpoints);
        let _ = writeln!(out, "  recovery replays    {:>8}", self.recovery_replays);
        let _ = writeln!(
            out,
            "  recompute last/mean/max  {:?} / {:?} / {:?}",
            self.last_recompute,
            self.mean_recompute(),
            self.max_recompute
        );
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn report_mentions_every_counter() {
        let mut m = ControllerMetrics {
            events: 7,
            epochs_staged: 6,
            epochs_committed: 5,
            rollbacks: 1,
            budget_rejections: 1,
            ..ControllerMetrics::default()
        };
        m.record_recompute(Duration::from_millis(3));
        m.record_recompute(Duration::from_millis(1));
        let r = m.report();
        for needle in [
            "events processed",
            "epochs staged",
            "epochs committed",
            "rollbacks",
            "verify failures",
            "budget rejections",
            "rules added",
            "rules removed",
            "install attempts",
            "install retries",
            "install failures",
            "install aborts",
            "rollback installs",
            "install backoff",
            "flaps damped",
            "watchdog trips",
            "watchdog clears",
            "checkpoints written",
            "recovery replays",
            "recompute",
        ] {
            assert!(r.contains(needle), "report missing {needle:?}:\n{r}");
        }
        assert_eq!(m.max_recompute, Duration::from_millis(3));
        assert_eq!(m.last_recompute, Duration::from_millis(1));
        assert_eq!(
            m.mean_recompute(),
            Duration::from_micros(666) + Duration::from_nanos(666)
        )
    }
}
