//! Write-ahead event journal with snapshot checkpoints.
//!
//! The controller's durability story: every event is journaled *before*
//! it is processed, every epoch outcome is journaled after, and every
//! `K` outcomes a checkpoint block snapshots the committed network state
//! (failures + pinned ELPs + counters). A controller that crashes — even
//! mid-epoch, with installs half-pushed — recovers by [`recover`]ing
//! from the journal: rebuild the checkpoint state, deterministically
//! re-stage it, replay the committed batches after it, and hand back the
//! unprocessed tail. Because staging is a pure function of
//! `(topology, policy, state)`, the recovered committed tables are
//! byte-for-byte the crashed controller's.
//!
//! Rolled-back batches are journaled too, but recovery *skips* them
//! rather than re-deciding them: an install-abort rollback depends on
//! the southbound's fault schedule, which the journal deliberately does
//! not capture (the fleet, not the journal, is the authority on what
//! installs did — that is what [`Controller::reconcile`] is for).
//!
//! ## On-disk format
//!
//! Plain text, one record per line:
//!
//! ```text
//! event <trace line>            # write-ahead: an accepted event
//! !ok <n>                       # the last n pending events committed
//! !rollback <n>                 # ... or were rolled back together
//! !checkpoint epoch=<e> version=<v>
//! !state <trace line>           # reconstruction event (down/elp-add)
//! !checkpoint-end
//! ```
//!
//! Event lines reuse the trace syntax ([`CtrlEvent::trace_line`]), so a
//! journal is readable — and replayable — with the same tooling as any
//! trace. A checkpoint block without its `!checkpoint-end` (crash while
//! checkpointing) is ignored and recovery falls back to the previous
//! complete one.

use crate::controller::coalesce_flaps;
use crate::controller::{Controller, CtrlError, EpochOutcome, InstallPolicy};
use crate::event::{parse_trace, CtrlEvent, TraceError};
use crate::southbound::Southbound;
use crate::state::{ElpPolicy, NetworkState};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path as FsPath, PathBuf};
use tagger_topo::Topology;

/// Why a journal could not be written or recovered.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// A record line is malformed.
    Corrupt {
        /// 1-based line number within the journal file.
        line: usize,
        /// What was wrong with it.
        why: String,
    },
    /// An `event`/`!state` line failed trace parsing.
    Trace(TraceError),
    /// Replay hit a controller error — including
    /// [`CtrlError::RecoveryDiverged`] when a batch the journal marks
    /// committed rolls back under deterministic recompute.
    Ctrl(CtrlError),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io: {e}"),
            JournalError::Corrupt { line, why } => {
                write!(f, "journal line {line} corrupt: {why}")
            }
            JournalError::Trace(e) => write!(f, "journal event: {e}"),
            JournalError::Ctrl(e) => write!(f, "journal replay: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl From<TraceError> for JournalError {
    fn from(e: TraceError) -> Self {
        JournalError::Trace(e)
    }
}

impl From<CtrlError> for JournalError {
    fn from(e: CtrlError) -> Self {
        JournalError::Ctrl(e)
    }
}

/// An append-only journal file.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Creates (truncating) a fresh journal at `path`.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self, JournalError> {
        let path = path.into();
        let mut file = File::create(&path)?;
        writeln!(file, "# tagger-ctrl journal v1")?;
        Ok(Journal { path, file })
    }

    /// Reopens an existing journal for appending (after recovery).
    pub fn open_append(path: impl Into<PathBuf>) -> Result<Self, JournalError> {
        let path = path.into();
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Journal { path, file })
    }

    /// The file this journal appends to.
    pub fn path(&self) -> &FsPath {
        &self.path
    }

    /// Write-ahead: records one accepted event *before* it is processed.
    pub fn record_event(&mut self, topo: &Topology, event: &CtrlEvent) -> Result<(), JournalError> {
        writeln!(self.file, "event {}", event.trace_line(topo))?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Records the outcome of the batch formed by the last `batch`
    /// journaled-but-unresolved events.
    pub fn record_outcome(
        &mut self,
        outcome: &EpochOutcome,
        batch: usize,
    ) -> Result<(), JournalError> {
        let marker = match outcome {
            EpochOutcome::Committed(_) => "!ok",
            EpochOutcome::RolledBack { .. } => "!rollback",
        };
        writeln!(self.file, "{marker} {batch}")?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Snapshots the controller's committed state so recovery can start
    /// here instead of replaying from the beginning of time.
    pub fn checkpoint(&mut self, ctrl: &mut Controller) -> Result<(), JournalError> {
        let state = ctrl.state().clone();
        let topo = ctrl.topo();
        writeln!(
            self.file,
            "!checkpoint epoch={} version={}",
            ctrl.committed().epoch,
            state.version
        )?;
        for link in state.failures.iter() {
            let line = CtrlEvent::LinkDown(link).trace_line(topo);
            writeln!(self.file, "!state {line}")?;
        }
        for path in &state.extra_paths {
            let line = CtrlEvent::ElpAdd(path.clone()).trace_line(topo);
            writeln!(self.file, "!state {line}")?;
        }
        for &(switch, port, tag) in &state.quarantines {
            // Checkpoints record quarantines by their effective hop; the
            // re-synthesized trip needs no attribution — replaying it
            // quarantines exactly this hop either way.
            let line = CtrlEvent::WatchdogTrip {
                switch,
                port,
                tag: tagger_core::Tag(tag),
                trigger: None,
            }
            .trace_line(topo);
            writeln!(self.file, "!state {line}")?;
        }
        writeln!(self.file, "!checkpoint-end")?;
        self.file.sync_data()?;
        ctrl.bump_checkpoints();
        Ok(())
    }

    /// Drives a journaled, flap-damped, southbound-installed replay:
    /// each damped batch is journaled write-ahead, processed through
    /// [`Controller::handle_batch_via`], its outcome journaled, and a
    /// checkpoint written every `checkpoint_every` outcomes (0 = never).
    ///
    /// `crash_after` simulates a controller crash for recovery drills:
    /// after that many outcomes, the *next* batch's events are journaled
    /// (the write-ahead had happened) but never processed, and driving
    /// stops with `crashed = true` — the canonical mid-epoch crash.
    pub fn drive(
        &mut self,
        ctrl: &mut Controller,
        events: &[CtrlEvent],
        southbound: &mut dyn Southbound,
        policy: &InstallPolicy,
        checkpoint_every: u64,
        crash_after: Option<u64>,
    ) -> Result<DriveReport, JournalError> {
        self.drive_observed(
            ctrl,
            events,
            southbound,
            policy,
            checkpoint_every,
            crash_after,
            &mut crate::NoopObserver,
        )
    }

    /// Like [`Journal::drive`], but invoking `observer` after every
    /// committed epoch's outcome has been journaled, so an independent
    /// audit of the installed tables rides along with the journaled
    /// replay. Rollbacks and the simulated crash are not observed.
    #[allow(clippy::too_many_arguments)]
    pub fn drive_observed(
        &mut self,
        ctrl: &mut Controller,
        events: &[CtrlEvent],
        southbound: &mut dyn Southbound,
        policy: &InstallPolicy,
        checkpoint_every: u64,
        crash_after: Option<u64>,
        observer: &mut dyn crate::CommitObserver,
    ) -> Result<DriveReport, JournalError> {
        let refs: Vec<&CtrlEvent> = events.iter().collect();
        let mut outcomes = Vec::new();
        for batch in coalesce_flaps(&refs) {
            let crash_now = crash_after.is_some_and(|n| outcomes.len() as u64 >= n);
            for event in batch {
                self.record_event(ctrl.topo(), event)?;
            }
            if crash_now {
                return Ok(DriveReport {
                    outcomes,
                    crashed: true,
                });
            }
            ctrl.bump_flaps_damped(batch.len() as u64 - 1);
            let owned: Vec<CtrlEvent> = batch.iter().map(|&e| e.clone()).collect();
            let outcome = ctrl.handle_batch_via(&owned, southbound, policy)?;
            self.record_outcome(&outcome, batch.len())?;
            if let EpochOutcome::Committed(report) = &outcome {
                let topo = ctrl.topo().clone();
                observer.on_commit(&topo, ctrl.committed(), report);
            }
            outcomes.push(outcome);
            if checkpoint_every > 0 && (outcomes.len() as u64).is_multiple_of(checkpoint_every) {
                self.checkpoint(ctrl)?;
            }
        }
        Ok(DriveReport {
            outcomes,
            crashed: false,
        })
    }
}

/// What [`Journal::drive`] got through.
#[derive(Debug)]
pub struct DriveReport {
    /// One outcome per damped batch that was fully processed.
    pub outcomes: Vec<EpochOutcome>,
    /// Whether the drive stopped at the simulated crash point.
    pub crashed: bool,
}

/// What recovery reconstructed.
#[derive(Debug)]
pub struct Recovery {
    /// The rebuilt controller, committed tables identical to the crashed
    /// controller's last committed epoch.
    pub controller: Controller,
    /// Events replayed from committed batches after the checkpoint.
    pub replayed: u64,
    /// Journaled events whose batch never got an outcome marker — the
    /// batch in flight when the controller died. The caller decides
    /// whether to re-process them (they were accepted, only their
    /// rollout is unaccounted for).
    pub tail: Vec<CtrlEvent>,
}

/// Rebuilds a controller from a journal file.
///
/// The topology, policy and TCAM budget are configuration, not journal
/// content — they must match what the crashed controller ran with, or
/// replay fails with [`CtrlError::RecoveryDiverged`].
pub fn recover(
    path: impl AsRef<FsPath>,
    topo: Topology,
    policy: ElpPolicy,
    tcam_budget: Option<usize>,
) -> Result<Recovery, JournalError> {
    let text = std::fs::read_to_string(path.as_ref())?;
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .collect();

    // Locate the last *complete* checkpoint block.
    let mut checkpoint: Option<(usize, usize)> = None; // (start idx, end idx) in `lines`
    let mut open: Option<usize> = None;
    for (idx, (_, line)) in lines.iter().enumerate() {
        if line.starts_with("!checkpoint ") {
            open = Some(idx);
        } else if *line == "!checkpoint-end" {
            if let Some(start) = open.take() {
                checkpoint = Some((start, idx));
            }
        }
    }

    // Rebuild the checkpoint state (or start from the healthy network).
    let (state, epoch, resume_at) = match checkpoint {
        None => (NetworkState::initial(), 0, 0),
        Some((start, end)) => {
            let (lineno, header) = lines[start];
            let corrupt = |why: String| JournalError::Corrupt { line: lineno, why };
            let mut epoch = None;
            let mut version = None;
            for field in header.trim_start_matches("!checkpoint ").split_whitespace() {
                match field.split_once('=') {
                    Some(("epoch", v)) => {
                        epoch = Some(v.parse().map_err(|_| corrupt(format!("bad epoch {v:?}")))?);
                    }
                    Some(("version", v)) => {
                        version = Some(
                            v.parse()
                                .map_err(|_| corrupt(format!("bad version {v:?}")))?,
                        );
                    }
                    _ => return Err(corrupt(format!("bad checkpoint field {field:?}"))),
                }
            }
            let (epoch, version): (u64, u64) = match (epoch, version) {
                (Some(e), Some(v)) => (e, v),
                _ => return Err(corrupt("checkpoint missing epoch/version".into())),
            };
            let mut state = NetworkState::initial();
            for (lineno, line) in &lines[start + 1..end] {
                let rest = line
                    .strip_prefix("!state ")
                    .ok_or_else(|| JournalError::Corrupt {
                        line: *lineno,
                        why: format!("expected !state inside checkpoint, got {line:?}"),
                    })?;
                for event in parse_trace(&topo, rest)? {
                    state.apply(&topo, &event)?;
                }
            }
            // Reconstruction applies synthetic events; the recorded
            // version is the live one.
            state.version = version;
            (state, epoch, end + 1)
        }
    };

    let mut controller = Controller::resume(topo, policy, tcam_budget, state, epoch)?;

    // Replay the records after the checkpoint: committed batches re-run
    // (deterministically recommitting the same epochs), rolled-back
    // batches are dropped, and events with no outcome become the tail.
    let mut pending: Vec<CtrlEvent> = Vec::new();
    let mut replayed = 0u64;
    for (lineno, line) in &lines[resume_at..] {
        let corrupt = |why: String| JournalError::Corrupt { line: *lineno, why };
        if let Some(rest) = line.strip_prefix("event ") {
            pending.extend(parse_trace(controller.topo(), rest)?);
        } else if let Some(rest) = line
            .strip_prefix("!ok ")
            .or_else(|| line.strip_prefix("!rollback "))
        {
            let n: usize = rest
                .trim()
                .parse()
                .map_err(|_| corrupt(format!("bad batch size {rest:?}")))?;
            if pending.len() < n {
                return Err(corrupt(format!(
                    "outcome covers {n} events but only {} are pending",
                    pending.len()
                )));
            }
            let batch: Vec<CtrlEvent> = pending.drain(..n).collect();
            if line.starts_with("!ok") {
                match controller.handle_batch(&batch)? {
                    EpochOutcome::Committed(_) => replayed += n as u64,
                    EpochOutcome::RolledBack { reason, .. } => {
                        return Err(CtrlError::RecoveryDiverged(format!(
                            "journal line {lineno} marks a batch committed, replay rolled it back: {reason}"
                        ))
                        .into());
                    }
                }
            }
        } else if line.starts_with("!checkpoint") || line.starts_with("!state") {
            // A trailing incomplete checkpoint block (crash while
            // checkpointing); the committed state it describes is
            // already covered by the replay.
            continue;
        } else {
            return Err(corrupt(format!("unrecognized record {line:?}")));
        }
    }

    controller.set_recovery_replays(replayed);
    Ok(Recovery {
        controller,
        replayed,
        tail: pending,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosConfig, ChaosSouthbound};
    use crate::southbound::ReliableSouthbound;
    use tagger_topo::ClosConfig;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tagger-journal-{}-{name}", std::process::id()))
    }

    fn controller() -> Controller {
        Controller::new(ClosConfig::small().build(), ElpPolicy::with_bounces(1)).unwrap()
    }

    const TRACE: &str = "down L1 T1\nflap L2 T2 2\nup L1 T1\nresync";

    #[test]
    fn recover_reproduces_committed_tables_byte_for_byte() {
        let path = tmp("roundtrip");
        let mut live = controller();
        let mut sb = ReliableSouthbound::new();
        sb.bootstrap(&live.committed().rules);
        let events = parse_trace(live.topo(), TRACE).unwrap();

        let mut journal = Journal::create(&path).unwrap();
        let report = journal
            .drive(
                &mut live,
                &events,
                &mut sb,
                &InstallPolicy::default(),
                2,
                None,
            )
            .unwrap();
        assert!(!report.crashed);
        assert!(
            live.metrics().checkpoints > 0,
            "checkpoint_every=2 must fire"
        );

        let topo = ClosConfig::small().build();
        let rec = recover(&path, topo, ElpPolicy::with_bounces(1), None).unwrap();
        assert!(rec.tail.is_empty(), "clean shutdown leaves no tail");
        assert_eq!(rec.controller.committed().epoch, live.committed().epoch);
        assert_eq!(rec.controller.state().version, live.state().version);
        assert_eq!(rec.controller.committed().rules, live.committed().rules);
        assert_eq!(
            format!("{:?}", rec.controller.committed().graph),
            format!("{:?}", live.committed().graph),
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_epoch_crash_recovers_and_reconciles() {
        let path = tmp("crash");
        let mut live = controller();
        let mut sb = ChaosSouthbound::new(ChaosConfig::new(11, 0.3));
        sb.bootstrap(&live.committed().rules);
        let events = parse_trace(live.topo(), TRACE).unwrap();

        let mut journal = Journal::create(&path).unwrap();
        let report = journal
            .drive(
                &mut live,
                &events,
                &mut sb,
                &InstallPolicy::default(),
                1,
                Some(2),
            )
            .unwrap();
        assert!(report.crashed);
        assert_eq!(report.outcomes.len(), 2);
        let pre_crash_rules = live.committed().rules.clone();
        let pre_crash_epoch = live.committed().epoch;
        drop(live); // the crash

        let topo = ClosConfig::small().build();
        let rec = recover(&path, topo, ElpPolicy::with_bounces(1), None).unwrap();
        let mut recovered = rec.controller;
        assert_eq!(
            recovered.committed().rules,
            pre_crash_rules,
            "recovery must reconverge to the crashed controller's tables"
        );
        assert_eq!(recovered.committed().epoch, pre_crash_epoch);
        assert!(
            !rec.tail.is_empty(),
            "the in-flight batch must surface as the tail"
        );

        // The fleet may hold anything the crash left behind; reconcile
        // repairs it, then the tail can be processed normally.
        recovered.reconcile(&mut sb);
        assert_eq!(sb.fleet(), &recovered.committed().rules);
        let outcomes = recovered
            .replay_damped_via(rec.tail.iter(), &mut sb, &InstallPolicy::default())
            .unwrap();
        assert!(!outcomes.is_empty());
        assert_eq!(sb.fleet(), &recovered.committed().rules);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recovery_without_checkpoints_replays_from_genesis() {
        let path = tmp("genesis");
        let mut live = controller();
        let mut sb = ReliableSouthbound::new();
        sb.bootstrap(&live.committed().rules);
        let events = parse_trace(live.topo(), "down L1 T1\nup L1 T1").unwrap();
        let mut journal = Journal::create(&path).unwrap();
        journal
            .drive(
                &mut live,
                &events,
                &mut sb,
                &InstallPolicy::default(),
                0,
                None,
            )
            .unwrap();

        let topo = ClosConfig::small().build();
        let rec = recover(&path, topo, ElpPolicy::with_bounces(1), None).unwrap();
        assert_eq!(rec.replayed, 2);
        assert_eq!(rec.controller.metrics().recovery_replays, 2);
        assert_eq!(rec.controller.committed().rules, live.committed().rules);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quarantines_survive_crash_recovery() {
        let path = tmp("watchdog");
        let mut live = controller();
        let mut sb = ReliableSouthbound::new();
        sb.bootstrap(&live.committed().rules);
        // A watchdog quarantine lands, then an unrelated failure whose
        // checkpoint must carry the quarantine forward.
        let events = parse_trace(live.topo(), "watchdog L1 0 2\ndown L3 T3").unwrap();
        let mut journal = Journal::create(&path).unwrap();
        journal
            .drive(
                &mut live,
                &events,
                &mut sb,
                &InstallPolicy::default(),
                1,
                None,
            )
            .unwrap();
        assert_eq!(live.state().quarantines.len(), 1);
        let pre_crash = live.committed().rules.clone();
        let quarantines = live.state().quarantines.clone();
        drop(live); // the crash

        let topo = ClosConfig::small().build();
        let rec = recover(&path, topo, ElpPolicy::with_bounces(1), None).unwrap();
        assert_eq!(
            rec.controller.state().quarantines,
            quarantines,
            "recovery must replay the quarantine from the journal"
        );
        assert_eq!(rec.controller.committed().rules, pre_crash);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_journals_fail_loudly() {
        let path = tmp("corrupt");
        std::fs::write(&path, "event down L1 T1\n!ok 2\n").unwrap();
        let topo = ClosConfig::small().build();
        let err = recover(&path, topo, ElpPolicy::with_bounces(1), None).unwrap_err();
        assert!(
            matches!(err, JournalError::Corrupt { line: 2, .. }),
            "{err}"
        );

        std::fs::write(&path, "junk record\n").unwrap();
        let topo = ClosConfig::small().build();
        let err = recover(&path, topo, ElpPolicy::with_bounces(1), None).unwrap_err();
        assert!(
            matches!(err, JournalError::Corrupt { line: 1, .. }),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }
}
