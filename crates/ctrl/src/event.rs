//! Control-plane events and the plain-text trace format.

use std::fmt;
use tagger_core::span::spanned_words;
use tagger_core::{Span, Tag};
use tagger_routing::{Path, PathError};
use tagger_topo::{resolve_link, LinkId, LinkLookupError, NodeId, PortId, Topology};

/// In-band initial-trigger attribution attached to a watchdog trip: the
/// hop the data plane blames for *starting* the deadlock episode, which
/// may differ from the queue that happened to trip first. When present
/// (and not already quarantined) the controller quarantines this hop
/// instead of the victim — cause-directed recovery.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct TriggerInfo {
    /// The switch the attribution names.
    pub switch: NodeId,
    /// The egress port of the trigger queue.
    pub port: PortId,
    /// The lossless tag (= priority + 1) of the trigger queue.
    pub tag: Tag,
}

impl fmt::Debug for TriggerInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} tag {}", self.switch.0, self.port.0, self.tag.0)
    }
}

/// One control-plane event.
///
/// Link events carry resolved [`LinkId`]s (resolution from names happens
/// at trace-parse time so a typo is a parse error, not a runtime panic);
/// ELP events carry full [`Path`]s, already validated for adjacency
/// against the topology they were parsed with.
#[derive(Clone, PartialEq, Eq)]
pub enum CtrlEvent {
    /// A physical link went down.
    LinkDown(LinkId),
    /// A previously failed link recovered.
    LinkUp(LinkId),
    /// The operator added an expected lossless path.
    ElpAdd(Path),
    /// The operator withdrew a previously added path. Withdrawing a path
    /// that was never added is a no-op.
    ElpRemove(Path),
    /// A data-plane PFC watchdog tripped on a (switch, egress port, tag):
    /// quarantine that hop — lossless paths crossing it are excluded from
    /// the ELP until the quarantine is lifted.
    WatchdogTrip {
        /// The switch whose queue tripped.
        switch: NodeId,
        /// The egress port of the tripped queue.
        port: PortId,
        /// The lossless tag (= priority + 1) that was stuck.
        tag: Tag,
        /// Initial-trigger attribution carried in-band from the data
        /// plane, when the switch could attribute the episode. `None`
        /// degrades byte-for-byte to victim-directed quarantine.
        trigger: Option<TriggerInfo>,
    },
    /// The quarantine on a (switch, egress port, tag) is lifted — the
    /// watchdog restored the queue, or the operator cleared it manually.
    /// Clearing a hop that was never quarantined is a no-op.
    WatchdogClear {
        /// The switch.
        switch: NodeId,
        /// The egress port.
        port: PortId,
        /// The tag.
        tag: Tag,
    },
    /// Force a full recompute against the current state (e.g. after the
    /// controller restarts and cannot trust its cached snapshot).
    Resync,
}

impl CtrlEvent {
    /// Short human-readable label for logs and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            CtrlEvent::LinkDown(_) => "link-down",
            CtrlEvent::LinkUp(_) => "link-up",
            CtrlEvent::ElpAdd(_) => "elp-add",
            CtrlEvent::ElpRemove(_) => "elp-remove",
            CtrlEvent::WatchdogTrip { .. } => "watchdog-trip",
            CtrlEvent::WatchdogClear { .. } => "watchdog-clear",
            CtrlEvent::Resync => "resync",
        }
    }

    /// The hop a [`CtrlEvent::WatchdogTrip`] quarantines: the attributed
    /// trigger when the trip carries one (cause-directed recovery), the
    /// tripping victim otherwise. `None` for every other event kind.
    pub fn effective_quarantine(&self) -> Option<(NodeId, PortId, u16)> {
        match self {
            CtrlEvent::WatchdogTrip {
                switch,
                port,
                tag,
                trigger,
            } => Some(trigger.map_or((*switch, *port, tag.0), |t| (t.switch, t.port, t.tag.0))),
            _ => None,
        }
    }

    /// Renders this event back into the trace-line syntax
    /// [`parse_trace`] accepts, using the topology's node names — the
    /// round trip `parse_trace(topo, e.trace_line(topo))` yields `e`
    /// again. This is the journal's on-disk event encoding.
    pub fn trace_line(&self, topo: &Topology) -> String {
        let link_names = |l: &LinkId| {
            let link = topo.link(*l);
            format!(
                "{} {}",
                topo.node(link.a.node).name,
                topo.node(link.b.node).name
            )
        };
        let path_names = |p: &Path| {
            p.nodes()
                .iter()
                .map(|n| topo.node(*n).name.as_str())
                .collect::<Vec<_>>()
                .join(" ")
        };
        match self {
            CtrlEvent::LinkDown(l) => format!("down {}", link_names(l)),
            CtrlEvent::LinkUp(l) => format!("up {}", link_names(l)),
            CtrlEvent::ElpAdd(p) => format!("elp-add {}", path_names(p)),
            CtrlEvent::ElpRemove(p) => format!("elp-remove {}", path_names(p)),
            CtrlEvent::WatchdogTrip {
                switch,
                port,
                tag,
                trigger,
            } => {
                let mut line = format!("watchdog {} {} {}", topo.node(*switch).name, port.0, tag.0);
                if let Some(t) = trigger {
                    use std::fmt::Write as _;
                    let _ = write!(
                        line,
                        " via {} {} {}",
                        topo.node(t.switch).name,
                        t.port.0,
                        t.tag.0
                    );
                }
                line
            }
            CtrlEvent::WatchdogClear { switch, port, tag } => {
                format!(
                    "watchdog-clear {} {} {}",
                    topo.node(*switch).name,
                    port.0,
                    tag.0
                )
            }
            CtrlEvent::Resync => "resync".to_string(),
        }
    }
}

impl fmt::Debug for CtrlEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrlEvent::LinkDown(l) => write!(f, "LinkDown({})", l.index()),
            CtrlEvent::LinkUp(l) => write!(f, "LinkUp({})", l.index()),
            CtrlEvent::ElpAdd(p) => write!(f, "ElpAdd({} nodes)", p.nodes().len()),
            CtrlEvent::ElpRemove(p) => write!(f, "ElpRemove({} nodes)", p.nodes().len()),
            CtrlEvent::WatchdogTrip {
                switch,
                port,
                tag,
                trigger,
            } => {
                write!(f, "WatchdogTrip({}:{} tag {}", switch.0, port.0, tag.0)?;
                if let Some(t) = trigger {
                    write!(f, " via {t:?}")?;
                }
                write!(f, ")")
            }
            CtrlEvent::WatchdogClear { switch, port, tag } => {
                write!(f, "WatchdogClear({}:{} tag {})", switch.0, port.0, tag.0)
            }
            CtrlEvent::Resync => write!(f, "Resync"),
        }
    }
}

/// Why a trace line failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceErrorKind {
    /// The first word of the line is not a known directive.
    UnknownDirective(String),
    /// The directive is known but got the wrong number of arguments.
    BadArity {
        /// The directive in question.
        directive: &'static str,
        /// What the directive expects, in words.
        expected: &'static str,
    },
    /// A `down`/`up` directive named a link that does not exist.
    Link(LinkLookupError),
    /// An `elp-add`/`elp-remove`/`watchdog` directive named an unknown
    /// node.
    UnknownNode(String),
    /// A `watchdog`/`watchdog-clear` directive named a port index the
    /// node does not have.
    PortOutOfRange {
        /// The node as written in the trace.
        node: String,
        /// The offending port index.
        port: u16,
    },
    /// An `elp-add`/`elp-remove` node sequence is not a valid path. The
    /// string names the offending nodes as written in the trace (the
    /// underlying [`PathError`] only knows internal node ids).
    Path(PathError, String),
}

/// A parse error, carrying the exact source span it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// Line and column of the offending token within the trace text.
    pub span: Span,
    /// What went wrong there.
    pub kind: TraceErrorKind,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: ", self.span)?;
        match &self.kind {
            TraceErrorKind::UnknownDirective(d) => write!(f, "unknown directive {d:?}"),
            TraceErrorKind::BadArity {
                directive,
                expected,
            } => write!(f, "{directive} expects {expected}"),
            TraceErrorKind::Link(e) => write!(f, "{e}"),
            TraceErrorKind::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            TraceErrorKind::PortOutOfRange { node, port } => {
                write!(f, "node {node} has no port {port}")
            }
            TraceErrorKind::Path(_, named) => write!(f, "bad path: {named}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Parses a plain-text event trace against a topology.
///
/// Format, one event per line (blank lines and `#` comments ignored):
///
/// ```text
/// down <node> <node>          # fail the link between two named nodes
/// up <node> <node>            # restore it
/// flap <node> <node> <n>      # n down/up pairs on that link in a row
/// elp-add <n1> <n2> ... <nk>  # add a lossless path through named nodes
/// elp-remove <n1> ... <nk>    # withdraw it
/// watchdog <node> <port> <tag>        # quarantine a tripped hop
/// watchdog-clear <node> <port> <tag>  # lift the quarantine
/// resync                      # force a full recompute
/// ```
///
/// `flap a b n` is shorthand: it expands to `n` consecutive
/// `down a b` / `up a b` pairs, the canonical input for exercising the
/// controller's flap damping.
///
/// All names are resolved eagerly, so a replayed trace either parses
/// completely or fails with the offending line number — events from an
/// untrusted recording can never panic the controller.
pub fn parse_trace(topo: &Topology, text: &str) -> Result<Vec<CtrlEvent>, TraceError> {
    let mut events = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        // Strip the comment but keep the prefix untrimmed so token
        // columns still index into the raw line.
        let content = raw.split('#').next().unwrap_or("");
        let mut words = spanned_words(content);
        let Some((dcol, directive)) = words.next() else {
            continue;
        };
        let args: Vec<(usize, &str)> = words.collect();
        // Span of the directive itself — the fallback when no single
        // argument is to blame (arity errors, unknown directives).
        let dspan = Span::new(line, dcol, directive.len());
        // Span of the i-th argument, falling back to the directive.
        let arg_span = |i: usize| {
            args.get(i)
                .map(|(c, w)| Span::new(line, *c, w.len()))
                .unwrap_or(dspan)
        };
        // Span of the argument spelled `name` (diagnostics that learn the
        // offending name from a lower layer, e.g. link resolution).
        let name_span = |name: &str| {
            args.iter()
                .find(|(_, w)| *w == name)
                .map(|(c, w)| Span::new(line, *c, w.len()))
                .unwrap_or(dspan)
        };
        let link_err = |e: LinkLookupError| {
            let span = match &e {
                LinkLookupError::UnknownNode { name, .. } => name_span(name),
                LinkLookupError::NotAdjacent { b, .. } => name_span(b),
                _ => dspan,
            };
            TraceError {
                span,
                kind: TraceErrorKind::Link(e),
            }
        };
        let err = |span, kind| TraceError { span, kind };
        let event = match directive {
            "down" | "up" => {
                let [(_, a), (_, b)] = args[..] else {
                    return Err(err(
                        dspan,
                        TraceErrorKind::BadArity {
                            directive: if directive == "down" { "down" } else { "up" },
                            expected: "exactly two node names",
                        },
                    ));
                };
                let link = resolve_link(topo, a, b).map_err(link_err)?;
                if directive == "down" {
                    CtrlEvent::LinkDown(link)
                } else {
                    CtrlEvent::LinkUp(link)
                }
            }
            "elp-add" | "elp-remove" => {
                if args.len() < 2 {
                    return Err(err(
                        dspan,
                        TraceErrorKind::BadArity {
                            directive: if directive == "elp-add" {
                                "elp-add"
                            } else {
                                "elp-remove"
                            },
                            expected: "at least two node names",
                        },
                    ));
                }
                let mut nodes = Vec::with_capacity(args.len());
                for (col, name) in &args {
                    nodes.push(topo.node_by_name(name).ok_or_else(|| {
                        err(
                            Span::new(line, *col, name.len()),
                            TraceErrorKind::UnknownNode((*name).to_string()),
                        )
                    })?);
                }
                let path = Path::new(topo, nodes).map_err(|e| {
                    // Re-render the diagnostic with the names the trace
                    // used; `PathError` only knows internal node ids.
                    let (span, named) = match &e {
                        PathError::NotAdjacent(a, b) => (
                            name_span(&topo.node(*b).name),
                            format!(
                                "nodes {} and {} are not adjacent",
                                topo.node(*a).name,
                                topo.node(*b).name
                            ),
                        ),
                        PathError::RepeatedNode(n) => (
                            name_span(&topo.node(*n).name),
                            format!(
                                "node {} repeats; paths must be loop-free",
                                topo.node(*n).name
                            ),
                        ),
                        other => (dspan, other.to_string()),
                    };
                    err(span, TraceErrorKind::Path(e, named))
                })?;
                if directive == "elp-add" {
                    CtrlEvent::ElpAdd(path)
                } else {
                    CtrlEvent::ElpRemove(path)
                }
            }
            "flap" => {
                let [(_, a), (_, b), (_, n)] = args[..] else {
                    return Err(err(
                        dspan,
                        TraceErrorKind::BadArity {
                            directive: "flap",
                            expected: "two node names and a repeat count",
                        },
                    ));
                };
                let link = resolve_link(topo, a, b).map_err(link_err)?;
                let n: usize = n.parse().map_err(|_| {
                    err(
                        arg_span(2),
                        TraceErrorKind::BadArity {
                            directive: "flap",
                            expected: "two node names and a repeat count",
                        },
                    )
                })?;
                for _ in 0..n {
                    events.push(CtrlEvent::LinkDown(link));
                    events.push(CtrlEvent::LinkUp(link));
                }
                continue;
            }
            "watchdog" | "watchdog-clear" => {
                let bad_arity = |span| {
                    err(
                        span,
                        TraceErrorKind::BadArity {
                            directive: if directive == "watchdog" {
                                "watchdog"
                            } else {
                                "watchdog-clear"
                            },
                            expected: if directive == "watchdog" {
                                "a node name, a port index and a tag, \
                                 optionally `via <node> <port> <tag>`"
                            } else {
                                "a node name, a port index and a tag"
                            },
                        },
                    )
                };
                // One `<node> <port> <tag>` triple starting at argument
                // `base` — the victim hop at 0, the `via` trigger at 4.
                let hop = |base: usize| -> Result<(NodeId, PortId, Tag), TraceError> {
                    let (_, name) = *args.get(base).ok_or_else(|| bad_arity(dspan))?;
                    let (_, port) = *args.get(base + 1).ok_or_else(|| bad_arity(dspan))?;
                    let (_, tag) = *args.get(base + 2).ok_or_else(|| bad_arity(dspan))?;
                    let switch = topo.node_by_name(name).ok_or_else(|| {
                        err(
                            arg_span(base),
                            TraceErrorKind::UnknownNode(name.to_string()),
                        )
                    })?;
                    let port: u16 = port.parse().map_err(|_| bad_arity(arg_span(base + 1)))?;
                    let tag: u16 = tag.parse().map_err(|_| bad_arity(arg_span(base + 2)))?;
                    if port as usize >= topo.node(switch).num_ports() {
                        return Err(err(
                            arg_span(base + 1),
                            TraceErrorKind::PortOutOfRange {
                                node: name.to_string(),
                                port,
                            },
                        ));
                    }
                    Ok((switch, PortId(port), Tag(tag)))
                };
                let (switch, port, tag) = hop(0)?;
                if directive == "watchdog-clear" {
                    if args.len() != 3 {
                        return Err(bad_arity(dspan));
                    }
                    CtrlEvent::WatchdogClear { switch, port, tag }
                } else {
                    let trigger = match args.len() {
                        3 => None,
                        7 if args[3].1 == "via" => {
                            let (switch, port, tag) = hop(4)?;
                            Some(TriggerInfo { switch, port, tag })
                        }
                        _ => return Err(bad_arity(arg_span(3))),
                    };
                    CtrlEvent::WatchdogTrip {
                        switch,
                        port,
                        tag,
                        trigger,
                    }
                }
            }
            "resync" => {
                if !args.is_empty() {
                    return Err(err(
                        arg_span(0),
                        TraceErrorKind::BadArity {
                            directive: "resync",
                            expected: "no arguments",
                        },
                    ));
                }
                CtrlEvent::Resync
            }
            other => {
                return Err(err(
                    dspan,
                    TraceErrorKind::UnknownDirective(other.to_string()),
                ));
            }
        };
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tagger_topo::ClosConfig;

    #[test]
    fn parses_a_full_trace() {
        let topo = ClosConfig::small().build();
        let text = "\
# a recorded incident
down L1 T1

elp-add H1 T1 L2 T2 H5   # operator pins a detour
up L1 T1
resync
";
        let events = parse_trace(&topo, text).unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].label(), "link-down");
        assert_eq!(events[1].label(), "elp-add");
        assert_eq!(events[2].label(), "link-up");
        assert_eq!(events[3], CtrlEvent::Resync);
        match (&events[0], &events[2]) {
            (CtrlEvent::LinkDown(d), CtrlEvent::LinkUp(u)) => assert_eq!(d, u),
            _ => unreachable!(),
        }
    }

    #[test]
    fn flap_expands_to_down_up_pairs() {
        let topo = ClosConfig::small().build();
        let events = parse_trace(&topo, "flap L1 T1 3").unwrap();
        let pair = parse_trace(&topo, "down L1 T1\nup L1 T1").unwrap();
        assert_eq!(events.len(), 6);
        let expanded: Vec<CtrlEvent> = std::iter::repeat_with(|| pair.clone())
            .take(3)
            .flatten()
            .collect();
        assert_eq!(events, expanded);

        let e = parse_trace(&topo, "flap L1 T1").unwrap_err();
        assert!(matches!(e.kind, TraceErrorKind::BadArity { .. }));
        let e = parse_trace(&topo, "flap L1 T1 many").unwrap_err();
        assert!(matches!(e.kind, TraceErrorKind::BadArity { .. }));
        let e = parse_trace(&topo, "flap L1 XX 2").unwrap_err();
        assert!(matches!(e.kind, TraceErrorKind::Link(_)));
    }

    #[test]
    fn trace_line_round_trips_every_event_kind() {
        let topo = ClosConfig::small().build();
        let text = "down L1 T1\nup L1 T1\nelp-add H1 T1 L2 T2 H5\nelp-remove H1 T1 L2 T2 H5\nwatchdog L1 2 2\nwatchdog L1 2 2 via S1 1 2\nwatchdog-clear L1 2 2\nresync";
        let events = parse_trace(&topo, text).unwrap();
        for e in &events {
            let line = e.trace_line(&topo);
            let back = parse_trace(&topo, &line).unwrap();
            assert_eq!(&back[..], std::slice::from_ref(e), "round trip of {line:?}");
        }
    }

    #[test]
    fn watchdog_directives_parse_and_validate() {
        let topo = ClosConfig::small().build();
        let events = parse_trace(&topo, "watchdog L1 0 2\nwatchdog-clear L1 0 2").unwrap();
        let l1 = topo.expect_node("L1");
        assert_eq!(
            events[0],
            CtrlEvent::WatchdogTrip {
                switch: l1,
                port: PortId(0),
                tag: Tag(2),
                trigger: None,
            }
        );
        assert_eq!(events[0].label(), "watchdog-trip");
        assert_eq!(events[1].label(), "watchdog-clear");

        let e = parse_trace(&topo, "watchdog XX 0 2").unwrap_err();
        assert!(matches!(e.kind, TraceErrorKind::UnknownNode(_)));
        let e = parse_trace(&topo, "watchdog L1 99 2").unwrap_err();
        assert!(matches!(e.kind, TraceErrorKind::PortOutOfRange { .. }));
        assert!(e.to_string().contains("no port 99"));
        let e = parse_trace(&topo, "watchdog L1 zero 2").unwrap_err();
        assert!(matches!(e.kind, TraceErrorKind::BadArity { .. }));
        let e = parse_trace(&topo, "watchdog L1 0").unwrap_err();
        assert!(matches!(e.kind, TraceErrorKind::BadArity { .. }));
    }

    #[test]
    fn watchdog_via_parses_and_validates_the_trigger_hop() {
        let topo = ClosConfig::small().build();
        let events = parse_trace(&topo, "watchdog L1 0 2 via S1 1 2").unwrap();
        assert_eq!(
            events[0],
            CtrlEvent::WatchdogTrip {
                switch: topo.expect_node("L1"),
                port: PortId(0),
                tag: Tag(2),
                trigger: Some(TriggerInfo {
                    switch: topo.expect_node("S1"),
                    port: PortId(1),
                    tag: Tag(2),
                }),
            }
        );

        // The trigger hop is validated as strictly as the victim hop.
        let e = parse_trace(&topo, "watchdog L1 0 2 via XX 1 2").unwrap_err();
        assert_eq!(e.kind, TraceErrorKind::UnknownNode("XX".into()));
        let e = parse_trace(&topo, "watchdog L1 0 2 via S1 99 2").unwrap_err();
        assert!(matches!(e.kind, TraceErrorKind::PortOutOfRange { .. }));
        // A junk connective or a truncated suffix is an arity error.
        let e = parse_trace(&topo, "watchdog L1 0 2 thru S1 1 2").unwrap_err();
        assert!(matches!(e.kind, TraceErrorKind::BadArity { .. }));
        let e = parse_trace(&topo, "watchdog L1 0 2 via S1 1").unwrap_err();
        assert!(matches!(e.kind, TraceErrorKind::BadArity { .. }));
        // `watchdog-clear` never carries attribution.
        let e = parse_trace(&topo, "watchdog-clear L1 0 2 via S1 1 2").unwrap_err();
        assert!(matches!(e.kind, TraceErrorKind::BadArity { .. }));
    }

    #[test]
    fn reports_offending_line_numbers() {
        let topo = ClosConfig::small().build();
        let e = parse_trace(&topo, "down L1 T1\nfrobnicate\n").unwrap_err();
        assert_eq!(e.span, Span::new(2, 1, "frobnicate".len()));
        assert_eq!(
            e.kind,
            TraceErrorKind::UnknownDirective("frobnicate".into())
        );

        let e = parse_trace(&topo, "down L1 XX").unwrap_err();
        assert_eq!(e.span, Span::new(1, 9, 2), "span points at the typo'd name");
        assert!(matches!(e.kind, TraceErrorKind::Link(_)));

        let e = parse_trace(&topo, "down L1").unwrap_err();
        assert_eq!(
            e.span,
            Span::new(1, 1, 4),
            "arity errors blame the directive"
        );
        assert!(matches!(e.kind, TraceErrorKind::BadArity { .. }));

        // T1 and S1 are not adjacent in a 3-layer Clos.
        let e = parse_trace(&topo, "elp-add H1 T1 S1").unwrap_err();
        assert!(matches!(e.kind, TraceErrorKind::Path(..)));
        assert_eq!(e.span, Span::new(1, 15, 2), "span points at the bad hop");
        assert!(
            e.to_string().contains("T1") && e.to_string().contains("S1"),
            "diagnostic must use the names the trace used: {e}"
        );
    }

    #[test]
    fn spans_survive_comments_and_indentation() {
        let topo = ClosConfig::small().build();
        // The error column must index into the raw line, comment and all.
        let e = parse_trace(&topo, "  watchdog L1 99 2  # tripped\n").unwrap_err();
        assert!(matches!(e.kind, TraceErrorKind::PortOutOfRange { .. }));
        assert_eq!(e.span, Span::new(1, 15, 2), "span points at the port token");

        let e = parse_trace(&topo, "elp-add H1 T1 NOPE T2 H5").unwrap_err();
        assert_eq!(e.kind, TraceErrorKind::UnknownNode("NOPE".into()));
        assert_eq!(e.span, Span::new(1, 15, 4));
    }
}
