//! Post-commit observation hooks.
//!
//! The controller's own validation runs *before* commit, on the
//! algorithm's data structures. A [`CommitObserver`] sees each epoch
//! *after* it has committed — topology, committed snapshot, and the
//! commit report — which is where an independent verifier (one that
//! re-derives safety from the installed tables rather than trusting the
//! staging pipeline) plugs in. The controller itself does not depend on
//! any particular verifier; it only promises to call the hook once per
//! committed epoch, after the commit barrier, never for rollbacks.

use crate::controller::{CommitReport, Snapshot};
use tagger_topo::Topology;

/// Receives every committed epoch after the commit barrier.
///
/// Implementations must not assume anything about call timing beyond
/// "the snapshot is the committed one this report created"; they are
/// free to record, audit, export, or panic — the controller treats the
/// hook as opaque.
pub trait CommitObserver {
    /// Called once per committed epoch, after the fleet holds the new
    /// tables. `snapshot` is the snapshot the commit produced; `report`
    /// is what [`crate::EpochOutcome::Committed`] carries.
    fn on_commit(&mut self, topo: &Topology, snapshot: &Snapshot, report: &CommitReport);
}

/// The do-nothing observer the unobserved entry points use.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl CommitObserver for NoopObserver {
    fn on_commit(&mut self, _topo: &Topology, _snapshot: &Snapshot, _report: &CommitReport) {}
}

/// Adapts a closure into a [`CommitObserver`], so callers that only
/// want to siphon commit data (a fleet supervisor recording per-epoch
/// latencies, a test collecting epochs) don't need a named type.
pub struct FnObserver<F: FnMut(&Topology, &Snapshot, &CommitReport)>(pub F);

impl<F: FnMut(&Topology, &Snapshot, &CommitReport)> CommitObserver for FnObserver<F> {
    fn on_commit(&mut self, topo: &Topology, snapshot: &Snapshot, report: &CommitReport) {
        (self.0)(topo, snapshot, report)
    }
}

/// Fans one commit out to two observers in order — how a daemon chains
/// an audit bridge with its own bookkeeping without either knowing
/// about the other.
pub struct Tee<'a>(
    /// Observed first.
    pub &'a mut dyn CommitObserver,
    /// Observed second.
    pub &'a mut dyn CommitObserver,
);

impl CommitObserver for Tee<'_> {
    fn on_commit(&mut self, topo: &Topology, snapshot: &Snapshot, report: &CommitReport) {
        self.0.on_commit(topo, snapshot, report);
        self.1.on_commit(topo, snapshot, report);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{Controller, CtrlEvent, ElpPolicy, InstallPolicy, ReliableSouthbound, Southbound};
    use tagger_topo::ClosConfig;

    /// Records what the controller showed it, for assertions.
    struct Recording {
        epochs: Vec<u64>,
        exports: Vec<String>,
    }

    impl CommitObserver for Recording {
        fn on_commit(&mut self, topo: &Topology, snapshot: &Snapshot, report: &CommitReport) {
            assert_eq!(
                snapshot.epoch, report.epoch,
                "snapshot is the committed one"
            );
            self.epochs.push(snapshot.epoch);
            self.exports.push(snapshot.export_tables(topo));
        }
    }

    #[test]
    fn observer_sees_every_committed_epoch_with_exportable_tables() {
        let topo = ClosConfig::small().build();
        let mut ctrl = Controller::new(topo.clone(), ElpPolicy::with_bounces(1)).unwrap();
        let mut southbound = ReliableSouthbound::new();
        southbound.bootstrap(&ctrl.committed().rules);
        // Two different links: same-link down/up would flap-damp into a
        // single batch and a single commit.
        let l1t1 = topo
            .link_between(topo.expect_node("L1"), topo.expect_node("T1"))
            .unwrap();
        let l2t2 = topo
            .link_between(topo.expect_node("L2"), topo.expect_node("T2"))
            .unwrap();
        let events = [CtrlEvent::LinkDown(l1t1), CtrlEvent::LinkDown(l2t2)];
        let mut rec = Recording {
            epochs: Vec::new(),
            exports: Vec::new(),
        };
        let outcomes = ctrl
            .replay_damped_via_observed(
                events.iter(),
                &mut southbound,
                &InstallPolicy::default(),
                &mut rec,
            )
            .unwrap();
        let committed = outcomes
            .iter()
            .filter(|o| matches!(o, crate::EpochOutcome::Committed(_)))
            .count();
        assert_eq!(rec.epochs.len(), committed);
        assert_eq!(rec.epochs, vec![1, 2]);
        // The export round-trips through the table-text parser.
        let last = rec.exports.last().unwrap();
        let parsed = tagger_core::RuleSet::from_table_text(&topo, last).unwrap();
        assert_eq!(&parsed, &ctrl.committed().rules);
    }
}
