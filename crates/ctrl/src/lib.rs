//! # tagger-ctrl — an incremental control plane for live tag management
//!
//! The Tagger paper (§4, §8) assumes tags and match-action rules are
//! installed once, ahead of time, for a *static* ELP set. Real fabrics
//! are not static: links fail and recover, and operators grow or shrink
//! the expected lossless path set while traffic is flowing. This crate
//! adds the missing piece — a small event-driven controller that keeps a
//! fleet of switches converged on a deadlock-free tagging as the network
//! changes, without ever reinstalling full tables.
//!
//! The moving parts:
//!
//! - [`CtrlEvent`] — the event vocabulary (`LinkDown`, `LinkUp`,
//!   `ElpAdd`, `ElpRemove`, `Resync`), parseable from a plain-text trace
//!   with [`parse_trace`] so recorded incidents can be replayed.
//! - [`NetworkState`] — the controller's versioned view of the world: a
//!   topology overlaid with a live [`tagger_topo::FailureSet`] plus any
//!   operator-added ELPs.
//! - [`Controller`] — consumes events and runs a **two-phase rollout**
//!   per epoch: *stage* (recompute the tagging against the new state),
//!   *validate* (Theorem 5.1 verification plus a per-switch TCAM
//!   budget), then either *commit* — emitting per-switch [`RuleDelta`]s
//!   diffed against the last committed snapshot — or *roll back*,
//!   leaving the previous verified tables untouched.
//! - [`ControllerMetrics`] — counters and recompute latencies with a
//!   plain-text [`ControllerMetrics::report`].
//! - [`Southbound`] — the install transport between commits and the
//!   fleet's running tables, with a [`ReliableSouthbound`] and a
//!   seeded fault-injecting [`ChaosSouthbound`]. Commits through
//!   [`Controller::handle_via`] retry per switch with exponential
//!   backoff under an [`InstallPolicy`] and enforce a commit barrier:
//!   an epoch lands everywhere or is rolled back everywhere — the fleet
//!   is never left running a mix of epochs.
//! - [`DampingPolicy`] — pluggable event batching ([`NoDamping`],
//!   [`FlapDamping`], [`CappedFlapDamping`]): how a stream of events is
//!   split into recompute batches. Policies are suffix-closed, so a
//!   bounded ingest queue can drain a few batches per cycle without
//!   changing how the remainder will batch — what lets `tagger-fleetd`
//!   damp each fabric independently, never across fabrics.
//! - [`Journal`] — a write-ahead event journal with snapshot
//!   checkpoints; [`recover`] rebuilds a crashed controller to
//!   byte-identical committed tables and [`Controller::reconcile`]
//!   repairs whatever a mid-epoch crash left on the switches.
//!
//! The invariant the controller maintains is the one that matters for
//! PFC safety: **every committed snapshot is a verified tagged graph**
//! (monotone, per-tag acyclic — Theorem 5.1 of the paper), and replaying
//! the emitted deltas from epoch 0 reconstructs the committed tables
//! exactly, so switches that apply deltas in order can never drift from
//! the certificate.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The controller ingests untrusted artifacts (traces, journals); library
// paths must return typed errors, never panic. Tests are allow-listed.
#![warn(clippy::unwrap_used)]

mod chaos;
mod controller;
mod damping;
mod event;
mod journal;
mod metrics;
mod observer;
mod southbound;
mod state;

pub use chaos::{ChaosConfig, ChaosSouthbound};
pub use controller::{
    coalesce_flaps, CommitReport, Controller, CtrlError, EpochOutcome, InstallPolicy,
    RollbackReason, Snapshot,
};
pub use damping::{parse_damping, CappedFlapDamping, DampingPolicy, FlapDamping, NoDamping};
pub use event::{parse_trace, CtrlEvent, TraceError, TraceErrorKind, TriggerInfo};
pub use journal::{recover, DriveReport, Journal, JournalError, Recovery};
pub use metrics::ControllerMetrics;
pub use observer::{CommitObserver, FnObserver, NoopObserver, Tee};
pub use southbound::{ReliableSouthbound, Southbound};
pub use state::{ElpPolicy, NetworkState};

pub use tagger_core::{InstallError, RuleDelta};
