//! Pluggable event damping: how a stream of control-plane events is
//! split into recompute batches.
//!
//! PR 2 hard-coded one policy — flap damping, where a maximal run of
//! consecutive link events on the same link collapses into a single
//! recompute of its net effect. A multi-fabric daemon wants that policy
//! *per fabric* (never across fabrics — one tenant's flapping
//! transceiver must not change another tenant's batching), and wants to
//! swap it: a soak harness may batch aggressively, a latency-sensitive
//! fabric may want every event staged alone. [`DampingPolicy`] is that
//! seam; [`coalesce_flaps`](crate::coalesce_flaps) remains as the
//! default policy's implementation.
//!
//! Every policy must be **suffix-closed**: splitting a stream, removing
//! the first batch, and re-splitting the remainder must yield the
//! remaining batches unchanged. This is what lets an ingest queue drain
//! a bounded number of batches per cycle and leave the rest queued
//! without changing how they will eventually be batched — the property
//! the interleaving-equivalence tests pin down.

use crate::event::CtrlEvent;
use std::ops::Range;
use tagger_topo::LinkId;

/// Splits an ordered event stream into contiguous recompute batches.
///
/// `Send` is a supertrait so a boxed policy can live inside a fabric
/// that is itself shared across threads — the networked ingest front
/// (`tagger-fleetd serve`) drains fabrics from a drain thread while
/// connection reader threads enqueue, and the whole fleet sits behind
/// one mutex. Policies are stateless splitters, so the bound costs
/// implementors nothing.
pub trait DampingPolicy: Send {
    /// Partition `events` into contiguous, in-order, non-empty ranges
    /// covering the whole slice. Each range becomes one staged batch
    /// (one recompute of the range's net effect).
    fn split(&self, events: &[CtrlEvent]) -> Vec<Range<usize>>;

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

/// No damping: every event stages its own epoch.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoDamping;

impl DampingPolicy for NoDamping {
    fn split(&self, events: &[CtrlEvent]) -> Vec<Range<usize>> {
        (0..events.len()).map(|i| i..i + 1).collect()
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// The PR 2 policy: a maximal run of consecutive link events on the
/// *same* link is one batch; everything else is a singleton.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlapDamping;

fn link_of(e: &CtrlEvent) -> Option<LinkId> {
    match e {
        CtrlEvent::LinkDown(l) | CtrlEvent::LinkUp(l) => Some(*l),
        _ => None,
    }
}

impl DampingPolicy for FlapDamping {
    fn split(&self, events: &[CtrlEvent]) -> Vec<Range<usize>> {
        let mut batches = Vec::new();
        let mut start = 0;
        while start < events.len() {
            let mut end = start + 1;
            if let Some(link) = link_of(&events[start]) {
                while end < events.len() && link_of(&events[end]) == Some(link) {
                    end += 1;
                }
            }
            batches.push(start..end);
            start = end;
        }
        batches
    }

    fn name(&self) -> &'static str {
        "flap"
    }
}

/// Flap damping with a ceiling on batch size: a same-link run longer
/// than `max_batch` is chopped into `max_batch`-sized pieces (each still
/// one recompute). Bounds the state a single batch can move through one
/// epoch, at the cost of extra recomputes on very long flap storms.
#[derive(Clone, Copy, Debug)]
pub struct CappedFlapDamping {
    /// Largest number of events a single batch may hold (>= 1).
    pub max_batch: usize,
}

impl CappedFlapDamping {
    /// A capped policy; `max_batch` is clamped to at least 1.
    pub fn new(max_batch: usize) -> Self {
        CappedFlapDamping {
            max_batch: max_batch.max(1),
        }
    }
}

impl DampingPolicy for CappedFlapDamping {
    fn split(&self, events: &[CtrlEvent]) -> Vec<Range<usize>> {
        let mut out = Vec::new();
        for run in FlapDamping.split(events) {
            let mut s = run.start;
            while s < run.end {
                let e = (s + self.max_batch).min(run.end);
                out.push(s..e);
                s = e;
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "flap-capped"
    }
}

/// Parses the `--damping` flag syntax: `none`, `flap`, or `flap:N`
/// (capped at N events per batch).
pub fn parse_damping(spec: &str) -> Result<Box<dyn DampingPolicy>, String> {
    match spec {
        "none" => Ok(Box::new(NoDamping)),
        "flap" => Ok(Box::new(FlapDamping)),
        other => match other.strip_prefix("flap:") {
            Some(n) => {
                let cap: usize = n
                    .parse()
                    .map_err(|_| format!("damping cap wants a number, got {n:?}"))?;
                if cap == 0 {
                    return Err("damping cap must be at least 1".into());
                }
                Ok(Box::new(CappedFlapDamping::new(cap)))
            }
            None => Err(format!(
                "unknown damping policy {other:?} (want none, flap, or flap:N)"
            )),
        },
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::event::parse_trace;
    use tagger_topo::ClosConfig;

    fn events(trace: &str) -> Vec<CtrlEvent> {
        parse_trace(&ClosConfig::small().build(), trace).unwrap()
    }

    fn assert_covering(events: &[CtrlEvent], ranges: &[Range<usize>]) {
        let mut at = 0;
        for r in ranges {
            assert_eq!(r.start, at, "ranges must be contiguous and in order");
            assert!(r.end > r.start, "ranges must be non-empty");
            at = r.end;
        }
        assert_eq!(at, events.len(), "ranges must cover the stream");
    }

    fn assert_suffix_closed(policy: &dyn DampingPolicy, events: &[CtrlEvent]) {
        let full = policy.split(events);
        assert_covering(events, &full);
        if full.len() < 2 {
            return;
        }
        let cut = full[0].end;
        let rest = policy.split(&events[cut..]);
        let shifted: Vec<Range<usize>> = rest.iter().map(|r| r.start + cut..r.end + cut).collect();
        assert_eq!(
            &full[1..],
            shifted.as_slice(),
            "removing the first batch must not re-batch the remainder"
        );
    }

    #[test]
    fn flap_damping_matches_coalesce_flaps() {
        let evs = events("flap L1 T1 3\ndown L2 T2\nresync\nup L2 T2");
        let refs: Vec<&CtrlEvent> = evs.iter().collect();
        let legacy = crate::coalesce_flaps(&refs);
        let split = FlapDamping.split(&evs);
        assert_eq!(legacy.len(), split.len());
        for (batch, range) in legacy.iter().zip(&split) {
            assert_eq!(batch.len(), range.len());
        }
        // 6 flap events, then three singletons.
        assert_eq!(split[0], 0..6);
    }

    #[test]
    fn no_damping_is_all_singletons() {
        let evs = events("flap L1 T1 2\nresync");
        let split = NoDamping.split(&evs);
        assert_eq!(split.len(), evs.len());
        assert_covering(&evs, &split);
    }

    #[test]
    fn capped_damping_chops_long_runs() {
        let evs = events("flap L1 T1 4"); // 8 events on one link
        let split = CappedFlapDamping::new(3).split(&evs);
        assert_eq!(
            split,
            vec![0..3, 3..6, 6..8],
            "an 8-event run capped at 3 is 3+3+2"
        );
    }

    #[test]
    fn policies_are_suffix_closed() {
        let evs = events("flap L1 T1 4\ndown L2 T2\nresync\nflap L3 T3 2\nup L2 T2");
        for policy in [
            &NoDamping as &dyn DampingPolicy,
            &FlapDamping,
            &CappedFlapDamping::new(3),
            &CappedFlapDamping::new(1),
        ] {
            assert_suffix_closed(policy, &evs);
        }
    }

    #[test]
    fn parse_damping_round_trips() {
        assert_eq!(parse_damping("none").unwrap().name(), "none");
        assert_eq!(parse_damping("flap").unwrap().name(), "flap");
        assert_eq!(parse_damping("flap:4").unwrap().name(), "flap-capped");
        assert!(parse_damping("flap:0").is_err());
        assert!(parse_damping("window").is_err());
    }
}
