//! Seeded fault injection for the southbound layer.
//!
//! DCFIT-style chaos testing: the same install stream, replayed with the
//! same seed, hits the same faults — so every bug the chaos schedule
//! finds is reproducible from its seed, and CI can pin a seed and assert
//! the controller's invariants hold under it forever.

use crate::southbound::{apply_prefix, Southbound};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::fmt;
use tagger_core::{InstallError, RuleDelta, RuleSet};

/// The fault schedule: per-attempt probabilities of each install
/// pathology. Rates are clamped so their sum stays at or below 0.9,
/// which keeps every retry loop terminating with probability 1 — a
/// southbound that fails *every* attempt forever is not a fault model,
/// it is a dead network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosConfig {
    /// RNG seed; equal seeds produce equal fault schedules.
    pub seed: u64,
    /// Probability an install attempt is [`InstallError::Refused`]
    /// (nothing applied).
    pub fail_rate: f64,
    /// Probability an attempt is [`InstallError::Timeout`]; half of the
    /// timeouts applied the delta anyway (the ack was lost, not the
    /// update) — the nastiest real-world case.
    pub timeout_rate: f64,
    /// Probability an attempt is [`InstallError::PartialApply`],
    /// applying a uniformly random proper prefix of the delta.
    pub partial_rate: f64,
}

impl ChaosConfig {
    /// A schedule with the given seed and refusal rate and mild default
    /// timeout/partial rates (a tenth of `fail_rate` each), clamped.
    pub fn new(seed: u64, fail_rate: f64) -> Self {
        ChaosConfig {
            seed,
            fail_rate,
            timeout_rate: fail_rate / 10.0,
            partial_rate: fail_rate / 10.0,
        }
        .clamped()
    }

    /// Clamps each rate to `[0, 0.9]` and rescales so the total stays at
    /// or below 0.9.
    pub fn clamped(mut self) -> Self {
        for r in [
            &mut self.fail_rate,
            &mut self.timeout_rate,
            &mut self.partial_rate,
        ] {
            *r = r.clamp(0.0, 0.9);
        }
        let total = self.fail_rate + self.timeout_rate + self.partial_rate;
        if total > 0.9 {
            let scale = 0.9 / total;
            self.fail_rate *= scale;
            self.timeout_rate *= scale;
            self.partial_rate *= scale;
        }
        self
    }

    /// Parses the `--chaos` flag syntax: comma-separated `key=value`
    /// pairs, e.g. `seed=7,fail_rate=0.3,timeout_rate=0.1`. Unset keys
    /// default to seed 0 and rate 0.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut cfg = ChaosConfig {
            seed: 0,
            fail_rate: 0.0,
            timeout_rate: 0.0,
            partial_rate: 0.0,
        };
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("chaos spec {pair:?} is not key=value"))?;
            let bad = || format!("chaos {key} wants a number, got {value:?}");
            match key.trim() {
                "seed" => cfg.seed = value.trim().parse().map_err(|_| bad())?,
                "fail_rate" => cfg.fail_rate = value.trim().parse().map_err(|_| bad())?,
                "timeout_rate" => cfg.timeout_rate = value.trim().parse().map_err(|_| bad())?,
                "partial_rate" => cfg.partial_rate = value.trim().parse().map_err(|_| bad())?,
                other => return Err(format!("unknown chaos key {other:?}")),
            }
        }
        Ok(cfg.clamped())
    }
}

impl fmt::Display for ChaosConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} fail_rate={:.2} timeout_rate={:.2} partial_rate={:.2}",
            self.seed, self.fail_rate, self.timeout_rate, self.partial_rate
        )
    }
}

/// A [`Southbound`] that injects faults from a seeded schedule while
/// still tracking the exact table state each faulty install leaves
/// behind — refused installs change nothing, lost-ack timeouts may have
/// applied, partial applies land a prefix.
#[derive(Clone, Debug)]
pub struct ChaosSouthbound {
    fleet: RuleSet,
    cfg: ChaosConfig,
    rng: StdRng,
    faults: u64,
    attempts: u64,
}

impl ChaosSouthbound {
    /// A chaotic fleet driven by `cfg`'s schedule.
    pub fn new(cfg: ChaosConfig) -> Self {
        ChaosSouthbound {
            fleet: RuleSet::new(),
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            faults: 0,
            attempts: 0,
        }
    }

    /// The schedule in force.
    pub fn config(&self) -> ChaosConfig {
        self.cfg
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults
    }

    /// Install attempts observed so far (faulted or not).
    pub fn attempts_seen(&self) -> u64 {
        self.attempts
    }
}

impl Southbound for ChaosSouthbound {
    fn install(&mut self, _epoch: u64, delta: &RuleDelta) -> Result<(), InstallError> {
        self.attempts += 1;
        let draw: f64 = self.rng.random();
        let c = self.cfg;
        if draw < c.fail_rate {
            self.faults += 1;
            return Err(InstallError::Refused);
        }
        if draw < c.fail_rate + c.timeout_rate {
            self.faults += 1;
            // Lost ack: the update itself raced the deadline and landed
            // half the time.
            if self.rng.random::<bool>() {
                apply_prefix(&mut self.fleet, delta, delta.len());
            }
            return Err(InstallError::Timeout);
        }
        if draw < c.fail_rate + c.timeout_rate + c.partial_rate && delta.len() > 1 {
            self.faults += 1;
            let applied_ops = self.rng.random_range(0..delta.len());
            apply_prefix(&mut self.fleet, delta, applied_ops);
            return Err(InstallError::PartialApply { applied_ops });
        }
        apply_prefix(&mut self.fleet, delta, delta.len());
        Ok(())
    }

    fn fleet(&self) -> &RuleSet {
        &self.fleet
    }

    fn bootstrap(&mut self, rules: &RuleSet) {
        self.fleet = rules.clone();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tagger_core::{SwitchRule, Tag};
    use tagger_topo::{NodeId, PortId};

    fn delta() -> RuleDelta {
        RuleDelta {
            switch: NodeId(1),
            add: vec![
                SwitchRule {
                    tag: Tag(1),
                    in_port: PortId(0),
                    out_port: PortId(1),
                    new_tag: Tag(1),
                },
                SwitchRule {
                    tag: Tag(1),
                    in_port: PortId(2),
                    out_port: PortId(1),
                    new_tag: Tag(2),
                },
            ],
            remove: vec![],
        }
    }

    #[test]
    fn parse_round_trips_the_flag_syntax() {
        let cfg = ChaosConfig::parse("seed=7,fail_rate=0.3").unwrap();
        assert_eq!(cfg.seed, 7);
        assert!((cfg.fail_rate - 0.3).abs() < 1e-9);
        assert!(ChaosConfig::parse("seed=x").is_err());
        assert!(ChaosConfig::parse("frobs=1").is_err());
        assert!(ChaosConfig::parse("fail_rate=0.2,bogus").is_err());
    }

    #[test]
    fn rates_are_clamped_to_guarantee_termination() {
        let cfg = ChaosConfig::parse("fail_rate=1.0,timeout_rate=1.0,partial_rate=1.0").unwrap();
        let total = cfg.fail_rate + cfg.timeout_rate + cfg.partial_rate;
        assert!(
            total <= 0.9 + 1e-9,
            "total fault rate {total} must be <=0.9"
        );
        let lone = ChaosConfig::parse("fail_rate=5.0").unwrap();
        assert!(lone.fail_rate <= 0.9);
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = ChaosConfig::new(42, 0.5);
        let mut a = ChaosSouthbound::new(cfg);
        let mut b = ChaosSouthbound::new(cfg);
        let d = delta();
        for _ in 0..64 {
            assert_eq!(a.install(1, &d), b.install(1, &d));
        }
        assert_eq!(a.fleet(), b.fleet());
        assert_eq!(a.faults_injected(), b.faults_injected());
        assert!(a.faults_injected() > 0, "0.5 over 64 attempts must fault");
    }

    #[test]
    fn retry_through_faults_eventually_lands_the_delta() {
        let mut sb = ChaosSouthbound::new(ChaosConfig::new(3, 0.6));
        let d = delta();
        let mut attempts = 0;
        while sb.install(1, &d).is_err() {
            attempts += 1;
            assert!(attempts < 1000, "clamped rates must terminate");
        }
        let mut expect = RuleSet::new();
        expect.apply_delta(&d);
        assert_eq!(sb.fleet(), &expect);
    }
}
