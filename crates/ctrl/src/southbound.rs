//! The southbound layer: how committed rule deltas actually reach
//! switches.
//!
//! PR 1's controller assumed every install succeeds instantly — an
//! assumption no real control plane gets to make. This module inserts a
//! [`Southbound`] trait between [`Controller`](crate::Controller) commits
//! and the fleet's running tables: the controller pushes per-switch
//! [`RuleDelta`]s through it, and only when *every* switch acks does the
//! epoch count as installed (the commit barrier in
//! [`Controller::handle_via`](crate::Controller::handle_via)).
//!
//! Two implementations ship: [`ReliableSouthbound`] (every install
//! succeeds — the PR 1 behaviour, now explicit) and
//! [`ChaosSouthbound`](crate::ChaosSouthbound), which injects
//! [`InstallError`]s from a seeded schedule so the retry / rollback /
//! recovery machinery can be exercised deterministically.

use tagger_core::{InstallError, RuleDelta, RuleSet};

/// A transport for rule installs, plus the ground-truth view of what the
/// fleet is actually running.
///
/// The fleet table is the thing Theorem 5.1 is ultimately *about*: the
/// certificate covers the tables switches run, not the tables the
/// controller wishes they ran. Every implementation therefore tracks the
/// running [`RuleSet`] exactly as its installs mutate it — including
/// partial applies — so tests can assert the no-mixed-epoch invariant
/// against reality rather than against the controller's beliefs.
pub trait Southbound {
    /// Attempts to install one switch's delta for `epoch`. On `Ok` the
    /// switch's running table reflects the whole delta. On `Err` the
    /// table holds whatever the error semantics say ([`InstallError`]):
    /// nothing new for `Refused`, an unknown prefix for `Timeout`, a
    /// known prefix for `PartialApply`. Re-sending the same delta is
    /// always safe (delta application is idempotent).
    fn install(&mut self, epoch: u64, delta: &RuleDelta) -> Result<(), InstallError>;

    /// The rules the fleet is actually running right now.
    fn fleet(&self) -> &RuleSet;

    /// Seeds the fleet with full tables — the epoch-0 wholesale install,
    /// which happens at provisioning time before any traffic and is
    /// assumed reliable (a rack that cannot take its initial config
    /// never enters service).
    fn bootstrap(&mut self, rules: &RuleSet);
}

/// Applies the first `n` operations of `delta` (withdrawals first, then
/// installs — the wire order) to a running table. `n >= delta.len()`
/// applies everything.
pub(crate) fn apply_prefix(fleet: &mut RuleSet, delta: &RuleDelta, n: usize) {
    for (is_install, rule) in delta.ops().take(n) {
        if is_install {
            fleet.set(delta.switch, rule);
        } else {
            fleet.remove(delta.switch, rule);
        }
    }
}

/// The ideal transport: every install lands, instantly and completely.
#[derive(Clone, Debug, Default)]
pub struct ReliableSouthbound {
    fleet: RuleSet,
}

impl ReliableSouthbound {
    /// An empty fleet; call [`Southbound::bootstrap`] before use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Southbound for ReliableSouthbound {
    fn install(&mut self, _epoch: u64, delta: &RuleDelta) -> Result<(), InstallError> {
        apply_prefix(&mut self.fleet, delta, delta.len());
        Ok(())
    }

    fn fleet(&self) -> &RuleSet {
        &self.fleet
    }

    fn bootstrap(&mut self, rules: &RuleSet) {
        self.fleet = rules.clone();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tagger_core::{SwitchRule, Tag};
    use tagger_topo::{NodeId, PortId};

    fn rule(tag: u16, in_port: u16, out_port: u16, new_tag: u16) -> SwitchRule {
        SwitchRule {
            tag: Tag(tag),
            in_port: PortId(in_port),
            out_port: PortId(out_port),
            new_tag: Tag(new_tag),
        }
    }

    #[test]
    fn reliable_southbound_tracks_deltas_exactly() {
        let mut sb = ReliableSouthbound::new();
        let mut seed = RuleSet::new();
        seed.add(NodeId(1), rule(1, 0, 1, 1)).unwrap();
        sb.bootstrap(&seed);
        assert_eq!(sb.fleet(), &seed);

        let delta = RuleDelta {
            switch: NodeId(1),
            add: vec![rule(1, 2, 3, 2)],
            remove: vec![rule(1, 0, 1, 1)],
        };
        sb.install(1, &delta).unwrap();
        let mut expect = seed.clone();
        expect.apply_delta(&delta);
        assert_eq!(sb.fleet(), &expect);

        // The inverse delta restores the seed tables.
        sb.install(1, &delta.inverse()).unwrap();
        assert_eq!(sb.fleet(), &seed);
    }

    #[test]
    fn partial_prefix_applies_wire_order() {
        let mut fleet = RuleSet::new();
        fleet.add(NodeId(4), rule(1, 0, 1, 1)).unwrap();
        let delta = RuleDelta {
            switch: NodeId(4),
            add: vec![rule(1, 0, 1, 2)],
            remove: vec![rule(1, 0, 1, 1)],
        };
        // One op = just the withdrawal; table ends up empty.
        apply_prefix(&mut fleet, &delta, 1);
        assert_eq!(fleet.num_rules(), 0);
        // The rest of the prefix completes the rewrite.
        apply_prefix(&mut fleet, &delta, delta.len());
        assert_eq!(fleet.rules_for(NodeId(4)), vec![rule(1, 0, 1, 2)]);
        // Replaying the whole delta is idempotent.
        apply_prefix(&mut fleet, &delta, delta.len());
        assert_eq!(fleet.rules_for(NodeId(4)), vec![rule(1, 0, 1, 2)]);
    }
}
