//! The controller's versioned view of the network.

use crate::controller::CtrlError;
use crate::event::CtrlEvent;
use std::collections::BTreeSet;
use tagger_core::Elp;
use tagger_routing::{all_paths_with_bounces, Path};
use tagger_topo::{FailureSet, NodeId, PortId, Topology};

/// How the controller derives the ELP set from the live network view.
///
/// Tagger's tags are computed over *expected* lossless paths. The policy
/// regenerates that expectation whenever the network changes: up-down
/// paths with up to [`ElpPolicy::bounces`] bounces between every host
/// pair, enumerated against the current failure set so a dead link never
/// contributes paths. Operator-pinned extras (from
/// [`CtrlEvent::ElpAdd`](crate::CtrlEvent::ElpAdd)) ride on top.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElpPolicy {
    /// Maximum number of down-up "bounces" a lossless path may take
    /// (paper §4: a `k`-bounce Clos ELP needs `k + 1` lossless tags).
    pub bounces: usize,
    /// Cap on enumerated paths per (src, dst) host pair, to keep
    /// recompute latency bounded on larger fabrics.
    pub cap_per_pair: usize,
}

impl ElpPolicy {
    /// Strict up-down routing only (0 bounces).
    pub fn updown() -> Self {
        ElpPolicy {
            bounces: 0,
            cap_per_pair: usize::MAX,
        }
    }

    /// Up-down plus up to `k` bounces, uncapped.
    pub fn with_bounces(k: usize) -> Self {
        ElpPolicy {
            bounces: k,
            cap_per_pair: usize::MAX,
        }
    }

    /// Caps enumeration at `cap` paths per host pair.
    pub fn capped(mut self, cap: usize) -> Self {
        self.cap_per_pair = cap;
        self
    }

    /// Materializes the ELP for a given failure overlay plus pinned
    /// extras. Pinned paths that currently traverse a failed link are
    /// silently masked (they come back when the link does); duplicates
    /// of policy-enumerated paths are dropped.
    pub fn elp(&self, topo: &Topology, failures: &FailureSet, extras: &[Path]) -> Elp {
        let mut elp = Elp::from_paths(all_paths_with_bounces(
            topo,
            failures,
            self.bounces,
            self.cap_per_pair,
        ));
        for path in extras {
            let live = path.hop_pairs().all(|(a, b)| failures.link_up(topo, a, b));
            if live && !elp.contains(path) {
                elp.extend([path.clone()]);
            }
        }
        elp
    }

    /// Materializes the ELP for a full [`NetworkState`]: the failure
    /// overlay and pinned extras of [`ElpPolicy::elp`], minus every path
    /// crossing a watchdog-quarantined hop. This is what the controller
    /// stages from, so a quarantine produces a corrective tagging that
    /// simply stops promising losslessness through the poisoned queue.
    pub fn elp_for(&self, topo: &Topology, state: &NetworkState) -> Elp {
        let elp = self.elp(topo, &state.failures, &state.extra_paths);
        if state.quarantines.is_empty() {
            return elp;
        }
        Elp::from_paths(
            elp.paths()
                .iter()
                .filter(|p| state.quarantine_allows(topo, p))
                .cloned()
                .collect(),
        )
    }
}

impl Default for ElpPolicy {
    /// One bounce, uncapped — the paper's recommended operating point
    /// for Clos (§4.1: 1-bounce ELPs cover single-failure reroutes at
    /// the cost of one extra lossless priority).
    fn default() -> Self {
        ElpPolicy::with_bounces(1)
    }
}

/// The versioned network state a [`Controller`](crate::Controller)
/// manages: which links are failed and which extra ELPs are pinned.
///
/// `version` increments on every successfully applied event, including
/// ones whose recompute is later rolled back — versions number *views*,
/// epochs number *commits*.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetworkState {
    /// Monotonic view counter.
    pub version: u64,
    /// Links currently believed down.
    pub failures: FailureSet,
    /// Operator-pinned ELPs, in arrival order.
    pub extra_paths: Vec<Path>,
    /// Hops under watchdog quarantine, as `(switch, egress port, tag)`.
    /// Paths crossing a quarantined hop are excluded from the ELP. The
    /// tag is kept for reporting; exclusion is by (switch, port) — a
    /// conservative over-approximation, since which tag a path carries
    /// at a hop is only decided by the tagging compiled *from* the ELP.
    pub quarantines: BTreeSet<(NodeId, PortId, u16)>,
}

impl NetworkState {
    /// The healthy network: no failures, no pinned paths, version 0.
    pub fn initial() -> Self {
        NetworkState::default()
    }

    /// Applies one event, bumping the version. Fails (leaving state
    /// untouched) if the event references a link outside the topology —
    /// the one malformation that can survive trace parsing, since
    /// [`LinkId`](tagger_topo::LinkId)s are plain indices.
    pub fn apply(&mut self, topo: &Topology, event: &CtrlEvent) -> Result<(), CtrlError> {
        match event {
            CtrlEvent::LinkDown(l) | CtrlEvent::LinkUp(l) if l.index() >= topo.num_links() => {
                return Err(CtrlError::UnknownLink(*l));
            }
            _ => {}
        }
        match event {
            CtrlEvent::LinkDown(l) => {
                self.failures.fail(*l);
            }
            CtrlEvent::LinkUp(l) => {
                self.failures.restore(*l);
            }
            CtrlEvent::ElpAdd(p) => {
                if !self.extra_paths.contains(p) {
                    self.extra_paths.push(p.clone());
                }
            }
            CtrlEvent::ElpRemove(p) => self.extra_paths.retain(|q| q != p),
            CtrlEvent::WatchdogTrip { .. } => {
                // Cause-directed recovery: the quarantined hop is the
                // attributed trigger when the trip carries one, the
                // tripping victim otherwise. Re-quarantining a hop (e.g.
                // a victim trip of an episode whose trigger is already
                // masked) is a set insert — one quarantine per hop.
                self.quarantines.insert(
                    event
                        .effective_quarantine()
                        .expect("WatchdogTrip has a target"),
                );
            }
            CtrlEvent::WatchdogClear { switch, port, tag } => {
                self.quarantines.remove(&(*switch, *port, tag.0));
            }
            CtrlEvent::Resync => {}
        }
        self.version += 1;
        Ok(())
    }

    /// True if `path` avoids every quarantined hop: no hop of the path
    /// leaves a quarantined switch through its quarantined egress port.
    pub fn quarantine_allows(&self, topo: &Topology, path: &Path) -> bool {
        if self.quarantines.is_empty() {
            return true;
        }
        path.hop_pairs().all(|(a, b)| {
            topo.port_towards(a, b).is_none_or(|p| {
                !self
                    .quarantines
                    .iter()
                    .any(|&(sw, port, _)| sw == a && port == p)
            })
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tagger_topo::{ClosConfig, LinkId};

    #[test]
    fn apply_tracks_versions_and_rejects_bogus_links() {
        let topo = ClosConfig::small().build();
        let mut st = NetworkState::initial();
        let bogus = LinkId(topo.num_links() as u32);
        assert_eq!(
            st.apply(&topo, &CtrlEvent::LinkDown(bogus)),
            Err(CtrlError::UnknownLink(bogus))
        );
        assert_eq!(st.version, 0, "failed apply must not bump the version");

        let l = tagger_topo::resolve_link(&topo, "L1", "T1").unwrap();
        st.apply(&topo, &CtrlEvent::LinkDown(l)).unwrap();
        assert!(st.failures.is_failed(l));
        st.apply(&topo, &CtrlEvent::LinkUp(l)).unwrap();
        assert!(st.failures.is_empty());
        st.apply(&topo, &CtrlEvent::Resync).unwrap();
        assert_eq!(st.version, 3);
    }

    #[test]
    fn quarantine_masks_paths_through_the_hop() {
        let topo = ClosConfig::small().build();
        let mut st = NetworkState::initial();
        let l1 = topo.expect_node("L1");
        let s1 = topo.expect_node("S1");
        let port = topo.port_towards(l1, s1).unwrap();
        let trip = CtrlEvent::WatchdogTrip {
            switch: l1,
            port,
            tag: tagger_core::Tag(2),
            trigger: None,
        };
        st.apply(&topo, &trip).unwrap();
        assert_eq!(st.quarantines.len(), 1);

        let policy = ElpPolicy::with_bounces(1);
        let full = policy.elp(&topo, &st.failures, &st.extra_paths);
        let filtered = policy.elp_for(&topo, &st);
        assert!(
            filtered.len() < full.len(),
            "quarantining L1->S1 must drop paths ({} vs {})",
            filtered.len(),
            full.len()
        );
        for p in filtered.paths() {
            assert!(st.quarantine_allows(&topo, p));
        }

        st.apply(
            &topo,
            &CtrlEvent::WatchdogClear {
                switch: l1,
                port,
                tag: tagger_core::Tag(2),
            },
        )
        .unwrap();
        assert!(st.quarantines.is_empty());
        assert_eq!(policy.elp_for(&topo, &st).len(), full.len());
    }

    #[test]
    fn attributed_trip_quarantines_the_trigger_not_the_victim() {
        let topo = ClosConfig::small().build();
        let mut st = NetworkState::initial();
        let l1 = topo.expect_node("L1");
        let s1 = topo.expect_node("S1");
        let victim_port = topo.port_towards(l1, s1).unwrap();
        let trigger_port = topo.port_towards(s1, topo.expect_node("L3")).unwrap();
        let trigger = crate::TriggerInfo {
            switch: s1,
            port: trigger_port,
            tag: tagger_core::Tag(2),
        };
        let trip = CtrlEvent::WatchdogTrip {
            switch: l1,
            port: victim_port,
            tag: tagger_core::Tag(2),
            trigger: Some(trigger),
        };
        st.apply(&topo, &trip).unwrap();
        assert_eq!(
            st.quarantines.iter().copied().collect::<Vec<_>>(),
            vec![(s1, trigger_port, 2)],
            "the trigger hop is masked, not the tripping victim"
        );

        // A later victim trip of the same episode, still blaming the
        // same trigger, collapses into the existing quarantine.
        let later = CtrlEvent::WatchdogTrip {
            switch: topo.expect_node("L3"),
            port: PortId(0),
            tag: tagger_core::Tag(2),
            trigger: Some(trigger),
        };
        st.apply(&topo, &later).unwrap();
        assert_eq!(st.quarantines.len(), 1, "one quarantine per episode");
    }

    #[test]
    fn elp_policy_masks_paths_over_failed_links() {
        let topo = ClosConfig::small().build();
        let pinned = tagger_routing::Path::from_names(&topo, &["H1", "T1", "L1", "T2", "H5"]);
        let policy = ElpPolicy::updown();
        let mut failures = FailureSet::none();

        let healthy = policy.elp(&topo, &failures, std::slice::from_ref(&pinned));
        assert!(healthy.contains(&pinned));

        failures.fail_between(&topo, "T1", "L1");
        let degraded = policy.elp(&topo, &failures, std::slice::from_ref(&pinned));
        assert!(
            !degraded.contains(&pinned),
            "a pinned path over a failed link must be masked"
        );
        assert!(degraded.len() < healthy.len());
    }
}
