//! Property tests for the hardened southbound path (ISSUE satellite).
//!
//! For *any* seeded chaos schedule — install failures, lost-ack
//! timeouts, partial applies, and a crash at an arbitrary point,
//! including mid-epoch:
//!
//! 1. every committed snapshot is Theorem-5.1-verified, and the fleet's
//!    running tables always equal the committed tables (the commit
//!    barrier: no mixed-epoch network, ever);
//! 2. journal replay from the last checkpoint reproduces the committed
//!    tables byte-for-byte, and reconciliation repairs whatever the
//!    crash left on the switches.

use proptest::prelude::*;
use tagger_ctrl::{
    recover, ChaosConfig, ChaosSouthbound, Controller, CtrlEvent, ElpPolicy, EpochOutcome,
    InstallPolicy, Journal, Southbound,
};
use tagger_topo::{ClosConfig, LinkId, Topology};

fn fabric_links(topo: &Topology) -> Vec<LinkId> {
    topo.link_ids()
        .filter(|&l| {
            let link = topo.link(l);
            let (a, b) = (link.a.node, link.b.node);
            topo.node(a).kind != tagger_topo::NodeKind::Host
                && topo.node(b).kind != tagger_topo::NodeKind::Host
        })
        .collect()
}

fn decode(links: &[LinkId], op: (usize, u8)) -> CtrlEvent {
    let link = links[op.0 % links.len()];
    match op.1 % 3 {
        0 => CtrlEvent::LinkDown(link),
        1 => CtrlEvent::LinkUp(link),
        _ => CtrlEvent::Resync,
    }
}

fn journal_path(tag: &str, seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "tagger-proptest-{}-{tag}-{seed}.journal",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn chaos_never_breaks_the_barrier_and_recovery_is_exact(
        ops in proptest::collection::vec((0usize..64, 0u8..3), 1..5),
        seed in 0u64..1024,
        fail_pct in 0u64..80,
        crash_at in 0usize..4,
    ) {
        let fail_rate = fail_pct as f64 / 100.0;
        let topo = ClosConfig::small().build();
        let links = fabric_links(&topo);
        let events: Vec<CtrlEvent> = ops.iter().map(|&op| decode(&links, op)).collect();
        let policy = ElpPolicy::with_bounces(1);
        let install = InstallPolicy { max_attempts: 3, ..InstallPolicy::default() };

        let mut ctrl = Controller::new(topo.clone(), policy)
            .expect("healthy small Clos must bootstrap");
        let mut sb = ChaosSouthbound::new(ChaosConfig {
            seed,
            fail_rate,
            timeout_rate: fail_rate / 4.0,
            partial_rate: fail_rate / 4.0,
        }.clamped());
        sb.bootstrap(&ctrl.committed().rules);

        let path = journal_path("chaos", seed);
        let mut journal = Journal::create(&path).expect("temp journal");
        let report = journal
            .drive(&mut ctrl, &events, &mut sb, &install, 2, Some(crash_at as u64))
            .expect("in-range links never hard-error");

        // Invariant 1, checked at the crash point (drive itself asserts
        // the fleet against the committed tables after every epoch via
        // the commit barrier; the chaos southbound is ground truth):
        prop_assert!(ctrl.committed().graph.verify().is_ok());
        prop_assert_eq!(
            sb.fleet(), &ctrl.committed().rules,
            "fleet must equal the committed tables whenever the controller is at rest"
        );
        for outcome in &report.outcomes {
            if let EpochOutcome::Committed(r) = outcome {
                prop_assert!(r.install_attempts >= r.deltas.len() as u64);
            }
        }

        // Invariant 2: recovery from the journal reconverges exactly.
        let pre_rules = ctrl.committed().rules.clone();
        let pre_epoch = ctrl.committed().epoch;
        let pre_version = ctrl.state().version;
        drop(ctrl);
        let recovery = recover(&path, topo.clone(), policy, None).expect("journal must recover");
        let mut recovered = recovery.controller;
        prop_assert_eq!(recovered.committed().epoch, pre_epoch);
        prop_assert_eq!(recovered.state().version, pre_version);
        prop_assert_eq!(
            &recovered.committed().rules, &pre_rules,
            "journal replay must reproduce the committed tables byte-for-byte"
        );
        prop_assert!(recovered.committed().graph.verify().is_ok());

        // The crash may have left the fleet anywhere (the write-ahead
        // batch was never installed, or was half-installed); reconcile
        // must converge it onto the recovered committed tables.
        recovered.reconcile(&mut sb);
        prop_assert_eq!(sb.fleet(), &recovered.committed().rules);

        // And the tail (the batch in flight at the crash) processes
        // cleanly on the recovered controller.
        if report.crashed {
            recovered
                .replay_damped_via(recovery.tail.iter(), &mut sb, &install)
                .expect("tail events stay well-formed");
            prop_assert_eq!(sb.fleet(), &recovered.committed().rules);
            prop_assert!(recovered.committed().graph.verify().is_ok());
        } else {
            prop_assert!(recovery.tail.is_empty());
        }
        std::fs::remove_file(&path).ok();
    }
}
