//! Property tests for the controller's two-phase rollout.
//!
//! The contract under test (ISSUE satellite): for *any* event trace,
//! every committed snapshot is a verified deadlock-free tagging, and a
//! switch fleet that starts from the epoch-0 tables and applies the
//! emitted deltas in commit order ends up bit-identical to the
//! controller's final committed tables — the delta stream never drifts
//! from the snapshot it describes.

use proptest::prelude::*;
use tagger_ctrl::{Controller, CtrlEvent, ElpPolicy, EpochOutcome};
use tagger_topo::{ClosConfig, LinkId, Topology};

/// Switch-to-switch links of the small Clos, the interesting failure
/// domain (host links only disconnect one host).
fn fabric_links(topo: &Topology) -> Vec<LinkId> {
    topo.link_ids()
        .filter(|&l| {
            let link = topo.link(l);
            let (a, b) = (link.a.node, link.b.node);
            topo.node(a).kind != tagger_topo::NodeKind::Host
                && topo.node(b).kind != tagger_topo::NodeKind::Host
        })
        .collect()
}

/// Decodes one generated op against the candidate link list.
fn decode(links: &[LinkId], op: (usize, u8)) -> CtrlEvent {
    let link = links[op.0 % links.len()];
    match op.1 % 3 {
        0 => CtrlEvent::LinkDown(link),
        1 => CtrlEvent::LinkUp(link),
        _ => CtrlEvent::Resync,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn committed_snapshots_verify_and_deltas_replay_exactly(
        ops in proptest::collection::vec((0usize..64, 0u8..3), 1..5)
    ) {
        let topo = ClosConfig::small().build();
        let links = fabric_links(&topo);
        let mut ctrl = Controller::new(topo, ElpPolicy::with_bounces(1))
            .expect("healthy small Clos must bootstrap");

        // The "switch fleet": starts from epoch 0, sees only deltas.
        let mut fleet = ctrl.committed().rules.clone();
        prop_assert!(ctrl.committed().graph.verify().is_ok());

        let mut last_epoch = ctrl.committed().epoch;
        for op in ops {
            let event = decode(&links, op);
            let outcome = ctrl.handle(&event).expect("in-range links never hard-error");
            match outcome {
                EpochOutcome::Committed(report) => {
                    prop_assert_eq!(report.epoch, last_epoch + 1);
                    last_epoch = report.epoch;
                    for delta in &report.deltas {
                        fleet.apply_delta(delta);
                    }
                }
                EpochOutcome::RolledBack { .. } => {
                    // Rollback must leave the committed epoch untouched.
                    prop_assert_eq!(ctrl.committed().epoch, last_epoch);
                }
            }
            // The safety invariant: whatever happened, the committed
            // snapshot is a verified deadlock-free tagging.
            prop_assert!(ctrl.committed().graph.verify().is_ok());
        }

        prop_assert_eq!(
            &fleet,
            &ctrl.committed().rules,
            "replaying deltas from epoch 0 must reproduce the committed tables"
        );
    }
}
