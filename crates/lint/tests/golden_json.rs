//! Golden test over the corrupted-checkpoint fixture: the structured
//! JSON report is byte-stable (codes, ordering, spans and all), so any
//! accidental change to the diagnostic model or renderer shows up as a
//! diff against `results/lint_corrupted.json`.
//!
//! Regenerate after an *intentional* change with:
//!
//! ```text
//! cargo run --bin tagger-lint -- check examples/corrupted.ckpt \
//!     --format json > results/lint_corrupted.json
//! ```

use tagger_lint::{
    codes, json::Value, lint_checkpoint_text, render_json, LintOptions, LintReport, Severity,
};

fn root(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn corrupted_checkpoint_report_matches_golden_json() {
    let text = std::fs::read_to_string(root("examples/corrupted.ckpt")).expect("fixture");
    let report = LintReport {
        artifacts: vec![lint_checkpoint_text(
            "examples/corrupted.ckpt",
            &text,
            &LintOptions::default(),
        )],
    };

    // The stable contract first: non-zero-exit condition, one
    // first-match shadowing finding, one monotonicity finding.
    assert!(report.has_errors());
    let codes_found: Vec<&str> = report.artifacts[0]
        .diagnostics
        .iter()
        .map(|d| d.code)
        .collect();
    assert!(codes_found.contains(&codes::CONFLICTING_DUPLICATE));
    assert!(codes_found.contains(&codes::TAG_DECREASE));
    assert!(codes_found.contains(&codes::AUDIT_FINDINGS));

    // Then the bytes.
    let rendered = render_json(&report);
    let golden = std::fs::read_to_string(root("results/lint_corrupted.json")).expect("golden");
    assert_eq!(
        rendered, golden,
        "lint JSON drifted from results/lint_corrupted.json — regenerate it if intentional"
    );

    // And the rendering is real JSON that round-trips byte-stably.
    let parsed = Value::parse(&rendered).expect("valid json");
    assert_eq!(parsed.render(), rendered);
    assert_eq!(
        parsed.get("summary").and_then(|s| s.get("errors")),
        Some(&Value::Num(report.count(Severity::Error) as i64))
    );
}

#[test]
fn fig1_cycle_checkpoint_lints_without_errors() {
    // The Figure 1 fixture *contains* a deadlock cycle — the audit
    // rejects it — but lint's local checks have nothing to flag as an
    // error: monotone rewrites, no duplicates. The division of labour
    // (lint = local pre-filter, audit = global proof) is deliberate;
    // the cross-check warning is how lint points at the audit verdict.
    let text = std::fs::read_to_string(root("examples/fig1_cycle.ckpt")).expect("fixture");
    let report = LintReport {
        artifacts: vec![lint_checkpoint_text(
            "examples/fig1_cycle.ckpt",
            &text,
            &LintOptions::default(),
        )],
    };
    assert!(!report.has_errors());
    assert!(report.artifacts[0]
        .diagnostics
        .iter()
        .any(|d| d.code == codes::AUDIT_FINDINGS && d.severity == Severity::Warning));
}
