//! Golden test over the corrupted-checkpoint fixture: the structured
//! JSON report is byte-stable (codes, ordering, spans and all), so any
//! accidental change to the diagnostic model or renderer shows up as a
//! diff against `results/lint_corrupted.json`.
//!
//! Regenerate after an *intentional* change with:
//!
//! ```text
//! cargo run --bin tagger-lint -- check examples/corrupted.ckpt \
//!     --format json > results/lint_corrupted.json
//! ```

use tagger_lint::{
    codes, json::Value, lint_checkpoint_text, lint_topology_text, render_json, LintOptions,
    LintReport, Severity,
};

fn root(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn corrupted_checkpoint_report_matches_golden_json() {
    let text = std::fs::read_to_string(root("examples/corrupted.ckpt")).expect("fixture");
    let report = LintReport {
        artifacts: vec![lint_checkpoint_text(
            "examples/corrupted.ckpt",
            &text,
            &LintOptions::default(),
        )],
    };

    // The stable contract first: non-zero-exit condition, one
    // first-match shadowing finding, one monotonicity finding.
    assert!(report.has_errors());
    let codes_found: Vec<&str> = report.artifacts[0]
        .diagnostics
        .iter()
        .map(|d| d.code)
        .collect();
    assert!(codes_found.contains(&codes::CONFLICTING_DUPLICATE));
    assert!(codes_found.contains(&codes::TAG_DECREASE));
    assert!(codes_found.contains(&codes::AUDIT_FINDINGS));

    // Then the bytes.
    let rendered = render_json(&report);
    let golden = std::fs::read_to_string(root("results/lint_corrupted.json")).expect("golden");
    assert_eq!(
        rendered, golden,
        "lint JSON drifted from results/lint_corrupted.json — regenerate it if intentional"
    );

    // And the rendering is real JSON that round-trips byte-stably.
    let parsed = Value::parse(&rendered).expect("valid json");
    assert_eq!(parsed.render(), rendered);
    assert_eq!(
        parsed.get("summary").and_then(|s| s.get("errors")),
        Some(&Value::Num(report.count(Severity::Error) as i64))
    );
}

#[test]
fn infeasible_topology_report_matches_golden_json() {
    // Regenerate after an intentional change with:
    //   cargo run --bin tagger-lint -- check examples/infeasible.topo \
    //       --format json > results/lint_infeasible.json
    let text = std::fs::read_to_string(root("examples/infeasible.topo")).expect("fixture");
    let lint_once = || LintReport {
        artifacts: vec![lint_topology_text(
            "examples/infeasible.topo",
            &text,
            &LintOptions::default(),
        )],
    };
    let report = lint_once();

    // The stable contract: the `priorities 1` ring is an error, the
    // single diagnostic is the oracle's T0701 with the minimal kernel
    // quoted and the span resting on a link of the dependency cycle.
    assert!(report.has_errors());
    let [d] = &report.artifacts[0].diagnostics[..] else {
        panic!("expected exactly one diagnostic: {report:?}");
    };
    assert_eq!(d.code, codes::ORACLE_INFEASIBLE);
    assert!(
        d.message.contains("minimal infeasible kernel (5 path(s))"),
        "{}",
        d.message
    );
    assert!(d.message.contains("dependency cycle"), "{}", d.message);
    let line = d.span.expect("T0701 carries a span").line;
    assert!(
        text.lines()
            .nth(line - 1)
            .expect("span in file")
            .starts_with("link "),
        "span line {line} is not a link line"
    );

    // Then the bytes — including run-twice determinism, since the
    // kernel shrink and cycle extraction must not depend on iteration
    // order luck.
    let rendered = render_json(&report);
    assert_eq!(
        rendered,
        render_json(&lint_once()),
        "lint output not deterministic"
    );
    let golden = std::fs::read_to_string(root("results/lint_infeasible.json")).expect("golden");
    assert_eq!(
        rendered, golden,
        "lint JSON drifted from results/lint_infeasible.json — regenerate it if intentional"
    );

    // And the rendering is real JSON that round-trips byte-stably.
    let parsed = Value::parse(&rendered).expect("valid json");
    assert_eq!(parsed.render(), rendered);
    assert_eq!(
        parsed.get("summary").and_then(|s| s.get("errors")),
        Some(&Value::Num(1))
    );
}

#[test]
fn fig1_cycle_checkpoint_lints_without_errors() {
    // The Figure 1 fixture *contains* a deadlock cycle — the audit
    // rejects it — but lint's local checks have nothing to flag as an
    // error: monotone rewrites, no duplicates. The division of labour
    // (lint = local pre-filter, audit = global proof) is deliberate;
    // the cross-check warning is how lint points at the audit verdict.
    let text = std::fs::read_to_string(root("examples/fig1_cycle.ckpt")).expect("fixture");
    let report = LintReport {
        artifacts: vec![lint_checkpoint_text(
            "examples/fig1_cycle.ckpt",
            &text,
            &LintOptions::default(),
        )],
    };
    assert!(!report.has_errors());
    assert!(report.artifacts[0]
        .diagnostics
        .iter()
        .any(|d| d.code == codes::AUDIT_FINDINGS && d.severity == Severity::Warning));
}
