//! Property tests tying lint to the auditor: whatever the independent
//! auditor certifies must lint without error-severity findings (lint is
//! a *pre*-filter, never stricter than the proof), and a single
//! downward tag rewrite — the canonical table corruption — must always
//! surface as at least one error.

use proptest::prelude::*;
use tagger_audit::Auditor;
use tagger_core::clos::clos_tagging;
use tagger_core::{Elp, RuleSet, SwitchRule, Tag, Tagging};
use tagger_lint::analyses::{lint_ruleset, lint_table_text, SpanIndex};
use tagger_lint::{codes, Severity};
use tagger_topo::{ClosConfig, JellyfishConfig, Topology};

/// Every error-severity finding over `rules`, via both the semantic
/// analyses and a text round trip through the lenient parser.
fn errors(topo: &Topology, rules: &RuleSet) -> Vec<String> {
    let mut diags = lint_ruleset(topo, rules, &SpanIndex::new());
    let table = lint_table_text(topo, &rules.to_table_text(topo), 0);
    diags.extend(table.diagnostics);
    diags
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| format!("{}: {}", d.code, d.message))
        .collect()
}

/// Corrupts one rule's rewrite downward — `new_tag = tag - 1` is always
/// a monotonicity violation since tags start at 1.
fn corrupt_one(rules: &RuleSet, pick: usize) -> RuleSet {
    let mut out = rules.clone();
    let all: Vec<_> = rules.iter().collect();
    let (sw, rule) = all[pick % all.len()];
    out.set(
        sw,
        SwitchRule {
            new_tag: Tag(rule.tag.0 - 1),
            ..rule
        },
    );
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Audit-certified Clos taggings of random dimensions lint clean,
    /// and one downward rewrite always produces at least one error.
    #[test]
    fn certified_clos_tables_lint_clean_and_corruption_is_caught(
        dims in (1usize..3, 1usize..3, 1usize..3, 1usize..4, 0usize..3),
        pick in 0usize..10_000
    ) {
        let (pods, leaves, tors, spines, k) = dims;
        let config = ClosConfig {
            pods,
            leaves_per_pod: leaves,
            tors_per_pod: tors,
            spines,
            hosts_per_tor: 2,
        };
        let topo = config.build();
        let tagging = clos_tagging(&topo, k).unwrap();
        let mut auditor = Auditor::new(topo.clone());
        prop_assert!(auditor.audit(0, tagging.rules()).is_certified());
        let clean = errors(&topo, tagging.rules());
        prop_assert!(clean.is_empty(), "certified table lints dirty: {clean:?}");

        if tagging.rules().num_rules() > 0 {
            let corrupted = corrupt_one(tagging.rules(), pick);
            let found = errors(&topo, &corrupted);
            prop_assert!(!found.is_empty(), "downward rewrite went unnoticed");
            prop_assert!(
                found.iter().any(|e| e.starts_with(codes::TAG_DECREASE)),
                "expected a {} finding, got {found:?}", codes::TAG_DECREASE
            );
        }
    }

    /// The same invariant off-Clos: ELP-derived taggings on random
    /// Jellyfish graphs lint clean when certified, and the downward
    /// corruption is still caught.
    #[test]
    fn certified_jellyfish_tables_lint_clean_and_corruption_is_caught(
        shape in (4usize..10, 0u64..1000),
        pick in 0usize..10_000
    ) {
        let (switches, seed) = shape;
        let topo = JellyfishConfig::half_servers(switches, 6, seed).build();
        let elp = Elp::shortest(&topo, 2, true);
        let Ok(tagging) = Tagging::from_elp(&topo, &elp) else {
            // Some random graphs exceed the tag budget; nothing to lint.
            return Ok(());
        };
        let mut auditor = Auditor::new(topo.clone());
        if !auditor.audit(0, tagging.rules()).is_certified() {
            return Ok(());
        }
        let clean = errors(&topo, tagging.rules());
        prop_assert!(clean.is_empty(), "certified table lints dirty: {clean:?}");

        if tagging.rules().num_rules() > 0 {
            let corrupted = corrupt_one(tagging.rules(), pick);
            prop_assert!(!errors(&topo, &corrupted).is_empty());
        }
    }
}
