//! The individual static analyses over tables and TCAM programs.

use crate::diag::{codes, Diagnostic, Severity};
use std::collections::{BTreeMap, BTreeSet};
use tagger_core::tcam::{Compression, Tcam, TcamProgram};
use tagger_core::{Elp, RuleSet, Span, Tag, TagDecision, TaggedNode};
use tagger_topo::{nearest_names, GlobalPort, NodeId, PortId, Topology};

/// Where each final (last-write-wins) rule was defined in the text, so
/// semantic findings can point back at source lines.
pub type SpanIndex = BTreeMap<(NodeId, Tag, PortId, PortId), Span>;

/// Result of the text-level table lint: the effective rule set plus the
/// syntax/duplication findings and the span index for later analyses.
pub struct TableLint {
    /// The effective rules (duplicates resolved last-write-wins, exactly
    /// as `RuleSet::from_table_text` would).
    pub rules: RuleSet,
    /// Source span of each effective rule.
    pub spans: SpanIndex,
    /// Syntax errors and duplicate-key findings.
    pub diagnostics: Vec<Diagnostic>,
}

/// The human-readable name of the peer reached through `port` — falls
/// back to `#N` for unwired ports, matching the table-text syntax.
fn port_name(topo: &Topology, sw: NodeId, port: PortId) -> String {
    match topo.peer_of(GlobalPort::new(sw, port)) {
        Some(gp) => topo.node(gp.node).name.clone(),
        None => format!("#{}", port.0),
    }
}

/// `(tag 2, in S1, out S2)` — the match-key rendering all table
/// diagnostics use.
fn key_name(topo: &Topology, sw: NodeId, tag: Tag, in_port: PortId, out_port: PortId) -> String {
    format!(
        "(tag {}, in {}, out {})",
        tag.0,
        port_name(topo, sw, in_port),
        port_name(topo, sw, out_port)
    )
}

fn did_you_mean(topo: &Topology, name: &str) -> Option<String> {
    let nearest = nearest_names(topo, name);
    (!nearest.is_empty()).then(|| format!("did you mean {}?", nearest.join(", ")))
}

/// Lints the *text* of a rule table: malformed lines (with the parser's
/// exact spans) and duplicate match keys — the analysis that catches a
/// table whose first-match TCAM semantics disagree with what the
/// last-write-wins loader will build. `line_offset` maps table-local
/// line numbers to file coordinates (a body embedded in a checkpoint).
pub fn lint_table_text(topo: &Topology, text: &str, line_offset: usize) -> TableLint {
    let parse = RuleSet::parse_table_text_lenient(topo, text);
    let mut diagnostics = Vec::new();
    for e in &parse.errors {
        let span = e.span.offset_lines(line_offset);
        let named = || e.why.split('"').nth(1).unwrap_or_default();
        let d = if e.why.starts_with("unknown switch") {
            let mut d = Diagnostic::new(codes::UNKNOWN_SWITCH, Severity::Error, e.why.clone());
            if let Some(hint) = did_you_mean(topo, named()) {
                d = d.with_hint(hint);
            }
            d
        } else if e.why.starts_with("unknown neighbour") {
            let mut d = Diagnostic::new(codes::UNKNOWN_NEIGHBOUR, Severity::Error, e.why.clone());
            if let Some(hint) = did_you_mean(topo, named()) {
                d = d.with_hint(hint);
            }
            d
        } else if e.why.contains("has no port towards") {
            Diagnostic::new(codes::NOT_ADJACENT, Severity::Error, e.why.clone())
        } else if e.why.starts_with("rule before any switch") {
            Diagnostic::new(codes::RULE_BEFORE_SWITCH, Severity::Error, e.why.clone())
                .with_hint("add a `switch <name>` line above this rule")
        } else {
            Diagnostic::new(codes::MALFORMED_RULE, Severity::Error, e.why.clone())
        };
        diagnostics.push(d.with_span(span));
    }

    // Duplicate match keys, in file order. The TCAM is first-match, the
    // loader is last-write-wins: a conflicting duplicate means the text
    // and the hardware disagree about the rewrite.
    let mut seen: BTreeMap<(NodeId, Tag, PortId, PortId), (Span, Tag)> = BTreeMap::new();
    for sr in &parse.rules {
        let key = (sr.switch, sr.rule.tag, sr.rule.in_port, sr.rule.out_port);
        let span = sr.span.offset_lines(line_offset);
        if let Some((earlier, earlier_new_tag)) = seen.get(&key) {
            let kn = key_name(
                topo,
                sr.switch,
                sr.rule.tag,
                sr.rule.in_port,
                sr.rule.out_port,
            );
            let sw_name = &topo.node(sr.switch).name;
            if *earlier_new_tag == sr.rule.new_tag {
                diagnostics.push(
                    Diagnostic::new(
                        codes::IDENTICAL_DUPLICATE,
                        Severity::Warning,
                        format!(
                            "duplicate rule for {sw_name} {kn}: identical to line {}",
                            earlier.line
                        ),
                    )
                    .with_span(span)
                    .with_locus(format!("switch {sw_name}"))
                    .with_hint("delete one of the two lines"),
                );
            } else {
                diagnostics.push(
                    Diagnostic::new(
                        codes::CONFLICTING_DUPLICATE,
                        Severity::Error,
                        format!(
                            "conflicting duplicate for {sw_name} {kn}: line {} rewrites to \
                             tag {}, this line to tag {} — a first-match TCAM applies the \
                             earlier line and shadows this one, the table loader keeps this one",
                            earlier.line, earlier_new_tag.0, sr.rule.new_tag.0
                        ),
                    )
                    .with_span(span)
                    .with_locus(format!("switch {sw_name}"))
                    .with_hint(format!(
                        "delete one of the two lines so text and hardware agree \
                         (earlier definition at line {})",
                        earlier.line
                    )),
                );
            }
        }
        seen.insert(key, (span, sr.rule.new_tag));
    }

    let mut rules = RuleSet::new();
    let mut spans = SpanIndex::new();
    for sr in parse.rules {
        rules.set(sr.switch, sr.rule);
        spans.insert(
            (sr.switch, sr.rule.tag, sr.rule.in_port, sr.rule.out_port),
            sr.span.offset_lines(line_offset),
        );
    }
    TableLint {
        rules,
        spans,
        diagnostics,
    }
}

/// Semantic lints over an effective rule set: tag monotonicity (the
/// cheap per-edge half of Theorem 5.1 — no graph construction) and
/// reachability (rules no host-injected packet can ever hit).
pub fn lint_ruleset(topo: &Topology, rules: &RuleSet, spans: &SpanIndex) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Monotonicity: every rewrite must be non-decreasing. This is a
    // *local* check per rule — deliberately cheaper than the full
    // audit, which also proves per-tag acyclicity.
    for (sw, rule) in rules.iter() {
        if rule.new_tag < rule.tag {
            let kn = key_name(topo, sw, rule.tag, rule.in_port, rule.out_port);
            let sw_name = &topo.node(sw).name;
            let mut d = Diagnostic::new(
                codes::TAG_DECREASE,
                Severity::Error,
                format!(
                    "rule {kn} rewrites to tag {} — tag monotonicity (Theorem 5.1) \
                     requires the new tag to be >= {}",
                    rule.new_tag.0, rule.tag.0
                ),
            )
            .with_locus(format!("switch {sw_name}"))
            .with_hint(format!(
                "rewrite to a tag >= {}, or delete the rule",
                rule.tag.0
            ));
            if let Some(span) = spans.get(&(sw, rule.tag, rule.in_port, rule.out_port)) {
                d = d.with_span(*span);
            }
            out.push(d);
        }
    }
    // Reachability: forward closure from every host-facing ingress at
    // the initial tag (reusing the core closure graph). A rule whose
    // (ingress, tag) buffer is not in the closure is dead weight.
    let closure = rules.closure_graph(topo, []);
    for (sw, rule) in rules.iter() {
        let node = TaggedNode {
            port: GlobalPort::new(sw, rule.in_port),
            tag: rule.tag,
        };
        if !closure.contains_node(&node) {
            let kn = key_name(topo, sw, rule.tag, rule.in_port, rule.out_port);
            let sw_name = &topo.node(sw).name;
            let mut d = Diagnostic::new(
                codes::UNREACHABLE_RULE,
                Severity::Warning,
                format!(
                    "rule {kn} can never match: no packet injected at a host \
                     reaches {sw_name} ingress {} with tag {}",
                    port_name(topo, sw, rule.in_port),
                    rule.tag.0
                ),
            )
            .with_locus(format!("switch {sw_name}"))
            .with_hint("delete the rule, or add the upstream rules that feed it");
            if let Some(span) = spans.get(&(sw, rule.tag, rule.in_port, rule.out_port)) {
                d = d.with_span(*span);
            }
            out.push(d);
        }
    }
    out
}

/// Walks every expected lossless path through the rules and reports the
/// first hop where a path falls out of the lossless class — the silent
/// demotion the paper's lossy fallback (§4.2) only intends for
/// *unexpected* paths. One finding per distinct (switch, match key).
pub fn lint_elp_coverage(topo: &Topology, rules: &RuleSet, elp: &Elp) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<(NodeId, Tag, PortId, PortId)> = BTreeSet::new();
    for path in elp.paths() {
        let nodes = path.nodes();
        let mut tag = Tag::INITIAL;
        for window in nodes.windows(3) {
            let [prev, cur, next] = [window[0], window[1], window[2]];
            let (Some(in_port), Some(out_port)) =
                (topo.port_towards(cur, prev), topo.port_towards(cur, next))
            else {
                break; // not adjacent — the path itself is invalid
            };
            match rules.decide(cur, tag, in_port, out_port) {
                TagDecision::Lossless(next_tag) => tag = next_tag,
                TagDecision::Lossy => {
                    if seen.insert((cur, tag, in_port, out_port)) {
                        let names: Vec<&str> =
                            nodes.iter().map(|n| topo.node(*n).name.as_str()).collect();
                        let sw_name = &topo.node(cur).name;
                        out.push(
                            Diagnostic::new(
                                codes::TAG_LEAK_TO_LOSSY,
                                Severity::Error,
                                format!(
                                    "expected lossless path {} is demoted to the lossy \
                                     class at {sw_name} {}",
                                    names.join("->"),
                                    key_name(topo, cur, tag, in_port, out_port)
                                ),
                            )
                            .with_locus(format!("switch {sw_name}"))
                            .with_hint(format!(
                                "add `rule {} {} {} <new-tag>` (new-tag >= {}) to switch {sw_name}",
                                tag.0,
                                port_name(topo, cur, in_port),
                                port_name(topo, cur, out_port),
                                tag.0
                            )),
                        );
                    }
                    break;
                }
            }
        }
    }
    out
}

/// Lints a compiled/installed TCAM program: first-match shadowing
/// (an earlier masked entry fully covering a later one makes the later
/// entry dead) and a redundancy estimate against a fresh Joint
/// recompilation of each table's concrete meaning.
pub fn lint_program(topo: &Topology, program: &TcamProgram) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut total = 0usize;
    let mut recompiled_total = 0usize;
    let mut worst: Option<(String, usize, usize)> = None;
    for sw in program.switches() {
        let Some(tcam) = program.tcam_for(sw) else {
            continue;
        };
        let sw_name = &topo.node(sw).name;
        let entries = tcam.entries();
        for (j, later) in entries.iter().enumerate() {
            if let Some(i) = (0..j).find(|&i| entries[i].covers(later)) {
                out.push(
                    Diagnostic::new(
                        codes::SHADOWED_ENTRY,
                        Severity::Error,
                        format!(
                            "TCAM entry {j} on {sw_name} (tag {} -> {}) is dead: entry {i} \
                             matches the same tag over a superset of its port bitmaps and \
                             wins under first-match",
                            later.tag.0, later.new_tag.0
                        ),
                    )
                    .with_locus(format!("{sw_name} entry {j} shadowed by entry {i}"))
                    .with_hint(format!("delete entry {j}, or move it above entry {i}")),
                );
            }
        }
        let num_ports = topo.node(sw).num_ports() as u16;
        let recompiled = Tcam::compile(&tcam.decompile(num_ports), Compression::Joint);
        total += entries.len();
        recompiled_total += recompiled.len();
        if recompiled.len() < entries.len() {
            let saved = entries.len() - recompiled.len();
            if worst.as_ref().is_none_or(|(_, _, w)| saved > *w) {
                worst = Some((sw_name.clone(), entries.len(), saved));
            }
        }
    }
    if recompiled_total < total {
        let (name, had, saved) = worst.unwrap_or_default();
        out.push(
            Diagnostic::new(
                codes::MERGEABLE_ENTRIES,
                Severity::Note,
                format!(
                    "tables admit a smaller encoding: {total} installed entries recompile \
                     to {recompiled_total} with Joint bitmap compression (largest saving \
                     on {name}: {had} -> {})",
                    had - saved
                ),
            )
            .with_locus(format!("switch {name}")),
        );
    }
    out
}

/// The redundancy estimate for an *uncompressed* table (a checkpoint
/// body): how many TCAM entries the text's one-rule-per-line encoding
/// costs versus a Joint compilation.
pub fn redundancy_note(topo: &Topology, rules: &RuleSet) -> Option<Diagnostic> {
    let uncompressed = rules.num_rules();
    let program = TcamProgram::compile(topo, rules, Compression::Joint);
    let compressed = program.total_entries();
    if compressed >= uncompressed {
        return None;
    }
    let (mut worst_name, mut worst_had, mut worst_saved) = (String::new(), 0usize, 0usize);
    for sw in rules.switches() {
        let had = rules.table_size(sw);
        let got = program.tcam_for(sw).map_or(0, Tcam::len);
        if had > got && had - got > worst_saved {
            (worst_name, worst_had, worst_saved) = (topo.node(sw).name.clone(), had, had - got);
        }
    }
    Some(
        Diagnostic::new(
            codes::MERGEABLE_ENTRIES,
            Severity::Note,
            format!(
                "table encodes {uncompressed} rules one-per-entry; Joint bitmap \
                 compression fits them in {compressed} TCAM entries (largest saving on \
                 {worst_name}: {worst_had} -> {})",
                worst_had - worst_saved
            ),
        )
        .with_locus(format!("switch {worst_name}")),
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tagger_core::clos::clos_tagging;
    use tagger_core::tcam::{PortSet, TcamEntry};
    use tagger_core::SwitchRule;
    use tagger_topo::ClosConfig;

    fn small() -> Topology {
        ClosConfig::small().build()
    }

    #[test]
    fn clean_clos_tagging_lints_clean() {
        let topo = small();
        let tagging = clos_tagging(&topo, 1).unwrap();
        let text = tagging.rules().to_table_text(&topo);
        let table = lint_table_text(&topo, &text, 0);
        assert!(table.diagnostics.is_empty(), "{:?}", table.diagnostics);
        assert_eq!(&table.rules, tagging.rules());
        let semantic = lint_ruleset(&topo, &table.rules, &table.spans);
        assert!(
            semantic.iter().all(|d| d.severity != Severity::Error),
            "{semantic:?}"
        );
        // And the ELP the tagging was built for is fully covered.
        let elp = Elp::updown_with_bounces(&topo, 1);
        assert!(lint_elp_coverage(&topo, &table.rules, &elp).is_empty());
    }

    #[test]
    fn conflicting_duplicates_are_errors_identical_are_warnings() {
        let topo = small();
        let text = "switch L1\nrule 1 T1 S1 1\nrule 1 T1 S1 2\nrule 1 T2 S1 1\nrule 1 T2 S1 1\n";
        let table = lint_table_text(&topo, text, 0);
        let conflict: Vec<_> = table
            .diagnostics
            .iter()
            .filter(|d| d.code == codes::CONFLICTING_DUPLICATE)
            .collect();
        assert_eq!(conflict.len(), 1);
        assert_eq!(conflict[0].severity, Severity::Error);
        assert_eq!(conflict[0].span.unwrap().line, 3);
        assert!(conflict[0].message.contains("line 2"));
        let dup: Vec<_> = table
            .diagnostics
            .iter()
            .filter(|d| d.code == codes::IDENTICAL_DUPLICATE)
            .collect();
        assert_eq!(dup.len(), 1);
        assert_eq!(dup[0].severity, Severity::Warning);
        assert_eq!(dup[0].span.unwrap().line, 5);
        // Last write wins in the effective rules.
        assert_eq!(table.rules.num_rules(), 2);
    }

    #[test]
    fn line_offset_maps_to_file_coordinates() {
        let topo = small();
        let table = lint_table_text(&topo, "switch NOPE\n", 10);
        assert_eq!(table.diagnostics.len(), 1);
        assert_eq!(table.diagnostics[0].code, codes::UNKNOWN_SWITCH);
        assert_eq!(table.diagnostics[0].span.unwrap().line, 11);
    }

    #[test]
    fn unknown_names_get_did_you_mean_hints() {
        let topo = small();
        let table = lint_table_text(&topo, "switch L9\nrule 1 T1 S1 1\n", 0);
        let d = &table.diagnostics[0];
        assert_eq!(d.code, codes::UNKNOWN_SWITCH);
        let hint = d.hint.as_ref().unwrap();
        assert!(hint.contains("did you mean"), "{hint}");

        let table = lint_table_text(&topo, "switch L1\nrule 1 T9 S1 1\n", 0);
        let d = &table.diagnostics[0];
        assert_eq!(d.code, codes::UNKNOWN_NEIGHBOUR);
        assert!(d.hint.is_some());
    }

    #[test]
    fn tag_decreases_and_unreachable_rules_are_found() {
        let topo = small();
        let tagging = clos_tagging(&topo, 1).unwrap();
        let mut rules = tagging.rules().clone();
        let l1 = topo.expect_node("L1");
        let in_s1 = topo.port_towards(l1, topo.expect_node("S1")).unwrap();
        let out_s2 = topo.port_towards(l1, topo.expect_node("S2")).unwrap();
        rules.set(
            l1,
            SwitchRule {
                tag: Tag(2),
                in_port: in_s1,
                out_port: out_s2,
                new_tag: Tag(1),
            },
        );
        let diags = lint_ruleset(&topo, &rules, &SpanIndex::new());
        let decreases: Vec<_> = diags
            .iter()
            .filter(|d| d.code == codes::TAG_DECREASE)
            .collect();
        assert_eq!(decreases.len(), 1);
        assert_eq!(decreases[0].severity, Severity::Error);
        assert_eq!(decreases[0].locus.as_deref(), Some("switch L1"));

        // A rule at a tag nothing ever produces is unreachable.
        let mut rules = tagging.rules().clone();
        rules.set(
            l1,
            SwitchRule {
                tag: Tag(9),
                in_port: in_s1,
                out_port: out_s2,
                new_tag: Tag(9),
            },
        );
        let diags = lint_ruleset(&topo, &rules, &SpanIndex::new());
        assert!(diags
            .iter()
            .any(|d| d.code == codes::UNREACHABLE_RULE && d.severity == Severity::Warning));
    }

    #[test]
    fn elp_leak_is_reported_once_per_hop() {
        let topo = small();
        let tagging = clos_tagging(&topo, 1).unwrap();
        let mut rules = tagging.rules().clone();
        // Drop every rule on T1: any ELP through T1 leaks there.
        let t1 = topo.expect_node("T1");
        for r in rules.rules_for(t1) {
            rules.remove(t1, r);
        }
        let elp = Elp::updown(&topo);
        let diags = lint_elp_coverage(&topo, &rules, &elp);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.code == codes::TAG_LEAK_TO_LOSSY));
        // Deduplicated by (switch, match key): far fewer than paths.
        let keys: BTreeSet<_> = diags.iter().map(|d| d.message.clone()).collect();
        assert_eq!(keys.len(), diags.len());
        assert!(diags[0].hint.as_ref().unwrap().starts_with("add `rule"));
    }

    #[test]
    fn shadowed_tcam_entries_are_found() {
        let topo = small();
        let l1 = topo.expect_node("L1");
        let ports: Vec<PortId> = (0..4).map(PortId).collect();
        let wide = TcamEntry {
            tag: Tag(1),
            in_ports: ports.iter().copied().collect(),
            out_ports: ports.iter().copied().collect(),
            new_tag: Tag(1),
        };
        let narrow = TcamEntry {
            tag: Tag(1),
            in_ports: PortSet::single(ports[0]),
            out_ports: PortSet::single(ports[1]),
            new_tag: Tag(2),
        };
        let mut program = TcamProgram::default();
        program.install(l1, Tcam::from_entries(vec![wide, narrow]));
        let diags = lint_program(&topo, &program);
        let shadows: Vec<_> = diags
            .iter()
            .filter(|d| d.code == codes::SHADOWED_ENTRY)
            .collect();
        assert_eq!(shadows.len(), 1);
        assert!(shadows[0].locus.as_deref().unwrap().contains("entry 1"));

        // A compiled program never shadows itself.
        let tagging = clos_tagging(&topo, 1).unwrap();
        let compiled = TcamProgram::compile(&topo, tagging.rules(), Compression::Joint);
        assert!(lint_program(&topo, &compiled)
            .iter()
            .all(|d| d.code != codes::SHADOWED_ENTRY));
    }

    #[test]
    fn redundancy_note_estimates_savings() {
        let topo = small();
        let tagging = clos_tagging(&topo, 1).unwrap();
        let note = redundancy_note(&topo, tagging.rules()).unwrap();
        assert_eq!(note.code, codes::MERGEABLE_ENTRIES);
        assert_eq!(note.severity, Severity::Note);
        assert!(note.message.contains("Joint"));
    }
}
