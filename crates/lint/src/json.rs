//! A minimal JSON value, renderer and parser.
//!
//! The build environment vendors no serde, so the `--format json`
//! output is hand-rolled: a tiny [`Value`] tree, a byte-stable renderer
//! (objects keep insertion order, two-space indent, `\n` line ends) and
//! a strict parser used to prove the rendering round-trips. Only what
//! diagnostics need is supported — no floats, no unicode escapes beyond
//! `\u`, no trailing commas.

use std::fmt::Write as _;

/// A JSON value. Numbers are `i64` — diagnostics only carry counts and
/// coordinates. Object member order is preserved (and significant for
/// the byte-stable golden output).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer.
    Num(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline —
    /// byte-stable for golden files.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => escape_into(s, out),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.render_into(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(&pad);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.render_into(out, depth + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }

    /// Strict parse of one JSON document (surrounding whitespace ok).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(text, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {}, got {:?}",
            b as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(text, bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(text, bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => {
            let start = *pos;
            if bytes[*pos] == b'-' {
                *pos += 1;
            }
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
            text[start..*pos]
                .parse()
                .map(Value::Num)
                .map_err(|e| format!("bad number at byte {start}: {e}"))
        }
        Some(&other) => Err(format!("unexpected {:?} at byte {}", other as char, *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit:?} at byte {pos:?}"))
    }
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = text.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let cp =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(cp).ok_or("surrogate \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 scalar.
                let rest = &text[*pos..];
                let c = rest.chars().next().ok_or("invalid utf-8 position")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_round_trip() {
        let v = Value::Obj(vec![
            ("version".into(), Value::Num(1)),
            (
                "items".into(),
                Value::Arr(vec![
                    Value::str("a \"quoted\"\nline"),
                    Value::Num(-42),
                    Value::Bool(true),
                    Value::Null,
                    Value::Obj(vec![]),
                    Value::Arr(vec![]),
                ]),
            ),
        ]);
        let text = v.render();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, v);
        // Byte-stable: render(parse(render(v))) == render(v).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{} extra").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }

    #[test]
    fn get_looks_up_object_members() {
        let v = Value::parse("{\"a\": 1, \"b\": [2]}").unwrap();
        assert_eq!(v.get("a"), Some(&Value::Num(1)));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("b").unwrap(), &Value::Arr(vec![Value::Num(2)]));
    }
}
