//! # tagger-lint — pre-deployment static analysis for Tagger artifacts
//!
//! `tagger-audit` proves a committed table deadlock-free; this crate is
//! the *earlier*, cheaper gate: a linter that reads the artifacts an
//! operator actually edits and ships — checkpoint files, `tagger-ctrld`
//! event traces (which carry the ELP spec), raw rule-table text — and
//! emits **structured diagnostics**: a stable error code (`T0001`…), a
//! severity, an exact source span (`file:line:col`) or table locus
//! (`"L1 entry 3"`), and a fix-it hint where one is known.
//!
//! The analyses (see [`analyses`]):
//!
//! - **TCAM order semantics** — duplicate match keys whose conflicting
//!   rewrites make first-match hardware disagree with the
//!   last-write-wins table loader ([`diag::codes::CONFLICTING_DUPLICATE`]),
//!   and installed entries fully covered by an earlier masked entry
//!   ([`diag::codes::SHADOWED_ENTRY`]).
//! - **Tag monotonicity** — the per-edge half of Theorem 5.1, checked
//!   locally per rule without building any graph
//!   ([`diag::codes::TAG_DECREASE`]).
//! - **Reachability** — rules no host-injected packet can ever hit,
//!   via the core forward-closure graph
//!   ([`diag::codes::UNREACHABLE_RULE`]).
//! - **Lossless coverage** — expected lossless paths that silently fall
//!   into the lossy class ([`diag::codes::TAG_LEAK_TO_LOSSY`]).
//! - **Redundancy** — tables that admit a smaller TCAM encoding
//!   ([`diag::codes::MERGEABLE_ENTRIES`]).
//! - **Cross-checks** — the independent auditor's verdict, cross-linked
//!   by certificate id ([`diag::codes::AUDIT_CERTIFIED`]).
//! - **Scenario DSL** — `.scn` files are validated with the
//!   `tagger-scenario` parser itself (unknown directives, malformed
//!   arguments, missing/unsatisfiable asserts, unknown node names; the
//!   `T06xx` codes), so the linter and the runner can never disagree
//!   about the grammar.
//! - **Feasibility oracle** — the `tagger-core` existence oracle decides
//!   whether *any* deadlock-free tagging of the artifact's ELP fits in
//!   the lossless-priority budget: provable infeasibility with a quoted
//!   minimal kernel ([`diag::codes::ORACLE_INFEASIBLE`]), tables whose
//!   tag count falls below the proven feasibility floor
//!   ([`diag::codes::ORACLE_BUDGET_BELOW_FLOOR`]), and an
//!   oracle-vs-construction cross-check
//!   ([`diag::codes::ORACLE_CONSTRUCTION_MISMATCH`]). Plain-text
//!   `.topo` topology specs are first-class lint inputs
//!   ([`diag::codes::TOPO_SPEC_ERROR`] parse diagnostics with
//!   did-you-mean hints).
//!
//! Lint is deliberately *not* the audit: it runs local, per-edge and
//! per-entry checks plus one linear closure, never cycle detection —
//! a checkpoint that merely *contains* a cyclic table (like the Figure 1
//! fixture) lints clean apart from warnings, while the audit rejects it.
//! The two tools disagree by design; the `T09xx` cross-check surfaces
//! the auditor's verdict without duplicating its proof.
//!
//! Output is a [`LintReport`]: render it with
//! [`LintReport::render_human`] or [`render_json`] (byte-stable, golden
//! testable, round-trips through the bundled [`json`] parser).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Lint is the tool that *reports* defects in user artifacts; it must
// never panic on them. Tests are allow-listed.
#![warn(clippy::unwrap_used)]

pub mod analyses;
pub mod diag;
pub mod json;

pub use diag::{codes, ArtifactKind, ArtifactReport, Diagnostic, LintReport, Severity};

use analyses::{lint_elp_coverage, lint_ruleset, lint_table_text, redundancy_note};
use diag::codes as C;
use json::Value;
use tagger_audit::checkpoint;
use tagger_core::{minimize_elp, oracle, Elp, RuleSet, Span};
use tagger_ctrl::{parse_trace, CtrlEvent, TraceErrorKind};
use tagger_topo::{nearest_names, ClosConfig, GlobalPort, LinkLookupError, Topology};

/// Which expected-lossless-path set to check coverage against.
///
/// Lint cannot guess the operator's ELP, so coverage analysis
/// ([`diag::codes::TAG_LEAK_TO_LOSSY`]) only runs when an ELP family is
/// named explicitly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElpSpec {
    /// Strict up-down paths (no bounces).
    UpDown,
    /// Up-down paths with up to `k` bounces (paper §4).
    Bounces(usize),
}

impl ElpSpec {
    fn build(self, topo: &Topology) -> Elp {
        match self {
            ElpSpec::UpDown => Elp::updown(topo),
            ElpSpec::Bounces(k) => Elp::updown_with_bounces(topo, k),
        }
    }
}

/// Knobs for a lint run.
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// Check ELP coverage against this path family (off by default).
    pub elp: Option<ElpSpec>,
    /// Run the independent auditor over checkpoints and cross-link its
    /// certificate (on by default; the `T09xx` codes).
    pub audit_cross_check: bool,
    /// Topology to resolve *trace* files against (checkpoints carry
    /// their own). Defaults to the same small Clos `tagger-ctrld`
    /// defaults to.
    pub trace_topo: Topology,
    /// Lossless-priority budget the feasibility oracle decides against
    /// (`None` = the eight 802.1Qbb classes,
    /// [`tagger_core::oracle::HARDWARE_TAG_CEILING`]). A `.topo` file's
    /// own `priorities` declaration takes precedence.
    pub tag_budget: Option<usize>,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            elp: None,
            audit_cross_check: true,
            trace_topo: ClosConfig::small().build(),
            tag_budget: None,
        }
    }
}

/// Lints one checkpoint file's text.
pub fn lint_checkpoint_text(file: &str, text: &str, opts: &LintOptions) -> ArtifactReport {
    let mut report = ArtifactReport {
        file: file.to_string(),
        kind: ArtifactKind::Checkpoint,
        diagnostics: Vec::new(),
    };
    let header = match checkpoint::parse_header(text) {
        Ok(h) => h,
        Err(e) => {
            let span = if e.line == 0 {
                Span::whole_file()
            } else {
                Span::line_start(e.line)
            };
            report.diagnostics.push(
                Diagnostic::new(C::BAD_HEADER, Severity::Error, e.why)
                    .with_span(span)
                    .with_hint(
                        "a checkpoint needs a `topo clos key=value...` line and an \
                         `epoch N` line before the table body",
                    ),
            );
            return report.finish();
        }
    };
    let topo = header.config.build();
    let table = lint_table_text(&topo, &header.body, header.body_line.saturating_sub(1));
    report.diagnostics.extend(table.diagnostics);
    report
        .diagnostics
        .extend(lint_ruleset(&topo, &table.rules, &table.spans));
    if let Some(spec) = opts.elp {
        let elp = spec.build(&topo);
        report
            .diagnostics
            .extend(lint_elp_coverage(&topo, &table.rules, &elp));
        // Existence-oracle consult: spans point at the `topo` header
        // line, since that is what determines the ELP family.
        let budget = opts.tag_budget.unwrap_or(oracle::HARDWARE_TAG_CEILING);
        let topo_span = text
            .lines()
            .position(|l| l.trim_start().starts_with("topo "))
            .map(|i| Span::line_start(i + 1));
        match oracle::decide(&topo, &elp, Some(budget)) {
            oracle::Verdict::Infeasible(inf) => {
                let mut d = infeasible_diagnostic(&topo, &elp, &inf);
                if let Some(s) = topo_span {
                    d = d.with_span(s);
                }
                report.diagnostics.push(d);
            }
            oracle::Verdict::Feasible(f) => {
                let used = table.rules.max_tag().map_or(0, |t| t.0 as usize);
                if used < f.lower_bound_tags {
                    let mut d = Diagnostic::new(
                        C::ORACLE_BUDGET_BELOW_FLOOR,
                        Severity::Warning,
                        format!(
                            "table uses {used} lossless tag(s) but the oracle proves this \
                             ELP needs at least {}: no table this small can cover it",
                            f.lower_bound_tags
                        ),
                    )
                    .with_hint(format!(
                        "re-plan with a bounce budget of at least {} tags \
                         (e.g. `tagger-plan clos --bounces {}`)",
                        f.lower_bound_tags,
                        f.lower_bound_tags.saturating_sub(1)
                    ));
                    if let Some(s) = topo_span {
                        d = d.with_span(s);
                    }
                    report.diagnostics.push(d);
                }
            }
        }
    }
    report
        .diagnostics
        .extend(redundancy_note(&topo, &table.rules));
    if opts.audit_cross_check {
        report
            .diagnostics
            .push(audit_cross_check(&topo, header.epoch, &table.rules));
    }
    report.finish()
}

/// Runs the independent auditor and condenses its verdict into one
/// cross-link diagnostic — lint never re-proves (or contradicts) the
/// audit, it just points at it.
fn audit_cross_check(topo: &Topology, epoch: u64, rules: &RuleSet) -> Diagnostic {
    let mut auditor = tagger_audit::Auditor::new(topo.clone());
    let audit = auditor.audit(epoch, rules);
    match &audit.certificate {
        Some(cert) if audit.is_certified() => Diagnostic::new(
            C::AUDIT_CERTIFIED,
            Severity::Note,
            format!(
                "independent audit certified epoch {epoch} deadlock-free (certificate {})",
                cert.id()
            ),
        ),
        _ => Diagnostic::new(
            C::AUDIT_FINDINGS,
            Severity::Warning,
            format!(
                "independent audit reports {} finding(s) at epoch {epoch}",
                audit.findings.len()
            ),
        )
        .with_hint("run `tagger-audit check` on this checkpoint for the full report"),
    }
}

/// `S1<-L1`: an ingress port named by its node and upstream peer — the
/// human rendering of a buffer-dependency cycle vertex.
fn dep_port_name(topo: &Topology, port: GlobalPort) -> String {
    match topo.peer_of(port) {
        Some(peer) => format!(
            "{}<-{}",
            topo.node(port.node).name,
            topo.node(peer.node).name
        ),
        None => topo.node(port.node).name.clone(),
    }
}

/// The shared `T0701` builder: quotes the minimal kernel paths and the
/// dependency cycle from the oracle's counterexample.
fn infeasible_diagnostic(topo: &Topology, elp: &Elp, inf: &oracle::Infeasible) -> Diagnostic {
    let kernel: Vec<String> = inf
        .kernel
        .iter()
        .map(|&i| elp.paths()[i].display(topo).to_string())
        .collect();
    let cycle: Vec<String> = inf.cycle.iter().map(|&p| dep_port_name(topo, p)).collect();
    let mut message = format!(
        "no deadlock-free tagging of this {}-path ELP fits in {} lossless tag(s); \
         minimal infeasible kernel ({} path(s)): {}",
        elp.len(),
        inf.budget,
        inf.kernel.len(),
        kernel.join("; ")
    );
    if !cycle.is_empty() {
        message.push_str(&format!("; dependency cycle: {}", cycle.join(" -> ")));
    }
    if !inf.exhaustive {
        message.push_str(" (search capped; verdict conservative)");
    }
    Diagnostic::new(C::ORACLE_INFEASIBLE, Severity::Error, message).with_hint(format!(
        "at least {} lossless tag(s) are required: raise the priority budget or drop \
         one of the kernel paths from the ELP",
        inf.lower_bound_tags
    ))
}

/// The `T0703` cross-check that keeps the oracle and the Algorithm 1+2
/// construction honest: a *proven* infeasibility contradicted by a
/// verified construction inside the budget, or a construction that
/// beats the oracle's proven floor, is an internal error in one of the
/// two — never a user mistake.
fn oracle_construction_cross_check(
    verdict: &oracle::Verdict,
    constructed_tags: usize,
    budget: usize,
) -> Option<Diagnostic> {
    let message = match verdict {
        oracle::Verdict::Infeasible(inf) if inf.exhaustive && constructed_tags <= budget => {
            format!(
                "internal: oracle proved no tagging fits in {budget} tag(s), yet Algorithm \
                 1+2 built a verified tagging with {constructed_tags}"
            )
        }
        oracle::Verdict::Feasible(f) if constructed_tags < f.lower_bound_tags => format!(
            "internal: Algorithm 1+2 built a verified tagging with {constructed_tags} \
             tag(s), below the oracle's proven floor of {}",
            f.lower_bound_tags
        ),
        _ => return None,
    };
    Some(
        Diagnostic::new(C::ORACLE_CONSTRUCTION_MISMATCH, Severity::Error, message)
            .with_hint("file a bug: one of the two analyses is wrong"),
    )
}

/// Source line of the `link` declaration behind a dependency-cycle
/// port, for spanning `T0701` into a `.topo` file.
fn link_line_of(topo: &Topology, spec: &tagger_topo::SpecFile, port: GlobalPort) -> Option<usize> {
    topo.link_ids()
        .enumerate()
        .find(|&(_, l)| topo.link(l).a == port || topo.link(l).b == port)
        .and_then(|(i, _)| spec.link_lines.get(i).copied())
}

/// Lints one plain-text `.topo` topology spec.
///
/// Parse errors surface as [`diag::codes::TOPO_SPEC_ERROR`] with exact
/// token spans and did-you-mean hints. A well-formed spec is then fed
/// to the existence oracle: layered fabrics use the `opts.elp` family
/// (default strict up-down), unlayered ones the host-pair shortest
/// paths; the budget is `opts.tag_budget` when set (the `--budget`
/// flag is an operator's what-if override), else the spec's own
/// `priorities` declaration, else the hardware ceiling.
/// Infeasibility is [`diag::codes::ORACLE_INFEASIBLE`] with the kernel
/// quoted and the span pointing at a link on the dependency cycle; the
/// verdict is also cross-checked against the Algorithm 1+2
/// construction ([`diag::codes::ORACLE_CONSTRUCTION_MISMATCH`]).
pub fn lint_topology_text(file: &str, text: &str, opts: &LintOptions) -> ArtifactReport {
    let mut report = ArtifactReport {
        file: file.to_string(),
        kind: ArtifactKind::Topology,
        diagnostics: Vec::new(),
    };
    let spec = match Topology::parse_spec(text) {
        Ok(spec) => spec,
        Err(e) => {
            let span = if e.line == 0 {
                Span::whole_file()
            } else if e.len == 0 {
                Span::line_start(e.line)
            } else {
                Span::new(e.line, e.col, e.len)
            };
            let mut d =
                Diagnostic::new(C::TOPO_SPEC_ERROR, Severity::Error, e.message).with_span(span);
            if let Some(hint) = e.hint {
                d = d.with_hint(hint);
            }
            report.diagnostics.push(d);
            return report.finish();
        }
    };
    let topo = &spec.topo;
    if topo.num_links() == 0 {
        return report.finish();
    }
    let layered = topo.node_ids().all(|n| topo.node(n).layer.rank().is_some());
    let elp = if layered {
        opts.elp.unwrap_or(ElpSpec::UpDown).build(topo)
    } else {
        Elp::shortest(topo, 1, true)
    };
    if elp.is_empty() {
        return report.finish();
    }
    let budget = opts
        .tag_budget
        .or(spec.priorities.map(|p| p as usize))
        .unwrap_or(oracle::HARDWARE_TAG_CEILING);
    let verdict = oracle::decide(topo, &elp, Some(budget));
    if let oracle::Verdict::Infeasible(inf) = &verdict {
        let mut d = infeasible_diagnostic(topo, &elp, inf);
        let span = inf
            .cycle
            .first()
            .and_then(|&p| link_line_of(topo, &spec, p))
            .map(Span::line_start)
            .or_else(|| (spec.priorities_line > 0).then(|| Span::line_start(spec.priorities_line)));
        if let Some(s) = span {
            d = d.with_span(s);
        }
        report.diagnostics.push(d);
    }
    // Keep the oracle honest against the construction it gatekeeps.
    let constructed = minimize_elp(topo, &elp);
    if constructed.verify().is_ok() {
        let tags = constructed.num_lossless_tags(topo);
        report
            .diagnostics
            .extend(oracle_construction_cross_check(&verdict, tags, budget));
    }
    report.finish()
}

/// Lints one `tagger-ctrld` trace file's text against a topology.
///
/// Unlike [`tagger_ctrl::parse_trace`] — which stops at the first error
/// so a *replay* never proceeds past garbage — lint feeds each line
/// separately and reports every defective line in one pass.
pub fn lint_trace_text(file: &str, topo: &Topology, text: &str) -> ArtifactReport {
    lint_trace_text_budget(file, topo, text, None)
}

/// [`lint_trace_text`] with an explicit lossless-priority budget for
/// the feasibility oracle (`None` = the hardware ceiling): the trace's
/// accumulated `elp-add` set is checked for existence of *any*
/// deadlock-free tagging, and a provably infeasible set is reported as
/// [`diag::codes::ORACLE_INFEASIBLE`] spanned to the first kernel
/// path's `elp-add` line.
pub fn lint_trace_text_budget(
    file: &str,
    topo: &Topology,
    text: &str,
    tag_budget: Option<usize>,
) -> ArtifactReport {
    let mut report = ArtifactReport {
        file: file.to_string(),
        kind: ArtifactKind::Trace,
        diagnostics: Vec::new(),
    };
    // The ELP the trace has built up (elp-add minus elp-remove), each
    // path with the line that introduced it.
    let mut elp_paths: Vec<(tagger_routing::Path, usize)> = Vec::new();
    // Stateful watchdog pairing: a `watchdog-clear` should lift a
    // quarantine some earlier `watchdog` trip installed — either on the
    // tripping victim hop or on its attributed (`via`) trigger hop. A
    // clear with no matching prior trip is a replay no-op, which usually
    // means a typo'd hop or a line left behind by an edit.
    let mut quarantined: std::collections::BTreeSet<(
        tagger_topo::NodeId,
        tagger_topo::PortId,
        u16,
    )> = std::collections::BTreeSet::new();
    for (idx, line) in text.lines().enumerate() {
        let events = match parse_trace(topo, line) {
            Ok(events) => events,
            Err(e) => {
                // The single-line parse reports line 1; restore file
                // coordinates.
                let span = Span::new(idx + 1, e.span.col, e.span.len);
                let (code, hint) = match &e.kind {
                    TraceErrorKind::UnknownDirective(_) => (
                        C::UNKNOWN_DIRECTIVE,
                        Some(
                            "known directives: down, up, flap, elp-add, elp-remove, watchdog, \
                             watchdog-clear, resync"
                                .to_string(),
                        ),
                    ),
                    TraceErrorKind::BadArity { .. } => (C::TRACE_ARITY, None),
                    TraceErrorKind::UnknownNode(name) => {
                        let nearest = nearest_names(topo, name);
                        (
                            C::TRACE_UNKNOWN_NODE,
                            (!nearest.is_empty())
                                .then(|| format!("did you mean {}?", nearest.join(", "))),
                        )
                    }
                    TraceErrorKind::PortOutOfRange { node, .. } => (
                        C::TRACE_PORT_RANGE,
                        topo.node_by_name(node)
                            .map(|n| format!("{node} has ports 0..{}", topo.node(n).num_ports())),
                    ),
                    TraceErrorKind::Path(..) => (C::TRACE_BAD_PATH, None),
                    TraceErrorKind::Link(link) => {
                        let hint = match link {
                            LinkLookupError::UnknownNode { nearest, .. } if !nearest.is_empty() => {
                                Some(format!("did you mean {}?", nearest.join(", ")))
                            }
                            LinkLookupError::NotAdjacent { a, candidates, .. }
                                if !candidates.is_empty() =>
                            {
                                Some(format!("{a} is adjacent to {}", candidates.join(", ")))
                            }
                            _ => None,
                        };
                        (C::TRACE_UNKNOWN_LINK, hint)
                    }
                };
                // Render the kind's message without the "trace line N:"
                // prefix — the diagnostic carries the span itself.
                let full = e.to_string();
                let message = full
                    .split_once(": ")
                    .map(|(_, m)| m.to_string())
                    .unwrap_or(full);
                let mut d = Diagnostic::new(code, Severity::Error, message).with_span(span);
                if let Some(hint) = hint {
                    d = d.with_hint(hint);
                }
                report.diagnostics.push(d);
                continue;
            }
        };
        for ev in &events {
            match ev {
                CtrlEvent::ElpAdd(p) => elp_paths.push((p.clone(), idx + 1)),
                CtrlEvent::ElpRemove(p) => {
                    if let Some(pos) = elp_paths.iter().position(|(q, _)| q == p) {
                        elp_paths.remove(pos);
                    }
                }
                CtrlEvent::WatchdogTrip {
                    switch, port, tag, ..
                } => {
                    quarantined.insert((*switch, *port, tag.0));
                    if let Some(q) = ev.effective_quarantine() {
                        quarantined.insert(q);
                    }
                }
                CtrlEvent::WatchdogClear { switch, port, tag }
                    if !quarantined.remove(&(*switch, *port, tag.0)) =>
                {
                    let name = &topo.node(*switch).name;
                    let col = line.find("watchdog-clear").map_or(1, |c| c + 1);
                    report.diagnostics.push(
                        Diagnostic::new(
                            C::WATCHDOG_CLEAR_WITHOUT_TRIP,
                            Severity::Warning,
                            format!(
                                "watchdog-clear for {name} port {} tag {} has no prior \
                                     watchdog trip in this trace (replay treats it as a no-op)",
                                port.0, tag.0
                            ),
                        )
                        .with_span(Span::new(idx + 1, col, "watchdog-clear".len()))
                        .with_hint(format!(
                            "add the `watchdog {name} {} {}` trip this clear is meant to \
                                 lift, or delete the line",
                            port.0, tag.0
                        )),
                    );
                }
                _ => {}
            }
        }
    }
    if !elp_paths.is_empty() {
        let budget = tag_budget.unwrap_or(oracle::HARDWARE_TAG_CEILING);
        let lines: Vec<usize> = elp_paths.iter().map(|(_, l)| *l).collect();
        let elp = Elp::from_paths(elp_paths.into_iter().map(|(p, _)| p).collect());
        if let oracle::Verdict::Infeasible(inf) = oracle::decide(topo, &elp, Some(budget)) {
            let mut d = infeasible_diagnostic(topo, &elp, &inf);
            if let Some(&first) = inf.kernel.first() {
                d = d.with_span(Span::line_start(lines[first]));
            }
            report.diagnostics.push(d);
        }
    }
    report.finish()
}

/// Lints one `.scn` scenario file's text.
///
/// Reuses the `tagger-scenario` parser itself (one grammar, two
/// frontends): [`tagger_scenario::parse_all`] reports *every* defective
/// line plus the semantic validations (missing assert block,
/// unsatisfiable asserts, unknown node names with did-you-mean hints),
/// and lint maps its issue categories onto the stable `T06xx` codes.
pub fn lint_scenario_text(file: &str, text: &str) -> ArtifactReport {
    use tagger_scenario::IssueCode;
    let (_, issues) = tagger_scenario::parse_all(text);
    let diagnostics = issues
        .into_iter()
        .map(|i| {
            let code = match i.code {
                IssueCode::UnknownDirective => C::SCN_UNKNOWN_DIRECTIVE,
                IssueCode::BadArgument => C::SCN_BAD_ARGUMENT,
                IssueCode::DuplicateDirective => C::SCN_DUPLICATE_DIRECTIVE,
                IssueCode::MissingAssert => C::SCN_MISSING_ASSERT,
                IssueCode::UnsatisfiableAssert => C::SCN_UNSATISFIABLE_ASSERT,
                IssueCode::UnknownNode => C::SCN_UNKNOWN_NODE,
            };
            let mut d = Diagnostic::new(code, Severity::Error, i.message).with_span(i.span);
            if let Some(hint) = i.hint {
                d = d.with_hint(hint);
            }
            d
        })
        .collect();
    ArtifactReport {
        file: file.to_string(),
        kind: ArtifactKind::Scenario,
        diagnostics,
    }
    .finish()
}

/// Lints an in-memory rule set (no file behind it) — the library entry
/// point controllers can call before staging an epoch.
pub fn lint_rules(
    label: &str,
    topo: &Topology,
    rules: &RuleSet,
    opts: &LintOptions,
) -> ArtifactReport {
    let mut report = ArtifactReport {
        file: label.to_string(),
        kind: ArtifactKind::Rules,
        diagnostics: lint_ruleset(topo, rules, &analyses::SpanIndex::new()),
    };
    if let Some(spec) = opts.elp {
        report
            .diagnostics
            .extend(lint_elp_coverage(topo, rules, &spec.build(topo)));
    }
    report.diagnostics.extend(redundancy_note(topo, rules));
    report.finish()
}

/// Guesses what kind of artifact `text` is, preferring content over the
/// `name` extension: checkpoints self-identify via their header.
pub fn sniff_kind(name: &str, text: &str) -> ArtifactKind {
    let looks_like_scenario = text
        .lines()
        .take(10)
        .any(|l| l.trim_start().starts_with("scenario "));
    if looks_like_scenario || name.ends_with(".scn") {
        return ArtifactKind::Scenario;
    }
    // Topology specs open with `node` declarations (comments allowed);
    // checkpoint headers never do.
    let looks_like_topology = text.lines().take(10).any(|l| {
        let t = l.trim_start();
        t.starts_with("node ") || t.starts_with("priorities ")
    });
    if looks_like_topology || name.ends_with(".topo") {
        return ArtifactKind::Topology;
    }
    let looks_like_checkpoint = text
        .lines()
        .take(10)
        .any(|l| l.contains("tagger-audit checkpoint") || l.trim_start().starts_with("topo clos"));
    if looks_like_checkpoint || name.ends_with(".ckpt") {
        ArtifactKind::Checkpoint
    } else {
        ArtifactKind::Trace
    }
}

/// Lints a list of files (reading each from disk), producing one
/// [`LintReport`] with the artifacts in argument order. Unreadable
/// files become [`diag::codes::UNREADABLE`] errors rather than
/// aborting the run.
pub fn lint_files(paths: &[String], opts: &LintOptions) -> LintReport {
    let mut report = LintReport::default();
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                report.artifacts.push(ArtifactReport {
                    file: path.clone(),
                    kind: ArtifactKind::Trace,
                    diagnostics: vec![Diagnostic::new(
                        C::UNREADABLE,
                        Severity::Error,
                        format!("cannot read: {e}"),
                    )],
                });
                continue;
            }
        };
        report.artifacts.push(match sniff_kind(path, &text) {
            ArtifactKind::Checkpoint => lint_checkpoint_text(path, &text, opts),
            ArtifactKind::Scenario => lint_scenario_text(path, &text),
            ArtifactKind::Topology => lint_topology_text(path, &text, opts),
            _ => lint_trace_text_budget(path, &opts.trace_topo, &text, opts.tag_budget),
        });
    }
    report
}

/// Encodes a report as a JSON [`Value`] (see [`render_json`] for the
/// schema).
pub fn report_to_json(report: &LintReport) -> Value {
    let artifacts = report
        .artifacts
        .iter()
        .map(|a| {
            let diagnostics = a
                .diagnostics
                .iter()
                .map(|d| {
                    let mut members = vec![
                        ("code".to_string(), Value::str(d.code)),
                        ("severity".to_string(), Value::str(d.severity.label())),
                    ];
                    if let Some(s) = d.span {
                        if !s.is_whole_file() {
                            members.push(("line".into(), Value::Num(s.line as i64)));
                            members.push(("col".into(), Value::Num(s.col as i64)));
                            members.push(("len".into(), Value::Num(s.len as i64)));
                        }
                    }
                    members.push(("message".into(), Value::str(&d.message)));
                    if let Some(locus) = &d.locus {
                        members.push(("locus".into(), Value::str(locus)));
                    }
                    if let Some(hint) = &d.hint {
                        members.push(("hint".into(), Value::str(hint)));
                    }
                    Value::Obj(members)
                })
                .collect();
            Value::Obj(vec![
                ("file".into(), Value::str(&a.file)),
                ("kind".into(), Value::str(a.kind.label())),
                ("diagnostics".into(), Value::Arr(diagnostics)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("version".into(), Value::Num(1)),
        (
            "summary".into(),
            Value::Obj(vec![
                (
                    "errors".into(),
                    Value::Num(report.count(Severity::Error) as i64),
                ),
                (
                    "warnings".into(),
                    Value::Num(report.count(Severity::Warning) as i64),
                ),
                (
                    "notes".into(),
                    Value::Num(report.count(Severity::Note) as i64),
                ),
            ]),
        ),
        ("artifacts".into(), Value::Arr(artifacts)),
    ])
}

/// The byte-stable JSON rendering of a report:
///
/// ```json
/// {
///   "version": 1,
///   "summary": {"errors": 2, "warnings": 1, "notes": 1},
///   "artifacts": [
///     {"file": "...", "kind": "checkpoint", "diagnostics": [
///       {"code": "T0201", "severity": "error", "line": 146, "col": 1,
///        "len": 15, "message": "...", "locus": "switch L1", "hint": "..."}
///     ]}
///   ]
/// }
/// ```
///
/// Diagnostics keep the canonical deterministic order, so the rendering
/// is golden-testable; it parses back via [`json::Value::parse`].
pub fn render_json(report: &LintReport) -> String {
    report_to_json(report).render()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tagger_core::clos::clos_tagging;

    fn render(config: &ClosConfig, rules: &RuleSet, topo: &Topology) -> String {
        checkpoint::render(config, 1, topo, rules)
    }

    #[test]
    fn clean_checkpoint_has_no_errors_and_a_certificate_note() {
        let config = ClosConfig::small();
        let topo = config.build();
        let tagging = clos_tagging(&topo, 1).unwrap();
        let text = render(&config, tagging.rules(), &topo);
        let report = lint_checkpoint_text("t.ckpt", &text, &LintOptions::default());
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.severity != Severity::Error));
        let cert = report
            .diagnostics
            .iter()
            .find(|d| d.code == C::AUDIT_CERTIFIED)
            .expect("certificate cross-link");
        assert!(cert.message.contains("cert-"), "{}", cert.message);
    }

    #[test]
    fn bad_header_is_a_single_error() {
        let report = lint_checkpoint_text(
            "t.ckpt",
            "topo clos pods=2\nepoch 1\n",
            &LintOptions::default(),
        );
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, C::BAD_HEADER);
        assert_eq!(report.diagnostics[0].span.unwrap(), Span::line_start(1));
    }

    #[test]
    fn trace_lint_reports_every_bad_line_with_columns() {
        let topo = ClosConfig::small().build();
        let text = "down L1 T1\nfrobnicate\ndown L1 XX\nwatchdog L1 99 2\nelp-add H1 T1 S1\n";
        let report = lint_trace_text("t.trace", &topo, text);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![
                C::UNKNOWN_DIRECTIVE,
                C::TRACE_UNKNOWN_LINK,
                C::TRACE_PORT_RANGE,
                C::TRACE_BAD_PATH
            ]
        );
        let lines: Vec<usize> = report
            .diagnostics
            .iter()
            .map(|d| d.span.unwrap().line)
            .collect();
        assert_eq!(lines, vec![2, 3, 4, 5]);
        // Column accuracy on the port-range error.
        assert_eq!(report.diagnostics[2].span.unwrap().col, 13);
        assert!(report.diagnostics[2]
            .hint
            .as_ref()
            .unwrap()
            .contains("ports 0.."));
    }

    #[test]
    fn watchdog_clear_without_trip_warns_with_span_and_hint() {
        let topo = ClosConfig::small().build();
        // Line 1 clears a never-tripped hop; line 2 trips L1 port 1
        // tag 2 via the attributed trigger S1 port 0 tag 2; lines 3-4
        // clear both the victim and the trigger hop (paired, quiet);
        // line 5 re-clears the victim, which is pending no more.
        let text = "watchdog-clear L2 0 1\n\
                    watchdog L1 1 2 via S1 0 2\n\
                    watchdog-clear L1 1 2\n\
                    watchdog-clear S1 0 2\n\
                    watchdog-clear L1 1 2\n";
        let report = lint_trace_text("t.trace", &topo, text);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![
                C::WATCHDOG_CLEAR_WITHOUT_TRIP,
                C::WATCHDOG_CLEAR_WITHOUT_TRIP
            ]
        );
        let d = &report.diagnostics[0];
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.span.unwrap().line, 1);
        assert_eq!(d.span.unwrap().col, 1);
        assert!(d.message.contains("L2 port 0 tag 1"));
        assert!(d.hint.as_ref().unwrap().contains("watchdog L2 0 1"));
        assert_eq!(report.diagnostics[1].span.unwrap().line, 5);
        // Warnings do not fail `check`.
        assert!(!LintReport {
            artifacts: vec![report]
        }
        .has_errors());
    }

    #[test]
    fn sniffing_prefers_content_over_extension() {
        assert_eq!(
            sniff_kind(
                "x.trace",
                "# tagger-audit checkpoint v1\ntopo clos pods=1\n"
            ),
            ArtifactKind::Checkpoint
        );
        assert_eq!(sniff_kind("x.ckpt", ""), ArtifactKind::Checkpoint);
        assert_eq!(sniff_kind("x.trace", "down L1 T1\n"), ArtifactKind::Trace);
        assert_eq!(
            sniff_kind("x.trace", "scenario misnamed\ntopo clos small\n"),
            ArtifactKind::Scenario
        );
        assert_eq!(sniff_kind("x.scn", ""), ArtifactKind::Scenario);
        assert_eq!(
            sniff_kind("x.trace", "# ring\nnode R1 switch flat\n"),
            ArtifactKind::Topology
        );
        assert_eq!(sniff_kind("x.topo", ""), ArtifactKind::Topology);
    }

    /// An N-switch ring spec: flat switches force the unlayered
    /// shortest-path ELP, whose clockwise 2-arc paths interlock.
    fn ring_spec(n: usize, priorities: Option<u16>) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("# ring fabric\n");
        for i in 1..=n {
            let _ = writeln!(s, "node R{i} switch flat");
        }
        for i in 1..=n {
            let _ = writeln!(s, "node H{i} host");
        }
        if let Some(p) = priorities {
            let _ = writeln!(s, "priorities {p}");
        }
        for i in 1..=n {
            let j = i % n + 1;
            let _ = writeln!(s, "link R{i} R{j}");
        }
        for i in 1..=n {
            let _ = writeln!(s, "link H{i} R{i}");
        }
        s
    }

    #[test]
    fn topology_parse_errors_carry_spans_and_hints() {
        let report = lint_topology_text(
            "bad.topo",
            "node Spine1 switch spine\nnode Tor1 switch tor\nlink Tor1 Spina1\n",
            &LintOptions::default(),
        );
        assert_eq!(report.kind, ArtifactKind::Topology);
        assert_eq!(report.diagnostics.len(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, C::TOPO_SPEC_ERROR);
        assert_eq!(d.severity, Severity::Error);
        let span = d.span.unwrap();
        assert_eq!((span.line, span.col, span.len), (3, 11, 6));
        assert!(d.hint.as_ref().unwrap().contains("Spine1"), "{:?}", d.hint);
    }

    #[test]
    fn infeasible_topology_emits_t0701_with_quoted_kernel() {
        let report =
            lint_topology_text("ring.topo", &ring_spec(5, Some(1)), &LintOptions::default());
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![C::ORACLE_INFEASIBLE], "got {codes:?}");
        let d = &report.diagnostics[0];
        assert_eq!(d.severity, Severity::Error);
        assert!(
            d.message.contains("minimal infeasible kernel"),
            "{}",
            d.message
        );
        assert!(
            d.message.contains(" -> "),
            "kernel paths quoted: {}",
            d.message
        );
        assert!(d.message.contains("dependency cycle"), "{}", d.message);
        // The span points at a `link` line of the cycle.
        let line = d.span.unwrap().line;
        let text = ring_spec(5, Some(1));
        assert!(
            text.lines().nth(line - 1).unwrap().starts_with("link "),
            "span line {line} is not a link line"
        );
        assert!(
            d.hint.as_ref().unwrap().contains("at least 2"),
            "{:?}",
            d.hint
        );
    }

    #[test]
    fn feasible_topology_lints_clean() {
        let report =
            lint_topology_text("ring.topo", &ring_spec(5, Some(2)), &LintOptions::default());
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        // And with no declaration the hardware ceiling applies.
        let report = lint_topology_text("ring.topo", &ring_spec(5, None), &LintOptions::default());
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn checkpoint_oracle_fires_at_tight_budget() {
        let config = ClosConfig::small();
        let topo = config.build();
        let tagging = clos_tagging(&topo, 1).unwrap();
        let text = render(&config, tagging.rules(), &topo);
        let opts = LintOptions {
            elp: Some(ElpSpec::Bounces(1)),
            tag_budget: Some(1),
            ..LintOptions::default()
        };
        let report = lint_checkpoint_text("t.ckpt", &text, &opts);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == C::ORACLE_INFEASIBLE)
            .expect("bounce ELP cannot fit one tag");
        // Spanned to the `topo` header line.
        assert_eq!(d.span.unwrap().line, 2);
    }

    #[test]
    fn checkpoint_tags_below_floor_warn() {
        let config = ClosConfig::small();
        let topo = config.build();
        // A 0-bounce table linted against the 1-bounce ELP: feasible at
        // the hardware ceiling, but the table's single tag family is
        // provably too small.
        let tagging = clos_tagging(&topo, 0).unwrap();
        let text = render(&config, tagging.rules(), &topo);
        let opts = LintOptions {
            elp: Some(ElpSpec::Bounces(1)),
            ..LintOptions::default()
        };
        let report = lint_checkpoint_text("t.ckpt", &text, &opts);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == C::ORACLE_BUDGET_BELOW_FLOOR)
            .expect("one tag is below the proven floor of two");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("at least 2"), "{}", d.message);
        assert!(
            d.hint.as_ref().unwrap().contains("--bounces"),
            "{:?}",
            d.hint
        );
    }

    #[test]
    fn trace_elp_oracle_flags_infeasible_set() {
        let ring = Topology::from_spec_text(&ring_spec(5, None)).unwrap();
        let mut text = String::new();
        for i in 1..=5usize {
            let a = i;
            let b = i % 5 + 1;
            let c = b % 5 + 1;
            text.push_str(&format!("elp-add H{a} R{a} R{b} R{c} H{c}\n"));
        }
        // Feasible at the default eight-tag ceiling.
        let quiet = lint_trace_text_budget("t.trace", &ring, &text, None);
        assert!(quiet.diagnostics.is_empty(), "{:?}", quiet.diagnostics);
        // Infeasible when the deployment has a single lossless class.
        let report = lint_trace_text_budget("t.trace", &ring, &text, Some(1));
        assert_eq!(report.diagnostics.len(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, C::ORACLE_INFEASIBLE);
        assert!(d.span.unwrap().line >= 1 && d.span.unwrap().line <= 5);
        // Removing one kernel path makes the rest feasible again.
        let kernel_line = d.span.unwrap().line;
        let removed: String = text
            .lines()
            .enumerate()
            .filter(|&(i, _)| i + 1 != kernel_line)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let healed = lint_trace_text_budget("t.trace", &ring, &removed, Some(1));
        assert!(healed.diagnostics.is_empty(), "{:?}", healed.diagnostics);
    }

    #[test]
    fn cross_check_flags_contradictions_in_both_directions() {
        use tagger_core::oracle::{Feasible, Infeasible, Verdict, WitnessOrder};
        let feasible = |lower| {
            Verdict::Feasible(Feasible {
                lower_bound_tags: lower,
                tags_used: lower,
                witness: WitnessOrder {
                    layers: Vec::new(),
                    assignment: Vec::new(),
                },
            })
        };
        let infeasible = Verdict::Infeasible(Infeasible {
            budget: 8,
            lower_bound_tags: 9,
            kernel: vec![0],
            cycle: Vec::new(),
            exhaustive: true,
        });
        // Proven infeasible, yet the construction fit the budget.
        let d = oracle_construction_cross_check(&infeasible, 2, 8).expect("contradiction");
        assert_eq!(d.code, C::ORACLE_CONSTRUCTION_MISMATCH);
        // Construction beat the proven floor.
        let d = oracle_construction_cross_check(&feasible(3), 2, 8).expect("contradiction");
        assert_eq!(d.code, C::ORACLE_CONSTRUCTION_MISMATCH);
        // Agreement is quiet.
        assert!(oracle_construction_cross_check(&feasible(2), 2, 8).is_none());
        assert!(oracle_construction_cross_check(&feasible(2), 3, 8).is_none());
    }

    #[test]
    fn scenario_lint_maps_issue_codes_with_spans_and_hints() {
        // Line 2: unknown directive; line 3: bad tagger argument;
        // line 5: duplicate `end`; line 6: unknown node (did-you-mean);
        // and the file never asserts anything.
        let text = "scenario bad\n\
                    topoo clos small\n\
                    tagger bounce 1\n\
                    end 4ms\n\
                    end 8ms\n\
                    flow H1 H99\n";
        let report = lint_scenario_text("bad.scn", text);
        assert_eq!(report.kind, ArtifactKind::Scenario);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&C::SCN_UNKNOWN_DIRECTIVE));
        assert!(codes.contains(&C::SCN_BAD_ARGUMENT));
        assert!(codes.contains(&C::SCN_DUPLICATE_DIRECTIVE));
        assert!(codes.contains(&C::SCN_MISSING_ASSERT));
        assert!(codes.contains(&C::SCN_UNKNOWN_NODE));
        // Every spanned finding carries file coordinates, and the
        // unknown-directive one lands on line 2 column 1.
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == C::SCN_UNKNOWN_DIRECTIVE)
            .unwrap();
        assert_eq!(d.span.unwrap().line, 2);
        assert_eq!(d.span.unwrap().col, 1);
        assert!(d.hint.as_ref().unwrap().contains("topo"));
        assert!(LintReport {
            artifacts: vec![report]
        }
        .has_errors());
    }

    #[test]
    fn scenario_lint_passes_a_clean_file_and_flags_unsatisfiable_asserts() {
        let clean = "scenario ok\ntopo clos small\ntagger off\nend 4ms\n\
                     flow H1 H13\nassert no-deadlock\n";
        assert!(lint_scenario_text("ok.scn", clean).diagnostics.is_empty());
        let unsat = "scenario bad\ntopo clos small\ntagger off\nend 4ms\n\
                     flow H1 H13\nassert watchdog-trips >= 1\n";
        let report = lint_scenario_text("bad.scn", unsat);
        assert_eq!(
            report
                .diagnostics
                .iter()
                .map(|d| d.code)
                .collect::<Vec<_>>(),
            vec![C::SCN_UNSATISFIABLE_ASSERT]
        );
    }

    #[test]
    fn json_encoding_round_trips_and_counts_severities() {
        let config = ClosConfig::small();
        let topo = config.build();
        let tagging = clos_tagging(&topo, 1).unwrap();
        let mut text = render(&config, tagging.rules(), &topo);
        text.push_str("rule 1 T1 T2 1\nrule 1 T1 T2 2\n"); // conflicting duplicate
        let report = LintReport {
            artifacts: vec![lint_checkpoint_text(
                "t.ckpt",
                &text,
                &LintOptions::default(),
            )],
        };
        assert!(report.has_errors());
        let rendered = render_json(&report);
        let parsed = Value::parse(&rendered).unwrap();
        assert_eq!(parsed.render(), rendered, "byte-stable round trip");
        assert_eq!(parsed.get("version"), Some(&Value::Num(1)));
        let errors = parsed.get("summary").unwrap().get("errors").unwrap();
        assert_eq!(errors, &Value::Num(report.count(Severity::Error) as i64));
    }

    #[test]
    fn elp_coverage_is_opt_in() {
        let config = ClosConfig::small();
        let topo = config.build();
        // 1-bounce tagging covers up-down-with-1-bounce ELPs, but if we
        // lint against 2-bounce ELPs some paths leak.
        let tagging = clos_tagging(&topo, 1).unwrap();
        let text = render(&config, tagging.rules(), &topo);
        let quiet = lint_checkpoint_text("t.ckpt", &text, &LintOptions::default());
        assert!(quiet
            .diagnostics
            .iter()
            .all(|d| d.code != C::TAG_LEAK_TO_LOSSY));
        let opts = LintOptions {
            elp: Some(ElpSpec::Bounces(2)),
            ..LintOptions::default()
        };
        let loud = lint_checkpoint_text("t.ckpt", &text, &opts);
        assert!(loud
            .diagnostics
            .iter()
            .any(|d| d.code == C::TAG_LEAK_TO_LOSSY));
        let covered = LintOptions {
            elp: Some(ElpSpec::Bounces(1)),
            ..LintOptions::default()
        };
        let clean = lint_checkpoint_text("t.ckpt", &text, &covered);
        assert!(clean
            .diagnostics
            .iter()
            .all(|d| d.code != C::TAG_LEAK_TO_LOSSY));
    }
}
