//! The diagnostic model: stable codes, severities, spans and rendering.

use std::fmt;
use tagger_core::Span;

/// How bad a finding is.
///
/// `Error` findings make `tagger-lint check` exit non-zero; warnings and
/// notes are advisory. Ordering is severity-descending (`Error` first)
/// so reports can sort the worst findings to the top.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The artifact is defective: deploying it risks deadlock or the
    /// hardware will not do what the text says.
    Error,
    /// Suspicious but not provably wrong (dead rules, failed
    /// cross-checks of advisory analyses).
    Warning,
    /// Informational (redundancy reports, certificate cross-links).
    Note,
}

impl Severity {
    /// Lower-case label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The error-code registry. Codes are stable across releases: tools and
/// suppression lists key on them, so a code is never renumbered or
/// reused (retired codes are kept as tombstones in the doc table).
///
/// | range | domain |
/// |-------|--------|
/// | T00xx | artifact syntax (unreadable files, malformed lines) |
/// | T01xx | TCAM order semantics (shadowing, duplicates) |
/// | T02xx | tag monotonicity |
/// | T03xx | reachability |
/// | T04xx | lossless-path coverage |
/// | T05xx | redundancy / resource use |
/// | T06xx | scenario DSL (`.scn` files) |
/// | T07xx | existence-oracle feasibility analyses |
/// | T09xx | cross-checks against other tools |
pub mod codes {
    /// The file could not be read at all.
    pub const UNREADABLE: &str = "T0001";
    /// The checkpoint header is malformed.
    pub const BAD_HEADER: &str = "T0002";
    /// A `switch` line names a node the topology does not have.
    pub const UNKNOWN_SWITCH: &str = "T0003";
    /// A rule names an in/out neighbour the topology does not have.
    pub const UNKNOWN_NEIGHBOUR: &str = "T0004";
    /// A rule names a neighbour the switch has no port towards.
    pub const NOT_ADJACENT: &str = "T0005";
    /// A rule line is malformed (arity, non-numeric tag, ...).
    pub const MALFORMED_RULE: &str = "T0006";
    /// A `rule` line appeared before any `switch` line.
    pub const RULE_BEFORE_SWITCH: &str = "T0007";
    /// A trace line starts with an unknown directive.
    pub const UNKNOWN_DIRECTIVE: &str = "T0010";
    /// A trace directive got the wrong number of arguments.
    pub const TRACE_ARITY: &str = "T0011";
    /// A trace line names a node the topology does not have.
    pub const TRACE_UNKNOWN_NODE: &str = "T0012";
    /// A trace line names a port index the node does not have.
    pub const TRACE_PORT_RANGE: &str = "T0013";
    /// A trace ELP node sequence is not a valid path.
    pub const TRACE_BAD_PATH: &str = "T0014";
    /// A trace link directive names a non-existent link.
    pub const TRACE_UNKNOWN_LINK: &str = "T0015";
    /// A trace issues `watchdog-clear` for a queue no prior `watchdog`
    /// trip in the same trace quarantined (neither as victim nor as
    /// attributed trigger): the clear is a no-op at replay, which
    /// usually means a typo or a stale line.
    pub const WATCHDOG_CLEAR_WITHOUT_TRIP: &str = "T0016";
    /// A `.topo` topology-spec line failed to parse.
    pub const TOPO_SPEC_ERROR: &str = "T0017";
    /// An earlier TCAM entry fully covers a later one: the later entry
    /// is dead under first-match semantics.
    pub const SHADOWED_ENTRY: &str = "T0101";
    /// The same match key appears twice with *different* rewrites: a
    /// first-match TCAM applies the earlier line, the last-write-wins
    /// table loader keeps the later one — text and hardware disagree.
    pub const CONFLICTING_DUPLICATE: &str = "T0102";
    /// The same match key appears twice with the same rewrite.
    pub const IDENTICAL_DUPLICATE: &str = "T0103";
    /// A rule rewrites to a *smaller* tag, breaking the monotonicity
    /// half of Theorem 5.1.
    pub const TAG_DECREASE: &str = "T0201";
    /// No packet injected at a host can ever hit this rule.
    pub const UNREACHABLE_RULE: &str = "T0301";
    /// An expected lossless path falls off the rules into the lossy
    /// class mid-flight.
    pub const TAG_LEAK_TO_LOSSY: &str = "T0401";
    /// The table admits a smaller TCAM encoding.
    pub const MERGEABLE_ENTRIES: &str = "T0501";
    /// A `.scn` line starts with an unknown directive.
    pub const SCN_UNKNOWN_DIRECTIVE: &str = "T0601";
    /// A `.scn` directive's arguments are missing or malformed.
    pub const SCN_BAD_ARGUMENT: &str = "T0602";
    /// A singleton `.scn` directive (`scenario`, `topo`, `end`, …)
    /// appears twice.
    pub const SCN_DUPLICATE_DIRECTIVE: &str = "T0603";
    /// The scenario has no `assert` block — nothing would be graded.
    pub const SCN_MISSING_ASSERT: &str = "T0604";
    /// An assert can never hold under this configuration (e.g.
    /// `watchdog-trips >= 1` with no watchdog armed).
    pub const SCN_UNSATISFIABLE_ASSERT: &str = "T0605";
    /// A `.scn` line names a node its topology does not have.
    pub const SCN_UNKNOWN_NODE: &str = "T0606";
    /// The existence oracle proved the artifact's ELP set infeasible:
    /// no deadlock-free tagging fits in the declared priority budget.
    /// The diagnostic quotes the minimal infeasible kernel.
    pub const ORACLE_INFEASIBLE: &str = "T0701";
    /// The ELP set is feasible, but not within the tags the artifact
    /// actually uses — the table provably cannot cover it losslessly.
    pub const ORACLE_BUDGET_BELOW_FLOOR: &str = "T0702";
    /// The oracle and the Algorithm 1+2 construction disagree — an
    /// internal error in one of them; both results are quoted.
    pub const ORACLE_CONSTRUCTION_MISMATCH: &str = "T0703";
    /// The independent auditor certified these tables.
    pub const AUDIT_CERTIFIED: &str = "T0901";
    /// The independent auditor found violations.
    pub const AUDIT_FINDINGS: &str = "T0902";

    /// One-line description of a code, for `--explain`-style tooling.
    pub fn describe(code: &str) -> Option<&'static str> {
        Some(match code {
            UNREADABLE => "artifact could not be read",
            BAD_HEADER => "malformed checkpoint header",
            UNKNOWN_SWITCH => "unknown switch name",
            UNKNOWN_NEIGHBOUR => "unknown neighbour name",
            NOT_ADJACENT => "switch has no port towards the named neighbour",
            MALFORMED_RULE => "malformed rule line",
            RULE_BEFORE_SWITCH => "rule line outside any switch block",
            UNKNOWN_DIRECTIVE => "unknown trace directive",
            TRACE_ARITY => "trace directive arity mismatch",
            TRACE_UNKNOWN_NODE => "unknown node in trace",
            TRACE_PORT_RANGE => "trace port index out of range",
            TRACE_BAD_PATH => "trace ELP is not a valid path",
            TRACE_UNKNOWN_LINK => "trace names a non-existent link",
            WATCHDOG_CLEAR_WITHOUT_TRIP => "watchdog-clear for a queue with no prior trip",
            TOPO_SPEC_ERROR => "topology spec line failed to parse",
            SHADOWED_ENTRY => "TCAM entry shadowed by an earlier one",
            CONFLICTING_DUPLICATE => "duplicate match key with conflicting rewrites",
            IDENTICAL_DUPLICATE => "duplicate match key with identical rewrites",
            TAG_DECREASE => "tag rewrite decreases (breaks Theorem 5.1 monotonicity)",
            UNREACHABLE_RULE => "rule unreachable from any host injection",
            TAG_LEAK_TO_LOSSY => "expected lossless path demoted to lossy",
            MERGEABLE_ENTRIES => "table admits a smaller TCAM encoding",
            SCN_UNKNOWN_DIRECTIVE => "unknown scenario directive",
            SCN_BAD_ARGUMENT => "malformed scenario directive arguments",
            SCN_DUPLICATE_DIRECTIVE => "singleton scenario directive repeats",
            SCN_MISSING_ASSERT => "scenario has no assert block",
            SCN_UNSATISFIABLE_ASSERT => "assert can never hold under this configuration",
            SCN_UNKNOWN_NODE => "unknown node name in scenario",
            ORACLE_INFEASIBLE => "no deadlock-free tagging exists within the priority budget",
            ORACLE_BUDGET_BELOW_FLOOR => "tags in use fall below the proven feasibility floor",
            ORACLE_CONSTRUCTION_MISMATCH => "existence oracle and tagging construction disagree",
            AUDIT_CERTIFIED => "independent audit certificate issued",
            AUDIT_FINDINGS => "independent audit found violations",
            _ => return None,
        })
    }
}

/// One structured finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable error code (`T0201`, ...), see [`codes`].
    pub code: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// The finding, one sentence, no trailing period.
    pub message: String,
    /// Source coordinates, when the artifact is text with a blamable
    /// token. `None` for findings located by table coordinates only.
    pub span: Option<Span>,
    /// Table coordinates (`"L1 entry 3"`, `"L1 rule (tag 2, in S1, out
    /// S2)"`), when the finding lives in a compiled table.
    pub locus: Option<String>,
    /// A fix-it suggestion, when one is known.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// A diagnostic with neither span nor locus nor hint; builder-style
    /// `with_*` methods attach the rest.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span: None,
            locus: None,
            hint: None,
        }
    }

    /// Attaches source coordinates.
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Attaches table coordinates.
    pub fn with_locus(mut self, locus: impl Into<String>) -> Diagnostic {
        self.locus = Some(locus.into());
        self
    }

    /// Attaches a fix-it hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Diagnostic {
        self.hint = Some(hint.into());
        self
    }

    /// The deterministic report order: file position first (spanless
    /// findings sort after spanned ones), then code, then locus — so
    /// renders are byte-stable for golden tests.
    pub fn sort_key(&self) -> (usize, usize, &'static str, String) {
        let (line, col) = match self.span {
            Some(s) if !s.is_whole_file() => (s.line, s.col),
            Some(_) => (0, 0),
            None => (usize::MAX, usize::MAX),
        };
        (line, col, self.code, self.locus.clone().unwrap_or_default())
    }
}

/// What kind of artifact a report covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A `tagger-audit checkpoint v1` file (topology header + tables).
    Checkpoint,
    /// A `tagger-ctrld` plain-text event trace (ELP spec + link events).
    Trace,
    /// An in-memory rule table (no file behind it).
    Rules,
    /// A declarative `.scn` scenario (`tagger-scenario` DSL).
    Scenario,
    /// A plain-text `.topo` topology spec (`tagger-plan custom` input).
    Topology,
}

impl ArtifactKind {
    /// Lower-case label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            ArtifactKind::Checkpoint => "checkpoint",
            ArtifactKind::Trace => "trace",
            ArtifactKind::Rules => "rules",
            ArtifactKind::Scenario => "scenario",
            ArtifactKind::Topology => "topology",
        }
    }
}

/// Everything lint found in one artifact.
#[derive(Clone, Debug)]
pub struct ArtifactReport {
    /// The file name as given (or a synthetic label for in-memory lint).
    pub file: String,
    /// What the artifact was recognised as.
    pub kind: ArtifactKind,
    /// Findings, in deterministic order.
    pub diagnostics: Vec<Diagnostic>,
}

impl ArtifactReport {
    /// Sorts diagnostics into the canonical deterministic order.
    pub fn finish(mut self) -> ArtifactReport {
        self.diagnostics
            .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        self
    }
}

/// A whole lint run: one report per artifact, in command-line order.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Per-artifact findings.
    pub artifacts: Vec<ArtifactReport>,
}

impl LintReport {
    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.artifacts
            .iter()
            .flat_map(|a| &a.diagnostics)
            .filter(|d| d.severity == severity)
            .count()
    }

    /// True when at least one error-severity finding exists — the
    /// non-zero-exit condition for `tagger-lint check`.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// The compiler-style human rendering:
    ///
    /// ```text
    /// examples/bad.ckpt:126:1: error[T0102]: duplicate match key ...
    ///   hint: delete one of the two lines
    /// ```
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for artifact in &self.artifacts {
            for d in &artifact.diagnostics {
                match d.span {
                    Some(s) if !s.is_whole_file() => {
                        out.push_str(&format!("{}:{}:{}: ", artifact.file, s.line, s.col));
                    }
                    _ => out.push_str(&format!("{}: ", artifact.file)),
                }
                out.push_str(&format!("{}[{}]: {}", d.severity, d.code, d.message));
                if let Some(locus) = &d.locus {
                    out.push_str(&format!(" (at {locus})"));
                }
                out.push('\n');
                if let Some(hint) = &d.hint {
                    out.push_str(&format!("  hint: {hint}\n"));
                }
            }
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} note(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note)
        ));
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_sort_spanned_before_spanless_and_by_position() {
        let a = Diagnostic::new(codes::TAG_DECREASE, Severity::Error, "x")
            .with_span(Span::new(3, 1, 4));
        let b =
            Diagnostic::new(codes::SHADOWED_ENTRY, Severity::Error, "y").with_locus("L1 entry 2");
        let c = Diagnostic::new(codes::MALFORMED_RULE, Severity::Error, "z")
            .with_span(Span::new(2, 9, 1));
        let report = ArtifactReport {
            file: "f".into(),
            kind: ArtifactKind::Rules,
            diagnostics: vec![a.clone(), b.clone(), c.clone()],
        }
        .finish();
        assert_eq!(report.diagnostics, vec![c, a, b]);
    }

    #[test]
    fn human_render_is_compiler_style() {
        let report = LintReport {
            artifacts: vec![ArtifactReport {
                file: "t.ckpt".into(),
                kind: ArtifactKind::Checkpoint,
                diagnostics: vec![Diagnostic::new(
                    codes::TAG_DECREASE,
                    Severity::Error,
                    "tag decreases 2 -> 1",
                )
                .with_span(Span::new(7, 3, 15))
                .with_hint("rewrite to tag 3")],
            }],
        };
        let text = report.render_human();
        assert!(text.contains("t.ckpt:7:3: error[T0201]: tag decreases 2 -> 1"));
        assert!(text.contains("  hint: rewrite to tag 3"));
        assert!(text.ends_with("1 error(s), 0 warning(s), 0 note(s)\n"));
        assert!(report.has_errors());
    }

    #[test]
    fn every_code_has_a_description() {
        for code in [
            codes::UNREADABLE,
            codes::BAD_HEADER,
            codes::UNKNOWN_SWITCH,
            codes::UNKNOWN_NEIGHBOUR,
            codes::NOT_ADJACENT,
            codes::MALFORMED_RULE,
            codes::RULE_BEFORE_SWITCH,
            codes::UNKNOWN_DIRECTIVE,
            codes::TRACE_ARITY,
            codes::TRACE_UNKNOWN_NODE,
            codes::TRACE_PORT_RANGE,
            codes::TRACE_BAD_PATH,
            codes::TRACE_UNKNOWN_LINK,
            codes::WATCHDOG_CLEAR_WITHOUT_TRIP,
            codes::TOPO_SPEC_ERROR,
            codes::SHADOWED_ENTRY,
            codes::CONFLICTING_DUPLICATE,
            codes::IDENTICAL_DUPLICATE,
            codes::TAG_DECREASE,
            codes::UNREACHABLE_RULE,
            codes::TAG_LEAK_TO_LOSSY,
            codes::MERGEABLE_ENTRIES,
            codes::SCN_UNKNOWN_DIRECTIVE,
            codes::SCN_BAD_ARGUMENT,
            codes::SCN_DUPLICATE_DIRECTIVE,
            codes::SCN_MISSING_ASSERT,
            codes::SCN_UNSATISFIABLE_ASSERT,
            codes::SCN_UNKNOWN_NODE,
            codes::ORACLE_INFEASIBLE,
            codes::ORACLE_BUDGET_BELOW_FLOOR,
            codes::ORACLE_CONSTRUCTION_MISMATCH,
            codes::AUDIT_CERTIFIED,
            codes::AUDIT_FINDINGS,
        ] {
            assert!(codes::describe(code).is_some(), "{code} undocumented");
        }
        assert!(codes::describe("T9999").is_none());
    }
}
