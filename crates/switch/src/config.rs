//! Switch buffer and PFC configuration.

/// Buffer and PFC parameters of one switch.
///
/// Defaults approximate the paper's testbed (Broadcom-based 40GbE
/// switches) scaled so that simulations exercise PFC quickly: what
/// matters for deadlock behaviour is the *ordering* Xon < Xoff and enough
/// headroom to absorb in-flight bytes after a PAUSE, not the absolute
/// sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchConfig {
    /// Number of lossless priority queues per port. Tags `1..=n` map to
    /// queues `0..n`; one extra lossy queue exists at index `n`.
    /// Commodity switches realistically support 2-3 (paper §3.3).
    pub num_lossless: u8,
    /// Total shared packet buffer in bytes.
    pub buffer_bytes: u64,
    /// Per-(ingress port, priority) occupancy that triggers PAUSE.
    pub xoff_bytes: u64,
    /// Occupancy below which RESUME is sent. Must be < `xoff_bytes`.
    pub xon_bytes: u64,
    /// Capacity of each lossy egress queue; beyond it, lossy packets are
    /// tail-dropped.
    pub lossy_queue_bytes: u64,
    /// ECN marking threshold: lossless packets enqueued behind more than
    /// this many bytes get congestion-marked (consumed by DCQCN-style
    /// control). `None` disables marking.
    pub ecn_threshold_bytes: Option<u64>,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            num_lossless: 2,
            buffer_bytes: 12 * 1024 * 1024,
            xoff_bytes: 96 * 1024,
            xon_bytes: 48 * 1024,
            lossy_queue_bytes: 256 * 1024,
            ecn_threshold_bytes: None,
        }
    }
}

impl SwitchConfig {
    /// Validates invariants (Xon < Xoff ≤ buffer, at least one lossless
    /// queue).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_lossless == 0 {
            return Err("need at least one lossless priority".into());
        }
        if self.xon_bytes >= self.xoff_bytes {
            return Err(format!(
                "xon ({}) must be below xoff ({})",
                self.xon_bytes, self.xoff_bytes
            ));
        }
        if self.xoff_bytes > self.buffer_bytes {
            return Err("xoff exceeds total buffer".into());
        }
        Ok(())
    }

    /// Queue index used for lossy traffic.
    pub fn lossy_queue(&self) -> usize {
        self.num_lossless as usize
    }

    /// Queues per port including the lossy one.
    pub fn queues_per_port(&self) -> usize {
        self.num_lossless as usize + 1
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn default_is_valid() {
        SwitchConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_inverted_thresholds() {
        let cfg = SwitchConfig {
            xon_bytes: 100,
            xoff_bytes: 100,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_zero_lossless() {
        let cfg = SwitchConfig {
            num_lossless: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn queue_layout() {
        let cfg = SwitchConfig {
            num_lossless: 3,
            ..Default::default()
        };
        assert_eq!(cfg.lossy_queue(), 3);
        assert_eq!(cfg.queues_per_port(), 4);
    }
}
