//! Per-queue PFC watchdog: the data-plane safety net.
//!
//! Commodity switches ship a last-line defense the paper assumes away: a
//! watchdog that notices a lossless egress queue stuck in the tx-paused
//! state for longer than any healthy congestion episode and recovers
//! in-band. This module is the clock-agnostic state machine; the
//! simulator drives it with observations (is the queue stuck? is it
//! confirmed to sit on a circular wait?) and applies the recovery action
//! it decides on.
//!
//! The machine per queue:
//!
//! ```text
//!           stuck                window elapsed && confirmed
//!   Idle ---------> Watching ----------------------------------> Trip
//!    ^                |  |                                        |
//!    |   not stuck    |  | window elapsed && !confirmed           v
//!    +----------------+  +--> (suppressed, re-window)        HoldDown
//!    ^                                                            |
//!    |                    hold-down elapsed (Restore)             |
//!    +------------------------------------------------------------+
//! ```
//!
//! The *confirmed* input is the DCFIT-style cycle confirmation: a queue
//! that has been paused past the window but is **not** on a circular
//! wait (heavy incast, slow drain) is suppressed and re-windowed rather
//! than tripped — the false-positive guard. Repeat trips back off
//! exponentially: each consecutive trip doubles the hold-down, so a
//! persistently broken configuration converges to long quarantine
//! periods instead of flapping between demote and restore.

use std::ops::AddAssign;

/// What a tripped watchdog does to its queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WatchdogPolicy {
    /// Drain the queue to the floor: every held packet is dropped and
    /// its PFC accounting released — the classic switch-vendor watchdog.
    Drop,
    /// Demote the queue to the lossy class for the hold-down period
    /// (the paper's §4.4 sentinel-tag escape hatch): held packets are
    /// moved to the lossy queue with their tags stripped, and arrivals
    /// for the queue are redirected likewise until restore. Nothing is
    /// dropped by the watchdog itself.
    #[default]
    Demote,
}

/// Watchdog tuning. All times are in the driving clock's units
/// (nanoseconds in the simulator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// How long a queue must stay tx-paused-and-loaded before the
    /// watchdog considers tripping.
    pub window_ns: u64,
    /// What a trip does to the queue.
    pub policy: WatchdogPolicy,
    /// Base hold-down after a trip; doubles per consecutive trip.
    pub hold_down_ns: u64,
    /// Cap on the exponential backoff: the hold-down never exceeds
    /// `hold_down_ns << max_backoff_exp`.
    pub max_backoff_exp: u32,
}

impl WatchdogConfig {
    /// A watchdog with the given window, demote policy, and a hold-down
    /// of twice the window.
    pub fn with_window(window_ns: u64) -> WatchdogConfig {
        WatchdogConfig {
            window_ns,
            policy: WatchdogPolicy::Demote,
            hold_down_ns: window_ns.saturating_mul(2),
            max_backoff_exp: 4,
        }
    }

    /// Same, with an explicit policy.
    pub fn with_policy(window_ns: u64, policy: WatchdogPolicy) -> WatchdogConfig {
        WatchdogConfig {
            policy,
            ..WatchdogConfig::with_window(window_ns)
        }
    }

    /// The hold-down imposed by the trip numbered `consecutive` (0 for
    /// the first trip since the last quiet period).
    pub fn hold_down_for(&self, consecutive: u32) -> u64 {
        let exp = consecutive.min(self.max_backoff_exp);
        self.hold_down_ns.saturating_mul(1u64 << exp)
    }
}

impl Default for WatchdogConfig {
    /// 200 µs window — an order of magnitude beyond any PAUSE a healthy
    /// incast holds at the model's thresholds — demote policy, 400 µs
    /// base hold-down, backoff capped at 16×.
    fn default() -> Self {
        WatchdogConfig::with_window(200_000)
    }
}

/// Counters a watchdog deployment accumulates; summed across queues and
/// switches into `SimReport` / `ControllerMetrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WatchdogStats {
    /// Confirmed trips (recovery actions taken).
    pub trips: u64,
    /// Windows that elapsed without cycle confirmation — the incast
    /// false positives the confirmation step absorbed.
    pub suppressions: u64,
    /// Hold-downs that expired and re-armed their queue.
    pub restores: u64,
    /// Packets dropped by [`WatchdogPolicy::Drop`] trips.
    pub drained_packets: u64,
    /// Held packets moved to the lossy class by
    /// [`WatchdogPolicy::Demote`] trips.
    pub demoted_packets: u64,
    /// Arrivals redirected to the lossy class while a queue sat demoted.
    pub redirected_packets: u64,
    /// Trips whose queue held an origin attribution — "I started this"
    /// (the tripping queue's own trigger stamp names itself).
    pub origin_trips: u64,
    /// Trips whose queue inherited its pause from downstream (the
    /// stamp names another queue) — the victim trips cause-directed
    /// recovery redirects.
    pub inherited_trips: u64,
}

impl AddAssign for WatchdogStats {
    fn add_assign(&mut self, rhs: WatchdogStats) {
        self.trips += rhs.trips;
        self.suppressions += rhs.suppressions;
        self.restores += rhs.restores;
        self.drained_packets += rhs.drained_packets;
        self.demoted_packets += rhs.demoted_packets;
        self.redirected_packets += rhs.redirected_packets;
        self.origin_trips += rhs.origin_trips;
        self.inherited_trips += rhs.inherited_trips;
    }
}

impl WatchdogStats {
    /// One-line rendering for reports.
    pub fn describe(&self) -> String {
        format!(
            "trips {} (suppressed {}, origin {}, inherited {}), restores {}, \
             drained {} pkt, demoted {} pkt, redirected {} pkt",
            self.trips,
            self.suppressions,
            self.origin_trips,
            self.inherited_trips,
            self.restores,
            self.drained_packets,
            self.demoted_packets,
            self.redirected_packets,
        )
    }
}

/// What one poll decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WatchdogVerdict {
    /// Nothing to do.
    None,
    /// The window elapsed but the cycle confirmation refuted a deadlock;
    /// the watch was re-windowed instead of tripping.
    Suppressed,
    /// Trip: the caller must apply [`WatchdogConfig::policy`] to the
    /// queue now.
    Trip,
    /// The hold-down expired: the caller must restore the queue to the
    /// lossless class (no-op for the drop policy) — the watchdog is
    /// re-armed.
    Restore,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Queue healthy; `since` is when we last entered this phase (for
    /// backoff decay).
    Idle { since: u64 },
    /// Queue stuck since `since`; trips when the window elapses with
    /// confirmation.
    Watching { since: u64 },
    /// Tripped; the recovery action is in force until `until`.
    HoldDown { until: u64 },
}

/// The per-queue watchdog state machine. Owns no clock and touches no
/// queue: the driver supplies observations and applies verdicts.
#[derive(Clone, Copy, Debug)]
pub struct QueueWatchdog {
    phase: Phase,
    /// Trips since the last full quiet period; indexes the backoff.
    consecutive_trips: u32,
}

impl Default for QueueWatchdog {
    fn default() -> Self {
        QueueWatchdog {
            phase: Phase::Idle { since: 0 },
            consecutive_trips: 0,
        }
    }
}

impl QueueWatchdog {
    /// True while the trip action is in force (the queue is demoted or
    /// being drained).
    pub fn in_hold_down(&self) -> bool {
        matches!(self.phase, Phase::HoldDown { .. })
    }

    /// Trips taken since the last quiet period (drives the backoff).
    pub fn consecutive_trips(&self) -> u32 {
        self.consecutive_trips
    }

    /// Advances the machine to `now`. `stuck` is the raw symptom — the
    /// queue is tx-paused and holds packets; `confirmed` is the cycle
    /// confirmation — the queue sits on a circular PFC wait right now.
    pub fn poll(
        &mut self,
        now: u64,
        stuck: bool,
        confirmed: bool,
        cfg: &WatchdogConfig,
    ) -> WatchdogVerdict {
        match self.phase {
            Phase::Idle { since } => {
                if stuck {
                    self.phase = Phase::Watching { since: now };
                } else if self.consecutive_trips > 0
                    && now.saturating_sub(since) >= cfg.hold_down_ns
                {
                    // A full quiet base-hold-down: the pathology is gone,
                    // forget the backoff history.
                    self.consecutive_trips = 0;
                }
                WatchdogVerdict::None
            }
            Phase::Watching { since } => {
                if !stuck {
                    self.phase = Phase::Idle { since: now };
                    return WatchdogVerdict::None;
                }
                if now.saturating_sub(since) < cfg.window_ns {
                    return WatchdogVerdict::None;
                }
                if !confirmed {
                    // Persistently paused but no circular wait: heavy
                    // congestion. Re-window so a later genuine deadlock
                    // still has to persist a full window.
                    self.phase = Phase::Watching { since: now };
                    return WatchdogVerdict::Suppressed;
                }
                let hold = cfg.hold_down_for(self.consecutive_trips);
                self.consecutive_trips = self.consecutive_trips.saturating_add(1);
                self.phase = Phase::HoldDown {
                    until: now.saturating_add(hold),
                };
                WatchdogVerdict::Trip
            }
            Phase::HoldDown { until } => {
                if now < until {
                    return WatchdogVerdict::None;
                }
                self.phase = Phase::Idle { since: now };
                WatchdogVerdict::Restore
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WatchdogConfig {
        WatchdogConfig {
            window_ns: 100,
            policy: WatchdogPolicy::Demote,
            hold_down_ns: 200,
            max_backoff_exp: 3,
        }
    }

    #[test]
    fn trips_only_after_a_full_confirmed_window() {
        let c = cfg();
        let mut wd = QueueWatchdog::default();
        assert_eq!(wd.poll(0, true, true, &c), WatchdogVerdict::None);
        assert_eq!(wd.poll(99, true, true, &c), WatchdogVerdict::None);
        assert_eq!(wd.poll(100, true, true, &c), WatchdogVerdict::Trip);
        assert!(wd.in_hold_down());
    }

    #[test]
    fn recovery_before_the_window_rearms_silently() {
        let c = cfg();
        let mut wd = QueueWatchdog::default();
        wd.poll(0, true, true, &c);
        assert_eq!(wd.poll(50, false, false, &c), WatchdogVerdict::None);
        // The watch restarted: another 99 stuck ns are not enough.
        wd.poll(60, true, true, &c);
        assert_eq!(wd.poll(159, true, true, &c), WatchdogVerdict::None);
        assert_eq!(wd.poll(160, true, true, &c), WatchdogVerdict::Trip);
    }

    #[test]
    fn unconfirmed_window_suppresses_and_rewindows() {
        let c = cfg();
        let mut wd = QueueWatchdog::default();
        wd.poll(0, true, false, &c);
        assert_eq!(wd.poll(100, true, false, &c), WatchdogVerdict::Suppressed);
        // The suppression re-windowed: confirmation at 150 is only 50ns
        // into the new window, no trip yet.
        assert_eq!(wd.poll(150, true, true, &c), WatchdogVerdict::None);
        assert_eq!(wd.poll(200, true, true, &c), WatchdogVerdict::Trip);
    }

    #[test]
    fn hold_down_restores_then_backs_off_exponentially() {
        let c = cfg();
        let mut wd = QueueWatchdog::default();
        wd.poll(0, true, true, &c);
        assert_eq!(wd.poll(100, true, true, &c), WatchdogVerdict::Trip);
        // First hold-down is the base 200ns.
        assert_eq!(wd.poll(299, true, true, &c), WatchdogVerdict::None);
        assert_eq!(wd.poll(300, true, true, &c), WatchdogVerdict::Restore);
        // Still stuck: re-watch, trip again; this hold-down doubles.
        wd.poll(301, true, true, &c);
        assert_eq!(wd.poll(401, true, true, &c), WatchdogVerdict::Trip);
        assert_eq!(wd.poll(800, true, true, &c), WatchdogVerdict::None);
        assert_eq!(wd.poll(801, true, true, &c), WatchdogVerdict::Restore);
        assert_eq!(wd.consecutive_trips(), 2);
    }

    #[test]
    fn backoff_caps_and_decays_after_quiet() {
        let c = cfg();
        assert_eq!(c.hold_down_for(0), 200);
        assert_eq!(c.hold_down_for(3), 1_600);
        assert_eq!(c.hold_down_for(30), 1_600, "capped at max_backoff_exp");
        let mut wd = QueueWatchdog::default();
        wd.poll(0, true, true, &c);
        wd.poll(100, true, true, &c); // trip
        wd.poll(300, false, false, &c); // restore
        assert_eq!(wd.consecutive_trips(), 1);
        // A full quiet base-hold-down later, the history decays.
        wd.poll(400, false, false, &c);
        assert_eq!(wd.consecutive_trips(), 1, "not quiet long enough");
        wd.poll(501, false, false, &c);
        assert_eq!(wd.consecutive_trips(), 0);
    }

    #[test]
    fn stats_sum_across_queues() {
        let mut a = WatchdogStats {
            trips: 1,
            suppressions: 2,
            restores: 1,
            drained_packets: 10,
            demoted_packets: 0,
            redirected_packets: 3,
            origin_trips: 1,
            inherited_trips: 0,
        };
        a += WatchdogStats {
            trips: 2,
            ..WatchdogStats::default()
        };
        assert_eq!(a.trips, 3);
        assert_eq!(a.suppressions, 2);
        assert!(a.describe().contains("trips 3"));
    }
}
