//! # tagger-switch — a shared-buffer PFC switch model
//!
//! Models the data plane the paper's testbed switches (Arista 7060,
//! Broadcom ASIC) implement, at the fidelity deadlock phenomena need:
//!
//! - per-(ingress-port, priority) **PFC accounting** with Xoff/Xon
//!   thresholds: crossing Xoff emits a PAUSE to the upstream neighbor,
//!   falling below Xon emits a RESUME (paper §2);
//! - per-(egress-port, queue) **output queues**, with the lossless queues
//!   gateable by received PFC frames and a lossy queue that never
//!   generates PFC and tail-drops at capacity;
//! - the three-step **Tagger pipeline** of Fig. 7: classify by arriving
//!   tag, rewrite via the match-action rules, and enqueue at the egress
//!   queue of the *new* tag — the priority-transition handling of Fig. 8
//!   (enqueueing by the old tag is also available, to reproduce the
//!   packet loss of Fig. 8(a));
//! - a shared buffer pool with headroom reservation, so lossless traffic
//!   is never dropped as long as thresholds are configured sanely.
//!
//! The switch is a passive state machine: the discrete-event simulator in
//! `tagger-sim` drives it with packet arrivals, departures and PFC
//! frames, and collects the PFC frames it wants to emit.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

mod config;
mod packet;
mod switch;
mod watchdog;

pub use config::SwitchConfig;
pub use packet::{Packet, PacketId, TriggerStamp};
pub use switch::{AdmitOutcome, PfcFrame, QueuedPacket, SwitchState, SwitchStats, TransitionMode};
pub use watchdog::{QueueWatchdog, WatchdogConfig, WatchdogPolicy, WatchdogStats, WatchdogVerdict};
