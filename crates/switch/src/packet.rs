//! The packet model shared by the switch and the simulator.

use tagger_core::Tag;
use tagger_topo::NodeId;

/// Globally unique packet identifier (assigned by the simulator).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

/// A packet in flight.
///
/// Carries just what the data plane needs: Tagger's tag rides in the DSCP
/// field of real packets (paper §7) and is modelled as `Option<Tag>` —
/// `None` means the packet has been demoted to the lossy class, which is
/// sticky for the rest of its life (no rule ever matches an absent tag).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Flow the packet belongs to (simulator-level concept).
    pub flow: u32,
    /// Destination host.
    pub dst: NodeId,
    /// Wire size in bytes (headers included).
    pub size_bytes: u32,
    /// Tagger tag; `None` once demoted to lossy.
    pub tag: Option<Tag>,
    /// Remaining IP TTL; decremented per switch hop, dropped at zero —
    /// what eventually kills looping packets in the paper's Figure 11.
    pub ttl: u8,
    /// ECN congestion-experienced mark, set by switches whose egress
    /// queue exceeds the marking threshold. Consumed by DCQCN-style
    /// congestion control at the receiver (paper §6 discusses DCQCN as a
    /// complement that reduces PFC generation).
    pub ecn: bool,
}

impl Packet {
    /// The default TTL used by the measurement methodology in the paper
    /// (§3.2 sets 64 in the inner header).
    pub const DEFAULT_TTL: u8 = 64;

    /// A fresh packet as injected by a host NIC: initial tag, full TTL.
    pub fn new(id: PacketId, flow: u32, dst: NodeId, size_bytes: u32) -> Packet {
        Packet {
            id,
            flow,
            dst,
            size_bytes,
            tag: Some(Tag::INITIAL),
            ttl: Self::DEFAULT_TTL,
            ecn: false,
        }
    }

    /// True if the packet is in the lossy class.
    pub fn is_lossy(&self) -> bool {
        self.tag.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_packets_are_lossless_tag1() {
        let p = Packet::new(PacketId(1), 7, NodeId(3), 1024);
        assert_eq!(p.tag, Some(Tag::INITIAL));
        assert!(!p.is_lossy());
        assert_eq!(p.ttl, 64);
    }

    #[test]
    fn demotion_is_expressible() {
        let mut p = Packet::new(PacketId(1), 7, NodeId(3), 1024);
        p.tag = None;
        assert!(p.is_lossy());
    }
}
