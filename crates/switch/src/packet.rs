//! The packet model shared by the switch and the simulator.

use tagger_core::Tag;
use tagger_topo::{NodeId, PortId};

/// Globally unique packet identifier (assigned by the simulator).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

/// DCFIT-style in-band trigger metadata: names the queue believed to
/// have *started* the pause-propagation episode the stamped packet is
/// caught in.
///
/// A lossless egress queue that enters the tx-paused state records a
/// trigger: if the PAUSE frame carried no stamp the queue is the
/// congestion origin and stamps itself (`hops == 0`); if the frame
/// carried a stamp from downstream the queue inherits it with the hop
/// count bumped. Packets enqueued behind a gated queue carry the
/// queue's stamp in-band, the modelled analogue of DCFIT riding trigger
/// metadata in packet headers. Stamps are cleared the moment a packet
/// flows through an ungated queue or is demoted to the lossy class —
/// attribution never outlives the episode that minted it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TriggerStamp {
    /// Switch owning the first-paused queue.
    pub switch: NodeId,
    /// Egress port of that queue.
    pub port: PortId,
    /// Lossless priority of that queue.
    pub prio: u8,
    /// Driving-clock time (ns in the simulator) at which that queue
    /// entered PAUSE — the global ordering attribution minimises over.
    pub pause_epoch: u64,
    /// Pause-propagation hops between the origin queue and the holder
    /// of this stamp; 0 means "I started this".
    pub hops: u8,
}

impl TriggerStamp {
    /// The stamp as seen one propagation hop further upstream.
    pub fn bump(self) -> TriggerStamp {
        TriggerStamp {
            hops: self.hops.saturating_add(1),
            ..self
        }
    }

    /// True if the stamp names the queue `(switch, port, prio)`.
    pub fn names(&self, switch: NodeId, port: PortId, prio: u8) -> bool {
        self.switch == switch && self.port == port && self.prio == prio
    }

    /// Of two candidate stamps, the one with the earlier pause epoch —
    /// the "oldest claim wins" rule that makes attribution converge on
    /// the initial trigger as stamps race around a cycle.
    pub fn older(a: Option<TriggerStamp>, b: Option<TriggerStamp>) -> Option<TriggerStamp> {
        match (a, b) {
            (Some(x), Some(y)) => Some(if x.pause_epoch <= y.pause_epoch { x } else { y }),
            (x, y) => x.or(y),
        }
    }
}

/// A packet in flight.
///
/// Carries just what the data plane needs: Tagger's tag rides in the DSCP
/// field of real packets (paper §7) and is modelled as `Option<Tag>` —
/// `None` means the packet has been demoted to the lossy class, which is
/// sticky for the rest of its life (no rule ever matches an absent tag).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Flow the packet belongs to (simulator-level concept).
    pub flow: u32,
    /// Destination host.
    pub dst: NodeId,
    /// Wire size in bytes (headers included).
    pub size_bytes: u32,
    /// Tagger tag; `None` once demoted to lossy.
    pub tag: Option<Tag>,
    /// Remaining IP TTL; decremented per switch hop, dropped at zero —
    /// what eventually kills looping packets in the paper's Figure 11.
    pub ttl: u8,
    /// ECN congestion-experienced mark, set by switches whose egress
    /// queue exceeds the marking threshold. Consumed by DCQCN-style
    /// congestion control at the receiver (paper §6 discusses DCQCN as a
    /// complement that reduces PFC generation).
    pub ecn: bool,
    /// In-band trigger attribution: set while the packet sits behind a
    /// PAUSE-gated lossless queue, cleared on any ungated (or lossy)
    /// hop. Lossy packets never carry a stamp.
    pub trigger: Option<TriggerStamp>,
}

impl Packet {
    /// The default TTL used by the measurement methodology in the paper
    /// (§3.2 sets 64 in the inner header).
    pub const DEFAULT_TTL: u8 = 64;

    /// A fresh packet as injected by a host NIC: initial tag, full TTL.
    pub fn new(id: PacketId, flow: u32, dst: NodeId, size_bytes: u32) -> Packet {
        Packet {
            id,
            flow,
            dst,
            size_bytes,
            tag: Some(Tag::INITIAL),
            ttl: Self::DEFAULT_TTL,
            ecn: false,
            trigger: None,
        }
    }

    /// True if the packet is in the lossy class.
    pub fn is_lossy(&self) -> bool {
        self.tag.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_packets_are_lossless_tag1() {
        let p = Packet::new(PacketId(1), 7, NodeId(3), 1024);
        assert_eq!(p.tag, Some(Tag::INITIAL));
        assert!(!p.is_lossy());
        assert_eq!(p.ttl, 64);
    }

    #[test]
    fn demotion_is_expressible() {
        let mut p = Packet::new(PacketId(1), 7, NodeId(3), 1024);
        p.tag = None;
        assert!(p.is_lossy());
    }

    #[test]
    fn fresh_packets_carry_no_trigger_stamp() {
        let p = Packet::new(PacketId(1), 7, NodeId(3), 1024);
        assert_eq!(p.trigger, None);
    }

    #[test]
    fn older_stamp_wins() {
        let mk = |epoch| TriggerStamp {
            switch: NodeId(1),
            port: PortId(2),
            prio: 0,
            pause_epoch: epoch,
            hops: 0,
        };
        assert_eq!(TriggerStamp::older(Some(mk(5)), Some(mk(9))), Some(mk(5)));
        assert_eq!(TriggerStamp::older(None, Some(mk(9))), Some(mk(9)));
        assert_eq!(TriggerStamp::older(Some(mk(5)), None), Some(mk(5)));
        assert_eq!(TriggerStamp::older(None, None), None);
    }

    #[test]
    fn bump_saturates_and_names_matches() {
        let t = TriggerStamp {
            switch: NodeId(1),
            port: PortId(2),
            prio: 1,
            pause_epoch: 7,
            hops: u8::MAX,
        };
        assert_eq!(t.bump().hops, u8::MAX);
        assert!(t.names(NodeId(1), PortId(2), 1));
        assert!(!t.names(NodeId(1), PortId(2), 0));
    }
}
