//! The switch state machine: queues, PFC accounting, Tagger pipeline.

use crate::{Packet, SwitchConfig, TriggerStamp};
use std::collections::VecDeque;
use tagger_core::Tag;
use tagger_topo::{NodeId, PortId};

/// A PFC frame emitted or received on a specific port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PfcFrame {
    /// Stop sending the given priority on this link.
    Pause {
        /// Priority class to pause (queue index).
        priority: u8,
        /// DCFIT trigger metadata riding the frame: `None` when the
        /// emitter paused out of its own ingress congestion (it *is*
        /// the origin), `Some` when the emitter is itself blocked on a
        /// downstream PAUSE and forwards the oldest stamp it holds.
        trigger: Option<TriggerStamp>,
    },
    /// Resume sending the given priority.
    Resume {
        /// Priority class to resume.
        priority: u8,
    },
}

/// Where a forwarded packet is enqueued relative to its tag rewrite —
/// the priority-transition behaviour of paper Fig. 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransitionMode {
    /// Correct behaviour (Fig. 8b): egress queue matches the *new* tag,
    /// so a downstream PAUSE for the new priority gates the right queue.
    EgressByNewTag,
    /// Default ASIC behaviour before the fix (Fig. 8a): egress queue
    /// matches the *arriving* tag. Downstream PAUSEs for the new priority
    /// gate nothing, and lossless packets can be dropped. Kept for the
    /// reproduction of that failure mode.
    EgressByOldTag,
}

/// A packet held in an egress queue, remembering the ingress accounting
/// it must release on departure.
#[derive(Clone, Copy, Debug)]
pub struct QueuedPacket {
    /// The packet (tag already rewritten).
    pub packet: Packet,
    /// Port it arrived on.
    pub in_port: PortId,
    /// Lossless ingress priority it is accounted under, or `None` if it
    /// arrived lossy (no PFC accounting).
    pub ingress_prio: Option<u8>,
    /// Egress queue index it sits in.
    pub egress_queue: u8,
    /// Egress port.
    pub out_port: PortId,
}

/// What happened to an admitted packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Enqueued at the given egress queue.
    Enqueued {
        /// Queue index at the egress port.
        egress_queue: u8,
    },
    /// Lossy queue was full: tail-dropped. Normal under overload.
    DroppedLossyFull,
    /// Shared buffer exhausted and the packet was lossless: this is the
    /// failure PFC exists to prevent — it indicates misconfigured
    /// thresholds or the Fig. 8(a) transition bug.
    DroppedBufferFull,
}

/// Counters exposed for experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets forwarded (dequeued toward a link).
    pub forwarded: u64,
    /// Lossy tail drops.
    pub lossy_drops: u64,
    /// Lossless drops (buffer exhaustion — should stay 0 when configured
    /// correctly).
    pub lossless_drops: u64,
    /// PAUSE frames emitted.
    pub pauses_sent: u64,
    /// RESUME frames emitted.
    pub resumes_sent: u64,
    /// Arrivals redirected to the lossy class because their lossless
    /// queue was watchdog-demoted.
    pub demoted_redirects: u64,
    /// Packets enqueued carrying an in-band trigger stamp (behind a
    /// PAUSE-gated queue).
    pub trigger_stamps: u64,
}

impl std::ops::AddAssign for SwitchStats {
    fn add_assign(&mut self, rhs: SwitchStats) {
        self.forwarded += rhs.forwarded;
        self.lossy_drops += rhs.lossy_drops;
        self.lossless_drops += rhs.lossless_drops;
        self.pauses_sent += rhs.pauses_sent;
        self.resumes_sent += rhs.resumes_sent;
        self.demoted_redirects += rhs.demoted_redirects;
        self.trigger_stamps += rhs.trigger_stamps;
    }
}

impl std::iter::Sum for SwitchStats {
    fn sum<I: Iterator<Item = SwitchStats>>(iter: I) -> SwitchStats {
        iter.fold(SwitchStats::default(), |mut acc, s| {
            acc += s;
            acc
        })
    }
}

/// The state of one switch.
#[derive(Clone, Debug)]
pub struct SwitchState {
    node: NodeId,
    cfg: SwitchConfig,
    nports: usize,
    /// Ingress PFC accounting, `[port * num_lossless + prio]`.
    ingress_occ: Vec<u64>,
    /// True if we have PAUSEd our upstream on `(port, prio)`.
    pause_sent: Vec<bool>,
    /// True if our downstream PAUSEd us on `(egress port, prio)`.
    tx_paused: Vec<bool>,
    /// Egress queues, `[port * queues_per_port + queue]`.
    queues: Vec<VecDeque<QueuedPacket>>,
    /// Byte occupancy per egress queue (parallel to `queues`).
    queue_bytes: Vec<u64>,
    /// Total buffered bytes.
    total_bytes: u64,
    /// True if the lossless queue `(port, prio)` is watchdog-demoted to
    /// the lossy class, `[port * num_lossless + prio]`.
    demoted: Vec<bool>,
    /// Trigger attribution held for each tx-paused egress queue,
    /// `[port * num_lossless + prio]`; `None` while the queue is not
    /// paused.
    tx_trigger: Vec<Option<TriggerStamp>>,
    /// When each egress queue last entered the tx-paused state (driving
    /// clock units), `[port * num_lossless + prio]`.
    pause_entered: Vec<Option<u64>>,
    /// Per-port round-robin pointer over queues.
    rr: Vec<usize>,
    /// PFC frames generated since the last drain.
    emitted: Vec<(PortId, PfcFrame)>,
    /// Counters.
    pub stats: SwitchStats,
}

impl SwitchState {
    /// Creates the switch with `nports` ports.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(node: NodeId, nports: usize, cfg: SwitchConfig) -> SwitchState {
        cfg.validate().expect("invalid switch config");
        let qpp = cfg.queues_per_port();
        let nl = cfg.num_lossless as usize;
        SwitchState {
            node,
            cfg,
            nports,
            ingress_occ: vec![0; nports * nl],
            pause_sent: vec![false; nports * nl],
            tx_paused: vec![false; nports * nl],
            queues: vec![VecDeque::new(); nports * qpp],
            queue_bytes: vec![0; nports * qpp],
            total_bytes: 0,
            demoted: vec![false; nports * nl],
            tx_trigger: vec![None; nports * nl],
            pause_entered: vec![None; nports * nl],
            rr: vec![0; nports],
            emitted: Vec::new(),
            stats: SwitchStats::default(),
        }
    }

    /// The switch's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }

    /// Maps a tag to a lossless queue index, or `None` for lossy
    /// (absent tag, or tag beyond the configured lossless queues).
    pub fn lossless_prio_of(&self, tag: Option<Tag>) -> Option<u8> {
        match tag {
            Some(Tag(t)) if t >= 1 && t <= self.cfg.num_lossless as u16 => Some((t - 1) as u8),
            _ => None,
        }
    }

    fn iq(&self, port: PortId, prio: u8) -> usize {
        port.index() * self.cfg.num_lossless as usize + prio as usize
    }

    fn eq(&self, port: PortId, queue: u8) -> usize {
        port.index() * self.cfg.queues_per_port() + queue as usize
    }

    /// Admits a packet that arrived on `in_port` carrying `arriving_tag`,
    /// already rewritten to `packet.tag`, destined for `out_port`.
    ///
    /// Performs ingress PFC accounting under the *arriving* priority and
    /// enqueues at the egress queue selected by `mode` (new-tag queue for
    /// the correct Fig. 8(b) behaviour).
    pub fn admit(
        &mut self,
        in_port: PortId,
        out_port: PortId,
        arriving_tag: Option<Tag>,
        mut packet: Packet,
        mode: TransitionMode,
    ) -> AdmitOutcome {
        let ingress_prio = self.lossless_prio_of(arriving_tag);
        let new_prio = self.lossless_prio_of(packet.tag);
        let mut egress_queue = match mode {
            TransitionMode::EgressByNewTag => new_prio,
            TransitionMode::EgressByOldTag => ingress_prio,
        }
        .unwrap_or(self.cfg.num_lossless);

        // A watchdog-demoted queue takes no new lossless traffic: the
        // arrival is stripped of its tag (the §4.4 sentinel) and rides
        // the lossy class end-to-end, so downstream switches neither
        // queue it lossless nor generate PFC for it.
        if (egress_queue as usize) < self.cfg.num_lossless as usize
            && self.demoted[self.iq(out_port, egress_queue)]
        {
            packet.tag = None;
            egress_queue = self.cfg.num_lossless;
            self.stats.demoted_redirects += 1;
        }

        let size = packet.size_bytes as u64;
        let is_lossy_queue = egress_queue as usize == self.cfg.lossy_queue();
        if is_lossy_queue {
            let qi = self.eq(out_port, egress_queue);
            if self.queue_bytes[qi] + size > self.cfg.lossy_queue_bytes {
                self.stats.lossy_drops += 1;
                return AdmitOutcome::DroppedLossyFull;
            }
        } else if self.total_bytes + size > self.cfg.buffer_bytes {
            self.stats.lossless_drops += 1;
            return AdmitOutcome::DroppedBufferFull;
        }

        // Ingress accounting: only lossless arrivals that are also held in
        // lossless queues... no: accounting is by arriving class alone.
        // A packet that arrived lossless and was demoted still occupies
        // buffer attributed to its ingress class until it leaves.
        let accounted = ingress_prio;
        if let Some(p) = accounted {
            let idx = self.iq(in_port, p);
            self.ingress_occ[idx] += size;
            if self.ingress_occ[idx] > self.cfg.xoff_bytes && !self.pause_sent[idx] {
                self.pause_sent[idx] = true;
                self.stats.pauses_sent += 1;
                // If we are ourselves blocked on a downstream PAUSE at
                // this priority, the congestion is inherited and the
                // frame forwards the oldest stamp we hold; otherwise
                // the PAUSE is an origin claim (`trigger: None`).
                let trigger = self.inherited_trigger(p);
                self.emitted.push((
                    in_port,
                    PfcFrame::Pause {
                        priority: p,
                        trigger,
                    },
                ));
            }
        }

        let qi = self.eq(out_port, egress_queue);
        // ECN marking: congestion-experienced if the packet queues behind
        // more than the threshold.
        if let Some(thr) = self.cfg.ecn_threshold_bytes {
            if !is_lossy_queue && self.queue_bytes[qi] > thr {
                packet.ecn = true;
            }
        }
        // In-band trigger attribution: a packet enqueued behind a
        // PAUSE-gated lossless queue picks up (or keeps the older of)
        // that queue's trigger stamp; any ungated or lossy hop clears
        // it, so a stamp never outlives the pause episode it describes.
        let gate = (!is_lossy_queue)
            .then(|| self.iq(out_port, egress_queue))
            .filter(|&idx| self.tx_paused[idx]);
        packet.trigger = match gate {
            Some(idx) => TriggerStamp::older(packet.trigger, self.tx_trigger[idx]),
            None => None,
        };
        if packet.trigger.is_some() {
            self.stats.trigger_stamps += 1;
        }
        self.queue_bytes[qi] += size;
        self.total_bytes += size;
        self.queues[qi].push_back(QueuedPacket {
            packet,
            in_port,
            ingress_prio: accounted,
            egress_queue,
            out_port,
        });
        AdmitOutcome::Enqueued { egress_queue }
    }

    /// True if `port` has at least one packet eligible for transmission
    /// (non-empty queue that is not PFC-gated).
    pub fn can_transmit(&self, port: PortId) -> bool {
        (0..self.cfg.queues_per_port() as u8).any(|q| self.queue_ready(port, q))
    }

    fn queue_ready(&self, port: PortId, queue: u8) -> bool {
        if self.queues[self.eq(port, queue)].is_empty() {
            return false;
        }
        if (queue as usize) < self.cfg.num_lossless as usize {
            !self.tx_paused[self.iq(port, queue)]
        } else {
            true // lossy queues are never PFC-gated
        }
    }

    /// Dequeues the next packet to transmit on `port`, round-robin across
    /// eligible queues, releasing its ingress accounting (and emitting a
    /// RESUME if occupancy falls to Xon). Returns `None` if every queue is
    /// empty or gated.
    pub fn dequeue(&mut self, port: PortId) -> Option<QueuedPacket> {
        let qpp = self.cfg.queues_per_port();
        let start = self.rr[port.index()];
        for off in 0..qpp {
            let q = ((start + off) % qpp) as u8;
            if self.queue_ready(port, q) {
                self.rr[port.index()] = (q as usize + 1) % qpp;
                let qi = self.eq(port, q);
                let qp = self.queues[qi].pop_front().expect("ready queue nonempty");
                let size = qp.packet.size_bytes as u64;
                self.queue_bytes[qi] -= size;
                self.total_bytes -= size;
                self.stats.forwarded += 1;
                if let Some(p) = qp.ingress_prio {
                    let idx = self.iq(qp.in_port, p);
                    self.ingress_occ[idx] -= size;
                    if self.pause_sent[idx] && self.ingress_occ[idx] <= self.cfg.xon_bytes {
                        self.pause_sent[idx] = false;
                        self.stats.resumes_sent += 1;
                        self.emitted
                            .push((qp.in_port, PfcFrame::Resume { priority: p }));
                    }
                }
                return Some(qp);
            }
        }
        None
    }

    /// Handles a PFC frame received from the neighbor on `port` at time
    /// `now` (driving-clock units): gates or ungates the matching egress
    /// queue and maintains the queue's trigger attribution. A PAUSE that
    /// arrives with no stamp marks this queue as the episode origin — it
    /// stamps itself at hop count 0 ("I started this") — while a
    /// stamped PAUSE means the pause was inherited from downstream and
    /// the stamp is adopted with its hop count bumped.
    pub fn on_pfc(&mut self, port: PortId, frame: PfcFrame, now: u64) {
        match frame {
            PfcFrame::Pause { priority, trigger } => {
                if (priority as usize) < self.cfg.num_lossless as usize {
                    let idx = self.iq(port, priority);
                    let incoming = match trigger {
                        Some(t) => t.bump(),
                        None => TriggerStamp {
                            switch: self.node,
                            port,
                            prio: priority,
                            pause_epoch: now,
                            hops: 0,
                        },
                    };
                    if self.tx_paused[idx] {
                        // Refresh while already paused: keep the oldest
                        // claim so attribution converges on the initial
                        // trigger even as stamps race around a cycle.
                        self.tx_trigger[idx] =
                            TriggerStamp::older(self.tx_trigger[idx], Some(incoming));
                    } else {
                        self.tx_paused[idx] = true;
                        self.pause_entered[idx] = Some(now);
                        self.tx_trigger[idx] = Some(incoming);
                    }
                }
            }
            PfcFrame::Resume { priority } => {
                if (priority as usize) < self.cfg.num_lossless as usize {
                    let idx = self.iq(port, priority);
                    self.tx_paused[idx] = false;
                    self.tx_trigger[idx] = None;
                    self.pause_entered[idx] = None;
                }
            }
        }
    }

    /// The oldest trigger stamp among this switch's tx-paused, non-empty
    /// lossless egress queues at `prio` — what an emitted PAUSE carries
    /// when our congestion is inherited (we are blocked downstream)
    /// rather than locally originated. `None` means any PAUSE we emit
    /// is an origin claim. Public so the simulator's quanta-refresh path
    /// re-asserts PAUSEs with current attribution.
    pub fn inherited_trigger(&self, prio: u8) -> Option<TriggerStamp> {
        let mut best = None;
        for port in 0..self.nports {
            let idx = port * self.cfg.num_lossless as usize + prio as usize;
            if !self.tx_paused[idx] {
                continue;
            }
            let qi = port * self.cfg.queues_per_port() + prio as usize;
            if self.queues[qi].is_empty() {
                continue;
            }
            best = TriggerStamp::older(best, self.tx_trigger[idx]);
        }
        best
    }

    /// Drains the PFC frames generated since the last call. The simulator
    /// delivers them to the upstream neighbors after the wire delay.
    pub fn take_emitted_pfc(&mut self) -> Vec<(PortId, PfcFrame)> {
        std::mem::take(&mut self.emitted)
    }

    /// True if we have PAUSEd the upstream on `(port, prio)` — i.e. our
    /// ingress is congested there.
    pub fn pause_outstanding(&self, port: PortId, prio: u8) -> bool {
        self.pause_sent[self.iq(port, prio)]
    }

    /// True if our egress `(port, prio)` is gated by a downstream PAUSE.
    pub fn is_tx_paused(&self, port: PortId, prio: u8) -> bool {
        self.tx_paused[self.iq(port, prio)]
    }

    /// The trigger attribution held for the tx-paused egress queue
    /// `(port, prio)` — `None` while the queue is not paused.
    pub fn trigger_of(&self, port: PortId, prio: u8) -> Option<TriggerStamp> {
        self.tx_trigger[self.iq(port, prio)]
    }

    /// When `(port, prio)` entered its current tx-paused state, in
    /// driving-clock units; `None` while ungated.
    pub fn pause_entered_at(&self, port: PortId, prio: u8) -> Option<u64> {
        self.pause_entered[self.iq(port, prio)]
    }

    /// True if `(port, prio)`'s attribution names itself as the episode
    /// origin — the watchdog's "I started this" vs. "I inherited pause
    /// from downstream" distinction.
    pub fn is_trigger_origin(&self, port: PortId, prio: u8) -> bool {
        self.tx_trigger[self.iq(port, prio)]
            .is_some_and(|t| t.hops == 0 && t.names(self.node, port, prio))
    }

    /// Byte occupancy of one egress queue.
    pub fn queue_depth_bytes(&self, port: PortId, queue: u8) -> u64 {
        self.queue_bytes[self.eq(port, queue)]
    }

    /// Total buffered bytes.
    pub fn buffered_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The head-of-line packet on an egress queue, if any.
    pub fn peek(&self, port: PortId, queue: u8) -> Option<&QueuedPacket> {
        self.queues[self.eq(port, queue)].front()
    }

    /// Ingress PFC occupancy for `(port, prio)`.
    pub fn ingress_occupancy(&self, port: PortId, prio: u8) -> u64 {
        self.ingress_occ[self.iq(port, prio)]
    }

    /// Iterates over every queued packet on the switch — used by the
    /// simulator's deadlock detector to trace buffer dependencies.
    pub fn queued_packets(&self) -> impl Iterator<Item = &QueuedPacket> + '_ {
        self.queues.iter().flatten()
    }

    /// Forcibly empties one egress queue, releasing all buffer and
    /// ingress-PFC accounting (emitting RESUMEs where occupancy falls to
    /// Xon) and clearing any received PAUSE gating it. This is the
    /// *deadlock-recovery* primitive of the detect-and-break schemes the
    /// paper's §1 critiques: it sacrifices lossless packets to break a
    /// CBD. Returns the dropped packets.
    pub fn flush_queue(&mut self, port: PortId, queue: u8) -> Vec<QueuedPacket> {
        let qi = self.eq(port, queue);
        let dropped: Vec<QueuedPacket> = std::mem::take(&mut self.queues[qi]).into();
        for qp in &dropped {
            let size = qp.packet.size_bytes as u64;
            self.queue_bytes[qi] -= size;
            self.total_bytes -= size;
            if let Some(p) = qp.ingress_prio {
                let idx = self.iq(qp.in_port, p);
                self.ingress_occ[idx] -= size;
                if self.pause_sent[idx] && self.ingress_occ[idx] <= self.cfg.xon_bytes {
                    self.pause_sent[idx] = false;
                    self.stats.resumes_sent += 1;
                    self.emitted
                        .push((qp.in_port, PfcFrame::Resume { priority: p }));
                }
            }
        }
        if (queue as usize) < self.cfg.num_lossless as usize {
            let idx = self.iq(port, queue);
            self.tx_paused[idx] = false;
            self.tx_trigger[idx] = None;
            self.pause_entered[idx] = None;
        }
        dropped
    }

    /// Demotes the lossless queue `(port, prio)` to the lossy class —
    /// the watchdog's §4.4 sentinel-tag escape: every held packet moves
    /// to the same port's lossy queue with its tag stripped (downstream
    /// treats it lossy end-to-end) and subsequent arrivals are
    /// redirected likewise until [`SwitchState::restore_queue`]. Moved
    /// packets keep their ingress-PFC accounting (released on dequeue as
    /// usual) and the move itself ignores the lossy cap — the bytes are
    /// already held. The received PAUSE gate is cleared: the lossy queue
    /// is never gated, which is exactly what breaks the circular wait.
    /// Returns the number of packets moved.
    pub fn demote_queue(&mut self, port: PortId, prio: u8) -> usize {
        assert!((prio as usize) < self.cfg.num_lossless as usize);
        let from = self.eq(port, prio);
        let to = self.eq(port, self.cfg.num_lossless);
        let held: VecDeque<QueuedPacket> = std::mem::take(&mut self.queues[from]);
        let moved = held.len();
        for mut qp in held {
            let size = qp.packet.size_bytes as u64;
            self.queue_bytes[from] -= size;
            self.queue_bytes[to] += size;
            qp.packet.tag = None;
            // The stamp goes with the tag: lossy traffic never carries
            // attribution for a pause episode it is no longer part of.
            qp.packet.trigger = None;
            qp.egress_queue = self.cfg.num_lossless;
            self.queues[to].push_back(qp);
        }
        let idx = self.iq(port, prio);
        self.tx_paused[idx] = false;
        self.tx_trigger[idx] = None;
        self.pause_entered[idx] = None;
        self.demoted[idx] = true;
        moved
    }

    /// Ends a demotion: the queue re-joins the lossless class and new
    /// arrivals queue (and PFC-account) normally again.
    pub fn restore_queue(&mut self, port: PortId, prio: u8) {
        let idx = self.iq(port, prio);
        self.demoted[idx] = false;
    }

    /// True while `(port, prio)` is watchdog-demoted.
    pub fn is_demoted(&self, port: PortId, prio: u8) -> bool {
        self.demoted[self.iq(port, prio)]
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.nports
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::PacketId;

    fn cfg() -> SwitchConfig {
        SwitchConfig {
            num_lossless: 2,
            buffer_bytes: 1_000_000,
            xoff_bytes: 3_000,
            xon_bytes: 1_000,
            lossy_queue_bytes: 2_000,
            ecn_threshold_bytes: None,
        }
    }

    fn pkt(id: u64, tag: Option<u16>) -> Packet {
        Packet {
            id: PacketId(id),
            flow: 0,
            dst: NodeId(9),
            size_bytes: 1_000,
            tag: tag.map(Tag),
            ttl: 64,
            ecn: false,
            trigger: None,
        }
    }

    /// A received PAUSE with no trigger stamp (an origin claim).
    fn pause(priority: u8) -> PfcFrame {
        PfcFrame::Pause {
            priority,
            trigger: None,
        }
    }

    fn sw() -> SwitchState {
        SwitchState::new(NodeId(0), 4, cfg())
    }

    #[test]
    fn classification_maps_tags_to_queues() {
        let s = sw();
        assert_eq!(s.lossless_prio_of(Some(Tag(1))), Some(0));
        assert_eq!(s.lossless_prio_of(Some(Tag(2))), Some(1));
        assert_eq!(s.lossless_prio_of(Some(Tag(3))), None); // beyond -> lossy
        assert_eq!(s.lossless_prio_of(None), None);
    }

    #[test]
    fn admit_enqueues_by_new_tag() {
        let mut s = sw();
        // Arrived tag 1, rewritten to tag 2: egress queue 1 (Fig 8b).
        let out = s.admit(
            PortId(0),
            PortId(1),
            Some(Tag(1)),
            pkt(1, Some(2)),
            TransitionMode::EgressByNewTag,
        );
        assert_eq!(out, AdmitOutcome::Enqueued { egress_queue: 1 });
        assert_eq!(s.queue_depth_bytes(PortId(1), 1), 1_000);
        // Old-tag mode would use queue 0 (Fig 8a).
        let out = s.admit(
            PortId(0),
            PortId(1),
            Some(Tag(1)),
            pkt(2, Some(2)),
            TransitionMode::EgressByOldTag,
        );
        assert_eq!(out, AdmitOutcome::Enqueued { egress_queue: 0 });
    }

    #[test]
    fn xoff_crossing_emits_pause_once() {
        let mut s = sw();
        for i in 0..3 {
            s.admit(
                PortId(0),
                PortId(1),
                Some(Tag(1)),
                pkt(i, Some(1)),
                TransitionMode::EgressByNewTag,
            );
        }
        assert!(s.take_emitted_pfc().is_empty()); // 3000 = xoff, not above
        s.admit(
            PortId(0),
            PortId(1),
            Some(Tag(1)),
            pkt(3, Some(1)),
            TransitionMode::EgressByNewTag,
        );
        let pfc = s.take_emitted_pfc();
        assert_eq!(pfc, vec![(PortId(0), pause(0))]);
        assert!(s.pause_outstanding(PortId(0), 0));
        // More arrivals do not re-emit.
        s.admit(
            PortId(0),
            PortId(1),
            Some(Tag(1)),
            pkt(4, Some(1)),
            TransitionMode::EgressByNewTag,
        );
        assert!(s.take_emitted_pfc().is_empty());
        assert_eq!(s.stats.pauses_sent, 1);
    }

    #[test]
    fn resume_at_xon_after_drain() {
        let mut s = sw();
        for i in 0..4 {
            s.admit(
                PortId(0),
                PortId(1),
                Some(Tag(1)),
                pkt(i, Some(1)),
                TransitionMode::EgressByNewTag,
            );
        }
        s.take_emitted_pfc();
        // Drain: occupancy 4000 -> 3000 -> 2000 -> 1000 (= xon: resume).
        s.dequeue(PortId(1)).unwrap();
        s.dequeue(PortId(1)).unwrap();
        assert!(s.take_emitted_pfc().is_empty());
        s.dequeue(PortId(1)).unwrap();
        let pfc = s.take_emitted_pfc();
        assert_eq!(pfc, vec![(PortId(0), PfcFrame::Resume { priority: 0 })]);
        assert!(!s.pause_outstanding(PortId(0), 0));
    }

    #[test]
    fn rx_pause_gates_only_that_queue() {
        let mut s = sw();
        s.admit(
            PortId(0),
            PortId(1),
            Some(Tag(1)),
            pkt(1, Some(1)),
            TransitionMode::EgressByNewTag,
        );
        s.admit(
            PortId(0),
            PortId(1),
            Some(Tag(2)),
            pkt(2, Some(2)),
            TransitionMode::EgressByNewTag,
        );
        s.on_pfc(PortId(1), pause(0), 0);
        assert!(s.is_tx_paused(PortId(1), 0));
        // Queue 1 still flows.
        let qp = s.dequeue(PortId(1)).unwrap();
        assert_eq!(qp.packet.id, PacketId(2));
        // Queue 0 is gated.
        assert!(s.dequeue(PortId(1)).is_none());
        s.on_pfc(PortId(1), PfcFrame::Resume { priority: 0 }, 0);
        assert_eq!(s.dequeue(PortId(1)).unwrap().packet.id, PacketId(1));
    }

    #[test]
    fn lossy_tail_drop_at_capacity() {
        let mut s = sw();
        // Lossy queue cap is 2000 bytes = 2 packets.
        for i in 0..2 {
            let out = s.admit(
                PortId(0),
                PortId(1),
                None,
                pkt(i, None),
                TransitionMode::EgressByNewTag,
            );
            assert!(matches!(out, AdmitOutcome::Enqueued { .. }));
        }
        let out = s.admit(
            PortId(0),
            PortId(1),
            None,
            pkt(2, None),
            TransitionMode::EgressByNewTag,
        );
        assert_eq!(out, AdmitOutcome::DroppedLossyFull);
        assert_eq!(s.stats.lossy_drops, 1);
        // And lossy arrivals never generate PFC.
        assert!(s.take_emitted_pfc().is_empty());
    }

    #[test]
    fn lossy_queue_never_paused() {
        let mut s = sw();
        s.admit(
            PortId(0),
            PortId(1),
            None,
            pkt(1, None),
            TransitionMode::EgressByNewTag,
        );
        // PFC for the "lossy priority" (index 2) is ignored.
        s.on_pfc(PortId(1), pause(2), 0);
        assert!(s.dequeue(PortId(1)).is_some());
    }

    #[test]
    fn demoted_packet_still_accounted_at_lossless_ingress() {
        let mut s = sw();
        // Arrives tag 2 (lossless prio 1), demoted to lossy on egress.
        s.admit(
            PortId(0),
            PortId(1),
            Some(Tag(2)),
            pkt(1, None),
            TransitionMode::EgressByNewTag,
        );
        assert_eq!(s.ingress_occupancy(PortId(0), 1), 1_000);
        assert_eq!(
            s.queue_depth_bytes(PortId(1), s.config().lossy_queue() as u8),
            1_000
        );
        // Departure releases the accounting.
        s.dequeue(PortId(1)).unwrap();
        assert_eq!(s.ingress_occupancy(PortId(0), 1), 0);
    }

    #[test]
    fn round_robin_alternates_queues() {
        let mut s = sw();
        for i in 0..2 {
            s.admit(
                PortId(0),
                PortId(1),
                Some(Tag(1)),
                pkt(10 + i, Some(1)),
                TransitionMode::EgressByNewTag,
            );
            s.admit(
                PortId(0),
                PortId(1),
                Some(Tag(2)),
                pkt(20 + i, Some(2)),
                TransitionMode::EgressByNewTag,
            );
        }
        let order: Vec<u64> = (0..4)
            .map(|_| s.dequeue(PortId(1)).unwrap().packet.id.0)
            .collect();
        assert_eq!(order, vec![10, 20, 11, 21]);
    }

    #[test]
    fn buffer_exhaustion_drops_lossless() {
        let mut s = SwitchState::new(
            NodeId(0),
            2,
            SwitchConfig {
                buffer_bytes: 2_500,
                xoff_bytes: 2_400,
                xon_bytes: 1_000,
                ..cfg()
            },
        );
        for i in 0..2 {
            assert!(matches!(
                s.admit(
                    PortId(0),
                    PortId(1),
                    Some(Tag(1)),
                    pkt(i, Some(1)),
                    TransitionMode::EgressByNewTag,
                ),
                AdmitOutcome::Enqueued { .. }
            ));
        }
        let out = s.admit(
            PortId(0),
            PortId(1),
            Some(Tag(1)),
            pkt(9, Some(1)),
            TransitionMode::EgressByNewTag,
        );
        assert_eq!(out, AdmitOutcome::DroppedBufferFull);
        assert_eq!(s.stats.lossless_drops, 1);
    }

    #[test]
    fn flush_queue_releases_accounting_and_resumes() {
        let mut s = sw();
        for i in 0..4 {
            s.admit(
                PortId(0),
                PortId(1),
                Some(Tag(1)),
                pkt(i, Some(1)),
                TransitionMode::EgressByNewTag,
            );
        }
        assert!(s.pause_outstanding(PortId(0), 0)); // crossed xoff
        s.take_emitted_pfc();
        s.on_pfc(PortId(1), pause(0), 0);
        let dropped = s.flush_queue(PortId(1), 0);
        assert_eq!(dropped.len(), 4);
        assert_eq!(s.buffered_bytes(), 0);
        assert_eq!(s.ingress_occupancy(PortId(0), 0), 0);
        // Occupancy fell to xon: the upstream got resumed...
        assert_eq!(
            s.take_emitted_pfc(),
            vec![(PortId(0), PfcFrame::Resume { priority: 0 })]
        );
        // ...and the received gate was cleared.
        assert!(!s.is_tx_paused(PortId(1), 0));
    }

    #[test]
    fn flush_empty_queue_is_noop() {
        let mut s = sw();
        assert!(s.flush_queue(PortId(2), 1).is_empty());
        assert_eq!(s.buffered_bytes(), 0);
    }

    #[test]
    fn ecn_marks_beyond_threshold() {
        let mut s = SwitchState::new(
            NodeId(0),
            4,
            SwitchConfig {
                ecn_threshold_bytes: Some(1_500),
                ..cfg()
            },
        );
        // First two packets queue behind 0 and 1000 bytes: unmarked.
        for i in 0..2 {
            s.admit(
                PortId(0),
                PortId(1),
                Some(Tag(1)),
                pkt(i, Some(1)),
                TransitionMode::EgressByNewTag,
            );
        }
        // Third queues behind 2000 > 1500: marked.
        s.admit(
            PortId(0),
            PortId(1),
            Some(Tag(1)),
            pkt(2, Some(1)),
            TransitionMode::EgressByNewTag,
        );
        let marks: Vec<bool> = (0..3)
            .map(|_| s.dequeue(PortId(1)).unwrap().packet.ecn)
            .collect();
        assert_eq!(marks, vec![false, false, true]);
    }

    #[test]
    fn lossy_packets_are_never_ecn_marked() {
        let mut s = SwitchState::new(
            NodeId(0),
            4,
            SwitchConfig {
                ecn_threshold_bytes: Some(0),
                ..cfg()
            },
        );
        s.admit(
            PortId(0),
            PortId(1),
            None,
            pkt(1, None),
            TransitionMode::EgressByNewTag,
        );
        assert!(!s.dequeue(PortId(1)).unwrap().packet.ecn);
    }

    #[test]
    fn demote_moves_held_packets_to_lossy_and_ungates() {
        let mut s = sw();
        for i in 0..4 {
            s.admit(
                PortId(0),
                PortId(1),
                Some(Tag(1)),
                pkt(i, Some(1)),
                TransitionMode::EgressByNewTag,
            );
        }
        s.take_emitted_pfc();
        s.on_pfc(PortId(1), pause(0), 0);
        assert!(!s.can_transmit(PortId(1)));

        let moved = s.demote_queue(PortId(1), 0);
        assert_eq!(moved, 4);
        assert!(s.is_demoted(PortId(1), 0));
        assert_eq!(s.queue_depth_bytes(PortId(1), 0), 0);
        let lossy = s.config().lossy_queue() as u8;
        assert_eq!(s.queue_depth_bytes(PortId(1), lossy), 4_000);
        // The lossy queue is never gated: the port transmits again...
        assert!(s.can_transmit(PortId(1)));
        let qp = s.dequeue(PortId(1)).unwrap();
        // ...with the tag stripped but the ingress accounting intact
        // until departure releases it.
        assert_eq!(qp.packet.tag, None);
        assert_eq!(qp.ingress_prio, Some(0));
        assert_eq!(s.ingress_occupancy(PortId(0), 0), 3_000);
    }

    #[test]
    fn demoted_queue_redirects_arrivals_until_restore() {
        let mut s = sw();
        s.demote_queue(PortId(1), 0);
        let out = s.admit(
            PortId(0),
            PortId(1),
            Some(Tag(1)),
            pkt(1, Some(1)),
            TransitionMode::EgressByNewTag,
        );
        let lossy = s.config().lossy_queue() as u8;
        assert_eq!(
            out,
            AdmitOutcome::Enqueued {
                egress_queue: lossy
            }
        );
        assert_eq!(s.stats.demoted_redirects, 1);
        assert_eq!(s.dequeue(PortId(1)).unwrap().packet.tag, None);
        // Another priority on the same port is unaffected.
        let out = s.admit(
            PortId(0),
            PortId(1),
            Some(Tag(2)),
            pkt(2, Some(2)),
            TransitionMode::EgressByNewTag,
        );
        assert_eq!(out, AdmitOutcome::Enqueued { egress_queue: 1 });

        s.restore_queue(PortId(1), 0);
        assert!(!s.is_demoted(PortId(1), 0));
        let out = s.admit(
            PortId(0),
            PortId(1),
            Some(Tag(1)),
            pkt(3, Some(1)),
            TransitionMode::EgressByNewTag,
        );
        assert_eq!(out, AdmitOutcome::Enqueued { egress_queue: 0 });
        assert_eq!(s.stats.demoted_redirects, 1, "no redirect after restore");
    }

    #[test]
    fn switch_stats_sum() {
        let a = SwitchStats {
            forwarded: 1,
            lossy_drops: 2,
            lossless_drops: 3,
            pauses_sent: 4,
            resumes_sent: 5,
            demoted_redirects: 6,
            trigger_stamps: 7,
        };
        let total: SwitchStats = [a, a].into_iter().sum();
        assert_eq!(total.forwarded, 2);
        assert_eq!(total.demoted_redirects, 12);
        assert_eq!(total.trigger_stamps, 14);
    }

    #[test]
    fn can_transmit_reflects_gating() {
        let mut s = sw();
        assert!(!s.can_transmit(PortId(1)));
        s.admit(
            PortId(0),
            PortId(1),
            Some(Tag(1)),
            pkt(1, Some(1)),
            TransitionMode::EgressByNewTag,
        );
        assert!(s.can_transmit(PortId(1)));
        s.on_pfc(PortId(1), pause(0), 0);
        assert!(!s.can_transmit(PortId(1)));
    }

    fn stamp(switch: u32, epoch: u64, hops: u8) -> TriggerStamp {
        TriggerStamp {
            switch: NodeId(switch),
            port: PortId(3),
            prio: 0,
            pause_epoch: epoch,
            hops,
        }
    }

    #[test]
    fn unstamped_pause_marks_queue_as_origin() {
        let mut s = sw();
        s.on_pfc(PortId(1), pause(0), 100);
        let t = s.trigger_of(PortId(1), 0).unwrap();
        assert!(t.names(NodeId(0), PortId(1), 0));
        assert_eq!(t.pause_epoch, 100);
        assert_eq!(t.hops, 0);
        assert_eq!(s.pause_entered_at(PortId(1), 0), Some(100));
        assert!(s.is_trigger_origin(PortId(1), 0));
    }

    #[test]
    fn stamped_pause_inherits_with_hop_bump() {
        let mut s = sw();
        s.on_pfc(
            PortId(1),
            PfcFrame::Pause {
                priority: 0,
                trigger: Some(stamp(7, 50, 1)),
            },
            60,
        );
        let t = s.trigger_of(PortId(1), 0).unwrap();
        assert!(t.names(NodeId(7), PortId(3), 0));
        assert_eq!(t.hops, 2, "inherited stamp bumps the hop count");
        assert_eq!(s.pause_entered_at(PortId(1), 0), Some(60));
        assert!(!s.is_trigger_origin(PortId(1), 0));
    }

    #[test]
    fn pause_refresh_keeps_oldest_claim() {
        let mut s = sw();
        s.on_pfc(PortId(1), pause(0), 100); // origin claim at epoch 100
        s.on_pfc(
            PortId(1),
            PfcFrame::Pause {
                priority: 0,
                trigger: Some(stamp(7, 40, 0)),
            },
            110,
        );
        let t = s.trigger_of(PortId(1), 0).unwrap();
        assert_eq!(t.pause_epoch, 40, "older downstream claim replaces ours");
        // But the pause-entry time is unchanged by the refresh.
        assert_eq!(s.pause_entered_at(PortId(1), 0), Some(100));
    }

    #[test]
    fn packets_behind_a_gated_queue_carry_the_stamp() {
        let mut s = sw();
        s.on_pfc(PortId(1), pause(0), 100);
        s.admit(
            PortId(0),
            PortId(1),
            Some(Tag(1)),
            pkt(1, Some(1)),
            TransitionMode::EgressByNewTag,
        );
        let qp = s
            .queued_packets()
            .find(|qp| qp.packet.id == PacketId(1))
            .unwrap();
        assert_eq!(qp.packet.trigger, s.trigger_of(PortId(1), 0));
        assert_eq!(s.stats.trigger_stamps, 1);
    }

    #[test]
    fn ungated_hop_clears_a_carried_stamp() {
        let mut s = sw();
        let mut p = pkt(1, Some(1));
        p.trigger = Some(stamp(7, 50, 1));
        s.admit(
            PortId(0),
            PortId(1),
            Some(Tag(1)),
            p,
            TransitionMode::EgressByNewTag,
        );
        assert_eq!(s.dequeue(PortId(1)).unwrap().packet.trigger, None);
        assert_eq!(s.stats.trigger_stamps, 0);
    }

    #[test]
    fn emitted_pause_forwards_the_inherited_stamp() {
        let mut s = sw();
        // Our egress (1, prio 0) is gated by a stamped downstream PAUSE.
        s.on_pfc(
            PortId(1),
            PfcFrame::Pause {
                priority: 0,
                trigger: Some(stamp(7, 50, 0)),
            },
            60,
        );
        // Ingress pressure on (0, prio 0) crosses Xoff at the 4th admit;
        // by then the gated queue holds packets, so the PAUSE we emit
        // forwards the inherited stamp instead of claiming origin.
        for i in 0..4 {
            s.admit(
                PortId(0),
                PortId(1),
                Some(Tag(1)),
                pkt(i, Some(1)),
                TransitionMode::EgressByNewTag,
            );
        }
        let pfc = s.take_emitted_pfc();
        assert_eq!(
            pfc,
            vec![(
                PortId(0),
                PfcFrame::Pause {
                    priority: 0,
                    trigger: Some(stamp(7, 50, 1)),
                }
            )]
        );
    }

    #[test]
    fn pause_with_empty_gated_queue_claims_origin() {
        let mut s = sw();
        // Gated but empty at prio 0: our congestion cannot be inherited
        // through it, so the emitted PAUSE is an origin claim.
        s.on_pfc(
            PortId(1),
            PfcFrame::Pause {
                priority: 0,
                trigger: Some(stamp(7, 50, 0)),
            },
            60,
        );
        for i in 0..4 {
            s.admit(
                PortId(0),
                PortId(2),
                Some(Tag(1)),
                pkt(i, Some(1)),
                TransitionMode::EgressByNewTag,
            );
        }
        let pfc = s.take_emitted_pfc();
        assert_eq!(pfc, vec![(PortId(0), pause(0))]);
    }

    #[test]
    fn demote_strips_stamps_and_attribution() {
        let mut s = sw();
        s.on_pfc(PortId(1), pause(0), 100);
        for i in 0..3 {
            s.admit(
                PortId(0),
                PortId(1),
                Some(Tag(1)),
                pkt(i, Some(1)),
                TransitionMode::EgressByNewTag,
            );
        }
        assert!(s.queued_packets().all(|qp| qp.packet.trigger.is_some()));
        s.demote_queue(PortId(1), 0);
        assert!(
            s.queued_packets().all(|qp| qp.packet.trigger.is_none()),
            "demoted-to-lossy packets must not carry stale attribution"
        );
        assert_eq!(s.trigger_of(PortId(1), 0), None);
        assert_eq!(s.pause_entered_at(PortId(1), 0), None);
    }

    #[test]
    fn resume_and_flush_clear_attribution() {
        let mut s = sw();
        s.on_pfc(PortId(1), pause(0), 100);
        s.on_pfc(PortId(1), PfcFrame::Resume { priority: 0 }, 150);
        assert_eq!(s.trigger_of(PortId(1), 0), None);
        assert_eq!(s.pause_entered_at(PortId(1), 0), None);

        s.on_pfc(PortId(2), pause(1), 200);
        s.flush_queue(PortId(2), 1);
        assert_eq!(s.trigger_of(PortId(2), 1), None);
        assert_eq!(s.pause_entered_at(PortId(2), 1), None);
    }
}
