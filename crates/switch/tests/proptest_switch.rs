//! Property tests for the switch data plane: conservation laws and PFC
//! protocol invariants under random admit/dequeue/PFC interleavings.

use proptest::prelude::*;
use tagger_core::Tag;
use tagger_switch::{AdmitOutcome, Packet, PacketId, PfcFrame, SwitchConfig, SwitchState};
use tagger_topo::{NodeId, PortId};

#[derive(Clone, Debug)]
enum Op {
    Admit {
        in_port: u16,
        out_port: u16,
        tag: u16,
    },
    Dequeue {
        port: u16,
    },
    Pause {
        port: u16,
        prio: u8,
    },
    Resume {
        port: u16,
        prio: u8,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..4, 0u16..4, 0u16..4).prop_map(|(in_port, out_port, tag)| Op::Admit {
            in_port,
            out_port,
            tag
        }),
        (0u16..4).prop_map(|port| Op::Dequeue { port }),
        (0u16..4, 0u8..3).prop_map(|(port, prio)| Op::Pause { port, prio }),
        (0u16..4, 0u8..3).prop_map(|(port, prio)| Op::Resume { port, prio }),
    ]
}

fn cfg() -> SwitchConfig {
    SwitchConfig {
        num_lossless: 2,
        buffer_bytes: 50_000,
        xoff_bytes: 8_000,
        xon_bytes: 3_000,
        lossy_queue_bytes: 5_000,
        ecn_threshold_bytes: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Byte conservation: everything admitted is either still buffered or
    /// was dequeued; drops never enter the buffer. Ingress occupancy
    /// returns to zero when the switch drains.
    #[test]
    fn conservation_under_random_ops(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let mut sw = SwitchState::new(NodeId(0), 4, cfg());
        let mut id = 0u64;
        let mut admitted_bytes = 0u64;
        let mut dequeued_bytes = 0u64;
        for op in &ops {
            match *op {
                Op::Admit { in_port, out_port, tag } => {
                    if in_port == out_port { continue; }
                    id += 1;
                    let tag = (tag > 0).then_some(Tag(tag));
                    let pkt = Packet {
                        id: PacketId(id),
                        flow: 0,
                        dst: NodeId(9),
                        size_bytes: 1_000,
                        tag,
                        ttl: 64,
                        ecn: false,
                        trigger: None,
                    };
                    let out = sw.admit(
                        PortId(in_port),
                        PortId(out_port),
                        tag,
                        pkt,
                        tagger_switch::TransitionMode::EgressByNewTag,
                    );
                    if matches!(out, AdmitOutcome::Enqueued { .. }) {
                        admitted_bytes += 1_000;
                    }
                }
                Op::Dequeue { port } => {
                    if let Some(qp) = sw.dequeue(PortId(port)) {
                        dequeued_bytes += qp.packet.size_bytes as u64;
                    }
                }
                Op::Pause { port, prio } =>
                    sw.on_pfc(PortId(port), PfcFrame::Pause { priority: prio, trigger: None }, 0),
                Op::Resume { port, prio } =>
                    sw.on_pfc(PortId(port), PfcFrame::Resume { priority: prio }, 0),
            }
            prop_assert_eq!(
                sw.buffered_bytes(),
                admitted_bytes - dequeued_bytes,
                "conservation violated"
            );
            // Lossy packets never carry trigger attribution.
            prop_assert!(
                sw.queued_packets()
                    .filter(|qp| qp.packet.is_lossy())
                    .all(|qp| qp.packet.trigger.is_none()),
                "stale trigger stamp on a lossy packet"
            );
        }
        // Drain completely: clear all gates, then dequeue everything.
        for port in 0..4u16 {
            for prio in 0..2u8 {
                sw.on_pfc(PortId(port), PfcFrame::Resume { priority: prio }, 0);
            }
        }
        for port in 0..4u16 {
            while sw.dequeue(PortId(port)).is_some() {}
        }
        prop_assert_eq!(sw.buffered_bytes(), 0);
        for port in 0..4u16 {
            for prio in 0..2u8 {
                prop_assert_eq!(sw.ingress_occupancy(PortId(port), prio), 0);
            }
        }
    }

    /// PFC protocol sanity: PAUSE and RESUME emissions alternate per
    /// (port, priority) — never two PAUSEs without a RESUME between.
    #[test]
    fn pfc_emissions_alternate(ops in proptest::collection::vec(arb_op(), 1..300)) {
        let mut sw = SwitchState::new(NodeId(0), 4, cfg());
        let mut id = 0u64;
        let mut last: std::collections::BTreeMap<(PortId, u8), bool> =
            std::collections::BTreeMap::new();
        let mut check = |sw: &mut SwitchState| {
            for (port, frame) in sw.take_emitted_pfc() {
                let (prio, is_pause) = match frame {
                    PfcFrame::Pause { priority, .. } => (priority, true),
                    PfcFrame::Resume { priority } => (priority, false),
                };
                let prev = last.insert((port, prio), is_pause);
                // First emission must be a PAUSE; afterwards alternate.
                match prev {
                    None => assert!(is_pause, "resume before any pause"),
                    Some(p) => assert_ne!(p, is_pause, "repeated {frame:?}"),
                }
            }
        };
        for op in &ops {
            match *op {
                Op::Admit { in_port, out_port, tag } => {
                    if in_port == out_port { continue; }
                    id += 1;
                    let tag = (tag > 0).then_some(Tag(tag));
                    let pkt = Packet {
                        id: PacketId(id), flow: 0, dst: NodeId(9),
                        size_bytes: 1_000, tag, ttl: 64, ecn: false,
                        trigger: None,
                    };
                    sw.admit(
                        PortId(in_port), PortId(out_port), tag, pkt,
                        tagger_switch::TransitionMode::EgressByNewTag,
                    );
                }
                Op::Dequeue { port } => { sw.dequeue(PortId(port)); }
                Op::Pause { port, prio } =>
                    sw.on_pfc(PortId(port), PfcFrame::Pause { priority: prio, trigger: None }, 0),
                Op::Resume { port, prio } =>
                    sw.on_pfc(PortId(port), PfcFrame::Resume { priority: prio }, 0),
            }
            check(&mut sw);
        }
    }

    /// A gated queue never emits packets; resuming restores service.
    #[test]
    fn gating_is_absolute(tag in 1u16..3, n in 1usize..10) {
        let mut sw = SwitchState::new(NodeId(0), 4, cfg());
        let prio = (tag - 1) as u8;
        for i in 0..n {
            let pkt = Packet {
                id: PacketId(i as u64), flow: 0, dst: NodeId(9),
                size_bytes: 1_000, tag: Some(Tag(tag)), ttl: 64, ecn: false,
                trigger: None,
            };
            sw.admit(
                PortId(0), PortId(1), Some(Tag(tag)), pkt,
                tagger_switch::TransitionMode::EgressByNewTag,
            );
        }
        sw.on_pfc(PortId(1), PfcFrame::Pause { priority: prio, trigger: None }, 0);
        prop_assert!(sw.dequeue(PortId(1)).is_none());
        sw.on_pfc(PortId(1), PfcFrame::Resume { priority: prio }, 0);
        let mut count = 0;
        while sw.dequeue(PortId(1)).is_some() {
            count += 1;
        }
        prop_assert_eq!(count, n);
    }
}
