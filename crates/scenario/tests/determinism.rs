//! The shipped scenario library's contract, as an integration test:
//! every `.scn` under `examples/scenarios/` passes at its pinned seed,
//! the negative control fails, and running the whole library twice
//! yields byte-identical JSON — the property CI's diffing relies on.

#![allow(clippy::unwrap_used)]

use std::path::{Path, PathBuf};
use tagger_scenario::{run_scenario, RunOptions, SuiteReport};

fn scenario_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios")
}

fn scn_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|f| f.extension().is_some_and(|x| x == "scn"))
        .collect();
    files.sort();
    files
}

fn run_suite(files: &[PathBuf]) -> SuiteReport {
    let mut suite = SuiteReport::default();
    for file in files {
        let text = std::fs::read_to_string(file).unwrap();
        let opts = RunOptions {
            base_dir: file.parent().unwrap().to_path_buf(),
            ..RunOptions::default()
        };
        let result = run_scenario(&text, &file.display().to_string(), &opts)
            .unwrap_or_else(|issue| panic!("{}: {issue}", file.display()));
        suite.scenarios.push(result);
    }
    suite
}

#[test]
fn shipped_library_passes_and_reruns_byte_identically() {
    let files = scn_files(&scenario_dir());
    assert!(
        files.len() >= 20,
        "scenario library shrank to {} files",
        files.len()
    );
    let first = run_suite(&files);
    for s in &first.scenarios {
        assert!(s.pass(), "{} failed:\n{}", s.file, first.render());
    }
    // Byte-stable: a second full run renders the identical report.
    let second = run_suite(&files);
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "library is not run-to-run deterministic"
    );
}

#[test]
fn negative_control_fails() {
    let files = scn_files(&scenario_dir().join("negative"));
    assert!(!files.is_empty(), "negative control scenario is missing");
    let suite = run_suite(&files);
    assert!(
        !suite.pass(),
        "the must-fail negative scenario passed — the grader is broken"
    );
}
