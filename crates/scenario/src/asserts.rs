//! Evaluation of a scenario's `assert` block against a finished
//! [`SimReport`] — each assert becomes a pass/fail outcome with the
//! actual value spelled out, so a failing sweep point explains itself.

use crate::model::{AssertSpec, Scenario};
use std::collections::BTreeMap;
use tagger_core::Span;
use tagger_sim::SimReport;

/// One evaluated assert.
#[derive(Clone, Debug)]
pub struct AssertOutcome {
    /// The assert as written (`no-deadlock`, `watchdog-trips == 2`, ...).
    pub label: String,
    /// Where in the `.scn` file it was written.
    pub span: Span,
    /// Whether the run satisfied it.
    pub pass: bool,
    /// The observed value, spelled out (`deadlock detected at 812000 ns`).
    pub detail: String,
}

/// The longest mid-flow stall across all flows, in nanoseconds: for each
/// flow, the longest run of zero-rate samples strictly between its first
/// and last nonzero samples (leading ramp-up and post-completion tails
/// do not count as pauses), times the sample interval.
pub fn max_pause_ns(report: &SimReport) -> u64 {
    let mut worst = 0u64;
    for f in &report.flows {
        let nonzero: Vec<usize> = f
            .rate_series
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > 0.0)
            .map(|(i, _)| i)
            .collect();
        let (Some(&first), Some(&last)) = (nonzero.first(), nonzero.last()) else {
            continue;
        };
        let mut run = 0u64;
        for i in first..=last {
            if f.rate_series[i] > 0.0 {
                run = 0;
            } else {
                run += 1;
                worst = worst.max(run);
            }
        }
    }
    worst * report.sample_interval_ns
}

fn outcome(spec: &AssertSpec, span: Span, pass: bool, detail: String) -> AssertOutcome {
    AssertOutcome {
        label: spec.label(),
        span,
        pass,
        detail,
    }
}

/// Evaluates every assert in `s` against `report`. Sweep variables are
/// resolved from `point`; an unbound variable (impossible after
/// validation) evaluates as a failure rather than a panic.
pub fn evaluate(
    s: &Scenario,
    point: &BTreeMap<String, u64>,
    report: &SimReport,
) -> Vec<AssertOutcome> {
    let end_ns = s.end_ns;
    s.asserts
        .iter()
        .map(|(spec, span)| match spec {
            AssertSpec::NoDeadlock => {
                let (pass, detail) = match &report.deadlock {
                    None => (true, "no deadlock".to_string()),
                    Some(d) => (
                        false,
                        format!(
                            "deadlock detected at {} ns (cycle of {} queues)",
                            d.detected_at,
                            d.cycle.len()
                        ),
                    ),
                };
                outcome(spec, *span, pass, detail)
            }
            AssertSpec::DeadlockBy(t) => {
                let Some(deadline) = t.resolve(end_ns, point) else {
                    return outcome(spec, *span, false, "unbound sweep variable".into());
                };
                let (pass, detail) = match &report.deadlock {
                    Some(d) if d.detected_at <= deadline => (
                        true,
                        format!(
                            "deadlock detected at {} ns <= {} ns",
                            d.detected_at, deadline
                        ),
                    ),
                    Some(d) => (
                        false,
                        format!(
                            "deadlock detected late, at {} ns > {} ns",
                            d.detected_at, deadline
                        ),
                    ),
                    None => (false, "no deadlock detected".to_string()),
                };
                outcome(spec, *span, pass, detail)
            }
            AssertSpec::WatchdogTrips(cmp, n) => {
                let actual = report.watchdog.as_ref().map_or(0, |w| w.stats.trips);
                let Some(expect) = n.resolve(point) else {
                    return outcome(spec, *span, false, "unbound sweep variable".into());
                };
                outcome(
                    spec,
                    *span,
                    cmp.test(actual, expect),
                    format!("{actual} trips (want {} {expect})", cmp.label()),
                )
            }
            AssertSpec::Episodes(cmp, n) => {
                let actual = report.watchdog.as_ref().map_or(0, |w| w.episodes);
                let Some(expect) = n.resolve(point) else {
                    return outcome(spec, *span, false, "unbound sweep variable".into());
                };
                outcome(
                    spec,
                    *span,
                    cmp.test(actual, expect),
                    format!("{actual} episodes (want {} {expect})", cmp.label()),
                )
            }
            AssertSpec::Recoveries(cmp, n) => {
                let actual = report.recoveries;
                let Some(expect) = n.resolve(point) else {
                    return outcome(spec, *span, false, "unbound sweep variable".into());
                };
                outcome(
                    spec,
                    *span,
                    cmp.test(actual, expect),
                    format!("{actual} recoveries (want {} {expect})", cmp.label()),
                )
            }
            AssertSpec::LosslessDrops(cmp, n) => {
                let actual = report.lossless_drops;
                let Some(expect) = n.resolve(point) else {
                    return outcome(spec, *span, false, "unbound sweep variable".into());
                };
                outcome(
                    spec,
                    *span,
                    cmp.test(actual, expect),
                    format!("{actual} lossless drops (want {} {expect})", cmp.label()),
                )
            }
            AssertSpec::MaxPause(t) => {
                let Some(limit) = t.resolve(end_ns, point) else {
                    return outcome(spec, *span, false, "unbound sweep variable".into());
                };
                let actual = max_pause_ns(report);
                outcome(
                    spec,
                    *span,
                    actual <= limit,
                    format!("longest stall {actual} ns (limit {limit} ns)"),
                )
            }
            AssertSpec::AttributionMatches => {
                let (pass, detail) = match report.watchdog.as_ref().and_then(|w| w.trigger.as_ref())
                {
                    Some(t) if t.matches_ground_truth => {
                        (true, format!("attributed in {} hops, matches", t.hops))
                    }
                    Some(_) => (false, "attribution disagrees with ground truth".to_string()),
                    None => (false, "no trigger attribution recorded".to_string()),
                };
                outcome(spec, *span, pass, detail)
            }
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn empty_report() -> SimReport {
        SimReport {
            flows: Vec::new(),
            deadlock: None,
            pauses_sent: 0,
            lossy_drops: 0,
            lossless_drops: 0,
            no_route_drops: 0,
            recoveries: 0,
            recovery_drops: 0,
            link_down_drops: 0,
            watchdog: None,
            queue_series: Vec::new(),
            end_time_ns: 4_000_000,
            sample_interval_ns: 100_000,
            events_processed: 0,
        }
    }

    #[test]
    fn no_deadlock_passes_on_clean_report() {
        let s = parse("scenario x\nassert no-deadlock\nassert lossless-drops == 0\n").unwrap();
        let outs = evaluate(&s, &BTreeMap::new(), &empty_report());
        assert!(outs.iter().all(|o| o.pass), "{outs:?}");
    }

    #[test]
    fn deadlock_by_fails_without_deadlock() {
        let s = parse("scenario x\nend 4ms\nassert deadlock-by 50%\n").unwrap();
        let outs = evaluate(&s, &BTreeMap::new(), &empty_report());
        assert!(!outs[0].pass);
        assert_eq!(outs[0].detail, "no deadlock detected");
    }

    #[test]
    fn max_pause_ignores_ramp_and_tail() {
        let mut r = empty_report();
        r.flows.push(tagger_sim::FlowReport {
            flow: 0,
            src: tagger_topo::NodeId(0),
            dst: tagger_topo::NodeId(1),
            delivered_bytes: 1,
            delivered_packets: 1,
            ttl_drops: 0,
            wd_drops: 0,
            // 2 leading zeros (ramp), a 3-sample mid stall, 4 trailing
            // zeros (done): only the mid stall counts.
            rate_series: vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
        });
        assert_eq!(max_pause_ns(&r), 3 * 100_000);
    }
}
