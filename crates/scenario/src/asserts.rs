//! Evaluation of a scenario's `assert` block against a finished
//! [`SimReport`] — each assert becomes a pass/fail outcome with the
//! actual value spelled out, so a failing sweep point explains itself.

use crate::model::{AssertSpec, Num, Scenario, TaggerMode, TopoSpec};
use std::collections::BTreeMap;
use tagger_core::{oracle, Elp, Span};
use tagger_sim::SimReport;
use tagger_topo::{ClosConfig, Topology};

/// One evaluated assert.
#[derive(Clone, Debug)]
pub struct AssertOutcome {
    /// The assert as written (`no-deadlock`, `watchdog-trips == 2`, ...).
    pub label: String,
    /// Where in the `.scn` file it was written.
    pub span: Span,
    /// Whether the run satisfied it.
    pub pass: bool,
    /// The observed value, spelled out (`deadlock detected at 812000 ns`).
    pub detail: String,
}

/// The longest mid-flow stall across all flows, in nanoseconds: for each
/// flow, the longest run of zero-rate samples strictly between its first
/// and last nonzero samples (leading ramp-up and post-completion tails
/// do not count as pauses), times the sample interval.
pub fn max_pause_ns(report: &SimReport) -> u64 {
    let mut worst = 0u64;
    for f in &report.flows {
        let nonzero: Vec<usize> = f
            .rate_series
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > 0.0)
            .map(|(i, _)| i)
            .collect();
        let (Some(&first), Some(&last)) = (nonzero.first(), nonzero.last()) else {
            continue;
        };
        let mut run = 0u64;
        for i in first..=last {
            if f.rate_series[i] > 0.0 {
                run = 0;
            } else {
                run += 1;
                worst = worst.max(run);
            }
        }
    }
    worst * report.sample_interval_ns
}

/// Consults the deadlock-freedom existence oracle for the scenario's
/// ELP at the tag budget its `tagger` mode provides — the static half
/// of `assert feasible` / `assert infeasible` (no simulation involved).
///
/// The ELP is the set of via-pinned flow paths when the scenario pins
/// any, otherwise the bounce family the tagger mode compiles rules for
/// (up-down with `k` bounces for `tagger bounces k`, the 1-bounce
/// policy for controller modes, plain up-down when tagging is off).
/// Checkpoint-sourced fabrics carry no ELP declaration, so feasibility
/// asserts reject them.
pub fn feasibility_verdict(
    s: &Scenario,
    point: &BTreeMap<String, u64>,
) -> Result<oracle::Verdict, String> {
    let resolve = |n: &Num, what: &str| {
        n.resolve(point)
            .ok_or_else(|| format!("unbound sweep variable in {what}"))
    };
    let mut bcube_cfg = None;
    let topo: Topology = match &s.topo {
        TopoSpec::ClosSmall => ClosConfig::small().build(),
        TopoSpec::ClosMedium => ClosConfig::medium().build(),
        TopoSpec::ClosHosts(n) => {
            crate::expand::clos_for_hosts(resolve(n, "topo clos hosts")?).build()
        }
        TopoSpec::BCube { n, k } => {
            let (n, k) = (resolve(n, "bcube n")?, resolve(k, "bcube k")?);
            if n < 2 || k < 1 {
                return Err("bcube needs n >= 2 and k >= 1".into());
            }
            bcube_cfg = Some(tagger_topo::BCubeConfig {
                n: n as usize,
                k: k as usize,
            });
            tagger_topo::bcube(n as usize, k as usize)
        }
        TopoSpec::Checkpoint(_) => {
            return Err(
                "feasibility asserts are not supported on checkpoint topologies — \
                 they declare installed tables, not an expected-lossless-path set"
                    .into(),
            )
        }
    };
    let budget = match &s.tagger {
        TaggerMode::Off | TaggerMode::UnsafeIdentity => 1,
        TaggerMode::Bounces(k) => resolve(k, "tagger bounces")? as usize + 1,
        // Controller modes run the 1-bounce ELP policy: two tags.
        TaggerMode::Controller | TaggerMode::Chaos { .. } => 2,
        TaggerMode::FromCheckpoint => {
            return Err(
                "feasibility asserts are not supported on checkpoint topologies — \
                 they declare installed tables, not an expected-lossless-path set"
                    .into(),
            )
        }
    };
    let mut pinned = Vec::new();
    for f in s.flows.iter().filter(|f| !f.via.is_empty()) {
        let nodes: Result<Vec<_>, String> = f
            .via
            .iter()
            .map(|name| {
                topo.node_by_name(name)
                    .ok_or_else(|| format!("unknown node `{name}` in flow via"))
            })
            .collect();
        let path = tagger_routing::Path::new(&topo, nodes?)
            .map_err(|e| format!("flow {}->{}: invalid via path: {e:?}", f.src, f.dst))?;
        pinned.push(path);
    }
    let elp = if !pinned.is_empty() {
        Elp::from_paths(pinned)
    } else if let Some(cfg) = &bcube_cfg {
        Elp::from_paths(tagger_routing::bcube_paths(cfg, &topo, true))
    } else {
        Elp::updown_with_bounces(&topo, budget.saturating_sub(1))
    };
    Ok(oracle::decide(&topo, &elp, Some(budget)))
}

fn outcome(spec: &AssertSpec, span: Span, pass: bool, detail: String) -> AssertOutcome {
    AssertOutcome {
        label: spec.label(),
        span,
        pass,
        detail,
    }
}

/// Evaluates every assert in `s` against `report`. Sweep variables are
/// resolved from `point`; an unbound variable (impossible after
/// validation) evaluates as a failure rather than a panic.
pub fn evaluate(
    s: &Scenario,
    point: &BTreeMap<String, u64>,
    report: &SimReport,
) -> Vec<AssertOutcome> {
    let end_ns = s.end_ns;
    s.asserts
        .iter()
        .map(|(spec, span)| match spec {
            AssertSpec::NoDeadlock => {
                let (pass, detail) = match &report.deadlock {
                    None => (true, "no deadlock".to_string()),
                    Some(d) => (
                        false,
                        format!(
                            "deadlock detected at {} ns (cycle of {} queues)",
                            d.detected_at,
                            d.cycle.len()
                        ),
                    ),
                };
                outcome(spec, *span, pass, detail)
            }
            AssertSpec::DeadlockBy(t) => {
                let Some(deadline) = t.resolve(end_ns, point) else {
                    return outcome(spec, *span, false, "unbound sweep variable".into());
                };
                let (pass, detail) = match &report.deadlock {
                    Some(d) if d.detected_at <= deadline => (
                        true,
                        format!(
                            "deadlock detected at {} ns <= {} ns",
                            d.detected_at, deadline
                        ),
                    ),
                    Some(d) => (
                        false,
                        format!(
                            "deadlock detected late, at {} ns > {} ns",
                            d.detected_at, deadline
                        ),
                    ),
                    None => (false, "no deadlock detected".to_string()),
                };
                outcome(spec, *span, pass, detail)
            }
            AssertSpec::WatchdogTrips(cmp, n) => {
                let actual = report.watchdog.as_ref().map_or(0, |w| w.stats.trips);
                let Some(expect) = n.resolve(point) else {
                    return outcome(spec, *span, false, "unbound sweep variable".into());
                };
                outcome(
                    spec,
                    *span,
                    cmp.test(actual, expect),
                    format!("{actual} trips (want {} {expect})", cmp.label()),
                )
            }
            AssertSpec::Episodes(cmp, n) => {
                let actual = report.watchdog.as_ref().map_or(0, |w| w.episodes);
                let Some(expect) = n.resolve(point) else {
                    return outcome(spec, *span, false, "unbound sweep variable".into());
                };
                outcome(
                    spec,
                    *span,
                    cmp.test(actual, expect),
                    format!("{actual} episodes (want {} {expect})", cmp.label()),
                )
            }
            AssertSpec::Recoveries(cmp, n) => {
                let actual = report.recoveries;
                let Some(expect) = n.resolve(point) else {
                    return outcome(spec, *span, false, "unbound sweep variable".into());
                };
                outcome(
                    spec,
                    *span,
                    cmp.test(actual, expect),
                    format!("{actual} recoveries (want {} {expect})", cmp.label()),
                )
            }
            AssertSpec::LosslessDrops(cmp, n) => {
                let actual = report.lossless_drops;
                let Some(expect) = n.resolve(point) else {
                    return outcome(spec, *span, false, "unbound sweep variable".into());
                };
                outcome(
                    spec,
                    *span,
                    cmp.test(actual, expect),
                    format!("{actual} lossless drops (want {} {expect})", cmp.label()),
                )
            }
            AssertSpec::MaxPause(t) => {
                let Some(limit) = t.resolve(end_ns, point) else {
                    return outcome(spec, *span, false, "unbound sweep variable".into());
                };
                let actual = max_pause_ns(report);
                outcome(
                    spec,
                    *span,
                    actual <= limit,
                    format!("longest stall {actual} ns (limit {limit} ns)"),
                )
            }
            AssertSpec::Feasible | AssertSpec::Infeasible => {
                let want_feasible = matches!(spec, AssertSpec::Feasible);
                let (pass, detail) = match feasibility_verdict(s, point) {
                    Ok(v) => (v.is_feasible() == want_feasible, v.summary()),
                    Err(e) => (false, e),
                };
                outcome(spec, *span, pass, detail)
            }
            AssertSpec::AttributionMatches => {
                let (pass, detail) = match report.watchdog.as_ref().and_then(|w| w.trigger.as_ref())
                {
                    Some(t) if t.matches_ground_truth => {
                        (true, format!("attributed in {} hops, matches", t.hops))
                    }
                    Some(_) => (false, "attribution disagrees with ground truth".to_string()),
                    None => (false, "no trigger attribution recorded".to_string()),
                };
                outcome(spec, *span, pass, detail)
            }
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn empty_report() -> SimReport {
        SimReport {
            flows: Vec::new(),
            deadlock: None,
            pauses_sent: 0,
            lossy_drops: 0,
            lossless_drops: 0,
            no_route_drops: 0,
            recoveries: 0,
            recovery_drops: 0,
            link_down_drops: 0,
            watchdog: None,
            queue_series: Vec::new(),
            end_time_ns: 4_000_000,
            sample_interval_ns: 100_000,
            events_processed: 0,
        }
    }

    #[test]
    fn no_deadlock_passes_on_clean_report() {
        let s = parse("scenario x\nassert no-deadlock\nassert lossless-drops == 0\n").unwrap();
        let outs = evaluate(&s, &BTreeMap::new(), &empty_report());
        assert!(outs.iter().all(|o| o.pass), "{outs:?}");
    }

    #[test]
    fn deadlock_by_fails_without_deadlock() {
        let s = parse("scenario x\nend 4ms\nassert deadlock-by 50%\n").unwrap();
        let outs = evaluate(&s, &BTreeMap::new(), &empty_report());
        assert!(!outs[0].pass);
        assert_eq!(outs[0].detail, "no deadlock detected");
    }

    #[test]
    fn feasibility_asserts_consult_the_oracle() {
        // The Fig. 10 counter-rotating pair at one lossless priority
        // (`tagger off`): provably infeasible.
        let text = "\
scenario x
topo clos small
tagger off
flow H1 H13 via H1 T1 L1 S1 L3 S2 L4 T4 H13
flow H9 H1 via H9 T3 L3 S2 L1 S1 L2 T1 H1
assert infeasible
";
        let s = parse(text).unwrap();
        let outs = evaluate(&s, &BTreeMap::new(), &empty_report());
        assert!(outs[0].pass, "{outs:?}");
        assert!(outs[0].detail.contains("infeasible"), "{}", outs[0].detail);

        // The same pair with a bounce of budget: feasible — and the
        // misasserted direction fails with the oracle's summary.
        let feasible = text
            .replace("tagger off", "tagger bounces 1")
            .replace("assert infeasible", "assert feasible");
        let s = parse(&feasible).unwrap();
        let outs = evaluate(&s, &BTreeMap::new(), &empty_report());
        assert!(outs[0].pass, "{outs:?}");
        let misasserted = text.replace("tagger off", "tagger bounces 1");
        let s = parse(&misasserted).unwrap();
        let outs = evaluate(&s, &BTreeMap::new(), &empty_report());
        assert!(!outs[0].pass, "{outs:?}");
        assert!(outs[0].detail.contains("feasible"), "{}", outs[0].detail);
    }

    #[test]
    fn feasibility_asserts_reject_checkpoint_topologies() {
        let s = parse("scenario x\ncheckpoint fleet.ckpt\nassert feasible\n").unwrap();
        let outs = evaluate(&s, &BTreeMap::new(), &empty_report());
        assert!(!outs[0].pass);
        assert!(
            outs[0].detail.contains("not supported"),
            "{}",
            outs[0].detail
        );
    }

    #[test]
    fn max_pause_ignores_ramp_and_tail() {
        let mut r = empty_report();
        r.flows.push(tagger_sim::FlowReport {
            flow: 0,
            src: tagger_topo::NodeId(0),
            dst: tagger_topo::NodeId(1),
            delivered_bytes: 1,
            delivered_packets: 1,
            ttl_drops: 0,
            wd_drops: 0,
            // 2 leading zeros (ramp), a 3-sample mid stall, 4 trailing
            // zeros (done): only the mid stall counts.
            rate_series: vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
        });
        assert_eq!(max_pause_ns(&r), 3 * 100_000);
    }
}
