//! The line-oriented `.scn` parser.
//!
//! Same house style as the checkpoint and trace parsers: one directive
//! per line, `#` comments, every finding carrying an exact [`Span`]
//! (1-based line/column via [`spanned_words`]) and a fix-it hint where
//! one is known. [`parse_all`] reports *every* defective line in one
//! pass (what `tagger-lint` wants); [`parse`] stops at the first error
//! (what a runner wants — it never executes past garbage).

use crate::model::*;
use std::collections::BTreeMap;
use tagger_core::span::{spanned_words, Span};
use tagger_topo::nearest_names;

/// Stable issue categories; `tagger-lint` maps these onto its `T06xx`
/// diagnostic codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IssueCode {
    /// First word of a line is not a known directive.
    UnknownDirective,
    /// A directive's arguments are missing or malformed.
    BadArgument,
    /// A singleton directive (`scenario`, `topo`, `end`, …) repeats.
    DuplicateDirective,
    /// The scenario has no `assert` block at all.
    MissingAssert,
    /// An assert can never hold under this configuration (e.g.
    /// `watchdog-trips >= 1` with no watchdog armed).
    UnsatisfiableAssert,
    /// A node name does not exist in the scenario's topology.
    UnknownNode,
}

/// One parse/validation finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScnIssue {
    /// Category.
    pub code: IssueCode,
    /// Exact location.
    pub span: Span,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when known.
    pub hint: Option<String>,
}

impl ScnIssue {
    fn new(code: IssueCode, span: Span, message: impl Into<String>) -> ScnIssue {
        ScnIssue {
            code,
            span,
            message: message.into(),
            hint: None,
        }
    }

    fn hint(mut self, hint: impl Into<String>) -> ScnIssue {
        self.hint = Some(hint.into());
        self
    }
}

impl std::fmt::Display for ScnIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.span, self.message)?;
        if let Some(h) = &self.hint {
            write!(f, " (hint: {h})")?;
        }
        Ok(())
    }
}

/// Every directive the DSL knows, for the unknown-directive hint.
const DIRECTIVES: &str = "scenario, topo, checkpoint, tagger, seed, end, queue, transition, \
     buffer, pause-quanta, recovery, watchdog, dcqcn, flow, workload, \
     fail, restore, reconverge, flap, route, mask, trace, assert, sweep";

/// Parses a duration word: bare nanoseconds, `250us`, `4ms`, `1_000ns`,
/// or a `$var` (nanoseconds).
fn parse_dur(word: &str) -> Option<Num> {
    if let Some(var) = word.strip_prefix('$') {
        return (!var.is_empty()).then(|| Num::Var(var.to_string()));
    }
    let (digits, scale) = if let Some(d) = word.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = word.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = word.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = word.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (word, 1)
    };
    let clean: String = digits.chars().filter(|&c| c != '_').collect();
    clean
        .parse::<u64>()
        .ok()
        .map(|v| Num::Lit(v.saturating_mul(scale)))
}

/// Parses a plain integer word (underscore separators allowed) or `$var`.
fn parse_num(word: &str) -> Option<Num> {
    if let Some(var) = word.strip_prefix('$') {
        return (!var.is_empty()).then(|| Num::Var(var.to_string()));
    }
    let clean: String = word.chars().filter(|&c| c != '_').collect();
    clean.parse::<u64>().ok().map(Num::Lit)
}

/// Parses an `@time` word: `@40%` (percent of the horizon) or `@250us`.
fn parse_at(word: &str) -> Option<TimeSpec> {
    let body = word.strip_prefix('@')?;
    if let Some(pct) = body.strip_suffix('%') {
        let p: u64 = pct.parse().ok()?;
        (p <= 100).then_some(TimeSpec::Pct(p))
    } else {
        parse_dur(body).map(TimeSpec::Ns)
    }
}

struct LineCtx<'a> {
    lineno: usize,
    words: Vec<(usize, &'a str)>,
    issues: &'a mut Vec<ScnIssue>,
}

impl<'a> LineCtx<'a> {
    fn span(&self, i: usize) -> Span {
        match self.words.get(i) {
            Some(&(col, w)) => Span::new(self.lineno, col, w.len()),
            None => {
                // Point past the last word: "something is missing here".
                let end = self.words.last().map(|&(c, w)| c + w.len()).unwrap_or(1);
                Span::new(self.lineno, end, 0)
            }
        }
    }

    fn word(&self, i: usize) -> Option<&'a str> {
        self.words.get(i).map(|&(_, w)| w)
    }

    fn bad(&mut self, i: usize, message: impl Into<String>) -> Option<()> {
        let issue = ScnIssue::new(IssueCode::BadArgument, self.span(i), message);
        self.issues.push(issue);
        None
    }

    fn bad_hint(&mut self, i: usize, message: impl Into<String>, hint: impl Into<String>) {
        let issue = ScnIssue::new(IssueCode::BadArgument, self.span(i), message).hint(hint);
        self.issues.push(issue);
    }

    fn need(&mut self, i: usize, what: &str) -> Option<&'a str> {
        match self.word(i) {
            Some(w) => Some(w),
            None => {
                self.bad(i, format!("missing {what}"));
                None
            }
        }
    }

    fn need_num(&mut self, i: usize, what: &str) -> Option<Num> {
        let w = self.need(i, what)?;
        match parse_num(w) {
            Some(n) => Some(n),
            None => {
                self.bad(i, format!("{what}: `{w}` is not a number"));
                None
            }
        }
    }

    fn need_dur(&mut self, i: usize, what: &str) -> Option<Num> {
        let w = self.need(i, what)?;
        match parse_dur(w) {
            Some(n) => Some(n),
            None => {
                self.bad_hint(
                    i,
                    format!("{what}: `{w}` is not a duration"),
                    "durations are `500ns`, `250us`, `4ms` or bare nanoseconds",
                );
                None
            }
        }
    }

    /// Optional trailing `@time`; defaults to 0.
    fn opt_at(&mut self, i: usize) -> Option<TimeSpec> {
        match self.word(i) {
            None => Some(TimeSpec::zero()),
            Some(w) if w.starts_with('@') => match parse_at(w) {
                Some(t) => Some(t),
                None => {
                    self.bad_hint(
                        i,
                        format!("bad time `{w}`"),
                        "times are `@250us`, `@1_000_000` (ns) or `@40%` of the horizon",
                    );
                    None
                }
            },
            Some(w) => {
                self.bad(i, format!("expected `@time`, found `{w}`"));
                None
            }
        }
    }

    /// Required `@time`.
    fn need_at(&mut self, i: usize) -> Option<TimeSpec> {
        match self.need(i, "`@time`")? {
            w if w.starts_with('@') => match parse_at(w) {
                Some(t) => Some(t),
                None => {
                    self.bad_hint(
                        i,
                        format!("bad time `{w}`"),
                        "times are `@250us`, `@1_000_000` (ns) or `@40%` of the horizon",
                    );
                    None
                }
            },
            w => {
                self.bad(i, format!("expected `@time`, found `{w}`"));
                None
            }
        }
    }
}

fn parse_cmp(w: &str) -> Option<Cmp> {
    match w {
        "==" => Some(Cmp::Eq),
        ">=" => Some(Cmp::Ge),
        "<=" => Some(Cmp::Le),
        _ => None,
    }
}

/// Parses a whole `.scn` text, reporting *every* issue. The scenario is
/// returned alongside — usable only when no issue was produced (lint
/// wants partial results; runners should call [`parse`]).
pub fn parse_all(text: &str) -> (Scenario, Vec<ScnIssue>) {
    let mut s = Scenario::default();
    let mut issues = Vec::new();
    let mut seen: BTreeMap<&'static str, usize> = BTreeMap::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.split('#').next() {
            Some(l) => l,
            None => raw,
        };
        let words: Vec<(usize, &str)> = spanned_words(line).collect();
        if words.is_empty() {
            continue;
        }
        let mut ctx = LineCtx {
            lineno,
            words,
            issues: &mut issues,
        };
        let head = ctx.words[0].1;

        // Singleton directives: remember the first occurrence's line.
        let mut dup = |ctx: &mut LineCtx, key: &'static str| -> bool {
            if let Some(&first) = seen.get(key) {
                let issue = ScnIssue::new(
                    IssueCode::DuplicateDirective,
                    ctx.span(0),
                    format!("duplicate `{key}` directive (first on line {first})"),
                )
                .hint(format!("keep one `{key}` line per scenario"));
                ctx.issues.push(issue);
                true
            } else {
                seen.insert(key, lineno);
                false
            }
        };

        match head {
            "scenario" => {
                if dup(&mut ctx, "scenario") {
                    continue;
                }
                if let Some(name) = ctx.need(1, "scenario name") {
                    s.name = name.to_string();
                }
            }
            "topo" => {
                if dup(&mut ctx, "topo") {
                    continue;
                }
                match ctx.need(1, "topology family (`clos` or `bcube`)") {
                    Some("clos") => match ctx.word(2) {
                        Some("small") | None => s.topo = TopoSpec::ClosSmall,
                        Some("medium") => s.topo = TopoSpec::ClosMedium,
                        Some("hosts") => {
                            if let Some(n) = ctx.need_num(3, "host count") {
                                s.topo = TopoSpec::ClosHosts(n);
                            }
                        }
                        Some(w) => {
                            ctx.bad_hint(
                                2,
                                format!("unknown clos size `{w}`"),
                                "use `small`, `medium` or `hosts N`",
                            );
                        }
                    },
                    Some("bcube") => {
                        if let (Some(n), Some(k)) =
                            (ctx.need_num(2, "bcube n"), ctx.need_num(3, "bcube k"))
                        {
                            s.topo = TopoSpec::BCube { n, k };
                        }
                    }
                    Some(w) => {
                        ctx.bad_hint(
                            1,
                            format!("unknown topology family `{w}`"),
                            "use `topo clos small|medium|hosts N` or `topo bcube N K`",
                        );
                    }
                    None => {}
                }
            }
            "checkpoint" => {
                if dup(&mut ctx, "checkpoint") {
                    continue;
                }
                if let Some(path) = ctx.need(1, "checkpoint path") {
                    s.topo = TopoSpec::Checkpoint(path.to_string());
                    s.tagger = TaggerMode::FromCheckpoint;
                }
            }
            "tagger" => {
                if dup(&mut ctx, "tagger") {
                    continue;
                }
                match ctx.need(1, "tagger mode") {
                    Some("off") => s.tagger = TaggerMode::Off,
                    Some("bounces") => {
                        if let Some(n) = ctx.need_num(2, "bounce count") {
                            s.tagger = TaggerMode::Bounces(n);
                        }
                    }
                    Some("controller") => s.tagger = TaggerMode::Controller,
                    Some("chaos") => {
                        let seed = ctx.need_num(2, "chaos seed");
                        let rate = match ctx.need(3, "chaos fail rate") {
                            Some(w) => match w.parse::<f64>() {
                                Ok(r) if (0.0..=1.0).contains(&r) => Some(r),
                                _ => {
                                    ctx.bad(3, format!("fail rate `{w}` must be 0.0–1.0"));
                                    None
                                }
                            },
                            None => None,
                        };
                        if let (Some(seed), Some(rate)) = (seed, rate) {
                            s.tagger = TaggerMode::Chaos { seed, rate };
                        }
                    }
                    Some("unsafe-identity") => s.tagger = TaggerMode::UnsafeIdentity,
                    Some(w) => {
                        ctx.bad_hint(
                            1,
                            format!("unknown tagger mode `{w}`"),
                            "use `off`, `bounces N`, `controller`, `chaos SEED RATE` \
                             or `unsafe-identity`",
                        );
                    }
                    None => {}
                }
            }
            "seed" => {
                if dup(&mut ctx, "seed") {
                    continue;
                }
                if let Some(Num::Lit(v)) = ctx.need_num(1, "seed") {
                    s.seed = v;
                } else if ctx.word(1).is_some_and(|w| w.starts_with('$')) {
                    ctx.bad(
                        1,
                        "seed cannot be swept — pass `--seed` to the runner instead",
                    );
                }
            }
            "end" => {
                if dup(&mut ctx, "end") {
                    continue;
                }
                match ctx.need_dur(1, "horizon") {
                    Some(Num::Lit(v)) if v > 0 => s.end_ns = v,
                    Some(Num::Lit(_)) => {
                        ctx.bad(1, "horizon must be positive");
                    }
                    Some(Num::Var(_)) => {
                        ctx.bad(1, "the horizon cannot be swept");
                    }
                    None => {}
                }
            }
            "queue" => {
                if dup(&mut ctx, "queue") {
                    continue;
                }
                match ctx.need(1, "queue backend") {
                    Some("wheel") => s.queue_heap = Some(false),
                    Some("heap") => s.queue_heap = Some(true),
                    Some(w) => {
                        ctx.bad_hint(
                            1,
                            format!("unknown queue backend `{w}`"),
                            "use `wheel` or `heap`",
                        );
                    }
                    None => {}
                }
            }
            "transition" => {
                if dup(&mut ctx, "transition") {
                    continue;
                }
                match ctx.need(1, "transition mode") {
                    Some("new-tag") => s.old_tag_transition = false,
                    Some("old-tag") => s.old_tag_transition = true,
                    Some(w) => {
                        ctx.bad_hint(
                            1,
                            format!("unknown transition mode `{w}`"),
                            "use `new-tag` (Fig. 8(b), correct) or `old-tag` (Fig. 8(a))",
                        );
                    }
                    None => {}
                }
            }
            "buffer" => {
                if dup(&mut ctx, "buffer") {
                    continue;
                }
                s.buffer_bytes = ctx.need_num(1, "buffer bytes");
            }
            "pause-quanta" => {
                if dup(&mut ctx, "pause-quanta") {
                    continue;
                }
                s.pause_quanta = ctx.need_dur(1, "pause quanta").map(TimeSpec::Ns);
            }
            "recovery" => {
                if dup(&mut ctx, "recovery") {
                    continue;
                }
                match ctx.need(1, "`on`") {
                    Some("on") => s.recovery = true,
                    Some(w) => {
                        ctx.bad(1, format!("expected `on`, found `{w}`"));
                    }
                    None => {}
                }
            }
            "watchdog" => {
                if dup(&mut ctx, "watchdog") {
                    continue;
                }
                match ctx.need(1, "`window`") {
                    Some("window") => {
                        if let Some(win) = ctx.need_dur(2, "watchdog window") {
                            let drop = match (ctx.word(3), ctx.word(4)) {
                                (None, _) => Some(false),
                                (Some("policy"), Some("demote")) => Some(false),
                                (Some("policy"), Some("drop")) => Some(true),
                                (Some("policy"), other) => {
                                    let w = other.unwrap_or("");
                                    ctx.bad_hint(
                                        4,
                                        format!("unknown watchdog policy `{w}`"),
                                        "use `policy demote` or `policy drop`",
                                    );
                                    None
                                }
                                (Some(w), _) => {
                                    let msg = format!("expected `policy`, found `{w}`");
                                    ctx.bad(3, msg);
                                    None
                                }
                            };
                            if let Some(drop) = drop {
                                s.watchdog = Some(WatchdogDecl {
                                    window: TimeSpec::Ns(win),
                                    drop,
                                });
                            }
                        }
                    }
                    Some(w) => {
                        ctx.bad(1, format!("expected `window`, found `{w}`"));
                    }
                    None => {}
                }
            }
            "dcqcn" => {
                if dup(&mut ctx, "dcqcn") {
                    continue;
                }
                match ctx.need(1, "`on` or `off`") {
                    Some("on") => s.dcqcn = true,
                    Some("off") => s.dcqcn = false,
                    Some(w) => {
                        ctx.bad(1, format!("expected `on` or `off`, found `{w}`"));
                    }
                    None => {}
                }
            }
            "flow" => {
                let src = ctx.need(1, "source host");
                let dst = ctx.need(2, "destination host");
                let (Some(src), Some(dst)) = (src, dst) else {
                    continue;
                };
                let mut flow = FlowDecl {
                    src: src.to_string(),
                    dst: dst.to_string(),
                    at: TimeSpec::zero(),
                    limit: None,
                    via: Vec::new(),
                };
                let mut i = 3;
                let mut ok = true;
                while let Some(w) = ctx.word(i) {
                    if w.starts_with('@') {
                        match parse_at(w) {
                            Some(t) => flow.at = t,
                            None => {
                                ctx.bad(i, format!("bad time `{w}`"));
                                ok = false;
                            }
                        }
                        i += 1;
                    } else if w == "limit" {
                        match ctx.need_num(i + 1, "byte limit") {
                            Some(n) => flow.limit = Some(n),
                            None => ok = false,
                        }
                        i += 2;
                    } else if w == "via" {
                        i += 1;
                        while let Some(n) = ctx.word(i) {
                            flow.via.push(n.to_string());
                            i += 1;
                        }
                        if flow.via.len() < 2 {
                            ctx.bad(i, "`via` needs the full path, source to destination");
                            ok = false;
                        }
                    } else {
                        ctx.bad_hint(
                            i,
                            format!("unexpected `{w}`"),
                            "flow options are `@time`, `limit BYTES`, `via N1 N2 ...`",
                        );
                        ok = false;
                        i += 1;
                    }
                }
                if ok {
                    s.flows.push(flow);
                }
            }
            "workload" => match ctx.need(1, "workload kind") {
                Some("incast") => {
                    let k = ctx.need_num(2, "fan-in");
                    let dst = ctx.need(3, "destination host").map(str::to_string);
                    let at = ctx.opt_at(4);
                    if let (Some(k), Some(dst), Some(at)) = (k, dst, at) {
                        s.workloads.push(Workload::Incast { k, dst, at });
                    }
                }
                Some("shuffle") => {
                    let src = ctx.need(2, "source host").map(str::to_string);
                    let k = ctx.need_num(3, "fan-out");
                    let at = ctx.opt_at(4);
                    if let (Some(src), Some(k), Some(at)) = (src, k, at) {
                        s.workloads.push(Workload::Shuffle { src, k, at });
                    }
                }
                Some("permutation") => {
                    if let Some(at) = ctx.opt_at(2) {
                        s.workloads.push(Workload::Permutation { at });
                    }
                }
                Some("all-to-all") => {
                    let n = ctx.need_num(2, "participant count");
                    let at = ctx.opt_at(3);
                    if let (Some(n), Some(at)) = (n, at) {
                        s.workloads.push(Workload::AllToAll { n, at });
                    }
                }
                Some("websearch") => {
                    let n = ctx.need_num(2, "flow count");
                    let at = ctx.opt_at(3);
                    if let (Some(n), Some(at)) = (n, at) {
                        s.workloads.push(Workload::Websearch { n, at });
                    }
                }
                Some("hadoop") => {
                    let n = ctx.need_num(2, "flow count");
                    let at = ctx.opt_at(3);
                    if let (Some(n), Some(at)) = (n, at) {
                        s.workloads.push(Workload::Hadoop { n, at });
                    }
                }
                Some(w) => {
                    ctx.bad_hint(
                        1,
                        format!("unknown workload `{w}`"),
                        "workloads: incast, shuffle, permutation, all-to-all, \
                         websearch, hadoop",
                    );
                }
                None => {}
            },
            "fail" => {
                if ctx.word(1) == Some("random") {
                    let n = ctx.need_num(2, "failure count");
                    let at = ctx.need_at(3);
                    if let (Some(n), Some(at)) = (n, at) {
                        s.events.push(EventSpec::FailRandom { n, at });
                    }
                } else {
                    let a = ctx.need(1, "link endpoint").map(str::to_string);
                    let b = ctx.need(2, "link endpoint").map(str::to_string);
                    let at = ctx.need_at(3);
                    if let (Some(a), Some(b), Some(at)) = (a, b, at) {
                        s.events.push(EventSpec::Fail { a, b, at });
                    }
                }
            }
            "restore" => {
                let a = ctx.need(1, "link endpoint").map(str::to_string);
                let b = ctx.need(2, "link endpoint").map(str::to_string);
                let at = ctx.need_at(3);
                if let (Some(a), Some(b), Some(at)) = (a, b, at) {
                    s.events.push(EventSpec::Restore { a, b, at });
                }
            }
            "reconverge" => {
                if let Some(at) = ctx.need_at(1) {
                    s.events.push(EventSpec::Reconverge { at });
                }
            }
            "flap" => {
                let a = ctx.need(1, "link endpoint").map(str::to_string);
                let b = ctx.need(2, "link endpoint").map(str::to_string);
                let at = ctx.need_at(3);
                let times = match ctx.need(4, "`xN` repeat count") {
                    Some(w) => match w.strip_prefix('x').and_then(parse_num) {
                        Some(n) => Some(n),
                        None => {
                            ctx.bad_hint(
                                4,
                                format!("bad repeat `{w}`"),
                                "write the bounce count as `x3`",
                            );
                            None
                        }
                    },
                    None => None,
                };
                let gap = match ctx.need(5, "`gap`") {
                    Some("gap") => ctx.need_dur(6, "flap gap").map(TimeSpec::Ns),
                    Some(w) => {
                        ctx.bad(5, format!("expected `gap`, found `{w}`"));
                        None
                    }
                    None => None,
                };
                if let (Some(a), Some(b), Some(at), Some(times), Some(gap)) = (a, b, at, times, gap)
                {
                    s.events.push(EventSpec::Flap {
                        a,
                        b,
                        at,
                        times,
                        gap,
                    });
                }
            }
            "route" => {
                let sw = ctx.need(1, "switch").map(str::to_string);
                let dst = ctx.need(2, "destination host").map(str::to_string);
                let via = match ctx.need(3, "`via`") {
                    Some("via") => ctx.need(4, "next hop").map(str::to_string),
                    Some(w) => {
                        ctx.bad(3, format!("expected `via`, found `{w}`"));
                        None
                    }
                    None => None,
                };
                let at = ctx.need_at(5);
                if let (Some(sw), Some(dst), Some(via), Some(at)) = (sw, dst, via, at) {
                    s.events.push(EventSpec::Route { sw, dst, via, at });
                }
            }
            "mask" => {
                let sw = ctx.need(1, "switch").map(str::to_string);
                let nbr = ctx.need(2, "neighbour").map(str::to_string);
                let at = ctx.need_at(3);
                if let (Some(sw), Some(nbr), Some(at)) = (sw, nbr, at) {
                    s.events.push(EventSpec::Mask { sw, nbr, at });
                }
            }
            "trace" => {
                let path = ctx.need(1, "trace path").map(str::to_string);
                let at = ctx.need_at(2);
                let gap = match ctx.need(3, "`gap`") {
                    Some("gap") => ctx.need_dur(4, "trace gap").map(TimeSpec::Ns),
                    Some(w) => {
                        ctx.bad(3, format!("expected `gap`, found `{w}`"));
                        None
                    }
                    None => None,
                };
                if let (Some(path), Some(at), Some(gap)) = (path, at, gap) {
                    s.events.push(EventSpec::Trace { path, at, gap });
                }
            }
            "assert" => {
                let span = ctx.span(1);
                let counting = |ctx: &mut LineCtx, what: &str| -> Option<(Cmp, Num)> {
                    let cmp = match ctx.need(2, "comparison (`==`, `>=`, `<=`)") {
                        Some(w) => match parse_cmp(w) {
                            Some(c) => Some(c),
                            None => {
                                ctx.bad_hint(
                                    2,
                                    format!("bad comparison `{w}`"),
                                    format!("write `assert {what} == N` (or >=, <=)"),
                                );
                                None
                            }
                        },
                        None => None,
                    };
                    let n = ctx.need_num(3, "count");
                    match (cmp, n) {
                        (Some(c), Some(n)) => Some((c, n)),
                        _ => None,
                    }
                };
                match ctx.need(1, "assert kind") {
                    Some("no-deadlock") => s.asserts.push((AssertSpec::NoDeadlock, span)),
                    Some("deadlock-by") => {
                        let t = match ctx.word(2) {
                            // `@250us`, `@40%` or the bare `40%` form.
                            Some(w) if w.starts_with('@') || w.ends_with('%') => {
                                let bare_pct = w
                                    .strip_suffix('%')
                                    .and_then(|p| p.parse::<u64>().ok())
                                    .filter(|&p| p <= 100)
                                    .map(TimeSpec::Pct);
                                match parse_at(w).or(bare_pct) {
                                    Some(t) => Some(t),
                                    None => {
                                        ctx.bad(2, format!("bad time `{w}`"));
                                        None
                                    }
                                }
                            }
                            _ => ctx.need_dur(2, "deadline").map(TimeSpec::Ns),
                        };
                        if let Some(t) = t {
                            s.asserts.push((AssertSpec::DeadlockBy(t), span));
                        }
                    }
                    Some("watchdog-trips") => {
                        if let Some((c, n)) = counting(&mut ctx, "watchdog-trips") {
                            s.asserts.push((AssertSpec::WatchdogTrips(c, n), span));
                        }
                    }
                    Some("episodes") => {
                        if let Some((c, n)) = counting(&mut ctx, "episodes") {
                            s.asserts.push((AssertSpec::Episodes(c, n), span));
                        }
                    }
                    Some("recoveries") => {
                        if let Some((c, n)) = counting(&mut ctx, "recoveries") {
                            s.asserts.push((AssertSpec::Recoveries(c, n), span));
                        }
                    }
                    Some("lossless-drops") => {
                        if let Some((c, n)) = counting(&mut ctx, "lossless-drops") {
                            s.asserts.push((AssertSpec::LosslessDrops(c, n), span));
                        }
                    }
                    Some("max-pause") => {
                        if let Some(d) = ctx.need_dur(2, "max pause") {
                            s.asserts
                                .push((AssertSpec::MaxPause(TimeSpec::Ns(d)), span));
                        }
                    }
                    Some("attribution") => match ctx.need(2, "`matches-ground-truth`") {
                        Some("matches-ground-truth") => {
                            s.asserts.push((AssertSpec::AttributionMatches, span));
                        }
                        Some(w) => {
                            ctx.bad(2, format!("expected `matches-ground-truth`, found `{w}`"));
                        }
                        None => {}
                    },
                    Some("feasible") => s.asserts.push((AssertSpec::Feasible, span)),
                    Some("infeasible") => s.asserts.push((AssertSpec::Infeasible, span)),
                    Some(w) => {
                        ctx.bad_hint(
                            1,
                            format!("unknown assert `{w}`"),
                            "asserts: no-deadlock, deadlock-by T, watchdog-trips OP N, \
                             episodes OP N, recoveries OP N, lossless-drops OP N, \
                             max-pause D, attribution matches-ground-truth, \
                             feasible, infeasible",
                        );
                    }
                    None => {}
                }
            }
            "sweep" => {
                let var = ctx.need(1, "sweep variable").map(str::to_string);
                let range = match ctx.need(2, "range `A..B`") {
                    Some(w) => match w.split_once("..") {
                        Some((a, b)) => {
                            let a: Option<u64> = a
                                .chars()
                                .filter(|&c| c != '_')
                                .collect::<String>()
                                .parse()
                                .ok();
                            let b: Option<u64> = b
                                .chars()
                                .filter(|&c| c != '_')
                                .collect::<String>()
                                .parse()
                                .ok();
                            match (a, b) {
                                (Some(a), Some(b)) if a <= b => Some((a, b)),
                                _ => {
                                    ctx.bad(2, format!("bad range `{w}`"));
                                    None
                                }
                            }
                        }
                        None => {
                            ctx.bad_hint(
                                2,
                                format!("bad range `{w}`"),
                                "write `sweep hosts 32..1024 step *2`",
                            );
                            None
                        }
                    },
                    None => None,
                };
                let step = match ctx.word(3) {
                    None => Some((true, 2u64)),
                    Some("step") => match ctx.need(4, "step (`*K` or `+K`)") {
                        Some(w) => {
                            let (mul, digits) = if let Some(d) = w.strip_prefix('*') {
                                (true, d)
                            } else if let Some(d) = w.strip_prefix('+') {
                                (false, d)
                            } else {
                                (true, "")
                            };
                            match digits.parse::<u64>() {
                                Ok(k) if k >= if mul { 2 } else { 1 } => Some((mul, k)),
                                _ => {
                                    ctx.bad_hint(
                                        4,
                                        format!("bad step `{w}`"),
                                        "use `*2` (double each point) or `+16`",
                                    );
                                    None
                                }
                            }
                        }
                        None => None,
                    },
                    Some(w) => {
                        let msg = format!("expected `step`, found `{w}`");
                        ctx.bad(3, msg);
                        None
                    }
                };
                if let (Some(var), Some((from, to)), Some((mul, step))) = (var, range, step) {
                    if s.sweeps.iter().any(|sw| sw.var == var) {
                        issues.push(
                            ScnIssue::new(
                                IssueCode::DuplicateDirective,
                                Span::new(lineno, 1, "sweep".len()),
                                format!("duplicate sweep over `{var}`"),
                            )
                            .hint("each variable can be swept once"),
                        );
                    } else {
                        s.sweeps.push(Sweep {
                            var,
                            from,
                            to,
                            mul,
                            step,
                        });
                    }
                }
            }
            other => {
                let col = ctx.words[0].0;
                ctx.issues.push(
                    ScnIssue::new(
                        IssueCode::UnknownDirective,
                        Span::new(lineno, col, other.len()),
                        format!("unknown directive `{other}`"),
                    )
                    .hint(format!("known directives: {DIRECTIVES}")),
                );
            }
        }
    }

    issues.extend(validate(&s));
    (s, issues)
}

/// Semantic validation over a parsed scenario: the checks that need the
/// whole file (or the topology) rather than one line.
fn validate(s: &Scenario) -> Vec<ScnIssue> {
    let mut issues = Vec::new();

    // Every scenario must state what it proves.
    if s.asserts.is_empty() {
        issues.push(
            ScnIssue::new(
                IssueCode::MissingAssert,
                Span::whole_file(),
                "scenario has no `assert` block — a run with nothing to check proves nothing",
            )
            .hint("add at least one assert, e.g. `assert no-deadlock`"),
        );
    }

    // Contradictory / unsatisfiable asserts.
    let has = |f: &dyn Fn(&AssertSpec) -> bool| s.asserts.iter().any(|(a, _)| f(a));
    let wd_armed = s.watchdog.is_some();
    for (a, span) in &s.asserts {
        match a {
            AssertSpec::DeadlockBy(TimeSpec::Ns(Num::Lit(t))) if *t > s.end_ns => {
                issues.push(
                    ScnIssue::new(
                        IssueCode::UnsatisfiableAssert,
                        *span,
                        format!(
                            "`deadlock-by {t}` lies beyond the {}ns horizon — the run ends first",
                            s.end_ns
                        ),
                    )
                    .hint("raise `end` or lower the deadline"),
                );
            }
            AssertSpec::DeadlockBy(_) if has(&|x| matches!(x, AssertSpec::NoDeadlock)) => {
                issues.push(
                    ScnIssue::new(
                        IssueCode::UnsatisfiableAssert,
                        *span,
                        "`deadlock-by` contradicts `assert no-deadlock` in the same scenario",
                    )
                    .hint("keep exactly one of the two"),
                );
            }
            AssertSpec::WatchdogTrips(cmp, Num::Lit(n)) if !wd_armed && !cmp.test(0, *n) => {
                // Without a watchdog the trip count is identically 0.
                issues.push(
                    ScnIssue::new(
                        IssueCode::UnsatisfiableAssert,
                        *span,
                        format!(
                            "`watchdog-trips {} {n}` can never hold: no watchdog is armed, \
                             so the trip count is always 0",
                            cmp.label()
                        ),
                    )
                    .hint("add a `watchdog window <dur>` directive"),
                );
            }
            AssertSpec::Episodes(cmp, Num::Lit(n)) if !wd_armed && !cmp.test(0, *n) => {
                issues.push(
                    ScnIssue::new(
                        IssueCode::UnsatisfiableAssert,
                        *span,
                        format!(
                            "`episodes {} {n}` can never hold: episodes are counted by \
                             the watchdog, and none is armed",
                            cmp.label()
                        ),
                    )
                    .hint("add a `watchdog window <dur>` directive"),
                );
            }
            AssertSpec::AttributionMatches if !wd_armed => {
                issues.push(
                    ScnIssue::new(
                        IssueCode::UnsatisfiableAssert,
                        *span,
                        "`attribution matches-ground-truth` can never hold: trigger \
                         attribution is computed by the watchdog, and none is armed",
                    )
                    .hint("add a `watchdog window <dur>` directive"),
                );
            }
            AssertSpec::Infeasible if has(&|x| matches!(x, AssertSpec::Feasible)) => {
                issues.push(
                    ScnIssue::new(
                        IssueCode::UnsatisfiableAssert,
                        *span,
                        "`infeasible` contradicts `assert feasible` in the same scenario",
                    )
                    .hint("keep exactly one of the two"),
                );
            }
            AssertSpec::Recoveries(cmp, Num::Lit(n)) if !s.recovery && !cmp.test(0, *n) => {
                issues.push(
                    ScnIssue::new(
                        IssueCode::UnsatisfiableAssert,
                        *span,
                        format!(
                            "`recoveries {} {n}` can never hold: detect-and-break \
                             recovery is not enabled",
                            cmp.label()
                        ),
                    )
                    .hint("add a `recovery on` directive"),
                );
            }
            _ => {}
        }
    }

    // Node-name checks need a concrete, locally-buildable topology.
    let topo = match &s.topo {
        TopoSpec::ClosSmall => Some(tagger_topo::ClosConfig::small().build()),
        TopoSpec::ClosMedium => Some(tagger_topo::ClosConfig::medium().build()),
        TopoSpec::ClosHosts(Num::Lit(h)) => Some(crate::expand::clos_for_hosts(*h).build()),
        TopoSpec::BCube {
            n: Num::Lit(n),
            k: Num::Lit(k),
        } if *n >= 2 && *k >= 1 => Some(tagger_topo::bcube(*n as usize, *k as usize)),
        _ => None,
    };
    if let Some(topo) = topo {
        let mut check = |name: &str| {
            if topo.node_by_name(name).is_none() {
                let nearest = nearest_names(&topo, name);
                let mut issue = ScnIssue::new(
                    IssueCode::UnknownNode,
                    Span::whole_file(),
                    format!("unknown node `{name}` in this topology"),
                );
                if !nearest.is_empty() {
                    issue = issue.hint(format!("did you mean {}?", nearest.join(", ")));
                }
                issues.push(issue);
            }
        };
        for f in &s.flows {
            check(&f.src);
            check(&f.dst);
            for v in &f.via {
                check(v);
            }
        }
        for w in &s.workloads {
            match w {
                Workload::Incast { dst, .. } => check(dst),
                Workload::Shuffle { src, .. } => check(src),
                _ => {}
            }
        }
        for e in &s.events {
            match e {
                EventSpec::Fail { a, b, .. }
                | EventSpec::Restore { a, b, .. }
                | EventSpec::Flap { a, b, .. } => {
                    check(a);
                    check(b);
                }
                EventSpec::Route { sw, dst, via, .. } => {
                    check(sw);
                    check(dst);
                    check(via);
                }
                EventSpec::Mask { sw, nbr, .. } => {
                    check(sw);
                    check(nbr);
                }
                _ => {}
            }
        }
    }

    // Unbound sweep variables.
    let bound: Vec<&str> = s.sweeps.iter().map(|sw| sw.var.as_str()).collect();
    let check_num = |n: &Num, what: &str, issues: &mut Vec<ScnIssue>| {
        if let Num::Var(v) = n {
            if !bound.contains(&v.as_str()) {
                issues.push(
                    ScnIssue::new(
                        IssueCode::BadArgument,
                        Span::whole_file(),
                        format!("`${v}` in {what} is not bound by any `sweep` directive"),
                    )
                    .hint(format!(
                        "add `sweep {v} A..B` or replace `${v}` with a literal"
                    )),
                );
            }
        }
    };
    if let TopoSpec::ClosHosts(n) = &s.topo {
        check_num(n, "topo clos hosts", &mut issues);
    }
    for w in &s.workloads {
        match w {
            Workload::Incast { k, .. } | Workload::Shuffle { k, .. } => {
                check_num(k, "workload", &mut issues)
            }
            Workload::AllToAll { n, .. }
            | Workload::Websearch { n, .. }
            | Workload::Hadoop { n, .. } => check_num(n, "workload", &mut issues),
            Workload::Permutation { .. } => {}
        }
    }

    issues
}

/// Parses a `.scn` text, stopping at the first error — the runner entry
/// point.
pub fn parse(text: &str) -> Result<Scenario, ScnIssue> {
    let (s, issues) = parse_all(text);
    match issues.into_iter().next() {
        None => Ok(s),
        Some(issue) => Err(issue),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# Fig 10 without Tagger: the 1-bounce pair deadlocks.
scenario fig10_no_tagger
topo clos small
tagger off
end 4ms
flow H1 H13 via H1 T1 L1 S1 L3 S2 L4 T4 H13
flow H9 H1 @20% via H9 T3 L3 S2 L1 S1 L2 T1 H1
assert deadlock-by 4ms
assert lossless-drops == 0
";

    #[test]
    fn good_scenario_parses_clean() {
        let s = parse(GOOD).unwrap();
        assert_eq!(s.name, "fig10_no_tagger");
        assert_eq!(s.end_ns, 4_000_000);
        assert_eq!(s.flows.len(), 2);
        assert_eq!(s.flows[1].at, TimeSpec::Pct(20));
        assert_eq!(s.flows[1].via.len(), 9);
        assert_eq!(s.asserts.len(), 2);
    }

    #[test]
    fn unknown_directive_has_span_and_hint() {
        let (_, issues) = parse_all("scenario x\nfrobnicate y\nassert no-deadlock\n");
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].code, IssueCode::UnknownDirective);
        assert_eq!(issues[0].span, Span::new(2, 1, "frobnicate".len()));
        assert!(issues[0].hint.as_ref().unwrap().contains("workload"));
    }

    #[test]
    fn missing_assert_is_reported() {
        let (_, issues) = parse_all("scenario x\ntopo clos small\n");
        assert!(issues.iter().any(|i| i.code == IssueCode::MissingAssert));
    }

    #[test]
    fn unsatisfiable_asserts_are_caught() {
        let (_, issues) =
            parse_all("scenario x\nend 1ms\nassert deadlock-by 2ms\nassert watchdog-trips >= 1\n");
        let codes: Vec<IssueCode> = issues.iter().map(|i| i.code).collect();
        assert_eq!(
            codes,
            vec![
                IssueCode::UnsatisfiableAssert,
                IssueCode::UnsatisfiableAssert
            ]
        );
        // deadlock-by beyond horizon points at the assert line.
        assert_eq!(issues[0].span.line, 3);
    }

    #[test]
    fn feasibility_asserts_parse_and_conflict() {
        let s = parse("scenario x\nassert feasible\n").unwrap();
        assert_eq!(s.asserts[0].0, AssertSpec::Feasible);
        let s = parse("scenario x\nassert infeasible\n").unwrap();
        assert_eq!(s.asserts[0].0, AssertSpec::Infeasible);
        let (_, issues) = parse_all("scenario x\nassert feasible\nassert infeasible\n");
        assert!(
            issues
                .iter()
                .any(|i| i.code == IssueCode::UnsatisfiableAssert
                    && i.message.contains("contradicts"))
        );
        // The unknown-assert hint advertises the new kinds.
        let (_, issues) = parse_all("scenario x\nassert bogus\n");
        assert!(issues[0].hint.as_ref().unwrap().contains("infeasible"));
    }

    #[test]
    fn contradicting_deadlock_asserts_conflict() {
        let (_, issues) = parse_all("scenario x\nassert no-deadlock\nassert deadlock-by 1ms\n");
        assert!(
            issues
                .iter()
                .any(|i| i.code == IssueCode::UnsatisfiableAssert
                    && i.message.contains("contradicts"))
        );
    }

    #[test]
    fn unknown_node_gets_did_you_mean() {
        let (_, issues) =
            parse_all("scenario x\ntopo clos small\nflow H1 H99\nassert no-deadlock\n");
        let issue = issues
            .iter()
            .find(|i| i.code == IssueCode::UnknownNode)
            .unwrap();
        assert!(issue.message.contains("H99"));
        assert!(issue.hint.as_ref().unwrap().contains("did you mean"));
    }

    #[test]
    fn duplicate_singletons_are_flagged() {
        let (_, issues) = parse_all("scenario x\nend 1ms\nend 2ms\nassert no-deadlock\n");
        assert!(issues
            .iter()
            .any(|i| i.code == IssueCode::DuplicateDirective && i.span.line == 3));
    }

    #[test]
    fn sweep_and_vars_parse() {
        let text = "\
scenario sweepy
topo clos hosts $hosts
sweep hosts 32..128 step *2
workload incast 4 H1
assert no-deadlock
";
        let s = parse(text).unwrap();
        assert_eq!(s.sweeps.len(), 1);
        assert_eq!(s.sweeps[0].values(), vec![32, 64, 128]);
        assert_eq!(s.topo, TopoSpec::ClosHosts(Num::Var("hosts".into())));
    }

    #[test]
    fn unbound_sweep_var_is_an_error() {
        let (_, issues) = parse_all("scenario x\ntopo clos hosts $hosts\nassert no-deadlock\n");
        assert!(issues
            .iter()
            .any(|i| i.code == IssueCode::BadArgument && i.message.contains("$hosts")));
    }

    #[test]
    fn durations_and_comments() {
        let s = parse("scenario t # trailing\nend 250us # comment\nassert no-deadlock\n").unwrap();
        assert_eq!(s.end_ns, 250_000);
        assert_eq!(parse_dur("1_000ns"), Some(Num::Lit(1_000)));
        assert_eq!(parse_dur("2ms"), Some(Num::Lit(2_000_000)));
        assert_eq!(parse_dur("$t"), Some(Num::Var("t".into())));
        assert_eq!(parse_at("@40%"), Some(TimeSpec::Pct(40)));
        assert!(parse_at("@140%").is_none());
    }
}
