//! Suite results: per-scenario, per-sweep-point pass/fail with the
//! metrics that justify the verdict. The JSON rendering is hand-rolled
//! and byte-stable — same scenarios, same seed, same bytes — so CI can
//! diff two runs directly (the determinism gate).

use crate::asserts::AssertOutcome;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Seed-stable counters extracted from one finished run. Integers only:
/// no floats, no wall-clock values, so the JSON is diffable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PointMetrics {
    /// Simulator events processed (the throughput denominator).
    pub events_processed: u64,
    /// Total bytes delivered across flows.
    pub delivered_bytes: u64,
    /// PFC PAUSE frames sent.
    pub pauses_sent: u64,
    /// Lossless-class drops (must stay 0 outside recovery/watchdog-drop).
    pub lossless_drops: u64,
    /// Lossy-class drops.
    pub lossy_drops: u64,
    /// Watchdog trips (0 when unarmed).
    pub watchdog_trips: u64,
    /// Deadlock episodes observed by the watchdog.
    pub episodes: u64,
    /// Detect-and-break recoveries.
    pub recoveries: u64,
    /// Longest mid-flow stall, in nanoseconds.
    pub max_pause_ns: u64,
    /// Deadlock confirmation time, when one was confirmed.
    pub deadlock_at_ns: Option<u64>,
}

impl PointMetrics {
    /// Extracts the stable counters from a report.
    pub fn from_report(report: &tagger_sim::SimReport) -> PointMetrics {
        PointMetrics {
            events_processed: report.events_processed,
            delivered_bytes: report.total_delivered_bytes(),
            pauses_sent: report.pauses_sent,
            lossless_drops: report.lossless_drops,
            lossy_drops: report.lossy_drops,
            watchdog_trips: report.watchdog.as_ref().map_or(0, |w| w.stats.trips),
            episodes: report.watchdog.as_ref().map_or(0, |w| w.episodes),
            recoveries: report.recoveries,
            max_pause_ns: crate::asserts::max_pause_ns(report),
            deadlock_at_ns: report.deadlock.as_ref().map(|d| d.detected_at),
        }
    }
}

/// One sweep point's verdict.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// The sweep variable bindings (empty for an unswept scenario).
    pub vars: BTreeMap<String, u64>,
    /// Every assert, evaluated.
    pub asserts: Vec<AssertOutcome>,
    /// The run's counters.
    pub metrics: PointMetrics,
}

impl PointResult {
    /// All asserts passed.
    pub fn pass(&self) -> bool {
        self.asserts.iter().all(|a| a.pass)
    }
}

/// One scenario's verdict across its sweep grid.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// The `scenario` name from the file.
    pub name: String,
    /// The `.scn` path as given to the runner.
    pub file: String,
    /// The seed the runs used (after any `--seed` override).
    pub seed: u64,
    /// Event-queue backend label (`timing-wheel` / `binary-heap`).
    pub queue: String,
    /// One result per sweep point, grid order.
    pub points: Vec<PointResult>,
    /// Set when expansion failed (the points list is then empty).
    pub error: Option<String>,
}

impl ScenarioResult {
    /// Every point passed and expansion succeeded.
    pub fn pass(&self) -> bool {
        self.error.is_none() && self.points.iter().all(PointResult::pass)
    }
}

/// A whole runner invocation.
#[derive(Clone, Debug, Default)]
pub struct SuiteReport {
    /// One entry per scenario file, in run order.
    pub scenarios: Vec<ScenarioResult>,
}

impl SuiteReport {
    /// The suite verdict.
    pub fn pass(&self) -> bool {
        self.scenarios.iter().all(ScenarioResult::pass)
    }

    /// Human summary, one line per scenario plus failing-assert detail.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.scenarios {
            let verdict = if s.pass() { "PASS" } else { "FAIL" };
            let _ = writeln!(
                out,
                "{verdict} {} ({}, seed {}, {}, {} point{})",
                s.name,
                s.file,
                s.seed,
                s.queue,
                s.points.len(),
                if s.points.len() == 1 { "" } else { "s" },
            );
            if let Some(e) = &s.error {
                let _ = writeln!(out, "  error: {e}");
            }
            for p in &s.points {
                for a in p.asserts.iter().filter(|a| !a.pass) {
                    let vars = render_vars(&p.vars);
                    let _ = writeln!(
                        out,
                        "  FAIL {}:{} assert {}{vars}: {}",
                        s.file, a.span.line, a.label, a.detail
                    );
                }
            }
        }
        let (pass, total) = (
            self.scenarios.iter().filter(|s| s.pass()).count(),
            self.scenarios.len(),
        );
        let _ = writeln!(out, "{pass}/{total} scenarios passed");
        out
    }

    /// Machine JSON, two-space indented, trailing newline, byte-stable.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"scenarios\": [");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": {},", json_str(&s.name));
            let _ = writeln!(out, "      \"file\": {},", json_str(&s.file));
            let _ = writeln!(out, "      \"seed\": {},", s.seed);
            let _ = writeln!(out, "      \"queue\": {},", json_str(&s.queue));
            let _ = writeln!(out, "      \"pass\": {},", s.pass());
            if let Some(e) = &s.error {
                let _ = writeln!(out, "      \"error\": {},", json_str(e));
            }
            out.push_str("      \"points\": [");
            for (j, p) in s.points.iter().enumerate() {
                out.push_str(if j == 0 { "\n" } else { ",\n" });
                out.push_str("        {\n");
                out.push_str("          \"vars\": {");
                for (k, (var, val)) in p.vars.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{}: {val}", json_str(var));
                }
                out.push_str("},\n");
                let _ = writeln!(out, "          \"pass\": {},", p.pass());
                out.push_str("          \"asserts\": [");
                for (k, a) in p.asserts.iter().enumerate() {
                    out.push_str(if k == 0 { "\n" } else { ",\n" });
                    let _ = write!(
                        out,
                        "            {{\"label\": {}, \"line\": {}, \"pass\": {}, \"detail\": {}}}",
                        json_str(&a.label),
                        a.span.line,
                        a.pass,
                        json_str(&a.detail)
                    );
                }
                out.push_str("\n          ],\n");
                let m = &p.metrics;
                out.push_str("          \"metrics\": {\n");
                let _ = writeln!(
                    out,
                    "            \"events_processed\": {},",
                    m.events_processed
                );
                let _ = writeln!(
                    out,
                    "            \"delivered_bytes\": {},",
                    m.delivered_bytes
                );
                let _ = writeln!(out, "            \"pauses_sent\": {},", m.pauses_sent);
                let _ = writeln!(out, "            \"lossless_drops\": {},", m.lossless_drops);
                let _ = writeln!(out, "            \"lossy_drops\": {},", m.lossy_drops);
                let _ = writeln!(out, "            \"watchdog_trips\": {},", m.watchdog_trips);
                let _ = writeln!(out, "            \"episodes\": {},", m.episodes);
                let _ = writeln!(out, "            \"recoveries\": {},", m.recoveries);
                let _ = writeln!(out, "            \"max_pause_ns\": {},", m.max_pause_ns);
                match m.deadlock_at_ns {
                    Some(t) => {
                        let _ = writeln!(out, "            \"deadlock_at_ns\": {t}");
                    }
                    None => out.push_str("            \"deadlock_at_ns\": null\n"),
                }
                out.push_str("          }\n        }");
            }
            out.push_str("\n      ]\n    }");
        }
        out.push_str("\n  ],\n");
        let _ = writeln!(out, "  \"pass\": {}", self.pass());
        out.push_str("}\n");
        out
    }
}

fn render_vars(vars: &BTreeMap<String, u64>) -> String {
    if vars.is_empty() {
        return String::new();
    }
    let body: Vec<String> = vars.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!(" [{}]", body.join(" "))
}

/// Minimal JSON string escaping (control chars, quote, backslash).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tagger_core::Span;

    fn sample() -> SuiteReport {
        SuiteReport {
            scenarios: vec![ScenarioResult {
                name: "fig10".into(),
                file: "examples/scenarios/fig10.scn".into(),
                seed: 1,
                queue: "timing-wheel".into(),
                points: vec![PointResult {
                    vars: BTreeMap::from([("hosts".to_string(), 32u64)]),
                    asserts: vec![AssertOutcome {
                        label: "no-deadlock".into(),
                        span: Span::new(9, 1, 6),
                        pass: true,
                        detail: "no deadlock".into(),
                    }],
                    metrics: PointMetrics {
                        events_processed: 1000,
                        ..PointMetrics::default()
                    },
                }],
                error: None,
            }],
        }
    }

    #[test]
    fn json_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
        assert!(sample().to_json().ends_with("\"pass\": true\n}\n"));
    }

    #[test]
    fn failing_assert_fails_the_suite() {
        let mut r = sample();
        r.scenarios[0].points[0].asserts[0].pass = false;
        assert!(!r.pass());
        assert!(r.render().contains("FAIL"));
    }

    #[test]
    fn expansion_error_fails_the_scenario() {
        let mut r = sample();
        r.scenarios[0].error = Some("unknown node `H99`".into());
        assert!(!r.pass());
        assert!(r.to_json().contains("\"error\": \"unknown node `H99`\""));
    }
}
