//! The parsed form of a `.scn` scenario: everything the DSL can say,
//! with sweep variables still symbolic (`$hosts`) until expansion
//! resolves them against a sweep point.

use tagger_core::Span;

/// An integer argument: a literal, or a `$var` resolved from the active
/// sweep point at expansion time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Num {
    /// A literal value.
    Lit(u64),
    /// A sweep variable reference (`$hosts`).
    Var(String),
}

impl Num {
    /// Resolves against a sweep point. Returns `None` for an unbound
    /// variable (parse validation rejects those up front).
    pub fn resolve(&self, point: &std::collections::BTreeMap<String, u64>) -> Option<u64> {
        match self {
            Num::Lit(v) => Some(*v),
            Num::Var(name) => point.get(name).copied(),
        }
    }
}

/// A time argument: absolute nanoseconds (possibly swept) or a percent
/// of the scenario horizon (`@20%`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TimeSpec {
    /// Absolute nanoseconds.
    Ns(Num),
    /// Percent of `end` (0–100).
    Pct(u64),
}

impl TimeSpec {
    /// Time zero.
    pub fn zero() -> TimeSpec {
        TimeSpec::Ns(Num::Lit(0))
    }

    /// Resolves to nanoseconds given the horizon and sweep point.
    pub fn resolve(
        &self,
        end_ns: u64,
        point: &std::collections::BTreeMap<String, u64>,
    ) -> Option<u64> {
        match self {
            TimeSpec::Ns(n) => n.resolve(point),
            TimeSpec::Pct(p) => Some(end_ns / 100 * p),
        }
    }
}

/// Which fabric the scenario runs on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopoSpec {
    /// The paper's testbed Clos (`ClosConfig::small`).
    ClosSmall,
    /// The 128-host Clos (`ClosConfig::medium`).
    ClosMedium,
    /// A 2-pod Clos skeleton scaled to roughly `hosts` hosts (the sweep
    /// axis `sweep hosts 32..1024` runs on).
    ClosHosts(Num),
    /// BCube(n, k).
    BCube {
        /// Ports per mini-switch.
        n: Num,
        /// Levels - 1.
        k: Num,
    },
    /// Topology (and rule tables) loaded from an audit checkpoint file.
    Checkpoint(String),
}

/// How the Tagger rule tables are produced.
#[derive(Clone, Debug, PartialEq)]
pub enum TaggerMode {
    /// No tagging: one lossless priority, no rules — the baseline.
    Off,
    /// `clos_tagging` with `k` bounces (BCube topologies compile the
    /// multi-path ELP instead; the bounce count is ignored there).
    Bounces(Num),
    /// Tables managed by a `tagger-ctrl` controller (1-bounce policy):
    /// `fail` events feed the controller and its committed deltas are
    /// applied at the matching `reconverge`.
    Controller,
    /// Controller behind a seeded chaotic southbound (`seed`,
    /// `fail_rate`): the fabric runs whatever the barrier left installed.
    Chaos {
        /// Chaos schedule seed.
        seed: Num,
        /// Refusal rate, 0.0–1.0.
        rate: f64,
    },
    /// The adversarial identity program (`unsafe_identity_rules`) whose
    /// dependency graph contains the Fig. 3 CBD.
    UnsafeIdentity,
    /// Rules come from the `checkpoint` topology source.
    FromCheckpoint,
}

/// One explicit flow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowDecl {
    /// Source host name.
    pub src: String,
    /// Destination host name.
    pub dst: String,
    /// Start time.
    pub at: TimeSpec,
    /// Byte limit (`None` = persistent).
    pub limit: Option<Num>,
    /// Pinned path (node names, src..dst inclusive); empty = FIB-routed.
    pub via: Vec<String>,
}

/// A named traffic pattern expanded into flows at instantiation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Workload {
    /// `k` sources (first `k` hosts ≠ dst, id order) into one host.
    Incast {
        /// Fan-in.
        k: Num,
        /// Destination host name.
        dst: String,
        /// Start time.
        at: TimeSpec,
    },
    /// One host fanning out to `k` destinations.
    Shuffle {
        /// Source host name.
        src: String,
        /// Fan-out.
        k: Num,
        /// Start time.
        at: TimeSpec,
    },
    /// A seeded derangement over every host (each sends to one other).
    Permutation {
        /// Start time.
        at: TimeSpec,
    },
    /// First `n` hosts, every ordered pair (the shuffle matrix).
    AllToAll {
        /// Participants.
        n: Num,
        /// Start time.
        at: TimeSpec,
    },
    /// `n` random flows with websearch-like (heavy-tailed) sizes.
    Websearch {
        /// Flow count.
        n: Num,
        /// Start time.
        at: TimeSpec,
    },
    /// `n` random flows with hadoop-like (small-shard) sizes.
    Hadoop {
        /// Flow count.
        n: Num,
        /// Start time.
        at: TimeSpec,
    },
}

/// A scheduled network event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventSpec {
    /// Link A–B dies; the FIB degrades to stale-routes-with-local-detours
    /// at the same instant (the §3.2 transient window).
    Fail {
        /// One endpoint name.
        a: String,
        /// Other endpoint name.
        b: String,
        /// When.
        at: TimeSpec,
    },
    /// `n` seeded random switch-switch links die at once.
    FailRandom {
        /// How many links.
        n: Num,
        /// When.
        at: TimeSpec,
    },
    /// Link A–B comes back (routing unchanged until `reconverge`).
    Restore {
        /// One endpoint name.
        a: String,
        /// Other endpoint name.
        b: String,
        /// When.
        at: TimeSpec,
    },
    /// Routing reconverges: global shortest paths avoiding every link
    /// still down. Controller modes also apply their committed deltas
    /// here.
    Reconverge {
        /// When.
        at: TimeSpec,
    },
    /// Link A–B bounces down/up `times` times, `gap` apart (rolling
    /// link-flap workload). Routing is left alone — flaps model the
    /// pre-reconvergence churn.
    Flap {
        /// One endpoint name.
        a: String,
        /// Other endpoint name.
        b: String,
        /// First down instant.
        at: TimeSpec,
        /// Down/up pairs.
        times: Num,
        /// Time between transitions.
        gap: TimeSpec,
    },
    /// Install a bad route: `sw` forwards `dst`-bound traffic via `via`
    /// from `at` on (the Fig. 11 loop generator).
    Route {
        /// The switch to misprogram.
        sw: String,
        /// Destination host whose traffic is redirected.
        dst: String,
        /// The (adjacent) next hop.
        via: String,
        /// When.
        at: TimeSpec,
    },
    /// Quarantine the `sw`→`nbr` hop: reinstall the tables minus every
    /// rule leaving through it (`mask_hop`).
    Mask {
        /// The switch.
        sw: String,
        /// The neighbour whose port is masked.
        nbr: String,
        /// When.
        at: TimeSpec,
    },
    /// Replay the link events of a `tagger-ctrld` trace file, one trace
    /// line per `gap`, starting at `at`.
    Trace {
        /// Path to the trace, relative to the `.scn` file.
        path: String,
        /// First event instant.
        at: TimeSpec,
        /// Spacing between trace lines.
        gap: TimeSpec,
    },
}

/// Comparison operator in counting asserts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `==`
    Eq,
    /// `>=`
    Ge,
    /// `<=`
    Le,
}

impl Cmp {
    /// Applies the comparison.
    pub fn test(self, actual: u64, expect: u64) -> bool {
        match self {
            Cmp::Eq => actual == expect,
            Cmp::Ge => actual >= expect,
            Cmp::Le => actual <= expect,
        }
    }

    /// Renders the operator.
    pub fn label(self) -> &'static str {
        match self {
            Cmp::Eq => "==",
            Cmp::Ge => ">=",
            Cmp::Le => "<=",
        }
    }
}

/// One `assert` line: the invariant the run must satisfy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssertSpec {
    /// The structural detector never confirms a deadlock.
    NoDeadlock,
    /// A deadlock is confirmed at or before this time.
    DeadlockBy(TimeSpec),
    /// Watchdog trip count compares as given (0 when unarmed is an
    /// unsatisfiable `>= 1`).
    WatchdogTrips(Cmp, Num),
    /// Deadlock episode count (confirmed-SCC formations) compares.
    Episodes(Cmp, Num),
    /// Detect-and-break recovery count compares.
    Recoveries(Cmp, Num),
    /// Lossless drop count compares (the PFC contract check).
    LosslessDrops(Cmp, Num),
    /// No flow's mid-stream stall (consecutive zero-rate samples between
    /// its first and last delivery) exceeds this duration.
    MaxPause(TimeSpec),
    /// The watchdog's initial-trigger attribution matches the
    /// simulator's independent ground truth.
    AttributionMatches,
    /// The existence oracle proves a deadlock-free tagging of the
    /// scenario's ELP fits in the tag budget its `tagger` mode provides
    /// (static — no simulation consulted).
    Feasible,
    /// The existence oracle proves no deadlock-free tagging fits in the
    /// mode's tag budget (static — no simulation consulted).
    Infeasible,
}

impl std::fmt::Display for Num {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Num::Lit(v) => write!(f, "{v}"),
            Num::Var(name) => write!(f, "${name}"),
        }
    }
}

impl std::fmt::Display for TimeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeSpec::Ns(n) => write!(f, "{n}ns"),
            TimeSpec::Pct(p) => write!(f, "{p}%"),
        }
    }
}

impl AssertSpec {
    /// Renders the assert as written in the DSL (report labels).
    pub fn label(&self) -> String {
        match self {
            AssertSpec::NoDeadlock => "no-deadlock".to_string(),
            AssertSpec::DeadlockBy(t) => format!("deadlock-by {t}"),
            AssertSpec::WatchdogTrips(c, n) => format!("watchdog-trips {} {n}", c.label()),
            AssertSpec::Episodes(c, n) => format!("episodes {} {n}", c.label()),
            AssertSpec::Recoveries(c, n) => format!("recoveries {} {n}", c.label()),
            AssertSpec::LosslessDrops(c, n) => format!("lossless-drops {} {n}", c.label()),
            AssertSpec::MaxPause(t) => format!("max-pause {t}"),
            AssertSpec::AttributionMatches => "attribution matches-ground-truth".to_string(),
            AssertSpec::Feasible => "feasible".to_string(),
            AssertSpec::Infeasible => "infeasible".to_string(),
        }
    }
}

/// Watchdog arming.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WatchdogDecl {
    /// Trip window.
    pub window: TimeSpec,
    /// `true` = drop policy, `false` = demote (default).
    pub drop: bool,
}

/// A sweep axis: `sweep hosts 32..1024 step *2`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sweep {
    /// Variable name (`$name` references resolve to the point value).
    pub var: String,
    /// Inclusive start.
    pub from: u64,
    /// Inclusive end.
    pub to: u64,
    /// Multiplicative step (`*k`), or additive when `false`.
    pub mul: bool,
    /// Step size.
    pub step: u64,
}

impl Sweep {
    /// The values this axis takes.
    pub fn values(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut v = self.from;
        while v <= self.to {
            out.push(v);
            let next = if self.mul {
                v.saturating_mul(self.step)
            } else {
                v.saturating_add(self.step)
            };
            if next <= v {
                break;
            }
            v = next;
        }
        out
    }
}

/// A fully parsed scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (`scenario` directive; defaults to the file stem).
    pub name: String,
    /// Fabric.
    pub topo: TopoSpec,
    /// Rule-table source.
    pub tagger: TaggerMode,
    /// Seed for workload/failure randomness.
    pub seed: u64,
    /// Horizon in nanoseconds.
    pub end_ns: u64,
    /// Event-queue backend override (`None` = simulator default).
    pub queue_heap: Option<bool>,
    /// Fig. 8 old-tag transition mode when `true`.
    pub old_tag_transition: bool,
    /// Switch buffer override in bytes.
    pub buffer_bytes: Option<Num>,
    /// PFC pause quanta (timer/refresh mode) when set.
    pub pause_quanta: Option<TimeSpec>,
    /// Detect-and-break recovery enabled.
    pub recovery: bool,
    /// PFC watchdog, when armed.
    pub watchdog: Option<WatchdogDecl>,
    /// DCQCN-lite congestion control enabled.
    pub dcqcn: bool,
    /// Explicit flows, in declaration order.
    pub flows: Vec<FlowDecl>,
    /// Workloads, in declaration order.
    pub workloads: Vec<Workload>,
    /// Scheduled events, in declaration order.
    pub events: Vec<EventSpec>,
    /// The assert block, with the span of each line (for lint).
    pub asserts: Vec<(AssertSpec, Span)>,
    /// Sweep axes (cartesian product).
    pub sweeps: Vec<Sweep>,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            name: String::new(),
            topo: TopoSpec::ClosSmall,
            tagger: TaggerMode::Off,
            seed: 1,
            end_ns: 4_000_000,
            queue_heap: None,
            old_tag_transition: false,
            buffer_bytes: None,
            pause_quanta: None,
            recovery: false,
            watchdog: None,
            dcqcn: false,
            flows: Vec::new(),
            workloads: Vec::new(),
            events: Vec::new(),
            asserts: Vec::new(),
            sweeps: Vec::new(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn sweep_values_multiplicative_and_additive() {
        let s = Sweep {
            var: "hosts".into(),
            from: 32,
            to: 1024,
            mul: true,
            step: 2,
        };
        assert_eq!(s.values(), vec![32, 64, 128, 256, 512, 1024]);
        let a = Sweep {
            var: "n".into(),
            from: 1,
            to: 4,
            mul: false,
            step: 1,
        };
        assert_eq!(a.values(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn num_and_time_resolution() {
        let mut point = std::collections::BTreeMap::new();
        point.insert("hosts".to_string(), 64u64);
        assert_eq!(Num::Lit(3).resolve(&point), Some(3));
        assert_eq!(Num::Var("hosts".into()).resolve(&point), Some(64));
        assert_eq!(Num::Var("missing".into()).resolve(&point), None);
        assert_eq!(TimeSpec::Pct(20).resolve(1_000_000, &point), Some(200_000));
        assert_eq!(
            TimeSpec::Ns(Num::Lit(5)).resolve(1_000_000, &point),
            Some(5)
        );
    }
}
