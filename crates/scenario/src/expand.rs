//! Deterministic expansion of a parsed [`Scenario`] into a configured
//! simulator: topology and rule tables from the `tagger` mode, workloads
//! into flow sets, failure/bounce schedules into scripted actions — all
//! seeded, so the same scenario at the same seed builds the same run,
//! byte for byte.

use crate::model::*;
use rand::{rngs::StdRng, seq::SliceRandom, RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::path::PathBuf;
use tagger_core::clos::clos_tagging;
use tagger_routing::Fib;
use tagger_sim::experiments::{
    mask_hop, testbed_switch_config, unsafe_identity_rules, Experiment, TESTBED_PFC_DELAY_NS,
};
use tagger_sim::{Action, FlowSpec, QueueKind, SimConfig, Simulator};
use tagger_switch::{SwitchConfig, WatchdogConfig, WatchdogPolicy};
use tagger_topo::{ClosConfig, FailureSet, LinkId, NodeId, Topology};

/// Runner-level overrides for one expansion.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Overrides the scenario's `seed` directive.
    pub seed: Option<u64>,
    /// Overrides the event-queue backend (the bench runs both).
    pub queue: Option<QueueKind>,
    /// Directory `checkpoint`/`trace` paths resolve against (the `.scn`
    /// file's directory).
    pub base_dir: PathBuf,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            seed: None,
            queue: None,
            base_dir: PathBuf::from("."),
        }
    }
}

/// Why an expansion failed (all config-level: the parser accepts the
/// file, but the fabric cannot realize it).
#[derive(Clone, Debug)]
pub struct ExpandError {
    /// Human-readable cause.
    pub message: String,
}

impl std::fmt::Display for ExpandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ExpandError {}

fn err(message: impl Into<String>) -> ExpandError {
    ExpandError {
        message: message.into(),
    }
}

/// The 2-pod Clos skeleton scaled to roughly `hosts` hosts (4 ToRs, so
/// `hosts_per_tor = hosts / 4`, minimum 1) — the `sweep hosts` axis.
pub fn clos_for_hosts(hosts: u64) -> ClosConfig {
    ClosConfig {
        hosts_per_tor: (hosts as usize / 4).max(1),
        ..ClosConfig::small()
    }
}

/// The cartesian sweep grid: one `BTreeMap` of variable bindings per
/// point. A scenario without sweeps yields exactly one empty point.
pub fn points(s: &Scenario) -> Vec<BTreeMap<String, u64>> {
    let mut grid: Vec<BTreeMap<String, u64>> = vec![BTreeMap::new()];
    for sweep in &s.sweeps {
        let mut next = Vec::new();
        for point in &grid {
            for v in sweep.values() {
                let mut p = point.clone();
                p.insert(sweep.var.clone(), v);
                next.push(p);
            }
        }
        grid = next;
    }
    grid
}

struct NumCtx<'a> {
    point: &'a BTreeMap<String, u64>,
    end_ns: u64,
}

impl NumCtx<'_> {
    fn num(&self, n: &Num, what: &str) -> Result<u64, ExpandError> {
        n.resolve(self.point)
            .ok_or_else(|| err(format!("unbound sweep variable in {what}")))
    }

    fn time(&self, t: &TimeSpec, what: &str) -> Result<u64, ExpandError> {
        t.resolve(self.end_ns, self.point)
            .ok_or_else(|| err(format!("unbound sweep variable in {what}")))
    }
}

fn node(topo: &Topology, name: &str) -> Result<NodeId, ExpandError> {
    topo.node_by_name(name)
        .ok_or_else(|| err(format!("unknown node `{name}`")))
}

fn link(topo: &Topology, a: &str, b: &str) -> Result<LinkId, ExpandError> {
    let (a_id, b_id) = (node(topo, a)?, node(topo, b)?);
    topo.link_between(a_id, b_id)
        .ok_or_else(|| err(format!("`{a}` and `{b}` are not adjacent")))
}

/// The egress port of `sw` facing `nbr`.
fn port_towards(
    topo: &Topology,
    sw: NodeId,
    nbr: NodeId,
) -> Result<tagger_topo::PortId, ExpandError> {
    topo.neighbors(sw)
        .find(|&(_, _, peer)| peer == nbr)
        .map(|(p, _, _)| p)
        .ok_or_else(|| err("mask endpoints are not adjacent"))
}

/// Websearch-style flow sizes (heavy tail, bytes).
const WEBSEARCH_BYTES: [u64; 6] = [30_000, 80_000, 200_000, 600_000, 2_000_000, 10_000_000];
/// Hadoop-style flow sizes (small shards, bytes).
const HADOOP_BYTES: [u64; 5] = [10_000, 30_000, 60_000, 120_000, 500_000];

/// Builds the fabric + rules for one point and instantiates the
/// scenario into a ready-to-run [`Experiment`].
pub fn instantiate(
    s: &Scenario,
    point: &BTreeMap<String, u64>,
    opts: &RunOptions,
) -> Result<Experiment, ExpandError> {
    let seed = opts.seed.unwrap_or(s.seed);
    let end_ns = s.end_ns;
    let ctx = NumCtx { point, end_ns };

    // --- Topology + rule tables -------------------------------------
    let mut checkpoint_rules = None;
    let topo = match &s.topo {
        TopoSpec::ClosSmall => ClosConfig::small().build(),
        TopoSpec::ClosMedium => ClosConfig::medium().build(),
        TopoSpec::ClosHosts(n) => clos_for_hosts(ctx.num(n, "topo clos hosts")?).build(),
        TopoSpec::BCube { n, k } => {
            let (n, k) = (ctx.num(n, "bcube n")?, ctx.num(k, "bcube k")?);
            if n < 2 || k < 1 {
                return Err(err("bcube needs n >= 2 and k >= 1"));
            }
            tagger_topo::bcube(n as usize, k as usize)
        }
        TopoSpec::Checkpoint(path) => {
            let full = opts.base_dir.join(path);
            let text = std::fs::read_to_string(&full)
                .map_err(|e| err(format!("cannot read checkpoint {}: {e}", full.display())))?;
            let ckpt = tagger_audit::checkpoint::parse(&text)
                .map_err(|e| err(format!("checkpoint {}: {e}", full.display())))?;
            checkpoint_rules = Some(ckpt.rules);
            ckpt.topo
        }
    };

    // Controller modes stage deltas here; `reconverge` applies them.
    let mut controller = None;
    let mut chaos_sb = None;
    let (rules, queues) = match &s.tagger {
        TaggerMode::Off => (None, 1u8),
        TaggerMode::Bounces(k) => {
            let k = ctx.num(k, "tagger bounces")? as usize;
            if matches!(s.topo, TopoSpec::BCube { .. }) {
                use tagger_core::{Elp, Tagging};
                let (n, kk) = match &s.topo {
                    TopoSpec::BCube { n, k } => (ctx.num(n, "bcube n")?, ctx.num(k, "bcube k")?),
                    _ => unreachable!(),
                };
                let cfg = tagger_topo::BCubeConfig {
                    n: n as usize,
                    k: kk as usize,
                };
                let elp = Elp::from_paths(tagger_routing::bcube_paths(&cfg, &topo, true));
                let tagging = Tagging::from_elp(&topo, &elp)
                    .map_err(|e| err(format!("bcube tagging: {e:?}")))?;
                let q = tagging.num_lossless_tags_on(&topo) as u8;
                (Some(tagging.rules().clone()), q)
            } else {
                let tagging =
                    clos_tagging(&topo, k).map_err(|e| err(format!("clos tagging: {e:?}")))?;
                (Some(tagging.rules().clone()), (k + 1) as u8)
            }
        }
        TaggerMode::Controller => {
            let ctrl =
                tagger_ctrl::Controller::new(topo.clone(), tagger_ctrl::ElpPolicy::with_bounces(1))
                    .map_err(|e| err(format!("controller bootstrap: {e}")))?;
            let rules = ctrl.committed().rules.clone();
            let q = rules.max_tag().map_or(1, |t| t.0 as u8).max(1);
            controller = Some(ctrl);
            (Some(rules), q)
        }
        TaggerMode::Chaos { seed: cseed, rate } => {
            use tagger_ctrl::Southbound;
            let ctrl =
                tagger_ctrl::Controller::new(topo.clone(), tagger_ctrl::ElpPolicy::with_bounces(1))
                    .map_err(|e| err(format!("controller bootstrap: {e}")))?;
            let rules = ctrl.committed().rules.clone();
            let q = rules.max_tag().map_or(1, |t| t.0 as u8).max(1);
            let mut sb = tagger_ctrl::ChaosSouthbound::new(tagger_ctrl::ChaosConfig::new(
                ctx.num(cseed, "chaos seed")?,
                *rate,
            ));
            sb.bootstrap(&rules);
            controller = Some(ctrl);
            chaos_sb = Some(sb);
            (Some(rules), q)
        }
        TaggerMode::UnsafeIdentity => (Some(unsafe_identity_rules(&topo)), 1),
        TaggerMode::FromCheckpoint => {
            let rules = checkpoint_rules
                .take()
                .ok_or_else(|| err("`tagger` mode is checkpoint but no `checkpoint` directive"))?;
            let q = rules.max_tag().map_or(1, |t| t.0 as u8).max(1);
            (Some(rules), q)
        }
    };
    // Watchdog demotion may need a lossy escape for every priority; the
    // switch model handles that internally, so `queues` stays as tagged.

    // --- SimConfig ---------------------------------------------------
    let mut switch = testbed_switch_config(queues);
    if let Some(b) = &s.buffer_bytes {
        switch.buffer_bytes = ctx.num(b, "buffer")?;
    }
    if s.dcqcn {
        switch = SwitchConfig {
            ecn_threshold_bytes: Some(30_000),
            ..switch
        };
    }
    let cfg = SimConfig {
        switch,
        pfc_extra_delay_ns: TESTBED_PFC_DELAY_NS,
        end_time_ns: end_ns,
        transition: if s.old_tag_transition {
            tagger_switch::TransitionMode::EgressByOldTag
        } else {
            tagger_switch::TransitionMode::EgressByNewTag
        },
        pause_quanta_ns: match &s.pause_quanta {
            Some(t) => Some(ctx.time(t, "pause-quanta")?),
            None => None,
        },
        recovery: s.recovery,
        dcqcn: s.dcqcn.then(tagger_sim::DcqcnConfig::default),
        watchdog: match &s.watchdog {
            Some(wd) => {
                let mut w = WatchdogConfig::with_window(ctx.time(&wd.window, "watchdog window")?);
                if wd.drop {
                    w.policy = WatchdogPolicy::Drop;
                }
                Some(w)
            }
            None => None,
        },
        queue: opts.queue.unwrap_or(match s.queue_heap {
            Some(true) => QueueKind::BinaryHeap,
            _ => QueueKind::TimingWheel,
        }),
        ..SimConfig::default()
    };

    let fib = Fib::shortest_path(&topo, &FailureSet::none());
    let mut sim = Simulator::new(topo.clone(), fib, rules.clone(), cfg);
    let mut labels = Vec::new();

    // --- Flows -------------------------------------------------------
    for f in &s.flows {
        let src = node(&topo, &f.src)?;
        let dst = node(&topo, &f.dst)?;
        let at = ctx.time(&f.at, "flow start")?;
        let mut spec = FlowSpec::new(src, dst, at);
        if let Some(limit) = &f.limit {
            spec = spec.with_limit(ctx.num(limit, "flow limit")?);
        }
        if !f.via.is_empty() {
            let path: Result<Vec<NodeId>, _> = f.via.iter().map(|n| node(&topo, n)).collect();
            spec = spec.pinned(path?);
        }
        sim.add_flow(spec);
        labels.push(format!("{}->{}", f.src, f.dst));
    }

    // --- Workloads ---------------------------------------------------
    let hosts: Vec<NodeId> = topo.host_ids().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for w in &s.workloads {
        match w {
            Workload::Incast { k, dst, at } => {
                let k = ctx.num(k, "incast fan-in")? as usize;
                let dst_id = node(&topo, dst)?;
                let at = ctx.time(at, "incast start")?;
                for src in hosts.iter().filter(|&&h| h != dst_id).take(k) {
                    sim.add_flow(FlowSpec::new(*src, dst_id, at));
                    labels.push(format!("incast({}->{dst})", topo.node(*src).name));
                }
            }
            Workload::Shuffle { src, k, at } => {
                let k = ctx.num(k, "shuffle fan-out")? as usize;
                let src_id = node(&topo, src)?;
                let at = ctx.time(at, "shuffle start")?;
                for dst in hosts.iter().filter(|&&h| h != src_id).take(k) {
                    sim.add_flow(FlowSpec::new(src_id, *dst, at));
                    labels.push(format!("shuffle({src}->{})", topo.node(*dst).name));
                }
            }
            Workload::Permutation { at } => {
                let at = ctx.time(at, "permutation start")?;
                let mut dsts = hosts.clone();
                loop {
                    dsts.shuffle(&mut rng);
                    if hosts.iter().zip(&dsts).all(|(a, b)| a != b) {
                        break;
                    }
                }
                for (src, dst) in hosts.iter().zip(&dsts) {
                    sim.add_flow(FlowSpec::new(*src, *dst, at));
                    labels.push(format!(
                        "perm({}->{})",
                        topo.node(*src).name,
                        topo.node(*dst).name
                    ));
                }
            }
            Workload::AllToAll { n, at } => {
                let n = (ctx.num(n, "all-to-all size")? as usize).min(hosts.len());
                let at = ctx.time(at, "all-to-all start")?;
                for &src in &hosts[..n] {
                    for &dst in &hosts[..n] {
                        if src != dst {
                            sim.add_flow(FlowSpec::new(src, dst, at));
                            labels.push(format!(
                                "a2a({}->{})",
                                topo.node(src).name,
                                topo.node(dst).name
                            ));
                        }
                    }
                }
            }
            Workload::Websearch { n, at } | Workload::Hadoop { n, at } => {
                let sizes: &[u64] = if matches!(w, Workload::Websearch { .. }) {
                    &WEBSEARCH_BYTES
                } else {
                    &HADOOP_BYTES
                };
                let tag = if matches!(w, Workload::Websearch { .. }) {
                    "websearch"
                } else {
                    "hadoop"
                };
                let n = ctx.num(n, "matrix flow count")?;
                let at = ctx.time(at, "matrix start")?;
                for _ in 0..n {
                    let src = hosts[rng.random_range(0..hosts.len())];
                    let dst = loop {
                        let d = hosts[rng.random_range(0..hosts.len())];
                        if d != src {
                            break d;
                        }
                    };
                    let bytes = sizes[rng.random_range(0..sizes.len())];
                    sim.add_flow(FlowSpec::new(src, dst, at).with_limit(bytes));
                    labels.push(format!(
                        "{tag}({}->{})",
                        topo.node(src).name,
                        topo.node(dst).name
                    ));
                }
            }
        }
    }

    // --- Events ------------------------------------------------------
    schedule_events(
        s, &ctx, &topo, &mut sim, rules, controller, chaos_sb, &mut rng, opts,
    )?;

    Ok(Experiment { sim, labels })
}

/// Resolved event, ready for time-ordering.
enum Resolved {
    Fail(LinkId),
    Restore(LinkId),
    Reconverge,
    FlapLeg(LinkId, bool),
    Route(NodeId, NodeId, NodeId),
    Mask(NodeId, tagger_topo::PortId),
}

#[allow(clippy::too_many_arguments)]
fn schedule_events(
    s: &Scenario,
    ctx: &NumCtx<'_>,
    topo: &Topology,
    sim: &mut Simulator,
    rules: Option<tagger_core::RuleSet>,
    mut controller: Option<tagger_ctrl::Controller>,
    mut chaos_sb: Option<tagger_ctrl::ChaosSouthbound>,
    rng: &mut StdRng,
    opts: &RunOptions,
) -> Result<(), ExpandError> {
    // Resolve every event into (time, Resolved) first, then process in
    // time order with running failure/override/rule state.
    let mut timeline: Vec<(u64, usize, Resolved)> = Vec::new();
    let mut seq = 0usize;
    let mut push = |timeline: &mut Vec<(u64, usize, Resolved)>, t: u64, r: Resolved| {
        timeline.push((t, seq, r));
        seq += 1;
    };

    for e in &s.events {
        match e {
            EventSpec::Fail { a, b, at } => {
                let l = link(topo, a, b)?;
                push(&mut timeline, ctx.time(at, "fail")?, Resolved::Fail(l));
            }
            EventSpec::FailRandom { n, at } => {
                let n = ctx.num(n, "fail random")? as usize;
                let t = ctx.time(at, "fail random")?;
                let mut trunks: Vec<LinkId> = topo
                    .link_ids()
                    .filter(|&l| {
                        let lk = topo.link(l);
                        topo.node(lk.a.node).kind == tagger_topo::NodeKind::Switch
                            && topo.node(lk.b.node).kind == tagger_topo::NodeKind::Switch
                    })
                    .collect();
                trunks.shuffle(rng);
                for &l in trunks.iter().take(n) {
                    push(&mut timeline, t, Resolved::Fail(l));
                }
            }
            EventSpec::Restore { a, b, at } => {
                let l = link(topo, a, b)?;
                push(
                    &mut timeline,
                    ctx.time(at, "restore")?,
                    Resolved::Restore(l),
                );
            }
            EventSpec::Reconverge { at } => {
                push(
                    &mut timeline,
                    ctx.time(at, "reconverge")?,
                    Resolved::Reconverge,
                );
            }
            EventSpec::Flap {
                a,
                b,
                at,
                times,
                gap,
            } => {
                let l = link(topo, a, b)?;
                let t0 = ctx.time(at, "flap")?;
                let times = ctx.num(times, "flap count")?;
                let gap = ctx.time(gap, "flap gap")?.max(1);
                for i in 0..times {
                    let down_at = t0 + i * 2 * gap;
                    push(&mut timeline, down_at, Resolved::FlapLeg(l, true));
                    push(&mut timeline, down_at + gap, Resolved::FlapLeg(l, false));
                }
            }
            EventSpec::Route { sw, dst, via, at } => {
                let r = Resolved::Route(node(topo, sw)?, node(topo, dst)?, node(topo, via)?);
                push(&mut timeline, ctx.time(at, "route")?, r);
            }
            EventSpec::Mask { sw, nbr, at } => {
                let sw_id = node(topo, sw)?;
                let port = port_towards(topo, sw_id, node(topo, nbr)?)?;
                push(
                    &mut timeline,
                    ctx.time(at, "mask")?,
                    Resolved::Mask(sw_id, port),
                );
            }
            EventSpec::Trace { path, at, gap } => {
                let full = opts.base_dir.join(path);
                let text = std::fs::read_to_string(&full)
                    .map_err(|e| err(format!("cannot read trace {}: {e}", full.display())))?;
                let mut t = ctx.time(at, "trace")?;
                let gap = ctx.time(gap, "trace gap")?.max(1);
                let events = tagger_ctrl::parse_trace(topo, &text)
                    .map_err(|e| err(format!("trace {}: {e}", full.display())))?;
                for ev in events {
                    match ev {
                        tagger_ctrl::CtrlEvent::LinkDown(l) => {
                            push(&mut timeline, t, Resolved::Fail(l));
                            t += gap;
                        }
                        tagger_ctrl::CtrlEvent::LinkUp(l) => {
                            push(&mut timeline, t, Resolved::Restore(l));
                            t += gap;
                        }
                        // ELP edits, watchdog trips and resyncs are
                        // control-plane-only; the data-plane replay
                        // skips them.
                        _ => {}
                    }
                }
            }
        }
    }

    timeline.sort_by_key(|&(t, i, _)| (t, i));

    // Running state.
    let mut failures = FailureSet::none();
    let mut overrides: Vec<(NodeId, NodeId, NodeId)> = Vec::new();
    let mut installed = rules;
    let mut pending_deltas: Vec<tagger_core::RuleDelta> = Vec::new();

    for (t, _, ev) in timeline {
        match ev {
            Resolved::Fail(l) => {
                failures.fail(l);
                sim.at(t, Action::FailLink { link: l });
                // Pre-reconvergence: stale routes with local detours —
                // the paper's §3.2 transient window.
                sim.at(t, Action::ReplaceFib(Fib::local_reroute(topo, &failures)));
                if let Some(ctrl) = controller.as_mut() {
                    let outcome = match chaos_sb.as_mut() {
                        Some(sb) => ctrl
                            .handle_via(
                                &tagger_ctrl::CtrlEvent::LinkDown(l),
                                sb,
                                &tagger_ctrl::InstallPolicy::default(),
                            )
                            .map_err(|e| err(format!("controller: {e}")))?,
                        None => ctrl
                            .handle(&tagger_ctrl::CtrlEvent::LinkDown(l))
                            .map_err(|e| err(format!("controller: {e}")))?,
                    };
                    if chaos_sb.is_none() {
                        if let Some(report) = outcome.committed() {
                            pending_deltas.extend(report.deltas.iter().cloned());
                        }
                    }
                }
            }
            Resolved::Restore(l) => {
                failures.restore(l);
                sim.at(t, Action::RestoreLink { link: l });
                if let Some(ctrl) = controller.as_mut() {
                    let outcome = match chaos_sb.as_mut() {
                        Some(sb) => ctrl
                            .handle_via(
                                &tagger_ctrl::CtrlEvent::LinkUp(l),
                                sb,
                                &tagger_ctrl::InstallPolicy::default(),
                            )
                            .map_err(|e| err(format!("controller: {e}")))?,
                        None => ctrl
                            .handle(&tagger_ctrl::CtrlEvent::LinkUp(l))
                            .map_err(|e| err(format!("controller: {e}")))?,
                    };
                    if chaos_sb.is_none() {
                        if let Some(report) = outcome.committed() {
                            pending_deltas.extend(report.deltas.iter().cloned());
                        }
                    }
                }
            }
            Resolved::Reconverge => {
                let mut fib = Fib::shortest_path(topo, &failures);
                for &(sw, dst, via) in &overrides {
                    fib.set_override_towards(topo, sw, dst, via);
                }
                sim.at(t, Action::ReplaceFib(fib));
                // Controller modes ship their staged table update with
                // the routing convergence, as the real rollout does.
                if let Some(sb) = chaos_sb.as_ref() {
                    use tagger_ctrl::Southbound;
                    let fleet = sb.fleet().clone();
                    installed = Some(fleet.clone());
                    sim.at(t, Action::ReplaceRules(fleet));
                } else if !pending_deltas.is_empty() {
                    sim.at(
                        t,
                        Action::ApplyRuleDeltas(std::mem::take(&mut pending_deltas)),
                    );
                    if let Some(ctrl) = controller.as_ref() {
                        installed = Some(ctrl.committed().rules.clone());
                    }
                }
            }
            Resolved::FlapLeg(l, down) => {
                if down {
                    sim.at(t, Action::FailLink { link: l });
                } else {
                    sim.at(t, Action::RestoreLink { link: l });
                }
            }
            Resolved::Route(sw, dst, via) => {
                overrides.push((sw, dst, via));
                let mut fib = Fib::shortest_path(topo, &failures);
                for &(sw, dst, via) in &overrides {
                    fib.set_override_towards(topo, sw, dst, via);
                }
                sim.at(t, Action::ReplaceFib(fib));
            }
            Resolved::Mask(sw, port) => {
                let base = installed
                    .as_ref()
                    .ok_or_else(|| err("`mask` needs installed rule tables (tagger not off)"))?;
                let masked = mask_hop(base, sw, port);
                installed = Some(masked.clone());
                sim.at(t, Action::ReplaceRules(masked));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn clos_for_hosts_scales() {
        assert_eq!(clos_for_hosts(16).num_hosts(), 16);
        assert_eq!(clos_for_hosts(1024).num_hosts(), 1024);
        assert_eq!(clos_for_hosts(1).num_hosts(), 4); // floor of 1/ToR
    }

    #[test]
    fn points_cartesian() {
        let s =
            parse("scenario g\nsweep a 1..2 step +1\nsweep b 4..8 step *2\nassert no-deadlock\n")
                .unwrap();
        let pts = points(&s);
        assert_eq!(pts.len(), 2 * 2, "a in [1,2] x b in [4,8]");
        assert_eq!(pts[0]["a"], 1);
        assert_eq!(pts[0]["b"], 4);
        assert_eq!(pts[3]["a"], 2);
        assert_eq!(pts[3]["b"], 8);
    }

    #[test]
    fn fig10_scn_deadlocks_like_the_builder() {
        let text = "\
scenario fig10
topo clos small
tagger off
end 4ms
flow H1 H13 via H1 T1 L1 S1 L3 S2 L4 T4 H13
flow H9 H1 @20% via H9 T3 L3 S2 L1 S1 L2 T1 H1
assert deadlock-by 4ms
";
        let s = parse(text).unwrap();
        let exp = instantiate(&s, &BTreeMap::new(), &RunOptions::default()).unwrap();
        let (report, labels) = exp.run();
        assert_eq!(labels.len(), 2);
        assert!(report.deadlock.is_some(), "expected the Fig. 10 deadlock");
    }

    #[test]
    fn tagger_bounces_prevents_the_same_deadlock() {
        let text = "\
scenario fig10_tagger
topo clos small
tagger bounces 1
end 4ms
flow H1 H13 via H1 T1 L1 S1 L3 S2 L4 T4 H13
flow H9 H1 @20% via H9 T3 L3 S2 L1 S1 L2 T1 H1
assert no-deadlock
";
        let s = parse(text).unwrap();
        let exp = instantiate(&s, &BTreeMap::new(), &RunOptions::default()).unwrap();
        let (report, _) = exp.run();
        assert!(report.deadlock.is_none());
        assert_eq!(report.lossless_drops, 0);
    }

    #[test]
    fn workload_expansion_is_seed_deterministic() {
        let text = "\
scenario perm
topo clos small
tagger bounces 1
seed 7
end 1ms
workload permutation
workload websearch 5
assert no-deadlock
";
        let s = parse(text).unwrap();
        let a = instantiate(&s, &BTreeMap::new(), &RunOptions::default()).unwrap();
        let b = instantiate(&s, &BTreeMap::new(), &RunOptions::default()).unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.labels.len(), 16 + 5);
    }
}
