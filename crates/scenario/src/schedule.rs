//! Named control-plane event mixes for soak drills. Each mix is a
//! weighted generator over the same six event kinds the fleet soak
//! harness has always used; `fleet::run_soak` draws per-fabric
//! schedules from this library instead of hard-coding one mix.
//!
//! Every mix maintains the invariants that keep "ready" decidable for
//! the fleet grader, regardless of weights:
//!
//! - at most 2 trunk links down at once (the ELP stays connected enough
//!   to certify);
//! - at most 1 watchdog quarantine at once;
//! - a healing tail restores every downed link, clears every
//!   quarantine, and ends with a resync.

use rand::{rngs::StdRng, seq::SliceRandom, RngExt, SeedableRng};
use tagger_ctrl::{CtrlEvent, TriggerInfo};
use tagger_topo::{LinkId, NodeKind, Topology};

/// Relative weights of the six event kinds. Drawing walks the kinds in
/// declaration order against a cumulative sum, so two mixes with the
/// same weights generate identical schedules at the same seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MixWeights {
    /// Flap burst: one trunk bounces down/up 1–3 times.
    pub flap: u32,
    /// Sustained failure: a trunk stays down (bounded at 2 concurrent).
    pub fail: u32,
    /// A downed trunk recovers.
    pub recover: u32,
    /// A PFC watchdog trips (bounded at 1 concurrent quarantine; half
    /// the trips carry in-band trigger attribution).
    pub trip: u32,
    /// The quarantine lifts.
    pub clear: u32,
    /// Operator-forced resync.
    pub resync: u32,
}

impl MixWeights {
    fn total(self) -> u32 {
        self.flap + self.fail + self.recover + self.trip + self.clear + self.resync
    }
}

/// One named soak mix.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleSpec {
    /// Stable name (shows up in fleet drill labels).
    pub name: &'static str,
    /// What the mix stresses.
    pub description: &'static str,
    /// The event-kind weights.
    pub weights: MixWeights,
}

/// The shipped mixes. The first entry reproduces the historical fleet
/// soak mix event-for-event at a given seed (same weights, same draw
/// order), so existing pinned drills keep their schedules.
pub fn library() -> &'static [ScheduleSpec] {
    &[
        ScheduleSpec {
            name: "baseline",
            description: "the classic balanced drill: flap-heavy with occasional \
                          failures, trips and resyncs",
            weights: MixWeights {
                flap: 4,
                fail: 2,
                recover: 1,
                trip: 1,
                clear: 1,
                resync: 1,
            },
        },
        ScheduleSpec {
            name: "flap-storm",
            description: "nearly all flap bursts: the damping policy's worst day",
            weights: MixWeights {
                flap: 8,
                fail: 1,
                recover: 1,
                trip: 0,
                clear: 0,
                resync: 1,
            },
        },
        ScheduleSpec {
            name: "partition-prone",
            description: "long-lived concurrent trunk failures with slow recovery",
            weights: MixWeights {
                flap: 1,
                fail: 5,
                recover: 2,
                trip: 1,
                clear: 1,
                resync: 1,
            },
        },
        ScheduleSpec {
            name: "watchdog-churn",
            description: "trip/clear cycling: quarantine bookkeeping under pressure",
            weights: MixWeights {
                flap: 2,
                fail: 1,
                recover: 1,
                trip: 4,
                clear: 3,
                resync: 1,
            },
        },
        ScheduleSpec {
            name: "lossy-transport",
            description: "degraded ingest links (degraded_ingest.scn): dense flap \
                          bursts with frequent forced resyncs, the event shape a \
                          flaky transport feeds the fleet front",
            weights: MixWeights {
                flap: 6,
                fail: 2,
                recover: 2,
                trip: 1,
                clear: 1,
                resync: 3,
            },
        },
    ]
}

/// Looks a mix up by name.
pub fn by_name(name: &str) -> Option<&'static ScheduleSpec> {
    library().iter().find(|s| s.name == name)
}

/// Generates one fabric's seeded schedule over `topo` under `spec`:
/// about `events` events of the weighted kinds, then the healing tail.
pub fn events(spec: &ScheduleSpec, topo: &Topology, seed: u64, events: usize) -> Vec<CtrlEvent> {
    let w = spec.weights;
    let total = w.total().max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    // Trunk links (switch-to-switch) are the interesting failures; a
    // host link failure just removes that host's paths.
    let trunks: Vec<LinkId> = topo
        .link_ids()
        .filter(|&l| {
            let link = topo.link(l);
            topo.node(link.a.node).kind == NodeKind::Switch
                && topo.node(link.b.node).kind == NodeKind::Switch
        })
        .collect();
    let mut schedule = Vec::with_capacity(events + 8);
    let mut down: Vec<LinkId> = Vec::new();
    let mut quarantined: Option<(tagger_topo::NodeId, tagger_topo::PortId, u16)> = None;
    while schedule.len() < events {
        let draw = rng.random_range(0..total);
        if draw < w.flap {
            // Flap burst: one trunk bounces down/up a few times — the
            // damping policy's bread and butter.
            if let Some(&l) = trunks.choose(&mut rng) {
                if !down.contains(&l) {
                    for _ in 0..rng.random_range(1..4usize) {
                        schedule.push(CtrlEvent::LinkDown(l));
                        schedule.push(CtrlEvent::LinkUp(l));
                    }
                }
            }
        } else if draw < w.flap + w.fail {
            // A trunk stays down for a while (≤ 2 concurrently).
            if down.len() < 2 {
                if let Some(&l) = trunks.choose(&mut rng) {
                    if !down.contains(&l) {
                        schedule.push(CtrlEvent::LinkDown(l));
                        down.push(l);
                    }
                }
            }
        } else if draw < w.flap + w.fail + w.recover {
            // A downed trunk recovers.
            if !down.is_empty() {
                let i = rng.random_range(0..down.len());
                schedule.push(CtrlEvent::LinkUp(down.swap_remove(i)));
            }
        } else if draw < w.flap + w.fail + w.recover + w.trip {
            // A PFC watchdog trips on a trunk endpoint (≤ 1
            // concurrently). Half the trips carry in-band trigger
            // attribution blaming the far endpoint's hop; the
            // quarantine then lands on the attributed cause, and the
            // healing tail must clear *that* hop — so the tracker
            // records the effective target.
            if quarantined.is_none() {
                if let Some(&l) = trunks.choose(&mut rng) {
                    let link = topo.link(l);
                    let tag = rng.random_range(1..=2u16);
                    let trigger = if rng.random_range(0..2u32) == 0 {
                        Some(TriggerInfo {
                            switch: link.b.node,
                            port: link.b.port,
                            tag: tagger_core::Tag(tag),
                        })
                    } else {
                        None
                    };
                    let trip = CtrlEvent::WatchdogTrip {
                        switch: link.a.node,
                        port: link.a.port,
                        tag: tagger_core::Tag(tag),
                        trigger,
                    };
                    quarantined = trip.effective_quarantine();
                    schedule.push(trip);
                }
            }
        } else if draw < w.flap + w.fail + w.recover + w.trip + w.clear {
            // The quarantine lifts.
            if let Some((switch, port, tag)) = quarantined.take() {
                schedule.push(CtrlEvent::WatchdogClear {
                    switch,
                    port,
                    tag: tagger_core::Tag(tag),
                });
            }
        } else {
            // Operator-forced resync.
            schedule.push(CtrlEvent::Resync);
        }
    }
    // Healing tail: restore everything, then resync so the final state
    // is recomputed from a clean network.
    for l in down {
        schedule.push(CtrlEvent::LinkUp(l));
    }
    if let Some((switch, port, tag)) = quarantined {
        schedule.push(CtrlEvent::WatchdogClear {
            switch,
            port,
            tag: tagger_core::Tag(tag),
        });
    }
    schedule.push(CtrlEvent::Resync);
    schedule
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tagger_topo::ClosConfig;

    /// Replays a schedule and asserts the healing-tail invariants every
    /// mix must preserve.
    fn assert_healed(schedule: &[CtrlEvent]) {
        let mut down = std::collections::BTreeSet::new();
        let mut quarantine = std::collections::BTreeSet::new();
        let mut max_down = 0usize;
        let mut max_quarantine = 0usize;
        for e in schedule {
            match e {
                CtrlEvent::LinkDown(l) => {
                    down.insert(l.index());
                    max_down = max_down.max(down.len());
                }
                CtrlEvent::LinkUp(l) => {
                    down.remove(&l.index());
                }
                trip @ CtrlEvent::WatchdogTrip { .. } => {
                    let (switch, port, tag) = trip.effective_quarantine().unwrap();
                    quarantine.insert((switch.0, port.0, tag));
                    max_quarantine = max_quarantine.max(quarantine.len());
                }
                CtrlEvent::WatchdogClear { switch, port, tag } => {
                    quarantine.remove(&(switch.0, port.0, tag.0));
                }
                _ => {}
            }
        }
        assert!(down.is_empty(), "unhealed links: {down:?}");
        assert!(
            quarantine.is_empty(),
            "unhealed quarantines: {quarantine:?}"
        );
        // A flap burst holds a link down only instantaneously (the up
        // follows immediately), so sustained concurrency stays ≤ 2 + 1
        // transient flap leg.
        assert!(max_down <= 3, "too many concurrent downs: {max_down}");
        assert!(max_quarantine <= 1);
        assert_eq!(schedule.last(), Some(&CtrlEvent::Resync));
    }

    #[test]
    fn every_mix_is_deterministic_and_healed() {
        let topo = ClosConfig::small().build();
        for spec in library() {
            let a = events(spec, &topo, 7, 48);
            let b = events(spec, &topo, 7, 48);
            assert_eq!(a, b, "{} must be seed-deterministic", spec.name);
            assert!(a.len() >= 48);
            assert_healed(&a);
        }
    }

    #[test]
    fn mixes_differ_from_each_other() {
        let topo = ClosConfig::small().build();
        let lib = library();
        let base = events(&lib[0], &topo, 7, 48);
        assert!(lib[1..].iter().any(|s| events(s, &topo, 7, 48) != base));
    }

    #[test]
    fn by_name_finds_every_mix() {
        for spec in library() {
            assert_eq!(by_name(spec.name).unwrap().name, spec.name);
        }
        assert!(by_name("nope").is_none());
    }
}
