//! Declarative simulation scenarios for the Tagger reproduction: a
//! line-oriented `.scn` DSL describing a fabric, a tagging mode, a
//! workload, a failure schedule and a required block of invariants —
//! plus the machinery to expand one file deterministically into
//! configured simulator runs, sweep it across parameter grids, grade
//! every assert, and render byte-stable reports.
//!
//! The pipeline, module by module:
//!
//! - [`model`] — the parsed scenario AST ([`Scenario`] and friends);
//! - [`parse`] — the `.scn` parser, with [`Span`](tagger_core::Span)-
//!   carrying diagnostics in the house lint style;
//! - [`expand`] — deterministic expansion of a scenario (at one sweep
//!   point) into a ready-to-run [`Experiment`](tagger_sim::Experiment);
//! - [`asserts`] — evaluation of the `assert` block against the
//!   finished [`SimReport`](tagger_sim::SimReport);
//! - [`report`] — per-scenario/per-point suite results with a
//!   byte-stable JSON rendering;
//! - [`schedule`] — named control-plane event mixes for the fleet soak
//!   harness (drawn by `tagger-fleet`'s drill).
//!
//! A minimal scenario:
//!
//! ```text
//! scenario fig10
//! topo clos small
//! tagger bounces 1
//! end 4ms
//! flow H1 H13 via H1 T1 L1 S1 L3 S2 L4 T4 H13
//! flow H9 H1 @20% via H9 T3 L3 S2 L1 S1 L2 T1 H1
//! assert no-deadlock
//! ```
//!
//! The same file with `tagger off` must instead satisfy
//! `assert deadlock-by 4ms` — the paper's Fig. 10 pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod asserts;
pub mod expand;
pub mod model;
pub mod parse;
pub mod report;
pub mod schedule;

pub use asserts::{evaluate, feasibility_verdict, max_pause_ns, AssertOutcome};
pub use expand::{clos_for_hosts, instantiate, points, ExpandError, RunOptions};
pub use model::{
    AssertSpec, Cmp, EventSpec, FlowDecl, Num, Scenario, Sweep, TaggerMode, TimeSpec, TopoSpec,
    WatchdogDecl, Workload,
};
pub use parse::{parse, parse_all, IssueCode, ScnIssue};
pub use report::{PointMetrics, PointResult, ScenarioResult, SuiteReport};
pub use schedule::{by_name, library, MixWeights, ScheduleSpec};

/// Parses, expands, runs and grades one scenario text end to end —
/// the runner's and the tests' shared driver.
pub fn run_scenario(text: &str, file: &str, opts: &RunOptions) -> Result<ScenarioResult, ScnIssue> {
    let s = parse(text)?;
    let seed = opts.seed.unwrap_or(s.seed);
    let queue = opts
        .queue
        .unwrap_or(match s.queue_heap {
            Some(true) => tagger_sim::QueueKind::BinaryHeap,
            _ => tagger_sim::QueueKind::TimingWheel,
        })
        .label()
        .to_string();
    let mut result = ScenarioResult {
        name: s.name.clone(),
        file: file.to_string(),
        seed,
        queue,
        points: Vec::new(),
        error: None,
    };
    for point in points(&s) {
        match instantiate(&s, &point, opts) {
            Ok(exp) => {
                let (sim_report, _labels) = exp.run();
                let asserts = evaluate(&s, &point, &sim_report);
                result.points.push(PointResult {
                    vars: point,
                    asserts,
                    metrics: PointMetrics::from_report(&sim_report),
                });
            }
            Err(e) => {
                result.error = Some(e.message);
                break;
            }
        }
    }
    Ok(result)
}
