//! The chaos-proxy loopback soak (ISSUE 9 acceptance): the full
//! 8-fabric scenario-schedule mix is delivered over TCP *through a
//! fault-injecting proxy*, and the resulting write-ahead journals must
//! come out byte-identical to a solo in-process replay of the same
//! lines — zero events lost, zero double-applied, every fabric
//! converged. Plus the backpressure drill: a client hammering a tiny
//! queue is pushed back, backs off, and still delivers 100%.

use std::path::PathBuf;
use std::time::Duration;
use tagger_ctrl::{ChaosConfig, CtrlEvent};
use tagger_fleet::net::{
    chaos_for, send_lines, ChaosTransport, ClientConfig, NetChaosConfig, ServeConfig, Server,
};
use tagger_fleet::{Damping, FabricSpec, Fleet, FleetConfig};
use tagger_topo::{ClosConfig, Topology};

const SOAK_SEED: u64 = 0xC0FFEE;
const FABRICS: usize = 8;
const EVENTS_PER_FABRIC: usize = 24;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tagger-netsoak-{}-{name}", std::process::id()))
}

/// SplitMix64 — the same per-fabric seed derivation idiom the in-process
/// soak uses, reproduced here so the test pins its own streams.
fn fabric_seed(master: u64, i: u64) -> u64 {
    let mut z = master.wrapping_add(i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One fabric's schedule as `<fabric>: <trace-line>` wire lines, drawn
/// from the scenario mix library exactly like the in-process soak.
fn fabric_lines(topo: &Topology, name: &str, seed: u64, mix_index: usize) -> Vec<String> {
    let mixes = tagger_scenario::schedule::library();
    let mix = &mixes[mix_index % mixes.len()];
    tagger_scenario::schedule::events(mix, topo, seed, EVENTS_PER_FABRIC)
        .iter()
        .map(|e: &CtrlEvent| format!("{name}: {}", e.trace_line(topo)))
        .collect()
}

/// Replays every fabric's lines through an in-process fleet configured
/// identically to the server (same caps, same damping, same name-derived
/// chaos seeds) — the byte-equality baseline.
fn solo_replay(dir: &PathBuf, topo: &Topology, base_chaos: &ChaosConfig, lines: &[Vec<String>]) {
    let mut cfg = FleetConfig::new(dir);
    cfg.queue_cap = 1024;
    cfg.drain_quantum = 4;
    let mut fleet = Fleet::new(cfg);
    for (i, fabric_lines) in lines.iter().enumerate() {
        let name = format!("net-{i}");
        fleet
            .register(
                FabricSpec::new(&name, topo.clone())
                    .with_damping(Damping::Flap)
                    .with_chaos(chaos_for(base_chaos, &name)),
            )
            .expect("solo registration");
        for line in fabric_lines {
            let (_, rest) = line.split_once(':').expect("well-formed line");
            fleet
                .ingest_line(&name, rest.trim())
                .expect("solo ingest within cap");
        }
    }
    fleet.drain_all().expect("solo drain");
}

#[test]
fn chaos_proxy_loopback_soak_matches_solo_replay() {
    let dir_net = tmp("chaos-net");
    let dir_solo = tmp("chaos-solo");
    std::fs::remove_dir_all(&dir_net).ok();
    std::fs::remove_dir_all(&dir_solo).ok();

    let topo = ClosConfig::small().build();
    let base_chaos = ChaosConfig::new(SOAK_SEED, 0.25);
    let lines: Vec<Vec<String>> = (0..FABRICS)
        .map(|i| {
            fabric_lines(
                &topo,
                &format!("net-{i}"),
                fabric_seed(SOAK_SEED, i as u64),
                i,
            )
        })
        .collect();

    // The networked run: server behind a fault-injecting proxy.
    let mut serve = ServeConfig::new(&dir_net, topo.clone());
    serve.chaos = Some(base_chaos);
    serve.drain_interval = Duration::from_millis(2);
    let server = Server::start("127.0.0.1:0", serve).expect("server start");

    let proxy_cfg = NetChaosConfig {
        seed: SOAK_SEED ^ 0x7A05,
        disconnect_rate: 0.02,
        duplicate_rate: 0.05,
        truncate_rate: 0.02,
        delay_rate: 0.05,
        max_delay_ms: 3,
    }
    .clamped();
    let proxy = ChaosTransport::start(server.addr(), proxy_cfg).expect("proxy start");
    let proxy_addr = proxy.addr().to_string();

    let handles: Vec<_> = lines
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, fabric_lines)| {
            let addr = proxy_addr.clone();
            std::thread::spawn(move || {
                let mut cfg = ClientConfig::new(addr, i as u64 + 1);
                cfg.seed = fabric_seed(SOAK_SEED ^ 0xC11E, i as u64);
                cfg.max_attempts = 128;
                cfg.max_reconnects = 64;
                cfg.reply_timeout = Duration::from_millis(300);
                send_lines(&cfg, &fabric_lines)
            })
        })
        .collect();

    let mut reports = Vec::new();
    for h in handles {
        reports.push(
            h.join()
                .expect("client thread")
                .expect("delivery within retry bounds"),
        );
    }
    let faults = proxy.stats().faults();
    proxy.shutdown();
    let outcome = server.shutdown().expect("graceful shutdown");

    // The proxy must actually have misbehaved, or the drill proves
    // nothing.
    assert!(faults > 0, "chaos proxy injected no faults at this seed");

    // Every client delivered everything; nothing was permanently
    // rejected (the schedules are valid trace lines).
    for (i, report) in reports.iter().enumerate() {
        assert_eq!(
            report.delivered,
            report.offered,
            "fabric net-{i}: {}",
            report.render()
        );
        assert!(report.rejections.is_empty(), "fabric net-{i} rejections");
    }

    // Exactly-once at the fabric queues: ingested equals the schedule
    // length — a lost event would undershoot, a double-applied duplicate
    // would overshoot.
    assert!(outcome.report.healthy(), "{}", outcome.report.render());
    for (i, fabric_lines) in lines.iter().enumerate() {
        let name = format!("net-{i}");
        let status = outcome
            .report
            .fabrics
            .iter()
            .find(|f| f.name == name)
            .expect("fabric registered over the wire");
        assert_eq!(
            status.ingested,
            fabric_lines.len() as u64,
            "fabric {name}: lost or double-applied events"
        );
        assert_eq!(status.queued, 0, "fabric {name}: shutdown left a queue");
    }

    // The decisive assertion: journals byte-identical to solo replay.
    solo_replay(&dir_solo, &topo, &base_chaos, &lines);
    for i in 0..FABRICS {
        let name = format!("net-{i}.journal");
        let networked = std::fs::read(dir_net.join(&name)).expect("networked journal");
        let solo = std::fs::read(dir_solo.join(&name)).expect("solo journal");
        assert_eq!(
            networked, solo,
            "journal {name} differs between networked and solo replay"
        );
    }

    std::fs::remove_dir_all(&dir_net).ok();
    std::fs::remove_dir_all(&dir_solo).ok();
}

#[test]
fn backpressure_is_graceful_and_starves_nobody() {
    let dir = tmp("backpressure");
    std::fs::remove_dir_all(&dir).ok();

    let topo = ClosConfig::small().build();
    let mut serve = ServeConfig::new(&dir, topo.clone());
    // A queue this small *will* fill: the client must survive on
    // Backpressure replies alone.
    serve.queue_cap = 4;
    serve.drain_interval = Duration::from_millis(10);
    let server = Server::start("127.0.0.1:0", serve).expect("server start");
    let addr = server.addr().to_string();

    let hot_lines: Vec<String> = (0..48).map(|_| "hot: resync".to_string()).collect();
    let cold_lines: Vec<String> = (0..5).map(|_| "cold: resync".to_string()).collect();

    let hot_addr = addr.clone();
    let hot = std::thread::spawn(move || {
        let mut cfg = ClientConfig::new(hot_addr, 1);
        cfg.max_attempts = 400;
        send_lines(&cfg, &hot_lines)
    });
    let cold = std::thread::spawn(move || {
        let mut cfg = ClientConfig::new(addr, 2);
        cfg.max_attempts = 400;
        send_lines(&cfg, &cold_lines)
    });

    let hot_report = hot.join().expect("hot thread").expect("hot delivery");
    let cold_report = cold.join().expect("cold thread").expect("cold delivery");
    let backpressure_replies = server
        .stats()
        .backpressure_replies
        .load(std::sync::atomic::Ordering::Relaxed);
    let outcome = server.shutdown().expect("graceful shutdown");

    // 100% delivery despite the hammering...
    assert_eq!(hot_report.delivered, 48, "{}", hot_report.render());
    assert_eq!(cold_report.delivered, 5, "{}", cold_report.render());
    // ...and the pushback actually happened, visible both on the wire
    // and in the fleet's queue_rejections counter.
    assert!(
        backpressure_replies > 0,
        "a 4-slot queue under 48 events must push back"
    );
    let report = outcome.report;
    assert!(report.healthy(), "{}", report.render());
    let hot_status = report
        .fabrics
        .iter()
        .find(|f| f.name == "hot")
        .expect("hot fabric");
    assert_eq!(hot_status.ingested, 48, "exactly-once under backpressure");
    assert!(
        hot_status.queue_rejections > 0,
        "QueueFull rejections must be counted in the report"
    );
    // The quiet fabric was never starved: it ingested and drained
    // everything inside the same fair cycles.
    let cold_status = report
        .fabrics
        .iter()
        .find(|f| f.name == "cold")
        .expect("cold fabric");
    assert_eq!(cold_status.ingested, 5);
    assert_eq!(cold_status.queued, 0);

    std::fs::remove_dir_all(&dir).ok();
}
