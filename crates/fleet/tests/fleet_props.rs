//! Fleet-level behavioural guarantees (ISSUE satellite):
//!
//! 1. **Interleaving equivalence** — for *any* interleaved multi-fabric
//!    event stream, draining through the fleet's bounded fair
//!    round-robin front commits exactly the same epochs per fabric as
//!    replaying that fabric's subsequence alone through an unbounded
//!    single-tenant drain. Per-fabric damping plus suffix-closed
//!    policies make batching independent of where drain cycles land; we
//!    assert it all the way down to byte-identical write-ahead journals.
//! 2. **No starvation** — one flapping fabric with a deep backlog
//!    cannot delay quiet fabrics' commits past the fair-drain bound.

use proptest::prelude::*;
use std::path::PathBuf;
use tagger_ctrl::CtrlEvent;
use tagger_fleet::{Damping, FabricSpec, Fleet, FleetConfig};
use tagger_topo::{ClosConfig, LinkId, Topology};

fn trunk_links(topo: &Topology) -> Vec<LinkId> {
    topo.link_ids()
        .filter(|&l| {
            let link = topo.link(l);
            topo.node(link.a.node).kind != tagger_topo::NodeKind::Host
                && topo.node(link.b.node).kind != tagger_topo::NodeKind::Host
        })
        .collect()
}

fn decode(links: &[LinkId], op: (usize, u8)) -> CtrlEvent {
    let link = links[op.0 % links.len()];
    match op.1 % 3 {
        0 => CtrlEvent::LinkDown(link),
        1 => CtrlEvent::LinkUp(link),
        _ => CtrlEvent::Resync,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tagger-fleet-props-{}-{tag}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole equivalence: interleaved + bounded fair drain ==
    /// solo + unbounded drain, per fabric, down to journal bytes.
    #[test]
    fn interleaved_drain_commits_exactly_the_solo_epochs(
        ops in proptest::collection::vec((0usize..64, 0u8..3, 0u8..3), 1..10),
        quantum in 1usize..4,
        damping_pick in 0u8..3,
    ) {
        let topo = ClosConfig::small().build();
        let links = trunk_links(&topo);
        let damping = match damping_pick {
            0 => Damping::None,
            1 => Damping::Flap,
            _ => Damping::FlapCapped(2),
        };
        // Split the interleaved stream into per-fabric subsequences.
        let names = ["iq-a", "iq-b", "iq-c"];
        let stream: Vec<(usize, CtrlEvent)> = ops
            .iter()
            .map(|&(l, kind, fab)| (fab as usize % names.len(), decode(&links, (l, kind))))
            .collect();

        // Interleaved fleet: all three fabrics, events fed in stream
        // order, a bounded fair drain cycle every few events.
        let dir_multi = tmp_dir(&format!("multi-{quantum}-{damping_pick}"));
        std::fs::remove_dir_all(&dir_multi).ok();
        let mut cfg = FleetConfig::new(&dir_multi);
        cfg.drain_quantum = quantum;
        let mut fleet = Fleet::new(cfg);
        for name in names {
            fleet
                .register(FabricSpec::new(name, topo.clone()).with_damping(damping))
                .expect("healthy fabric registers");
        }
        for (i, (fab, event)) in stream.iter().enumerate() {
            fleet.ingest(names[*fab], event.clone()).expect("queue is deep enough");
            if i % 3 == 2 {
                fleet.drain_cycle().expect("drain never hard-errors");
            }
        }
        fleet.drain_all().expect("drain never hard-errors");

        // Solo fleets: one fabric each, fed its own subsequence,
        // drained unbounded in one go.
        let dir_solo = tmp_dir(&format!("solo-{quantum}-{damping_pick}"));
        std::fs::remove_dir_all(&dir_solo).ok();
        let mut solo = Fleet::new(FleetConfig::new(&dir_solo));
        for name in names {
            solo.register(FabricSpec::new(name, topo.clone()).with_damping(damping))
                .expect("healthy fabric registers");
        }
        for (fab, event) in &stream {
            solo.ingest(names[*fab], event.clone()).expect("queue is deep enough");
        }
        for name in names {
            solo.drain_fabric(name).expect("drain never hard-errors");
        }

        for name in names {
            let multi = fleet.fabric(name).expect("registered");
            let single = solo.fabric(name).expect("registered");
            prop_assert_eq!(multi.queued(), 0);
            prop_assert_eq!(multi.batches(), single.batches(), "{}: batch boundaries must match", name);
            prop_assert_eq!(multi.commits(), single.commits(), "{}: commits must match", name);
            prop_assert_eq!(multi.rollbacks(), single.rollbacks(), "{}", name);
            prop_assert_eq!(
                multi.controller().committed().epoch,
                single.controller().committed().epoch,
                "{}: final epoch must match", name
            );
            prop_assert!(
                multi.controller().committed().rules == single.controller().committed().rules,
                "{}: final committed tables must match", name
            );
            prop_assert_eq!(
                multi.controller().metrics().flaps_damped,
                single.controller().metrics().flaps_damped,
                "{}: damping must absorb the same transitions", name
            );
            // The strongest form: the write-ahead journals are
            // byte-identical — same events, same batch boundaries, same
            // outcomes, same checkpoint cadence.
            let multi_journal = std::fs::read_to_string(multi.journal_path()).expect("journal");
            let solo_journal = std::fs::read_to_string(single.journal_path()).expect("journal");
            prop_assert_eq!(multi_journal, solo_journal, "{}: journals must be byte-identical", name);
        }
        std::fs::remove_dir_all(&dir_multi).ok();
        std::fs::remove_dir_all(&dir_solo).ok();
    }
}

/// One flapping fabric with a deep backlog; N quiet fabrics with a
/// couple of events each. The fair drain bound: a quiet fabric's queue
/// is fully processed within `ceil(queued_batches / quantum)` cycles,
/// no matter how deep the noisy backlog is.
#[test]
fn flapping_fabric_cannot_starve_quiet_fabrics() {
    let topo = ClosConfig::small().build();
    let links = trunk_links(&topo);
    let dir = tmp_dir("starve");
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg = FleetConfig::new(&dir);
    cfg.drain_quantum = 2;
    let mut fleet = Fleet::new(cfg);

    // The noisy fabric uses NoDamping, so every queued event is its own
    // batch — the worst case for everyone else.
    fleet
        .register(FabricSpec::new("noisy", topo.clone()).with_damping(Damping::None))
        .expect("register");
    let quiet = ["quiet-0", "quiet-1", "quiet-2"];
    for name in quiet {
        fleet
            .register(FabricSpec::new(name, topo.clone()))
            .expect("register");
    }

    // 40 batches of backlog for the noisy fabric (20 cycles at quantum
    // 2), 2 events (one damped batch: down+up on the same link) each
    // for the quiet ones.
    for _ in 0..20 {
        fleet
            .ingest("noisy", CtrlEvent::LinkDown(links[0]))
            .expect("cap");
        fleet
            .ingest("noisy", CtrlEvent::LinkUp(links[0]))
            .expect("cap");
    }
    for name in quiet {
        fleet
            .ingest(name, CtrlEvent::LinkDown(links[1]))
            .expect("cap");
        fleet
            .ingest(name, CtrlEvent::LinkUp(links[1]))
            .expect("cap");
    }

    // One fair cycle: each quiet fabric has exactly 1 damped batch
    // queued (< quantum), so it must fully commit in this cycle even
    // though the noisy fabric still has a deep backlog.
    fleet.drain_cycle().expect("drain");
    for name in quiet {
        let fabric = fleet.fabric(name).expect("registered");
        assert_eq!(
            fabric.queued(),
            0,
            "{name} must drain within one fair cycle"
        );
        assert_eq!(fabric.commits(), 1, "{name} must commit its flap epoch");
        assert!(fabric.converged());
    }
    let noisy = fleet.fabric("noisy").expect("registered");
    assert!(
        noisy.queued() >= 36,
        "the noisy backlog must still be deep (got {} queued)",
        noisy.queued()
    );
    assert_eq!(noisy.batches(), 2, "noisy got exactly its quantum, no more");

    // And the backlog eventually clears without anyone diverging.
    fleet.drain_all().expect("drain");
    assert_eq!(fleet.fabric("noisy").expect("registered").queued(), 0);
    let report = fleet.snapshot();
    assert!(report.healthy(), "{}", report.render());
    std::fs::remove_dir_all(&dir).ok();
}
