//! Property and adversarial tests for the DESIGN §15 frame codec
//! (ISSUE 9 satellite): encode→decode identity over arbitrary payloads,
//! kinds and sequence numbers; torn frames and oversized length claims
//! cost bytes (counted resyncs), never the frames around them.

use proptest::prelude::*;
use tagger_fleet::net::wire::{self, kind, Decoder, Msg, MAX_PAYLOAD};

/// Decodes `bytes` in one gulp and returns every recovered frame.
fn decode_all(dec: &mut Decoder, bytes: &[u8]) -> Vec<wire::RawFrame> {
    dec.extend(bytes);
    let mut out = Vec::new();
    while let Some(f) = dec.next_frame() {
        out.push(f);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Raw-frame identity: any (kind, seq, payload) triple survives
    /// encode→decode byte-exactly, fed either whole or one byte at a
    /// time (the decoder may never depend on read boundaries).
    #[test]
    fn raw_frame_round_trips(
        kind_pick in 0usize..8,
        seq in any::<u64>(),
        payload in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let kinds = [
            kind::HELLO, kind::EVENT, kind::BYE, kind::WELCOME,
            kind::OK, kind::BACKPRESSURE, kind::REJECT, kind::REWIND,
        ];
        let k = kinds[kind_pick % kinds.len()];
        let bytes = wire::encode(k, seq, &payload);

        let mut whole = Decoder::new();
        let frames = decode_all(&mut whole, &bytes);
        prop_assert_eq!(frames.len(), 1);
        prop_assert_eq!(frames[0].kind, k);
        prop_assert_eq!(frames[0].seq, seq);
        prop_assert_eq!(&frames[0].payload, &payload);
        prop_assert_eq!(whole.resyncs, 0);
        prop_assert_eq!(whole.skipped_bytes, 0);

        let mut dribble = Decoder::new();
        let mut frames = Vec::new();
        for b in &bytes {
            frames.extend(decode_all(&mut dribble, std::slice::from_ref(b)));
        }
        prop_assert_eq!(frames.len(), 1);
        prop_assert_eq!(frames[0].seq, seq);
        prop_assert_eq!(&frames[0].payload, &payload);
        prop_assert_eq!(dribble.resyncs, 0);
    }

    /// Message identity: every reply and request variant survives the
    /// typed encode→decode path with its fields intact.
    #[test]
    fn messages_round_trip(
        seq in any::<u64>(),
        a in any::<u64>(),
        b in any::<u32>(),
        text in proptest::collection::vec(32u8..127, 0..64),
    ) {
        let text = String::from_utf8(text).expect("printable ascii");
        let msgs = [
            Msg::Hello { client: a },
            Msg::Event { line: text.clone() },
            Msg::Bye,
            Msg::Welcome { next_seq: a },
            Msg::Ok { epoch: a },
            Msg::Backpressure { queue_depth: b, retry_after_ms: b ^ 1 },
            Msg::Reject { line: b, col: b.wrapping_add(1), len: b >> 1, reason: text },
            Msg::Rewind { expected: a },
        ];
        for msg in msgs {
            let mut dec = Decoder::new();
            let frames = decode_all(&mut dec, &msg.encode(seq));
            prop_assert_eq!(frames.len(), 1);
            prop_assert_eq!(frames[0].seq, seq);
            prop_assert_eq!(Msg::decode(&frames[0]).expect("decodes"), msg);
        }
    }

    /// Garbage between two valid frames never costs either frame: the
    /// decoder resynchronizes on the next magic and counts the damage.
    #[test]
    fn garbage_between_frames_is_skipped_not_fatal(
        junk in proptest::collection::vec(0u8..=255, 1..64),
        seq in any::<u64>(),
    ) {
        let first = Msg::Ok { epoch: 7 }.encode(seq);
        let second = Msg::Rewind { expected: 3 }.encode(seq.wrapping_add(1));
        let mut bytes = first;
        bytes.extend_from_slice(&junk);
        bytes.extend_from_slice(&second);

        let mut dec = Decoder::new();
        let frames = decode_all(&mut dec, &bytes);
        // The junk may happen to start with a plausible header that
        // swallows the second frame's bytes; the decoder still may not
        // invent frames or lose the first one.
        prop_assert!(!frames.is_empty());
        prop_assert_eq!(frames[0].seq, seq);
        prop_assert_eq!(frames[0].kind, kind::OK);
        for f in &frames {
            prop_assert!(Msg::decode(f).is_ok() || f.payload.len() <= MAX_PAYLOAD);
        }
    }
}

/// A frame whose header claims more payload than [`MAX_PAYLOAD`] is
/// rejected outright — the decoder must not buffer unbounded bytes on a
/// hostile length claim — and the stream recovers on the next frame.
#[test]
fn oversized_length_claim_is_rejected_and_survived() {
    let mut bytes = wire::encode(kind::EVENT, 1, b"before");
    // Hand-build a header claiming a 16 MiB payload. encode() clamps,
    // so forge the length field directly.
    let mut evil = wire::encode(kind::EVENT, 2, b"x");
    let huge: u32 = 16 * 1024 * 1024;
    evil[11..15].copy_from_slice(&huge.to_be_bytes());
    bytes.extend_from_slice(&evil);
    let after = wire::encode(kind::EVENT, 3, b"after");
    bytes.extend_from_slice(&after);

    let mut dec = Decoder::new();
    let mut frames = Vec::new();
    dec.extend(&bytes);
    while let Some(f) = dec.next_frame() {
        frames.push(f);
    }
    assert!(dec.oversized >= 1, "the hostile claim must be counted");
    assert!(dec.resyncs >= 1, "skipping it is a resync");
    let seqs: Vec<u64> = frames.iter().map(|f| f.seq).collect();
    assert!(seqs.contains(&1), "frame before the attack must survive");
    assert!(seqs.contains(&3), "frame after the attack must survive");
    assert!(
        !frames.iter().any(|f| f.payload.len() > MAX_PAYLOAD),
        "no oversized frame may ever be surfaced"
    );
}

/// A frame torn mid-payload (the truncation the chaos proxy injects) is
/// abandoned once later bytes disprove its length claim; the following
/// resend gets through and the damage is metered in `skipped_bytes`.
#[test]
fn torn_frame_is_skipped_once_disproven() {
    let torn = Msg::Event {
        line: "f: down L1 T1".into(),
    }
    .encode(9);
    let keep = torn.len() / 2;
    let mut bytes = torn[..keep].to_vec();
    // The client's reply timeout fires and it resends — twice, to give
    // the scanner unambiguous magic to lock onto.
    let resend = Msg::Event {
        line: "f: down L1 T1".into(),
    }
    .encode(9);
    bytes.extend_from_slice(&resend);
    bytes.extend_from_slice(&resend);

    let mut dec = Decoder::new();
    dec.extend(&bytes);
    let mut recovered = Vec::new();
    while let Some(f) = dec.next_frame() {
        recovered.push(f);
    }
    assert!(
        recovered.iter().any(|f| f.seq == 9),
        "the resend must survive the tear"
    );
    assert!(dec.resyncs >= 1, "abandoning the torn frame is a resync");
    assert!(dec.skipped_bytes >= 1, "the tear's bytes must be metered");
}
