//! End-to-end soak drill (ISSUE acceptance): ≥8 fabrics under distinct
//! seeded chaos schedules in one process, every fabric audit-certified
//! and crash-recoverable, and the readiness report byte-stable given
//! the seed — even across different journal directories.

use std::path::PathBuf;
use tagger_fleet::{run_soak, SoakConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tagger-soak-e2e-{}-{tag}", std::process::id()))
}

#[test]
fn eight_fabric_soak_certifies_and_is_byte_stable() {
    let run = |tag: &str| {
        let dir = tmp_dir(tag);
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = SoakConfig::new(&dir);
        cfg.fabrics = 8;
        // Deliberately light: this is the debug-mode invariant check.
        // The full-size drill (48 events per fabric, release) runs as
        // the `fleet-soak` CI job via `tagger-fleetd soak`.
        cfg.events_per_fabric = 6;
        cfg.seed = 2026;
        let outcome = run_soak(&cfg).expect("soak runs");
        std::fs::remove_dir_all(&dir).ok();
        outcome
    };

    let first = run("a");
    assert_eq!(first.readiness.fabrics.len(), 8);
    assert!(
        first.readiness.all_ready(),
        "every fabric must end certified, recoverable, quarantine-consistent \
         and converged:\n{}",
        first.readiness.render()
    );
    // Chaos really ran: distinct seeded schedules injected faults
    // somewhere in the fleet, and the controllers still certified.
    let faults: u64 = first
        .readiness
        .fabrics
        .iter()
        .map(|f| f.faults_injected)
        .sum();
    assert!(
        faults > 0,
        "the chaos schedules must actually inject faults"
    );
    // Schedules are distinct per fabric.
    let ingests: std::collections::BTreeSet<(u64, u64)> = first
        .readiness
        .fabrics
        .iter()
        .map(|f| (f.ingested, f.faults_injected))
        .collect();
    assert!(
        ingests.len() > 1,
        "fabrics must run distinct schedules, not copies of one"
    );

    // Byte-stability: a second run with the same seed — in a different
    // journal directory — renders the identical readiness report and
    // the identical JSON snapshot.
    let second = run("b");
    assert_eq!(
        first.readiness.render(),
        second.readiness.render(),
        "readiness report must be byte-stable given the seed"
    );
    assert_eq!(
        first.snapshot.to_json(),
        second.snapshot.to_json(),
        "fleet JSON snapshot must be byte-stable given the seed"
    );
}
