//! The fabric registry and the fair ingest/drain loop — the fleet's
//! supervisor.

use crate::error::FleetError;
use crate::fabric::{Fabric, FabricId, FabricSpec};
use crate::report::{FabricStatus, FleetReport};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use tagger_ctrl::{parse_trace, CtrlEvent, EpochOutcome, InstallPolicy};

/// Fleet-wide knobs, applied to every fabric at registration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Directory journals are derived under (created on first
    /// registration).
    pub dir: PathBuf,
    /// Per-fabric ingest queue capacity; a full queue rejects ingest
    /// rather than dropping or blocking.
    pub queue_cap: usize,
    /// Most damped batches one fabric may process per drain cycle — the
    /// fairness bound that keeps a flapping fabric from starving the
    /// rest: every cycle visits every fabric, and no fabric's turn
    /// exceeds `drain_quantum` recomputes.
    pub drain_quantum: usize,
    /// Southbound install retry discipline.
    pub install: InstallPolicy,
}

impl FleetConfig {
    /// Defaults rooted at `dir`: queue cap 1024, quantum 4, default
    /// install policy.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FleetConfig {
            dir: dir.into(),
            queue_cap: 1024,
            drain_quantum: 4,
            install: InstallPolicy::default(),
        }
    }
}

/// Derives the on-disk stem for a fabric name: lowercased, with every
/// character outside `[a-z0-9_-]` replaced by `-`. Distinct names can
/// collide after sanitization ("fab/0" and "fab.0" both become
/// "fab-0"); registration catches that as a duplicate-path error.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            let c = c.to_ascii_lowercase();
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// N independent fabrics behind one process: registration (with journal
/// path isolation), per-fabric bounded ingest, a fair round-robin drain,
/// and fleet-wide snapshots.
pub struct Fleet {
    cfg: FleetConfig,
    fabrics: Vec<Fabric>,
    by_name: BTreeMap<String, usize>,
    /// Canonicalized journal path -> owning fabric name. The isolation
    /// invariant: no two fabrics may ever share a journal file, or
    /// concurrent drains would interleave their write-ahead records.
    journal_owners: BTreeMap<PathBuf, String>,
}

impl Fleet {
    /// An empty fleet.
    pub fn new(cfg: FleetConfig) -> Self {
        Fleet {
            cfg,
            fabrics: Vec::new(),
            by_name: BTreeMap::new(),
            journal_owners: BTreeMap::new(),
        }
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Registered fabrics, in id order.
    pub fn fabrics(&self) -> &[Fabric] {
        &self.fabrics
    }

    /// Number of registered fabrics.
    pub fn len(&self) -> usize {
        self.fabrics.len()
    }

    /// True when no fabric is registered.
    pub fn is_empty(&self) -> bool {
        self.fabrics.is_empty()
    }

    /// Looks a fabric up by name.
    pub fn fabric(&self, name: &str) -> Result<&Fabric, FleetError> {
        self.by_name
            .get(name)
            .map(|&i| &self.fabrics[i])
            .ok_or_else(|| FleetError::UnknownFabric(name.to_string()))
    }

    /// Mutable lookup by name.
    pub fn fabric_mut(&mut self, name: &str) -> Result<&mut Fabric, FleetError> {
        match self.by_name.get(name) {
            Some(&i) => Ok(&mut self.fabrics[i]),
            None => Err(FleetError::UnknownFabric(name.to_string())),
        }
    }

    /// Resolves the journal path a spec will use, without registering.
    ///
    /// Explicit paths are honoured; otherwise
    /// `<dir>/<sanitized-name>.journal`.
    pub fn journal_path_for(&self, spec: &FabricSpec) -> PathBuf {
        match &spec.journal_path {
            Some(p) => p.clone(),
            None => self
                .cfg
                .dir
                .join(format!("{}.journal", sanitize(&spec.name))),
        }
    }

    /// Canonical form for duplicate detection: resolve the parent
    /// directory (which exists by the time we check) so `a/../b.journal`
    /// and `b.journal` collide, then re-attach the file name.
    fn canonical(path: &Path) -> PathBuf {
        let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
        match (parent.and_then(|p| p.canonicalize().ok()), path.file_name()) {
            (Some(dir), Some(file)) => dir.join(file),
            _ => path.to_path_buf(),
        }
    }

    /// Brings a fabric under supervision: boots its controller (epoch 0
    /// committed, audited, installed), creates its journal, and adds it
    /// to the drain rotation. Rejects duplicate names and — the journal
    /// isolation invariant — any journal path another fabric already
    /// owns, even via a different spelling.
    pub fn register(&mut self, spec: FabricSpec) -> Result<FabricId, FleetError> {
        if self.by_name.contains_key(&spec.name) {
            return Err(FleetError::DuplicateFabric(spec.name));
        }
        std::fs::create_dir_all(&self.cfg.dir)?;
        if let Some(parent) = self.journal_path_for(&spec).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let path = self.journal_path_for(&spec);
        let canonical = Self::canonical(&path);
        if let Some(owner) = self.journal_owners.get(&canonical) {
            return Err(FleetError::DuplicateJournalPath {
                path,
                owner: owner.clone(),
                claimant: spec.name,
            });
        }
        let id = FabricId(self.fabrics.len() as u32);
        let name = spec.name.clone();
        let fabric = Fabric::boot(id, spec, path, self.cfg.queue_cap, self.cfg.install)?;
        self.journal_owners.insert(canonical, name.clone());
        self.by_name.insert(name, id.index());
        self.fabrics.push(fabric);
        Ok(id)
    }

    /// Accepts one event for `fabric`'s bounded queue.
    pub fn ingest(&mut self, fabric: &str, event: CtrlEvent) -> Result<(), FleetError> {
        self.fabric_mut(fabric)?.enqueue(event)
    }

    /// Accepts one `fabric: trace-line` style line, parsed against that
    /// fabric's own topology (a line can expand to several events, e.g.
    /// `flap L1 T1 3`).
    ///
    /// All-or-nothing on capacity: the whole line is admitted only when
    /// the queue has room for *every* event it expands to, so a
    /// [`FleetError::QueueFull`] rejection is always safely retryable —
    /// no prefix of the line is left behind to double-apply on retry.
    pub fn ingest_line(&mut self, fabric: &str, line: &str) -> Result<usize, FleetError> {
        let fab = self.fabric_mut(fabric)?;
        let events = parse_trace(fab.topo(), line)?;
        let n = events.len();
        if n > fab.queue_free() {
            return Err(fab.reject_line(n));
        }
        for event in events {
            fab.enqueue(event)?;
        }
        Ok(n)
    }

    /// One fair drain cycle: every fabric, in id order, processes up to
    /// [`FleetConfig::drain_quantum`] damped batches from its own queue.
    /// Returns the total batches processed. A fabric with a million
    /// queued flaps gets exactly the same turn as one with a single
    /// event — the starvation bound the ingest front promises.
    pub fn drain_cycle(&mut self) -> Result<u64, FleetError> {
        let quantum = self.cfg.drain_quantum.max(1);
        let mut processed = 0u64;
        for fabric in &mut self.fabrics {
            processed += fabric.drain(quantum)?.len() as u64;
        }
        Ok(processed)
    }

    /// Like [`Fleet::drain_cycle`], but every fabric holds back its
    /// trailing — possibly still-growing — batch unless its queue is
    /// full. This is the cycle the network ingest front runs
    /// concurrently with ingest: batch boundaries (and so the journals)
    /// depend only on the event stream, never on where drain ticks land
    /// relative to arrivals. See [`Fabric::drain_settled`].
    pub fn drain_cycle_settled(&mut self) -> Result<u64, FleetError> {
        let quantum = self.cfg.drain_quantum.max(1);
        let mut processed = 0u64;
        for fabric in &mut self.fabrics {
            processed += fabric.drain_settled(quantum)?.len() as u64;
        }
        Ok(processed)
    }

    /// Drains until every queue is empty, returning total batches.
    pub fn drain_all(&mut self) -> Result<u64, FleetError> {
        let mut total = 0u64;
        loop {
            let n = self.drain_cycle()?;
            total += n;
            if n == 0 && self.fabrics.iter().all(|f| f.queued() == 0) {
                return Ok(total);
            }
        }
    }

    /// Drains one named fabric to empty, ignoring the rotation — the
    /// single-tenant escape hatch (and what the equivalence tests use as
    /// their solo baseline).
    pub fn drain_fabric(&mut self, name: &str) -> Result<Vec<EpochOutcome>, FleetError> {
        let fab = self.fabric_mut(name)?;
        let mut outcomes = Vec::new();
        while fab.queued() > 0 {
            outcomes.extend(fab.drain(usize::MAX)?);
        }
        Ok(outcomes)
    }

    /// Point-in-time fleet snapshot: every fabric's status plus the
    /// one-place rollups ([`std::iter::Sum`] over `ControllerMetrics` /
    /// `AuditMetrics`).
    pub fn snapshot(&self) -> FleetReport {
        FleetReport::capture(self.fabrics.iter().map(FabricStatus::capture))
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("fabrics", &self.fabrics.len())
            .field("dir", &self.cfg.dir)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tagger_topo::ClosConfig;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tagger-fleet-{}-{name}", std::process::id()))
    }

    fn spec(name: &str) -> FabricSpec {
        FabricSpec::new(name, ClosConfig::small().build())
    }

    #[test]
    fn register_rejects_duplicate_names_and_journal_paths() {
        let dir = tmp("dup");
        let mut fleet = Fleet::new(FleetConfig::new(&dir));
        fleet.register(spec("fab0")).unwrap();
        assert!(matches!(
            fleet.register(spec("fab0")),
            Err(FleetError::DuplicateFabric(_))
        ));
        // Distinct names, same sanitized journal stem: the path
        // isolation invariant must refuse the second registration.
        fleet.register(spec("fab.1")).unwrap();
        match fleet.register(spec("fab/1")) {
            Err(FleetError::DuplicateJournalPath {
                owner, claimant, ..
            }) => {
                assert_eq!(owner, "fab.1");
                assert_eq!(claimant, "fab/1");
            }
            other => panic!("expected DuplicateJournalPath, got {other:?}"),
        }
        // An explicit path that respells an owned path is also caught.
        let mut sneaky = spec("fab2");
        sneaky.journal_path = Some(dir.join("x/../fab-1.journal"));
        std::fs::create_dir_all(dir.join("x")).unwrap();
        assert!(matches!(
            fleet.register(sneaky),
            Err(FleetError::DuplicateJournalPath { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journals_live_under_the_fleet_dir_one_per_fabric() {
        let dir = tmp("paths");
        let mut fleet = Fleet::new(FleetConfig::new(&dir));
        fleet.register(spec("EastCoast-A")).unwrap();
        fleet.register(spec("westcoast-b")).unwrap();
        let a = fleet.fabric("EastCoast-A").unwrap();
        assert_eq!(a.journal_path(), dir.join("eastcoast-a.journal"));
        assert!(a.journal_path().exists());
        let b = fleet.fabric("westcoast-b").unwrap();
        assert_eq!(b.journal_path(), dir.join("westcoast-b.journal"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_routes_to_the_named_fabric_only() {
        let dir = tmp("route");
        let mut fleet = Fleet::new(FleetConfig::new(&dir));
        fleet.register(spec("a")).unwrap();
        fleet.register(spec("b")).unwrap();
        assert_eq!(fleet.ingest_line("a", "down L1 T1").unwrap(), 1);
        assert_eq!(fleet.ingest_line("a", "flap L2 T2 2").unwrap(), 4);
        assert!(matches!(
            fleet.ingest_line("nope", "down L1 T1"),
            Err(FleetError::UnknownFabric(_))
        ));
        assert_eq!(fleet.fabric("a").unwrap().queued(), 5);
        assert_eq!(fleet.fabric("b").unwrap().queued(), 0);
        fleet.drain_all().unwrap();
        assert_eq!(fleet.fabric("a").unwrap().queued(), 0);
        let a = fleet.fabric("a").unwrap();
        assert!(a.commits() >= 2, "down + damped flap must commit");
        assert!(a.converged());
        assert_eq!(a.audit_violations(), 0);
        let b = fleet.fabric("b").unwrap();
        assert_eq!(b.commits(), 0, "fabric b saw no events");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn queue_cap_rejects_rather_than_drops() {
        let dir = tmp("cap");
        let mut cfg = FleetConfig::new(&dir);
        cfg.queue_cap = 3;
        let mut fleet = Fleet::new(cfg);
        fleet.register(spec("a")).unwrap();
        for _ in 0..3 {
            fleet.ingest_line("a", "resync").unwrap();
        }
        assert!(matches!(
            fleet.ingest_line("a", "resync"),
            Err(FleetError::QueueFull { cap: 3, .. })
        ));
        // Draining frees capacity.
        fleet.drain_cycle().unwrap();
        fleet.ingest_line("a", "resync").unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
