//! Fleet-level error taxonomy.

use std::fmt;
use std::path::PathBuf;
use tagger_ctrl::{CtrlError, JournalError, TraceError};

/// Why a fleet operation failed.
#[derive(Debug)]
pub enum FleetError {
    /// A fabric name was registered twice.
    DuplicateFabric(String),
    /// Two fabrics resolved to the same journal path — concurrent
    /// fabrics interleaving writes into one journal file would corrupt
    /// both, so registration refuses outright.
    DuplicateJournalPath {
        /// The contested path.
        path: PathBuf,
        /// The fabric that already owns it.
        owner: String,
        /// The fabric that tried to claim it.
        claimant: String,
    },
    /// An ingest or query referenced a fabric the fleet does not host.
    UnknownFabric(String),
    /// A fabric's bounded ingest queue is full; drain before retrying.
    QueueFull {
        /// The saturated fabric.
        fabric: String,
        /// Its configured queue capacity.
        cap: usize,
    },
    /// An ingest line failed trace parsing against its fabric's
    /// topology.
    Trace(TraceError),
    /// The fabric's controller rejected the event as malformed.
    Ctrl(CtrlError),
    /// The fabric's journal could not be written or recovered.
    Journal(JournalError),
    /// Filesystem trouble below the fleet directory.
    Io(std::io::Error),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::DuplicateFabric(name) => {
                write!(f, "fabric {name:?} is already registered")
            }
            FleetError::DuplicateJournalPath {
                path,
                owner,
                claimant,
            } => write!(
                f,
                "fabric {claimant:?} wants journal {}, already owned by fabric {owner:?}",
                path.display()
            ),
            FleetError::UnknownFabric(name) => write!(f, "no fabric named {name:?}"),
            FleetError::QueueFull { fabric, cap } => {
                write!(f, "fabric {fabric:?} ingest queue is full (cap {cap})")
            }
            FleetError::Trace(e) => write!(f, "ingest parse: {e}"),
            FleetError::Ctrl(e) => write!(f, "controller: {e}"),
            FleetError::Journal(e) => write!(f, "journal: {e}"),
            FleetError::Io(e) => write!(f, "fleet io: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e)
    }
}

impl From<TraceError> for FleetError {
    fn from(e: TraceError) -> Self {
        FleetError::Trace(e)
    }
}
