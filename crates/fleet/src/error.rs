//! Fleet-level error taxonomy.

use std::fmt;
use std::path::PathBuf;
use tagger_ctrl::{CtrlError, JournalError, TraceError};

/// Why a fleet operation failed.
#[derive(Debug)]
pub enum FleetError {
    /// A fabric name was registered twice.
    DuplicateFabric(String),
    /// Two fabrics resolved to the same journal path — concurrent
    /// fabrics interleaving writes into one journal file would corrupt
    /// both, so registration refuses outright.
    DuplicateJournalPath {
        /// The contested path.
        path: PathBuf,
        /// The fabric that already owns it.
        owner: String,
        /// The fabric that tried to claim it.
        claimant: String,
    },
    /// An ingest or query referenced a fabric the fleet does not host.
    UnknownFabric(String),
    /// A fabric's bounded ingest queue is full; drain before retrying.
    QueueFull {
        /// The saturated fabric.
        fabric: String,
        /// Its configured queue capacity.
        cap: usize,
    },
    /// An ingest line failed trace parsing against its fabric's
    /// topology.
    Trace(TraceError),
    /// The fabric's controller rejected the event as malformed.
    Ctrl(CtrlError),
    /// The fabric's journal could not be written or recovered.
    Journal(JournalError),
    /// Filesystem trouble below the fleet directory.
    Io(std::io::Error),
    /// The network ingest front hit a state it cannot recover from
    /// (poisoned lock, wire-protocol violation, failed drain thread).
    Protocol(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::DuplicateFabric(name) => {
                write!(f, "fabric {name:?} is already registered")
            }
            FleetError::DuplicateJournalPath {
                path,
                owner,
                claimant,
            } => write!(
                f,
                "fabric {claimant:?} wants journal {}, already owned by fabric {owner:?}",
                path.display()
            ),
            FleetError::UnknownFabric(name) => write!(f, "no fabric named {name:?}"),
            FleetError::QueueFull { fabric, cap } => {
                write!(f, "fabric {fabric:?} ingest queue is full (cap {cap})")
            }
            FleetError::Trace(e) => write!(f, "ingest parse: {e}"),
            FleetError::Ctrl(e) => write!(f, "controller: {e}"),
            FleetError::Journal(e) => write!(f, "journal: {e}"),
            FleetError::Io(e) => write!(f, "fleet io: {e}"),
            FleetError::Protocol(msg) => write!(f, "ingest protocol: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Trace(e) => Some(e),
            FleetError::Ctrl(e) => Some(e),
            FleetError::Journal(e) => Some(e),
            FleetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e)
    }
}

impl From<TraceError> for FleetError {
    fn from(e: TraceError) -> Self {
        FleetError::Trace(e)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn every_variant_displays_its_context() {
        let cases: Vec<(FleetError, &str)> = vec![
            (
                FleetError::DuplicateFabric("east".into()),
                "\"east\" is already registered",
            ),
            (
                FleetError::DuplicateJournalPath {
                    path: PathBuf::from("/j/a.journal"),
                    owner: "a".into(),
                    claimant: "b".into(),
                },
                "already owned by fabric \"a\"",
            ),
            (FleetError::UnknownFabric("ghost".into()), "no fabric named"),
            (
                FleetError::QueueFull {
                    fabric: "east".into(),
                    cap: 8,
                },
                "queue is full (cap 8)",
            ),
            (
                FleetError::Io(std::io::Error::other("socket hangup")),
                "fleet io: socket hangup",
            ),
            (
                FleetError::Protocol("frame kind 99".into()),
                "ingest protocol: frame kind 99",
            ),
        ];
        for (err, needle) in cases {
            let shown = err.to_string();
            assert!(
                shown.contains(needle),
                "{err:?} renders {shown:?}, wanted {needle:?}"
            );
        }
    }

    #[test]
    fn wrapped_errors_expose_their_source() {
        let io: FleetError = std::io::Error::other("refused").into();
        assert!(io.source().is_some(), "Io must chain to the io::Error");
        assert_eq!(io.source().unwrap().to_string(), "refused");
        assert!(
            FleetError::UnknownFabric("x".into()).source().is_none(),
            "leaf variants have no source"
        );
        assert!(FleetError::Protocol("p".into()).source().is_none());
    }

    #[test]
    fn trace_errors_convert_and_chain() {
        use tagger_topo::ClosConfig;
        let topo = ClosConfig::small().build();
        let trace_err = tagger_ctrl::parse_trace(&topo, "downn L1 T1").unwrap_err();
        let err: FleetError = trace_err.into();
        assert!(matches!(err, FleetError::Trace(_)));
        assert!(err.source().is_some(), "Trace must chain to the TraceError");
        assert!(err.to_string().starts_with("ingest parse: "));
    }
}
