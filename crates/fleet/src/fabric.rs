//! One supervised fabric: a controller, its journal, its southbound,
//! and its independent audit loop — the unit of ownership in the fleet.
//!
//! Everything a fabric touches is its own: its `Controller` and
//! `NetworkState`, its write-ahead journal file, its (possibly chaotic)
//! southbound, its `Auditor`, its ingest queue and damping policy. No
//! state is shared across fabrics — the ownership boundary ROADMAP
//! item 4 demands — so one fabric's flap storm, chaos schedule, or audit
//! failure cannot perturb another's batching or verdicts.

use crate::error::FleetError;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use tagger_audit::{AuditMetrics, Auditor};
use tagger_ctrl::{
    recover, ChaosConfig, ChaosSouthbound, CommitObserver, CommitReport, Controller, CtrlEvent,
    DampingPolicy, ElpPolicy, EpochOutcome, FlapDamping, InstallPolicy, Journal, NoDamping,
    ReliableSouthbound, Snapshot, Southbound,
};
use tagger_topo::Topology;

/// Index of a fabric within its fleet; assigned at registration, dense
/// from 0 in registration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FabricId(pub u32);

impl FabricId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Which damping policy a fabric batches its ingest queue with.
///
/// A plain enum (rather than a boxed trait object in the spec) keeps
/// `FabricSpec` clonable and comparable; the fabric materializes the
/// actual [`DampingPolicy`] at registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Damping {
    /// Every event stages its own epoch.
    None,
    /// Maximal same-link runs collapse into one recompute (the default).
    Flap,
    /// Flap damping with a per-batch event ceiling.
    FlapCapped(usize),
}

impl Damping {
    /// Parses the CLI syntax: `none`, `flap`, or `flap:N` (cap N ≥ 1).
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "none" => Ok(Damping::None),
            "flap" => Ok(Damping::Flap),
            _ => match spec.strip_prefix("flap:").map(str::parse) {
                Some(Ok(n)) if n >= 1 => Ok(Damping::FlapCapped(n)),
                _ => Err(format!(
                    "damping {spec:?} is not none | flap | flap:N (N >= 1)"
                )),
            },
        }
    }

    /// Materializes the policy.
    pub fn policy(self) -> Box<dyn DampingPolicy> {
        match self {
            Damping::None => Box::new(NoDamping),
            Damping::Flap => Box::new(FlapDamping),
            Damping::FlapCapped(n) => Box::new(tagger_ctrl::CappedFlapDamping::new(n)),
        }
    }
}

/// Everything needed to bring one fabric under supervision.
#[derive(Clone, Debug)]
pub struct FabricSpec {
    /// Unique fabric name (the ingest address and report key).
    pub name: String,
    /// The fabric's topology.
    pub topo: Topology,
    /// ELP derivation policy.
    pub policy: ElpPolicy,
    /// Optional per-switch TCAM ceiling.
    pub tcam_budget: Option<usize>,
    /// Seeded southbound fault schedule; `None` for a reliable fleet.
    pub chaos: Option<ChaosConfig>,
    /// Journal checkpoint cadence (outcomes between checkpoints; 0 =
    /// never checkpoint).
    pub checkpoint_every: u64,
    /// Damping policy for this fabric's ingest queue.
    pub damping: Damping,
    /// Explicit journal path; when `None` the fleet derives
    /// `<dir>/<sanitized-name>.journal`.
    pub journal_path: Option<PathBuf>,
}

impl FabricSpec {
    /// A spec with the fleet defaults: 1-bounce ELP policy, no budget,
    /// reliable southbound, checkpoint every 4 outcomes, flap damping,
    /// derived journal path.
    pub fn new(name: impl Into<String>, topo: Topology) -> Self {
        FabricSpec {
            name: name.into(),
            topo,
            policy: ElpPolicy::with_bounces(1),
            tcam_budget: None,
            chaos: None,
            checkpoint_every: 4,
            damping: Damping::Flap,
            journal_path: None,
        }
    }

    /// Sets a seeded chaos schedule on the southbound.
    pub fn with_chaos(mut self, cfg: ChaosConfig) -> Self {
        self.chaos = Some(cfg);
        self
    }

    /// Sets the damping policy.
    pub fn with_damping(mut self, damping: Damping) -> Self {
        self.damping = damping;
        self
    }
}

/// The two southbound flavours a fabric can own. An enum rather than a
/// `Box<dyn Southbound>` so chaos counters stay reachable for reports.
enum FabricSouthbound {
    Reliable(ReliableSouthbound),
    Chaos(ChaosSouthbound),
}

impl FabricSouthbound {
    fn as_dyn(&mut self) -> &mut dyn Southbound {
        match self {
            FabricSouthbound::Reliable(sb) => sb,
            FabricSouthbound::Chaos(sb) => sb,
        }
    }

    fn fleet_tables(&self) -> &tagger_core::RuleSet {
        match self {
            FabricSouthbound::Reliable(sb) => sb.fleet(),
            FabricSouthbound::Chaos(sb) => sb.fleet(),
        }
    }

    fn faults_injected(&self) -> u64 {
        match self {
            FabricSouthbound::Reliable(_) => 0,
            FabricSouthbound::Chaos(sb) => sb.faults_injected(),
        }
    }
}

/// The independent verifier riding the fabric's commit stream through
/// the [`CommitObserver`] bridge: every committed epoch's tables are
/// decompiled and re-proven deadlock-free by `tagger-audit`, which
/// shares no verdict logic with the controller.
struct AuditBridge {
    auditor: Auditor,
    violations: u64,
}

impl CommitObserver for AuditBridge {
    fn on_commit(&mut self, _topo: &Topology, snapshot: &Snapshot, _report: &CommitReport) {
        let report = self.auditor.audit(snapshot.epoch, &snapshot.rules);
        if !report.is_certified() {
            self.violations += 1;
        }
    }
}

/// One supervised fabric. See the module docs for the ownership story.
pub struct Fabric {
    id: FabricId,
    spec: FabricSpec,
    ctrl: Controller,
    southbound: FabricSouthbound,
    journal: Journal,
    journal_path: PathBuf,
    audit: AuditBridge,
    damping: Box<dyn DampingPolicy>,
    install: InstallPolicy,
    queue: VecDeque<CtrlEvent>,
    queue_cap: usize,
    // Counters. `outcomes` drives the checkpoint cadence.
    ingested: u64,
    queue_rejections: u64,
    batches: u64,
    commits: u64,
    rollbacks: u64,
    outcomes: u64,
    epoch_latencies_us: Vec<u64>,
}

impl Fabric {
    /// Boots a fabric: commits epoch 0, bootstraps the southbound with
    /// the verified tables, creates the journal, audits the bootstrap.
    pub(crate) fn boot(
        id: FabricId,
        spec: FabricSpec,
        journal_path: PathBuf,
        queue_cap: usize,
        install: InstallPolicy,
    ) -> Result<Fabric, FleetError> {
        let ctrl = Controller::with_budget(spec.topo.clone(), spec.policy, spec.tcam_budget)
            .map_err(FleetError::Ctrl)?;
        let mut southbound = match spec.chaos {
            Some(cfg) => FabricSouthbound::Chaos(ChaosSouthbound::new(cfg)),
            None => FabricSouthbound::Reliable(ReliableSouthbound::new()),
        };
        southbound.as_dyn().bootstrap(&ctrl.committed().rules);
        let journal = Journal::create(&journal_path).map_err(FleetError::Journal)?;
        let mut audit = AuditBridge {
            auditor: Auditor::new(spec.topo.clone()),
            violations: 0,
        };
        // Epoch 0 is a commit like any other: audit it.
        let report = audit.auditor.audit(0, &ctrl.committed().rules);
        if !report.is_certified() {
            audit.violations += 1;
        }
        let damping = spec.damping.policy();
        Ok(Fabric {
            id,
            spec,
            ctrl,
            southbound,
            journal,
            journal_path,
            audit,
            damping,
            install,
            queue: VecDeque::new(),
            queue_cap,
            ingested: 0,
            queue_rejections: 0,
            batches: 0,
            commits: 0,
            rollbacks: 0,
            outcomes: 0,
            epoch_latencies_us: Vec::new(),
        })
    }

    /// The fabric's id within its fleet.
    pub fn id(&self) -> FabricId {
        self.id
    }

    /// The fabric's name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// The spec the fabric was registered with.
    pub fn spec(&self) -> &FabricSpec {
        &self.spec
    }

    /// The topology under management.
    pub fn topo(&self) -> &Topology {
        self.ctrl.topo()
    }

    /// The supervised controller (read-only; mutation goes through the
    /// ingest queue so every event is journaled write-ahead).
    pub fn controller(&self) -> &Controller {
        &self.ctrl
    }

    /// Where this fabric journals.
    pub fn journal_path(&self) -> &Path {
        &self.journal_path
    }

    /// Independent-audit violations observed so far (0 on a healthy
    /// fabric: every committed epoch re-certified from its tables).
    pub fn audit_violations(&self) -> u64 {
        self.audit.violations
    }

    /// The audit loop's cumulative metrics.
    pub fn audit_metrics(&self) -> &AuditMetrics {
        &self.audit.auditor.metrics
    }

    /// Southbound faults injected so far (0 for a reliable southbound).
    pub fn faults_injected(&self) -> u64 {
        self.southbound.faults_injected()
    }

    /// Events accepted into the queue over the fabric's lifetime.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Events currently queued (ingested, not yet drained).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The queue's configured capacity.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// Queue slots still free.
    pub fn queue_free(&self) -> usize {
        self.queue_cap.saturating_sub(self.queue.len())
    }

    /// Ingest attempts refused with [`FleetError::QueueFull`] — each one
    /// a backpressure push the caller had to absorb and retry.
    pub fn queue_rejections(&self) -> u64 {
        self.queue_rejections
    }

    /// Batches staged so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Epochs committed so far (excluding the bootstrap epoch 0).
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Batches rolled back so far.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Stage latency of every committed epoch, µs, in commit order —
    /// the raw series fleet-wide percentiles are computed from.
    pub fn epoch_latencies_us(&self) -> &[u64] {
        &self.epoch_latencies_us
    }

    /// True while the southbound's tables equal the committed snapshot —
    /// the commit-barrier invariant, checked against ground truth.
    pub fn converged(&self) -> bool {
        self.southbound.fleet_tables() == &self.ctrl.committed().rules
    }

    /// Accepts one event into the bounded ingest queue. Fails with
    /// [`FleetError::QueueFull`] instead of blocking or dropping — the
    /// caller decides whether to drain or shed.
    pub fn enqueue(&mut self, event: CtrlEvent) -> Result<(), FleetError> {
        if self.queue.len() >= self.queue_cap {
            self.queue_rejections += 1;
            return Err(FleetError::QueueFull {
                fabric: self.spec.name.clone(),
                cap: self.queue_cap,
            });
        }
        self.queue.push_back(event);
        self.ingested += 1;
        Ok(())
    }

    /// Records a whole-line capacity rejection (the all-or-nothing check
    /// in [`Fleet::ingest_line`](crate::Fleet::ingest_line)): one
    /// backpressure push regardless of how many events the line would
    /// have expanded to.
    pub(crate) fn reject_line(&mut self, _events: usize) -> FleetError {
        self.queue_rejections += 1;
        FleetError::QueueFull {
            fabric: self.spec.name.clone(),
            cap: self.queue_cap,
        }
    }

    /// Drains up to `max_batches` damped batches from the queue through
    /// the journaled two-phase rollout, returning the outcomes. Damping
    /// is computed over this fabric's queue alone — never across
    /// fabrics — and because policies are suffix-closed, whatever stays
    /// queued will batch identically on the next cycle.
    pub fn drain(&mut self, max_batches: usize) -> Result<Vec<EpochOutcome>, FleetError> {
        self.drain_inner(max_batches, false)
    }

    /// Like [`Fabric::drain`], but holds back the stream's trailing
    /// batch. Damping splits are *prefix-stable* in every batch except
    /// the last: a batch with at least one event after it is closed (a
    /// maximal run followed by a different event stays maximal no
    /// matter what arrives later), while the final batch may still grow
    /// if the next event extends its run. A drain running concurrently
    /// with ingest — the network front's drain thread — must therefore
    /// not commit the trailing batch, or its boundaries (and the
    /// write-ahead journal) would depend on where drain ticks happened
    /// to land relative to arrivals instead of on the stream alone.
    ///
    /// A full queue flushes everything regardless: the client is being
    /// backpressured and holding the tail would livelock it. The held
    /// batch is drained by the unconditional [`Fabric::drain`] paths
    /// (shutdown, `drain_all`) once the stream is complete.
    pub fn drain_settled(&mut self, max_batches: usize) -> Result<Vec<EpochOutcome>, FleetError> {
        let hold = self.queue.len() < self.queue_cap;
        self.drain_inner(max_batches, hold)
    }

    fn drain_inner(
        &mut self,
        max_batches: usize,
        hold_last: bool,
    ) -> Result<Vec<EpochOutcome>, FleetError> {
        let mut outcomes = Vec::new();
        if max_batches == 0 || self.queue.is_empty() {
            return Ok(outcomes);
        }
        let events = self.queue.make_contiguous();
        let ranges = self.damping.split(events);
        let settled = if hold_last {
            ranges.len().saturating_sub(1)
        } else {
            ranges.len()
        };
        let take = settled.min(max_batches);
        let mut consumed = 0;
        let mut batches: Vec<Vec<CtrlEvent>> = Vec::with_capacity(take);
        for range in &ranges[..take] {
            batches.push(events[range.clone()].to_vec());
            consumed = range.end;
        }
        self.queue.drain(..consumed);

        for batch in batches {
            for event in &batch {
                self.journal
                    .record_event(self.ctrl.topo(), event)
                    .map_err(FleetError::Journal)?;
            }
            let outcome = self
                .ctrl
                .handle_batch_via(&batch, self.southbound.as_dyn(), &self.install)
                .map_err(FleetError::Ctrl)?;
            // The fabric ran the damping itself, so it keeps the
            // controller's damping metric truthful: a k-event damped
            // batch absorbed k-1 recomputes.
            self.ctrl.bump_flaps_damped(batch.len() as u64 - 1);
            self.journal
                .record_outcome(&outcome, batch.len())
                .map_err(FleetError::Journal)?;
            self.batches += 1;
            self.outcomes += 1;
            match &outcome {
                EpochOutcome::Committed(report) => {
                    self.commits += 1;
                    self.epoch_latencies_us
                        .push(report.recompute.as_micros() as u64);
                    let topo = self.ctrl.topo().clone();
                    let observer: &mut dyn CommitObserver = &mut self.audit;
                    observer.on_commit(&topo, self.ctrl.committed(), report);
                }
                EpochOutcome::RolledBack { .. } => self.rollbacks += 1,
            }
            if self.spec.checkpoint_every > 0
                && self.outcomes.is_multiple_of(self.spec.checkpoint_every)
            {
                self.journal
                    .checkpoint(&mut self.ctrl)
                    .map_err(FleetError::Journal)?;
            }
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }

    /// Re-certifies the *current* committed tables with a fresh,
    /// independent auditor (not the one riding the commit stream).
    pub fn certify(&self) -> bool {
        let mut auditor = Auditor::new(self.ctrl.topo().clone());
        auditor
            .audit(self.ctrl.committed().epoch, &self.ctrl.committed().rules)
            .is_certified()
    }

    /// Crash-recovery drill against the live fabric: rebuilds a
    /// controller from this fabric's journal and checks it reconverges
    /// to the live committed tables, epoch, and quarantine set with no
    /// unprocessed tail. Returns `(recoverable, quarantine_consistent)`.
    pub fn verify_recovery(&self) -> (bool, bool) {
        let rec = match recover(
            &self.journal_path,
            self.ctrl.topo().clone(),
            self.spec.policy,
            self.spec.tcam_budget,
        ) {
            Ok(r) => r,
            Err(_) => return (false, false),
        };
        let recoverable = rec.tail.is_empty()
            && rec.controller.committed().epoch == self.ctrl.committed().epoch
            && rec.controller.committed().rules == self.ctrl.committed().rules;
        let quarantine_consistent =
            rec.controller.state().quarantines == self.ctrl.state().quarantines;
        (recoverable, quarantine_consistent)
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("id", &self.id)
            .field("name", &self.spec.name)
            .field("epoch", &self.ctrl.committed().epoch)
            .field("queued", &self.queue.len())
            .finish_non_exhaustive()
    }
}
