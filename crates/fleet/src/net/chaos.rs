//! A seeded fault-injecting TCP proxy between ingest clients and the
//! fleet server — the transport counterpart of
//! [`ChaosSouthbound`](tagger_ctrl::ChaosSouthbound).
//!
//! The proxy sits on its own listening socket and forwards each
//! accepted connection to the real server. The client→server direction
//! is *frame-aware*: bytes are reassembled into wire frames and each
//! frame independently draws from a seeded SplitMix64 schedule —
//! forwarded clean, **duplicated** (delivered twice, exercising the
//! server's sequence-number dedupe), **truncated** (a proper prefix is
//! written and the rest dropped, tearing the frame mid-stream and
//! exercising the server's resynchronizing decoder), **delayed**, or
//! the whole connection is **disconnected** (exercising the client's
//! reconnect-and-resend path). The server→client direction is a plain
//! copy, so replies are never corrupted — every injected failure is
//! attributable to the request path, which keeps drills diagnosable.
//!
//! Determinism: each accepted connection gets its own RNG stream
//! derived from the proxy seed and a connection counter, so a drill's
//! fault schedule depends only on the seed and the order/content of
//! frames — not on wall-clock time.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use super::wire::{encode, Decoder};

/// SplitMix64 — the same generator the fleet derives per-fabric seeds
/// with; tiny, seedable, and with no shared state between streams.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw in `[0, n)` (0 when `n` is 0).
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// The transport fault schedule: per-frame probabilities. Rates are
/// clamped so their sum stays at or below 0.9 — a proxy that faults
/// every frame forever is a severed cable, not a fault model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetChaosConfig {
    /// RNG seed; equal seeds produce equal fault schedules.
    pub seed: u64,
    /// Probability a frame triggers a full connection disconnect (the
    /// frame is lost; both directions are torn down).
    pub disconnect_rate: f64,
    /// Probability a frame is delivered twice.
    pub duplicate_rate: f64,
    /// Probability a frame is truncated mid-write (a proper prefix is
    /// forwarded; the stream then continues with the next frame).
    pub truncate_rate: f64,
    /// Probability a frame is delayed before forwarding.
    pub delay_rate: f64,
    /// Upper bound on an injected delay, in milliseconds.
    pub max_delay_ms: u64,
}

impl NetChaosConfig {
    /// A schedule with the given seed and per-fault rate applied to
    /// disconnects, duplicates and truncations (delays at double the
    /// rate, capped at 10 ms), clamped.
    pub fn new(seed: u64, rate: f64) -> Self {
        NetChaosConfig {
            seed,
            disconnect_rate: rate,
            duplicate_rate: rate,
            truncate_rate: rate,
            delay_rate: rate * 2.0,
            max_delay_ms: 10,
        }
        .clamped()
    }

    /// Clamps each rate to `[0, 0.9]` and rescales so the total stays
    /// at or below 0.9.
    pub fn clamped(mut self) -> Self {
        for r in [
            &mut self.disconnect_rate,
            &mut self.duplicate_rate,
            &mut self.truncate_rate,
            &mut self.delay_rate,
        ] {
            *r = r.clamp(0.0, 0.9);
        }
        let total =
            self.disconnect_rate + self.duplicate_rate + self.truncate_rate + self.delay_rate;
        if total > 0.9 {
            let scale = 0.9 / total;
            self.disconnect_rate *= scale;
            self.duplicate_rate *= scale;
            self.truncate_rate *= scale;
            self.delay_rate *= scale;
        }
        self
    }

    /// Parses the `--net-chaos` flag syntax: comma-separated
    /// `key=value` pairs — `seed=7,disconnect=0.05,duplicate=0.1,`
    /// `truncate=0.05,delay=0.2,max_delay_ms=10`. Unset keys default
    /// to seed 0 and rate 0.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut cfg = NetChaosConfig {
            seed: 0,
            disconnect_rate: 0.0,
            duplicate_rate: 0.0,
            truncate_rate: 0.0,
            delay_rate: 0.0,
            max_delay_ms: 10,
        };
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("net-chaos spec {pair:?} is not key=value"))?;
            let bad = || format!("net-chaos {key} wants a number, got {value:?}");
            let v = value.trim();
            match key.trim() {
                "seed" => cfg.seed = v.parse().map_err(|_| bad())?,
                "disconnect" => cfg.disconnect_rate = v.parse().map_err(|_| bad())?,
                "duplicate" => cfg.duplicate_rate = v.parse().map_err(|_| bad())?,
                "truncate" => cfg.truncate_rate = v.parse().map_err(|_| bad())?,
                "delay" => cfg.delay_rate = v.parse().map_err(|_| bad())?,
                "max_delay_ms" => cfg.max_delay_ms = v.parse().map_err(|_| bad())?,
                other => return Err(format!("unknown net-chaos key {other:?}")),
            }
        }
        Ok(cfg.clamped())
    }
}

/// Cumulative fault counters, readable while the proxy runs.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Connections accepted and proxied.
    pub connections: AtomicU64,
    /// Frames forwarded clean.
    pub forwarded: AtomicU64,
    /// Connections torn down by an injected disconnect.
    pub disconnects: AtomicU64,
    /// Frames delivered twice.
    pub duplicates: AtomicU64,
    /// Frames truncated mid-write.
    pub truncations: AtomicU64,
    /// Frames delayed.
    pub delays: AtomicU64,
}

impl ChaosStats {
    /// Total faults injected so far.
    pub fn faults(&self) -> u64 {
        self.disconnects.load(Ordering::Relaxed)
            + self.duplicates.load(Ordering::Relaxed)
            + self.truncations.load(Ordering::Relaxed)
            + self.delays.load(Ordering::Relaxed)
    }
}

/// The running proxy: listen address, fault counters, shutdown handle.
pub struct ChaosTransport {
    addr: SocketAddr,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// How long proxy relay threads wait in a blocked read before checking
/// the stop flag again.
const POLL: Duration = Duration::from_millis(20);

impl ChaosTransport {
    /// Starts the proxy on an ephemeral local port, forwarding every
    /// accepted connection to `upstream` under `cfg`'s fault schedule.
    pub fn start(upstream: SocketAddr, cfg: NetChaosConfig) -> std::io::Result<ChaosTransport> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stats = Arc::new(ChaosStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stats = Arc::clone(&stats);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let mut conn_index = 0u64;
            let mut relays: Vec<std::thread::JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((client, _)) => {
                        accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                        let seed = SplitMix64::new(cfg.seed.wrapping_add(conn_index)).next_u64();
                        conn_index += 1;
                        match TcpStream::connect(upstream) {
                            Ok(server) => {
                                relays.extend(relay_pair(
                                    client,
                                    server,
                                    cfg,
                                    seed,
                                    Arc::clone(&accept_stats),
                                    Arc::clone(&accept_stop),
                                ));
                            }
                            Err(_) => {
                                // Upstream refused: drop the client —
                                // from its side this is a disconnect.
                                let _ = client.shutdown(Shutdown::Both);
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
            for h in relays {
                let _ = h.join();
            }
        });
        Ok(ChaosTransport {
            addr,
            stats,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address (point clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live fault counters.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Stops accepting and tears the proxy down.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Spawns the two relay threads for one proxied connection: the
/// frame-aware, fault-injecting client→server leg and the transparent
/// server→client leg.
fn relay_pair(
    client: TcpStream,
    server: TcpStream,
    cfg: NetChaosConfig,
    seed: u64,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<()>> {
    let dead = Arc::new(AtomicBool::new(false));
    let _ = client.set_read_timeout(Some(POLL));
    let _ = server.set_read_timeout(Some(POLL));
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);

    let c2s = {
        let client = match client.try_clone() {
            Ok(c) => c,
            Err(_) => return Vec::new(),
        };
        let mut server_w = match server.try_clone() {
            Ok(s) => s,
            Err(_) => return Vec::new(),
        };
        let stats = Arc::clone(&stats);
        let stop = Arc::clone(&stop);
        let dead = Arc::clone(&dead);
        let server_for_kill = match server.try_clone() {
            Ok(s) => s,
            Err(_) => return Vec::new(),
        };
        let client_for_kill = match client.try_clone() {
            Ok(c) => c,
            Err(_) => return Vec::new(),
        };
        std::thread::spawn(move || {
            let mut rng = SplitMix64::new(seed);
            let mut dec = Decoder::new();
            let mut client = client;
            let mut buf = [0u8; 4096];
            'conn: loop {
                if stop.load(Ordering::Relaxed) || dead.load(Ordering::Relaxed) {
                    break;
                }
                let n = match client.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => n,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(_) => break,
                };
                dec.extend(&buf[..n]);
                while let Some(frame) = dec.next_frame() {
                    let bytes = encode(frame.kind, frame.seq, &frame.payload);
                    let draw = rng.next_f64();
                    let c = cfg;
                    if draw < c.disconnect_rate {
                        stats.disconnects.fetch_add(1, Ordering::Relaxed);
                        dead.store(true, Ordering::Relaxed);
                        let _ = client.shutdown(Shutdown::Both);
                        let _ = server_for_kill.shutdown(Shutdown::Both);
                        break 'conn;
                    } else if draw < c.disconnect_rate + c.duplicate_rate {
                        stats.duplicates.fetch_add(1, Ordering::Relaxed);
                        if server_w.write_all(&bytes).is_err()
                            || server_w.write_all(&bytes).is_err()
                        {
                            break 'conn;
                        }
                    } else if draw < c.disconnect_rate + c.duplicate_rate + c.truncate_rate {
                        // Tear the frame: forward a proper prefix, drop
                        // the rest, keep the stream alive — the server's
                        // decoder must resynchronize on the next frame.
                        stats.truncations.fetch_add(1, Ordering::Relaxed);
                        let cut = 1 + rng.next_below(bytes.len() as u64 - 1) as usize;
                        if server_w.write_all(&bytes[..cut]).is_err() {
                            break 'conn;
                        }
                    } else if draw
                        < c.disconnect_rate + c.duplicate_rate + c.truncate_rate + c.delay_rate
                    {
                        stats.delays.fetch_add(1, Ordering::Relaxed);
                        let ms = rng.next_below(cfg.max_delay_ms.max(1)) + 1;
                        std::thread::sleep(Duration::from_millis(ms));
                        if server_w.write_all(&bytes).is_err() {
                            break 'conn;
                        }
                    } else {
                        stats.forwarded.fetch_add(1, Ordering::Relaxed);
                        if server_w.write_all(&bytes).is_err() {
                            break 'conn;
                        }
                    }
                }
            }
            dead.store(true, Ordering::Relaxed);
            let _ = client_for_kill.shutdown(Shutdown::Both);
            let _ = server_for_kill.shutdown(Shutdown::Both);
        })
    };

    let s2c = {
        let mut server = server;
        let mut client_w = client;
        let stop = Arc::clone(&stop);
        let dead = Arc::clone(&dead);
        std::thread::spawn(move || {
            let mut buf = [0u8; 4096];
            loop {
                if stop.load(Ordering::Relaxed) || dead.load(Ordering::Relaxed) {
                    break;
                }
                match server.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => {
                        if client_w.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(_) => break,
                }
            }
            dead.store(true, Ordering::Relaxed);
            let _ = client_w.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
        })
    };

    vec![c2s, s2c]
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut r = SplitMix64::new(3);
        for _ in 0..64 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.next_below(5) < 5);
        }
    }

    #[test]
    fn rates_clamp_to_a_survivable_total() {
        let cfg = NetChaosConfig {
            seed: 1,
            disconnect_rate: 0.9,
            duplicate_rate: 0.9,
            truncate_rate: 0.9,
            delay_rate: 0.9,
            max_delay_ms: 1,
        }
        .clamped();
        let total = cfg.disconnect_rate + cfg.duplicate_rate + cfg.truncate_rate + cfg.delay_rate;
        assert!(total <= 0.9 + 1e-9, "total {total} must stay survivable");
    }

    #[test]
    fn parse_round_trips_the_flag_syntax() {
        let cfg =
            NetChaosConfig::parse("seed=7,disconnect=0.05,duplicate=0.1,truncate=0.02,delay=0.2")
                .unwrap();
        assert_eq!(cfg.seed, 7);
        assert!((cfg.duplicate_rate - 0.1).abs() < 1e-9);
        assert!(NetChaosConfig::parse("disconnect=high").is_err());
        assert!(NetChaosConfig::parse("frobnicate=1").is_err());
        assert!(
            NetChaosConfig::parse("").is_ok(),
            "an empty spec means default rates"
        );
    }
}
