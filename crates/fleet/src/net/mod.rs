//! The fleet's network ingest front — DESIGN §15.
//!
//! Four layers, each testable alone:
//!
//! - [`wire`] — the length-prefixed framed protocol and its
//!   resynchronizing decoder. Torn frames cost bytes, never
//!   connections.
//! - [`server`] — `tagger-fleetd serve`: reader threads with deadlines
//!   and per-connection budgets feeding the fair
//!   [`drain_cycle`](crate::Fleet::drain_cycle), per-client sequence
//!   dedupe, graceful drain-then-close shutdown.
//! - [`client`] — `tagger-ingest`: strict one-in-flight delivery with
//!   seeded backoff + jitter and bounded retries, reporting a
//!   byte-stable delivery summary.
//! - [`chaos`] — a seeded transport proxy injecting disconnects,
//!   delays, duplicates, and mid-frame truncation, so every failure
//!   mode above is exercised deterministically in loopback soaks.
//!
//! The invariant the whole stack defends: events reach each fabric's
//! queue **exactly once and in order**, so the write-ahead journals a
//! networked ingest produces are byte-identical to a solo in-process
//! replay of the same lines — chaos or no chaos.

pub mod chaos;
pub mod client;
pub mod server;
pub mod wire;

pub use chaos::{ChaosStats, ChaosTransport, NetChaosConfig};
pub use client::{send_lines, ClientConfig, DeliveryReport, Rejection};
pub use server::{chaos_for, ServeConfig, Server, ServerStats, ShutdownOutcome};
