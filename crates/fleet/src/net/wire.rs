//! The framed wire protocol `tagger-fleetd serve` speaks.
//!
//! Every message travels as one length-prefixed frame:
//!
//! ```text
//! offset  size  field
//!      0     2  magic 0x54 0x47 ("TG") — the resync anchor
//!      2     1  kind (message discriminant)
//!      3     8  seq, big-endian — per-client event sequence number;
//!               replies echo the seq they answer
//!     11     4  payload length, big-endian (≤ MAX_PAYLOAD)
//!     15     4  FNV-1a checksum over kind + seq + len + payload
//!     19     n  payload
//! ```
//!
//! The decoder is a resynchronizing scanner, not a strict parser: a
//! torn frame (a peer died mid-write, a proxy truncated a frame) leaves
//! garbage in the stream, and the reader recovers by scanning forward
//! to the next magic and re-validating from there. Three things make
//! that safe: the magic bounds the scan, the length field is capped by
//! [`MAX_PAYLOAD`] (an absurd length means we are looking at garbage,
//! not a frame), and the checksum rejects the case where payload bytes
//! happen to contain the magic. A frame that fails any check costs the
//! stream exactly the bytes up to the next plausible anchor — never the
//! connection.
//!
//! Frames never carry wall-clock or host-specific data, so an event
//! stream encodes byte-identically on every machine — what lets the
//! chaos proxy re-encode frames it duplicates and lets CI compare
//! delivery reports across runs.

use std::fmt;

/// The two-byte frame anchor.
pub const MAGIC: [u8; 2] = [0x54, 0x47];

/// Header bytes before the payload: magic(2) + kind(1) + seq(8) +
/// len(4) + checksum(4).
pub const HEADER_LEN: usize = 19;

/// Hard cap on payload size. A `<fabric>: <trace-line>` event is tens
/// of bytes; 64 KiB leaves room for pathological path lists while
/// keeping a garbage length field instantly recognizable.
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// Message discriminants. Requests (client → server) sit below 16,
/// replies (server → client) at or above.
pub mod kind {
    /// Session open: payload is the 8-byte client id.
    pub const HELLO: u8 = 1;
    /// One ingest event: payload is the `<fabric>: <trace-line>` text.
    pub const EVENT: u8 = 2;
    /// Graceful end of stream.
    pub const BYE: u8 = 3;
    /// Session accepted: payload is the next seq the server expects
    /// from this client (everything below it is already applied).
    pub const WELCOME: u8 = 16;
    /// Event accepted: payload is the fabric's committed epoch at
    /// acceptance time.
    pub const OK: u8 = 17;
    /// Event not accepted, try later: payload is the fabric's queue
    /// depth (u32) and the suggested retry delay in ms (u32).
    pub const BACKPRESSURE: u8 = 18;
    /// Event permanently refused: payload is the offending span
    /// (line/col/len as u32s) plus a reason string.
    pub const REJECT: u8 = 19;
    /// Sequence gap: the server expected a lower seq (payload, u64);
    /// the client must rewind and resend from there.
    pub const REWIND: u8 = 20;
}

/// A decoded frame: discriminant, sequence number, raw payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawFrame {
    /// Message discriminant (see [`kind`]).
    pub kind: u8,
    /// Sequence number from the header.
    pub seq: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// FNV-1a over the non-magic header fields and payload.
fn checksum(kind: u8, seq: u64, payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    let mut eat = |b: u8| {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    };
    eat(kind);
    for b in seq.to_be_bytes() {
        eat(b);
    }
    for b in (payload.len() as u32).to_be_bytes() {
        eat(b);
    }
    for &b in payload {
        eat(b);
    }
    h
}

/// Encodes one frame. Panics never: oversized payloads are a programming
/// error on the sending side and are truncated to [`MAX_PAYLOAD`] —
/// the receiver's checksum would reject a silently corrupted frame, so
/// the truncation is loud in practice (the frame arrives intact, just
/// bounded).
pub fn encode(kind: u8, seq: u64, payload: &[u8]) -> Vec<u8> {
    let payload = &payload[..payload.len().min(MAX_PAYLOAD)];
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(kind);
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&checksum(kind, seq, payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// A resynchronizing frame decoder over a byte stream.
///
/// Feed it reads with [`Decoder::extend`], pull complete frames with
/// [`Decoder::next_frame`]. Garbage between frames — torn frames,
/// truncated writes, duplicated partial bytes — is skipped, counted,
/// and never fatal.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    /// Raw bytes discarded while hunting for a frame anchor.
    pub skipped_bytes: u64,
    /// Times the scanner had to abandon a plausible anchor and rescan
    /// (bad length, bad checksum, or leading garbage) — each one is a
    /// survived torn frame.
    pub resyncs: u64,
    /// Anchors rejected specifically for an oversized length field.
    pub oversized: u64,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed (a partial frame in flight).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Drops `n` leading bytes as garbage, counting them.
    fn skip(&mut self, n: usize) {
        self.buf.drain(..n);
        self.skipped_bytes += n as u64;
    }

    /// Scans to the first magic anchor, discarding garbage before it.
    /// Returns false when no anchor is buffered (all but a possible
    /// trailing half-magic byte is discarded).
    fn seek_anchor(&mut self) -> bool {
        if let Some(pos) = self.buf.windows(2).position(|w| w == MAGIC) {
            if pos > 0 {
                self.skip(pos);
                self.resyncs += 1;
            }
            return true;
        }
        // No anchor: keep a trailing first-magic-byte, drop the rest.
        let keep = usize::from(self.buf.last() == Some(&MAGIC[0]));
        let drop = self.buf.len() - keep;
        if drop > 0 {
            self.skip(drop);
        }
        false
    }

    /// Pulls the next complete, checksum-valid frame, resynchronizing
    /// past any garbage. `None` means the buffer holds no complete
    /// frame yet (wait for more bytes).
    pub fn next_frame(&mut self) -> Option<RawFrame> {
        loop {
            if !self.seek_anchor() {
                return None;
            }
            if self.buf.len() < HEADER_LEN {
                return None;
            }
            let fkind = self.buf[2];
            let seq = u64::from_be_bytes(self.buf[3..11].try_into().unwrap_or([0; 8]));
            let len = u32::from_be_bytes(self.buf[11..15].try_into().unwrap_or([0; 4])) as usize;
            let sum = u32::from_be_bytes(self.buf[15..19].try_into().unwrap_or([0; 4]));
            if len > MAX_PAYLOAD {
                // A length this large is not a frame — we anchored on
                // payload bytes or a tear. Skip the false anchor.
                self.oversized += 1;
                self.resyncs += 1;
                self.skip(2);
                continue;
            }
            if self.buf.len() < HEADER_LEN + len {
                // Possibly a torn frame; wait for more bytes. If the
                // stream closes here the tear dies with the connection.
                return None;
            }
            let payload = &self.buf[HEADER_LEN..HEADER_LEN + len];
            if checksum(fkind, seq, payload) != sum {
                // Anchor was inside garbage (e.g. a truncated frame's
                // remains followed by a real frame). Abandon it.
                self.resyncs += 1;
                self.skip(2);
                continue;
            }
            let frame = RawFrame {
                kind: fkind,
                seq,
                payload: payload.to_vec(),
            };
            self.buf.drain(..HEADER_LEN + len);
            return Some(frame);
        }
    }
}

/// Typed view of a frame's payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Session open carrying the client id.
    Hello {
        /// The client's stable identity (dedup key across reconnects).
        client: u64,
    },
    /// One `<fabric>: <trace-line>` ingest event.
    Event {
        /// The event text.
        line: String,
    },
    /// Graceful end of stream.
    Bye,
    /// Session accepted; resume sending from `next_seq`.
    Welcome {
        /// First sequence number not yet applied for this client.
        next_seq: u64,
    },
    /// Event applied (or already applied — duplicates ack identically).
    Ok {
        /// The fabric's committed epoch when the event was accepted.
        epoch: u64,
    },
    /// Event not accepted now; retry after the suggested delay.
    Backpressure {
        /// The saturated fabric's current queue depth.
        queue_depth: u32,
        /// Suggested client-side delay before resending, ms.
        retry_after_ms: u32,
    },
    /// Event permanently refused (parse error, bad fabric, …).
    Reject {
        /// 1-based line of the offending token (0 = whole input).
        line: u32,
        /// 1-based column of the offending token.
        col: u32,
        /// Byte length of the offending token.
        len: u32,
        /// Human-readable reason.
        reason: String,
    },
    /// The server expected a lower seq; resend from `expected`.
    Rewind {
        /// The seq to resume from.
        expected: u64,
    },
}

/// Why a structurally valid frame could not be interpreted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Unknown discriminant (likely a protocol version mismatch).
    UnknownKind(u8),
    /// Payload too short for the discriminant's fixed fields.
    ShortPayload {
        /// The frame's discriminant.
        kind: u8,
        /// Bytes present.
        have: usize,
        /// Bytes required.
        want: usize,
    },
    /// A text field was not UTF-8.
    BadUtf8 {
        /// The frame's discriminant.
        kind: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::ShortPayload { kind, have, want } => {
                write!(f, "frame kind {kind}: payload {have} bytes, want {want}")
            }
            WireError::BadUtf8 { kind } => write!(f, "frame kind {kind}: payload is not UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

fn be_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_be_bytes(a)
}

fn be_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_be_bytes(a)
}

impl Msg {
    /// The discriminant this message encodes as.
    pub fn kind(&self) -> u8 {
        match self {
            Msg::Hello { .. } => kind::HELLO,
            Msg::Event { .. } => kind::EVENT,
            Msg::Bye => kind::BYE,
            Msg::Welcome { .. } => kind::WELCOME,
            Msg::Ok { .. } => kind::OK,
            Msg::Backpressure { .. } => kind::BACKPRESSURE,
            Msg::Reject { .. } => kind::REJECT,
            Msg::Rewind { .. } => kind::REWIND,
        }
    }

    /// Encodes this message as one wire frame carrying `seq`.
    pub fn encode(&self, seq: u64) -> Vec<u8> {
        let payload: Vec<u8> = match self {
            Msg::Hello { client } => client.to_be_bytes().to_vec(),
            Msg::Event { line } => line.as_bytes().to_vec(),
            Msg::Bye => Vec::new(),
            Msg::Welcome { next_seq } => next_seq.to_be_bytes().to_vec(),
            Msg::Ok { epoch } => epoch.to_be_bytes().to_vec(),
            Msg::Backpressure {
                queue_depth,
                retry_after_ms,
            } => {
                let mut p = queue_depth.to_be_bytes().to_vec();
                p.extend_from_slice(&retry_after_ms.to_be_bytes());
                p
            }
            Msg::Reject {
                line,
                col,
                len,
                reason,
            } => {
                let mut p = line.to_be_bytes().to_vec();
                p.extend_from_slice(&col.to_be_bytes());
                p.extend_from_slice(&len.to_be_bytes());
                p.extend_from_slice(reason.as_bytes());
                p
            }
            Msg::Rewind { expected } => expected.to_be_bytes().to_vec(),
        };
        encode(self.kind(), seq, &payload)
    }

    /// Decodes a frame's payload into its typed message.
    pub fn decode(frame: &RawFrame) -> Result<Msg, WireError> {
        let p = &frame.payload;
        let need = |want: usize| -> Result<(), WireError> {
            if p.len() < want {
                Err(WireError::ShortPayload {
                    kind: frame.kind,
                    have: p.len(),
                    want,
                })
            } else {
                Ok(())
            }
        };
        let text = |bytes: &[u8]| -> Result<String, WireError> {
            String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8 { kind: frame.kind })
        };
        match frame.kind {
            kind::HELLO => {
                need(8)?;
                Ok(Msg::Hello { client: be_u64(p) })
            }
            kind::EVENT => Ok(Msg::Event { line: text(p)? }),
            kind::BYE => Ok(Msg::Bye),
            kind::WELCOME => {
                need(8)?;
                Ok(Msg::Welcome {
                    next_seq: be_u64(p),
                })
            }
            kind::OK => {
                need(8)?;
                Ok(Msg::Ok { epoch: be_u64(p) })
            }
            kind::BACKPRESSURE => {
                need(8)?;
                Ok(Msg::Backpressure {
                    queue_depth: be_u32(p),
                    retry_after_ms: be_u32(&p[4..]),
                })
            }
            kind::REJECT => {
                need(12)?;
                Ok(Msg::Reject {
                    line: be_u32(p),
                    col: be_u32(&p[4..]),
                    len: be_u32(&p[8..]),
                    reason: text(&p[12..])?,
                })
            }
            kind::REWIND => {
                need(8)?;
                Ok(Msg::Rewind {
                    expected: be_u64(p),
                })
            }
            other => Err(WireError::UnknownKind(other)),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn event(seq: u64, line: &str) -> Vec<u8> {
        Msg::Event {
            line: line.to_string(),
        }
        .encode(seq)
    }

    #[test]
    fn frames_round_trip_through_the_decoder() {
        let mut dec = Decoder::new();
        dec.extend(&event(0, "fab-0: down L1 T1"));
        dec.extend(&event(1, "fab-1: resync"));
        let f0 = dec.next_frame().unwrap();
        assert_eq!(f0.seq, 0);
        assert_eq!(
            Msg::decode(&f0).unwrap(),
            Msg::Event {
                line: "fab-0: down L1 T1".into()
            }
        );
        let f1 = dec.next_frame().unwrap();
        assert_eq!(f1.seq, 1);
        assert!(dec.next_frame().is_none());
        assert_eq!(dec.resyncs, 0);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn partial_reads_reassemble() {
        let bytes = event(7, "f: down L1 T1");
        let mut dec = Decoder::new();
        for chunk in bytes.chunks(3) {
            assert!(dec.next_frame().is_none(), "frame must wait for all bytes");
            dec.extend(chunk);
        }
        assert_eq!(dec.next_frame().unwrap().seq, 7);
    }

    #[test]
    fn torn_frame_resyncs_to_the_next_frame() {
        let torn = event(3, "f: down L1 T1 with a reasonably long payload");
        let whole = event(4, "f: up L1 T1");
        let resend = event(5, "f: resync");
        let mut dec = Decoder::new();
        // Half the torn frame, then complete frames right behind it.
        // The tear's length field claims bytes that never arrive, so
        // the decoder first waits (the bytes could still be in flight)
        // — that is what the client's resend-on-timeout heals: once
        // enough bytes exist to checksum the claimed span, the tear is
        // disproven and the scanner resyncs.
        dec.extend(&torn[..torn.len() / 2]);
        dec.extend(&whole);
        dec.extend(&resend);
        let got = dec.next_frame().unwrap();
        assert_eq!(got.seq, 4, "the frame after the tear must survive");
        assert_eq!(dec.next_frame().unwrap().seq, 5);
        assert!(dec.resyncs > 0, "the tear must be counted as a resync");
        assert!(dec.next_frame().is_none());
    }

    #[test]
    fn leading_garbage_is_skipped() {
        let mut dec = Decoder::new();
        dec.extend(b"not a frame at all, just bytes");
        dec.extend(&event(1, "f: resync"));
        assert_eq!(dec.next_frame().unwrap().seq, 1);
        assert!(dec.skipped_bytes > 0);
    }

    #[test]
    fn oversized_length_is_rejected_and_resynced() {
        // Hand-build a frame whose length field claims > MAX_PAYLOAD.
        let mut bad = Vec::new();
        bad.extend_from_slice(&MAGIC);
        bad.push(kind::EVENT);
        bad.extend_from_slice(&0u64.to_be_bytes());
        bad.extend_from_slice(&((MAX_PAYLOAD as u32) + 1).to_be_bytes());
        bad.extend_from_slice(&0u32.to_be_bytes());
        let mut dec = Decoder::new();
        dec.extend(&bad);
        dec.extend(&event(9, "f: resync"));
        let got = dec.next_frame().unwrap();
        assert_eq!(got.seq, 9);
        assert_eq!(dec.oversized, 1);
    }

    #[test]
    fn corrupted_payload_fails_checksum_and_resyncs() {
        let mut bytes = event(5, "f: down L1 T1");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut dec = Decoder::new();
        dec.extend(&bytes);
        dec.extend(&event(6, "f: up L1 T1"));
        let got = dec.next_frame().unwrap();
        assert_eq!(got.seq, 6, "corrupted frame dropped, next one survives");
        assert!(dec.resyncs > 0);
    }

    #[test]
    fn magic_bytes_inside_payloads_do_not_confuse_the_scanner() {
        // Payload contains the magic sequence repeatedly.
        let tricky = "TG TG TGTG fabric: down TG TG";
        let mut dec = Decoder::new();
        let torn = event(0, tricky);
        dec.extend(&torn[..torn.len() - 4]); // tear it
        dec.extend(&event(1, tricky));
        let got = dec.next_frame().unwrap();
        assert_eq!(got.seq, 1);
        assert_eq!(
            Msg::decode(&got).unwrap(),
            Msg::Event {
                line: tricky.into()
            }
        );
    }

    #[test]
    fn every_message_kind_round_trips() {
        let msgs = vec![
            Msg::Hello { client: 42 },
            Msg::Event {
                line: "a: down L1 T1".into(),
            },
            Msg::Bye,
            Msg::Welcome { next_seq: 17 },
            Msg::Ok { epoch: 9 },
            Msg::Backpressure {
                queue_depth: 1024,
                retry_after_ms: 5,
            },
            Msg::Reject {
                line: 1,
                col: 8,
                len: 2,
                reason: "unknown node \"L9\"".into(),
            },
            Msg::Rewind { expected: 3 },
        ];
        for (i, msg) in msgs.into_iter().enumerate() {
            let mut dec = Decoder::new();
            dec.extend(&msg.encode(i as u64));
            let frame = dec.next_frame().unwrap();
            assert_eq!(frame.seq, i as u64);
            assert_eq!(Msg::decode(&frame).unwrap(), msg);
        }
    }

    #[test]
    fn unknown_kind_is_a_typed_error() {
        let frame = RawFrame {
            kind: 99,
            seq: 0,
            payload: vec![],
        };
        assert_eq!(Msg::decode(&frame), Err(WireError::UnknownKind(99)));
        assert!(WireError::UnknownKind(99).to_string().contains("99"));
    }
}
