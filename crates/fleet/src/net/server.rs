//! The fleet's TCP ingest front: one reader thread per connection, a
//! bounded fair drain loop, and a graceful shutdown that drains queues
//! and journals before closing the listener.
//!
//! Threading model (no async runtime — plain threads over `std::net`,
//! per the offline-deps constraint):
//!
//! - the **accept thread** owns the listener (non-blocking, polled
//!   against the stop flag) and spawns one **reader thread** per
//!   connection;
//! - each reader runs its socket with read/write deadlines, feeds a
//!   resynchronizing [`Decoder`], and answers every frame with a
//!   structured reply — `Ok{epoch}`, `Backpressure{queue_depth,
//!   retry_after_ms}` (mapped from [`FleetError::QueueFull`] or an
//!   exhausted per-connection budget), or `Reject{span, reason}`
//!   (carrying the span from the fabric's own [`TraceError`]);
//! - the **drain thread** ticks [`Fleet::drain_cycle`] — the same fair
//!   round-robin, bounded-quantum drain the in-process daemon uses —
//!   and advances the budget epoch that refills every connection's
//!   event allowance. A chatty peer that outruns its budget is pushed
//!   back with `Backpressure`, not allowed to monopolize the cycle.
//!
//! Dedupe contract: each client names itself with a `Hello{client_id}`
//! and numbers its events with a per-client sequence. The server tracks
//! the next expected seq per client; duplicates (a retried frame, a
//! chaos-proxy double delivery) are acknowledged without re-applying,
//! and gaps are answered with `Rewind{expected}` so a client can never
//! silently skip an event. This is what makes at-least-once retry from
//! the client exactly-once at the fabric queue.
//!
//! Shutdown sequence (also documented in DESIGN §15): stop accepting →
//! readers finish their in-flight frame and close → drain every queue
//! through the journaled two-phase rollout → snapshot → close. Nothing
//! accepted is ever dropped.

use crate::error::FleetError;
use crate::fabric::{Damping, FabricSpec};
use crate::registry::{Fleet, FleetConfig};
use crate::report::FleetReport;

use super::wire::{Decoder, Msg};

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tagger_ctrl::ChaosConfig;
use tagger_topo::Topology;

/// Everything the ingest front needs to run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Journal directory (one file per fabric, derived names).
    pub dir: PathBuf,
    /// Per-fabric ingest queue capacity; a full queue answers
    /// `Backpressure`, never drops.
    pub queue_cap: usize,
    /// Fair-drain quantum per fabric per cycle (PR 6's starvation
    /// bound).
    pub drain_quantum: usize,
    /// How often the drain thread runs a fair cycle.
    pub drain_interval: Duration,
    /// Socket read deadline; also the stop-flag poll interval for
    /// reader threads.
    pub read_timeout: Duration,
    /// Socket write deadline for replies.
    pub write_timeout: Duration,
    /// Events one connection may land per drain tick before being
    /// pushed back — the budget that keeps one chatty peer from
    /// starving the fair cycle.
    pub conn_budget: usize,
    /// Suggested client retry delay carried in `Backpressure` replies,
    /// ms.
    pub retry_after_ms: u32,
    /// Damping policy for auto-registered fabrics.
    pub damping: Damping,
    /// Southbound chaos schedule for auto-registered fabrics (per-fabric
    /// seed offset, like the in-process daemon); `None` = reliable.
    pub chaos: Option<ChaosConfig>,
    /// Topology template for auto-registered fabrics.
    pub topo: Topology,
}

impl ServeConfig {
    /// Defaults rooted at `dir` over `topo`: queue cap 1024, quantum 4,
    /// 2 ms drain tick, 50 ms read deadline, 1 s write deadline, budget
    /// 64 events per connection per tick, 2 ms suggested retry, flap
    /// damping, reliable southbound.
    pub fn new(dir: impl Into<PathBuf>, topo: Topology) -> Self {
        ServeConfig {
            dir: dir.into(),
            queue_cap: 1024,
            drain_quantum: 4,
            drain_interval: Duration::from_millis(2),
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(1),
            conn_budget: 64,
            retry_after_ms: 2,
            damping: Damping::Flap,
            chaos: None,
            topo,
        }
    }
}

/// Cumulative server counters, readable while serving.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Frames decoded across all connections.
    pub frames: AtomicU64,
    /// Events applied to fabric queues (after dedupe).
    pub events_applied: AtomicU64,
    /// Duplicate events acknowledged without re-applying.
    pub duplicates_dropped: AtomicU64,
    /// `Backpressure` replies sent (full queue or exhausted budget).
    pub backpressure_replies: AtomicU64,
    /// `Reject` replies sent.
    pub rejects: AtomicU64,
    /// `Rewind` replies sent (sequence gaps).
    pub rewinds: AtomicU64,
    /// Torn-frame resynchronizations survived across all connections.
    pub resyncs: AtomicU64,
}

struct Shared {
    cfg: ServeConfig,
    fleet: Mutex<Fleet>,
    /// client id → next expected event seq (everything below it is
    /// applied).
    clients: Mutex<BTreeMap<u64, u64>>,
    stats: ServerStats,
    /// Bumped by the drain thread; readers refill their event budget
    /// when they observe a new tick.
    drain_ticks: AtomicU64,
    stop: AtomicBool,
    /// First hard drain error, if any (journal/controller trouble).
    drain_error: Mutex<Option<String>>,
}

/// The running ingest front. Start with [`Server::start`], stop with
/// [`Server::shutdown`] — dropping without shutdown also stops the
/// threads, but skips the final drain.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    drain_thread: Option<std::thread::JoinHandle<()>>,
}

/// What a graceful shutdown leaves behind: the drained fleet's final
/// snapshot, and the fleet itself for journal-level inspection.
pub struct ShutdownOutcome {
    /// Final snapshot after the terminal drain.
    pub report: FleetReport,
    /// The drained fleet (journals on disk, controllers live).
    pub fleet: Fleet,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept and drain threads.
    pub fn start(addr: &str, cfg: ServeConfig) -> Result<Server, FleetError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let mut fleet_cfg = FleetConfig::new(&cfg.dir);
        fleet_cfg.queue_cap = cfg.queue_cap;
        fleet_cfg.drain_quantum = cfg.drain_quantum;
        let shared = Arc::new(Shared {
            fleet: Mutex::new(Fleet::new(fleet_cfg)),
            clients: Mutex::new(BTreeMap::new()),
            stats: ServerStats::default(),
            drain_ticks: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            drain_error: Mutex::new(None),
            cfg,
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            let mut readers: Vec<std::thread::JoinHandle<()>> = Vec::new();
            while !accept_shared.stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((socket, _)) => {
                        accept_shared
                            .stats
                            .connections
                            .fetch_add(1, Ordering::Relaxed);
                        let conn_shared = Arc::clone(&accept_shared);
                        readers.push(std::thread::spawn(move || {
                            reader_loop(socket, conn_shared);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
            for h in readers {
                let _ = h.join();
            }
        });

        let drain_shared = Arc::clone(&shared);
        let drain_thread = std::thread::spawn(move || {
            while !drain_shared.stop.load(Ordering::Relaxed) {
                std::thread::sleep(drain_shared.cfg.drain_interval);
                // Settled drain: the trailing batch of each fabric's
                // stream may still be growing; committing it here would
                // make batch boundaries depend on tick timing. The
                // shutdown path's drain_all flushes it.
                let result = match drain_shared.fleet.lock() {
                    Ok(mut fleet) => fleet.drain_cycle_settled(),
                    Err(_) => break, // poisoned: a reader panicked
                };
                drain_shared.drain_ticks.fetch_add(1, Ordering::Release);
                if let Err(e) = result {
                    let mut slot = match drain_shared.drain_error.lock() {
                        Ok(s) => s,
                        Err(_) => break,
                    };
                    slot.get_or_insert_with(|| e.to_string());
                }
            }
        });

        Ok(Server {
            shared,
            addr,
            accept_thread: Some(accept_thread),
            drain_thread: Some(drain_thread),
        })
    }

    /// The bound listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Point-in-time fleet snapshot (locks the fleet briefly).
    pub fn snapshot(&self) -> Result<FleetReport, FleetError> {
        match self.shared.fleet.lock() {
            Ok(fleet) => Ok(fleet.snapshot()),
            Err(_) => Err(FleetError::Protocol(
                "fleet lock poisoned by a panicked thread".into(),
            )),
        }
    }

    /// Graceful shutdown: stop accepting, let readers finish, drain
    /// every queue and journal, then return the final state. The
    /// returned fleet still owns its journals, so callers can verify
    /// recovery or compare journal bytes.
    pub fn shutdown(mut self) -> Result<ShutdownOutcome, FleetError> {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.drain_thread.take() {
            let _ = h.join();
        }
        if let Ok(Some(e)) = self.shared.drain_error.lock().map(|mut s| s.take()) {
            return Err(FleetError::Protocol(format!("drain thread failed: {e}")));
        }
        // `Server` has a Drop impl, so `self.shared` cannot be moved
        // out; drop the handle (threads are already joined) and unwrap
        // the remaining reference.
        let shared = Arc::clone(&self.shared);
        drop(self);
        let shared = Arc::try_unwrap(shared).map_err(|_| {
            FleetError::Protocol("server threads still hold the fleet after join".into())
        })?;
        let mut fleet = shared
            .fleet
            .into_inner()
            .map_err(|_| FleetError::Protocol("fleet lock poisoned during shutdown".into()))?;
        fleet.drain_all()?;
        let report = fleet.snapshot();
        Ok(ShutdownOutcome { report, fleet })
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.drain_thread.take() {
            let _ = h.join();
        }
    }
}

/// Derives a fabric's southbound chaos schedule from the serve-wide
/// base config and the fabric's *name* (FNV-1a over the name, XORed
/// into the seed). Registration order depends on which client connects
/// first, so it must never pick a fabric's fault schedule — a solo
/// replay with the same derivation reproduces the same faults, which is
/// what keeps networked journals byte-identical to in-process ones.
pub fn chaos_for(base: &ChaosConfig, fabric: &str) -> ChaosConfig {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in fabric.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    ChaosConfig {
        seed: base.seed ^ h,
        ..*base
    }
}

/// Per-connection session state.
struct Session {
    /// Set by `Hello`; events before it are rejected.
    client: Option<u64>,
    /// Events accepted in the current budget window.
    used: usize,
    /// The drain tick the current budget window belongs to.
    tick: u64,
}

fn reader_loop(socket: TcpStream, shared: Arc<Shared>) {
    let _ = socket.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = socket.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = socket.set_nodelay(true);
    let mut reader = socket;
    let mut dec = Decoder::new();
    let mut session = Session {
        client: None,
        used: 0,
        tick: shared.drain_ticks.load(Ordering::Acquire),
    };
    let mut buf = [0u8; 4096];
    let mut resyncs_flushed = 0u64;
    'conn: loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let n = match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        dec.extend(&buf[..n]);
        while let Some(frame) = dec.next_frame() {
            shared.stats.frames.fetch_add(1, Ordering::Relaxed);
            if dec.resyncs > resyncs_flushed {
                shared
                    .stats
                    .resyncs
                    .fetch_add(dec.resyncs - resyncs_flushed, Ordering::Relaxed);
                resyncs_flushed = dec.resyncs;
            }
            let seq = frame.seq;
            let reply = match Msg::decode(&frame) {
                Ok(msg) => match handle(&shared, &mut session, seq, msg) {
                    Some(reply) => reply,
                    None => break 'conn, // Bye acked by close
                },
                Err(e) => {
                    shared.stats.rejects.fetch_add(1, Ordering::Relaxed);
                    Msg::Reject {
                        line: 0,
                        col: 0,
                        len: 0,
                        reason: e.to_string(),
                    }
                }
            };
            if reader.write_all(&reply.encode(seq)).is_err() {
                break 'conn;
            }
        }
    }
    // Flush any resyncs observed after the last frame.
    if dec.resyncs > resyncs_flushed {
        shared
            .stats
            .resyncs
            .fetch_add(dec.resyncs - resyncs_flushed, Ordering::Relaxed);
    }
}

/// Handles one decoded message; `None` means "close the connection"
/// (graceful `Bye`).
fn handle(shared: &Arc<Shared>, session: &mut Session, seq: u64, msg: Msg) -> Option<Msg> {
    match msg {
        Msg::Hello { client } => {
            session.client = Some(client);
            let next_seq = match shared.clients.lock() {
                Ok(mut clients) => *clients.entry(client).or_insert(0),
                Err(_) => return Some(poisoned()),
            };
            Some(Msg::Welcome { next_seq })
        }
        Msg::Bye => {
            // Ack the goodbye so the client can distinguish a graceful
            // close from a failure, then close.
            let _ = seq;
            None
        }
        Msg::Event { line } => Some(handle_event(shared, session, seq, &line)),
        // A request-side socket should never carry reply kinds; answer
        // with a reject rather than guessing.
        other => {
            shared.stats.rejects.fetch_add(1, Ordering::Relaxed);
            Some(Msg::Reject {
                line: 0,
                col: 0,
                len: 0,
                reason: format!("unexpected frame kind {} on an ingest stream", other.kind()),
            })
        }
    }
}

fn poisoned() -> Msg {
    Msg::Reject {
        line: 0,
        col: 0,
        len: 0,
        reason: "server state poisoned by a panicked thread".into(),
    }
}

fn handle_event(shared: &Arc<Shared>, session: &mut Session, seq: u64, line: &str) -> Msg {
    let Some(client) = session.client else {
        shared.stats.rejects.fetch_add(1, Ordering::Relaxed);
        return Msg::Reject {
            line: 0,
            col: 0,
            len: 0,
            reason: "event before Hello: open the session first".into(),
        };
    };

    // Per-connection budget: refilled each drain tick. Checked before
    // any lock so a throttled peer costs nothing.
    let tick = shared.drain_ticks.load(Ordering::Acquire);
    if tick != session.tick {
        session.tick = tick;
        session.used = 0;
    }
    if session.used >= shared.cfg.conn_budget {
        shared
            .stats
            .backpressure_replies
            .fetch_add(1, Ordering::Relaxed);
        return Msg::Backpressure {
            queue_depth: 0,
            retry_after_ms: shared.cfg.retry_after_ms,
        };
    }

    // The sequence check, the apply, and the sequence bump must be ONE
    // critical section. After a disconnect the old connection's reader
    // can still be draining frames it had buffered while the client
    // already resends them on a new connection — two readers, same
    // client, same seq. A non-atomic check-then-apply would let both
    // through and double-apply the event. Lock order is fleet → clients
    // everywhere.
    let mut fleet = match shared.fleet.lock() {
        Ok(f) => f,
        Err(_) => return poisoned(),
    };
    let mut clients = match shared.clients.lock() {
        Ok(c) => c,
        Err(_) => return poisoned(),
    };
    let expected = clients.get(&client).copied().unwrap_or(0);
    if seq < expected {
        // Duplicate delivery (client retry or chaos-proxy duplicate):
        // already applied — ack idempotently, never re-apply.
        shared
            .stats
            .duplicates_dropped
            .fetch_add(1, Ordering::Relaxed);
        let epoch = line
            .split_once(':')
            .and_then(|(fabric, _)| {
                fleet
                    .fabric(fabric.trim())
                    .ok()
                    .map(|f| f.controller().committed().epoch)
            })
            .unwrap_or(0);
        return Msg::Ok { epoch };
    }
    if seq > expected {
        // A gap means an earlier event was lost in transit (torn frame,
        // dropped connection). Applying this one would reorder the
        // stream — rewind the client instead.
        shared.stats.rewinds.fetch_add(1, Ordering::Relaxed);
        return Msg::Rewind { expected };
    }

    let Some((fabric, rest)) = line.split_once(':') else {
        // Permanently malformed: consume the seq or the client would
        // ping-pong between Reject here and Rewind on its next event.
        clients.insert(client, expected + 1);
        shared.stats.rejects.fetch_add(1, Ordering::Relaxed);
        return Msg::Reject {
            line: 0,
            col: 0,
            len: 0,
            reason: "want '<fabric>: <trace-line>'".into(),
        };
    };
    let fabric = fabric.trim();

    // Register on first mention, like the in-process daemon.
    if fleet.fabric(fabric).is_err() {
        let mut spec =
            FabricSpec::new(fabric, shared.cfg.topo.clone()).with_damping(shared.cfg.damping);
        if let Some(base) = shared.cfg.chaos {
            spec = spec.with_chaos(chaos_for(&base, fabric));
        }
        if let Err(e) = fleet.register(spec) {
            clients.insert(client, expected + 1);
            shared.stats.rejects.fetch_add(1, Ordering::Relaxed);
            return Msg::Reject {
                line: 0,
                col: 0,
                len: 0,
                reason: format!("cannot register fabric {fabric:?}: {e}"),
            };
        }
    }

    match fleet.ingest_line(fabric, rest.trim()) {
        Ok(_) => {
            let epoch = fleet
                .fabric(fabric)
                .map(|f| f.controller().committed().epoch)
                .unwrap_or(0);
            clients.insert(client, expected + 1);
            session.used += 1;
            shared.stats.events_applied.fetch_add(1, Ordering::Relaxed);
            Msg::Ok { epoch }
        }
        Err(FleetError::QueueFull { fabric, .. }) => {
            // Retryable: the seq is NOT consumed; the client resends
            // after backing off and the dedupe admits it then.
            let depth = fleet
                .fabric(&fabric)
                .map(|f| f.queued() as u32)
                .unwrap_or(u32::MAX);
            shared
                .stats
                .backpressure_replies
                .fetch_add(1, Ordering::Relaxed);
            Msg::Backpressure {
                queue_depth: depth,
                retry_after_ms: shared.cfg.retry_after_ms,
            }
        }
        Err(e) => {
            // Permanent refusal: consume the seq (the client must not
            // retry a line the fabric can never parse) and carry the
            // span so the operator sees where.
            shared.stats.rejects.fetch_add(1, Ordering::Relaxed);
            let (sl, sc, sn) = match &e {
                FleetError::Trace(t) => (t.span.line as u32, t.span.col as u32, t.span.len as u32),
                _ => (0, 0, 0),
            };
            clients.insert(client, expected + 1);
            Msg::Reject {
                line: sl,
                col: sc,
                len: sn,
                reason: e.to_string(),
            }
        }
    }
}
