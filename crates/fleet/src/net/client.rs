//! The ingest client: bounded retry with seeded backoff + jitter, a
//! strict one-in-flight send window, and a byte-stable delivery report.
//!
//! The client owns the *at-least-once* half of the delivery contract:
//! it resends an event until some reply consumes its sequence number,
//! reconnecting (with capped, seeded exponential backoff) when the
//! transport dies under it. The server's per-client sequence tracking
//! owns the *at-most-once* half — a resend of an already-applied event
//! is acknowledged without re-applying. Together: exactly once at the
//! fabric queue, no matter what the transport does in between.
//!
//! Sequence numbers are simply the index into the caller's line list,
//! so a reconnect handshake (`Hello` → `Welcome{next_seq}`) tells the
//! client precisely where to resume: everything below `next_seq`
//! landed, even if its ack was lost in the disconnect.

use crate::error::FleetError;

use super::chaos::SplitMix64;
use super::wire::{Decoder, Msg};

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Client knobs. All timing is bounded: no retry loop is infinite.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Server (or chaos proxy) address, `host:port`.
    pub addr: String,
    /// Stable client identity — the server's dedupe key. Two concurrent
    /// clients must never share one.
    pub client_id: u64,
    /// Seed for backoff jitter (deterministic retry schedules in tests).
    pub seed: u64,
    /// Send attempts per event before giving up (resends after a lost
    /// reply count; backpressure retries count).
    pub max_attempts: u32,
    /// Consecutive failed reconnect attempts before giving up. Resets
    /// on every successful handshake.
    pub max_reconnects: u32,
    /// First backoff step; doubles per consecutive failure.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// How long to wait for a reply before resending the event.
    pub reply_timeout: Duration,
}

impl ClientConfig {
    /// Defaults for `addr`/`client_id`: 64 attempts, 16 reconnects,
    /// 2 ms..250 ms backoff, 500 ms reply timeout, seed = client id.
    pub fn new(addr: impl Into<String>, client_id: u64) -> Self {
        ClientConfig {
            addr: addr.into(),
            client_id,
            seed: client_id,
            max_attempts: 64,
            max_reconnects: 16,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(250),
            reply_timeout: Duration::from_millis(500),
        }
    }
}

/// One permanently refused event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// Index of the refused line in the submitted stream.
    pub index: u64,
    /// The server's reason (carries the parse span when there is one).
    pub reason: String,
}

/// What a [`send_lines`] run delivered.
///
/// Two kinds of fields. The *outcome* fields (`offered`, `delivered`,
/// `rejections`) depend only on the input lines and the fabric
/// topologies — they are byte-stable across runs even under transport
/// chaos, which is what [`DeliveryReport::stable_json`] serializes for
/// CI comparison. The *transport* fields (`reconnects`,
/// `backpressure_hits`, `resends`) depend on fault timing and belong in
/// operator text only.
#[derive(Clone, Debug, Default)]
pub struct DeliveryReport {
    /// The client identity the events were sent under.
    pub client_id: u64,
    /// Lines submitted.
    pub offered: u64,
    /// Lines applied by the server exactly once.
    pub delivered: u64,
    /// Lines permanently refused, in index order.
    pub rejections: Vec<Rejection>,
    /// Reconnects survived (timing-dependent).
    pub reconnects: u64,
    /// `Backpressure` replies absorbed (timing-dependent).
    pub backpressure_hits: u64,
    /// Events resent after a lost or late reply (timing-dependent).
    pub resends: u64,
}

impl DeliveryReport {
    /// The deterministic subset as two-space-indented JSON with a
    /// trailing newline — byte-identical across runs at a fixed input,
    /// regardless of transport faults.
    pub fn stable_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"client_id\": {},", self.client_id);
        let _ = writeln!(out, "  \"offered\": {},", self.offered);
        let _ = writeln!(out, "  \"delivered\": {},", self.delivered);
        out.push_str("  \"rejections\": [");
        for (i, r) in self.rejections.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{ \"index\": {}, \"reason\": {} }}",
                r.index,
                crate::report::json_str(&r.reason)
            );
        }
        out.push_str(if self.rejections.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// One operator summary line (includes timing-dependent counters, so
    /// not byte-stable).
    pub fn render(&self) -> String {
        format!(
            "client {:#x}: offered {} delivered {} rejected {} \
             (reconnects {}, backpressure {}, resends {})",
            self.client_id,
            self.offered,
            self.delivered,
            self.rejections.len(),
            self.reconnects,
            self.backpressure_hits,
            self.resends,
        )
    }
}

/// A connected, handshaken session.
struct Session {
    stream: TcpStream,
    dec: Decoder,
    /// From `Welcome`: everything below this seq is already applied.
    next_seq: u64,
}

/// Backoff with jitter: `base * 2^failures`, capped, then scaled by a
/// seeded factor in [0.5, 1.5).
fn backoff(cfg: &ClientConfig, rng: &mut SplitMix64, failures: u32) -> Duration {
    let exp = cfg
        .base_backoff
        .saturating_mul(1u32 << failures.min(16))
        .min(cfg.max_backoff);
    let jitter = 0.5 + rng.next_f64();
    Duration::from_micros((exp.as_micros() as f64 * jitter) as u64)
}

/// Connects and handshakes, retrying with backoff up to
/// `max_reconnects` consecutive failures.
fn connect(
    cfg: &ClientConfig,
    rng: &mut SplitMix64,
    report: &mut DeliveryReport,
) -> Result<Session, FleetError> {
    let mut failures = 0u32;
    loop {
        match try_connect(cfg) {
            Ok(session) => return Ok(session),
            Err(e) => {
                failures += 1;
                report.reconnects += 1;
                if failures > cfg.max_reconnects {
                    return Err(FleetError::Protocol(format!(
                        "gave up after {failures} consecutive connect failures: {e}"
                    )));
                }
                std::thread::sleep(backoff(cfg, rng, failures - 1));
            }
        }
    }
}

fn try_connect(cfg: &ClientConfig) -> std::io::Result<Session> {
    let stream = TcpStream::connect(&cfg.addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(20)))?;
    stream.set_write_timeout(Some(cfg.reply_timeout))?;
    let mut session = Session {
        stream,
        dec: Decoder::new(),
        next_seq: 0,
    };
    session.stream.write_all(
        &Msg::Hello {
            client: cfg.client_id,
        }
        .encode(0),
    )?;
    // The handshake reply must arrive within the reply timeout.
    let deadline = Instant::now() + cfg.reply_timeout;
    loop {
        match read_reply(&mut session, deadline)? {
            Some((_, Msg::Welcome { next_seq })) => {
                session.next_seq = next_seq;
                return Ok(session);
            }
            Some(_) => continue, // stale reply from a previous connection's tail
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "no Welcome before the reply timeout",
                ))
            }
        }
    }
}

/// Pulls one reply frame, waiting until `deadline`. `Ok(None)` = timed
/// out with the connection still healthy; `Err` = connection dead.
fn read_reply(session: &mut Session, deadline: Instant) -> std::io::Result<Option<(u64, Msg)>> {
    let mut buf = [0u8; 4096];
    loop {
        if let Some(frame) = session.dec.next_frame() {
            match Msg::decode(&frame) {
                Ok(msg) => return Ok(Some((frame.seq, msg))),
                // An undecodable but checksum-valid frame is a protocol
                // mismatch; skip it rather than kill the stream.
                Err(_) => continue,
            }
        }
        if Instant::now() >= deadline {
            return Ok(None);
        }
        match session.stream.read(&mut buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))
            }
            Ok(n) => session.dec.extend(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Delivers `lines` in order, exactly once each, surviving transport
/// faults within the configured retry bounds. Returns the delivery
/// report, or an error once a bound (attempts, reconnects) is
/// exhausted — the report is only returned when every line was either
/// applied or permanently rejected.
pub fn send_lines(cfg: &ClientConfig, lines: &[String]) -> Result<DeliveryReport, FleetError> {
    let mut report = DeliveryReport {
        client_id: cfg.client_id,
        offered: lines.len() as u64,
        ..DeliveryReport::default()
    };
    let mut rng = SplitMix64::new(cfg.seed ^ 0xC11E);
    let mut session = connect(cfg, &mut rng, &mut report)?;
    // Seqs are line indexes, so a resumed session skips what landed.
    let mut index = session.next_seq;
    report.delivered = index.min(lines.len() as u64);

    while (index as usize) < lines.len() {
        let line = &lines[index as usize];
        let mut attempts = 0u32;
        let consumed = loop {
            if attempts >= cfg.max_attempts {
                return Err(FleetError::Protocol(format!(
                    "event {index} not delivered after {attempts} attempts"
                )));
            }
            attempts += 1;
            if attempts > 1 {
                report.resends += 1;
            }
            let frame = Msg::Event { line: line.clone() }.encode(index);
            if session.stream.write_all(&frame).is_err() {
                report.reconnects += 1;
                session = connect(cfg, &mut rng, &mut report)?;
                break None; // resume from the fresh Welcome
            }
            match wait_consuming_reply(cfg, &mut session, &mut rng, index, &mut report)? {
                WaitOutcome::Consumed(next) => break Some(next),
                WaitOutcome::Resend => continue,
                WaitOutcome::Reconnected => break None,
            }
        };
        let next = match consumed {
            Some(next) => next,
            None => session.next_seq, // fresh handshake decided the resume point
        };
        // Everything in [index, next) is settled; count deliveries that
        // were not recorded as rejections.
        let rejected_in_range = report
            .rejections
            .iter()
            .filter(|r| r.index >= index && r.index < next)
            .count() as u64;
        report.delivered += next.saturating_sub(index) - rejected_in_range;
        // `next` may also rewind below `index` (a Rewind reply, or a
        // reconnect whose Welcome shows an earlier event never landed);
        // the server's dedupe makes re-sending the range harmless.
        index = next;
    }
    // Best-effort goodbye; the work is already acknowledged.
    let _ = session.stream.write_all(&Msg::Bye.encode(index));
    Ok(report)
}

enum WaitOutcome {
    /// The event's seq was consumed; resume from the carried index.
    Consumed(u64),
    /// No reply in time — resend on the same connection (a torn frame
    /// heals this way: the server resyncs past the tear).
    Resend,
    /// The connection died and was re-established; `session.next_seq`
    /// holds the resume point.
    Reconnected,
}

fn wait_consuming_reply(
    cfg: &ClientConfig,
    session: &mut Session,
    rng: &mut SplitMix64,
    index: u64,
    report: &mut DeliveryReport,
) -> Result<WaitOutcome, FleetError> {
    let deadline = Instant::now() + cfg.reply_timeout;
    loop {
        let reply = match read_reply(session, deadline) {
            Ok(r) => r,
            Err(_) => {
                report.reconnects += 1;
                *session = connect(cfg, rng, report)?;
                return Ok(WaitOutcome::Reconnected);
            }
        };
        match reply {
            None => return Ok(WaitOutcome::Resend),
            Some((seq, msg)) if seq == index => match msg {
                Msg::Ok { .. } => return Ok(WaitOutcome::Consumed(index + 1)),
                Msg::Reject { reason, .. } => {
                    report.rejections.push(Rejection { index, reason });
                    return Ok(WaitOutcome::Consumed(index + 1));
                }
                Msg::Backpressure { retry_after_ms, .. } => {
                    report.backpressure_hits += 1;
                    let hinted = Duration::from_millis(u64::from(retry_after_ms));
                    std::thread::sleep(hinted + backoff(cfg, rng, 0));
                    return Ok(WaitOutcome::Resend);
                }
                Msg::Rewind { expected } => return Ok(WaitOutcome::Consumed(expected)),
                // A request kind echoed back is protocol garbage; wait
                // for a real reply.
                _ => continue,
            },
            // Stale replies (acks for already-settled seqs, a tail
            // Welcome from the handshake) are skipped, not errors —
            // duplicate deliveries produce exactly these.
            Some(_) => continue,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn stable_json_is_deterministic_and_omits_transport_counters() {
        let mut r = DeliveryReport {
            client_id: 7,
            offered: 10,
            delivered: 9,
            rejections: vec![Rejection {
                index: 4,
                reason: "unknown node \"L9\"".into(),
            }],
            reconnects: 3,
            backpressure_hits: 12,
            resends: 5,
        };
        let a = r.stable_json();
        // Transport counters must not leak into the stable render.
        r.reconnects = 0;
        r.backpressure_hits = 0;
        r.resends = 0;
        assert_eq!(a, r.stable_json());
        assert!(a.contains("\"delivered\": 9"));
        assert!(a.contains("\\\"L9\\\""));
        assert!(!a.contains("reconnect"));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn backoff_doubles_and_is_capped() {
        let cfg = ClientConfig::new("127.0.0.1:1", 1);
        let mut rng = SplitMix64::new(9);
        let d0 = backoff(&cfg, &mut rng, 0);
        let d4 = backoff(&cfg, &mut rng, 4);
        let d20 = backoff(&cfg, &mut rng, 20);
        assert!(d0 >= cfg.base_backoff / 2);
        assert!(d4 > d0, "backoff must grow with failures");
        assert!(
            d20 <= cfg.max_backoff * 3 / 2,
            "jittered backoff must respect the cap"
        );
    }

    #[test]
    fn connect_gives_up_after_the_reconnect_cap() {
        // A port from the reserved range that nothing listens on.
        let mut cfg = ClientConfig::new("127.0.0.1:1", 3);
        cfg.max_reconnects = 2;
        cfg.base_backoff = Duration::from_micros(10);
        cfg.max_backoff = Duration::from_micros(50);
        let err = send_lines(&cfg, &["a: resync".to_string()]).unwrap_err();
        assert!(matches!(err, FleetError::Protocol(_)));
        assert!(err.to_string().contains("connect failures"));
    }
}
