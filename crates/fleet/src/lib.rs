//! Multi-fabric control-plane supervision for Tagger — the library
//! behind `tagger-fleetd`.
//!
//! One controller process per fabric does not survive contact with a
//! real deployment: operators run *fleets* of fabrics, and the
//! interesting failures are cross-fabric — a flap storm in one fabric
//! starving the others' recomputes, two fabrics accidentally journaling
//! into the same file, a fleet-wide rollout gated on every fabric being
//! simultaneously certified. This crate supervises N independent
//! fabrics in one process while keeping them *provably* independent:
//!
//! - [`Fabric`] — one fabric's controller, write-ahead journal, chaos
//!   (or reliable) southbound, and independent audit loop, behind a
//!   bounded ingest queue with a per-fabric [`DampingPolicy`]. Nothing
//!   is shared between fabrics.
//! - [`Fleet`] — the registry and fair drain loop. Registration derives
//!   an isolated journal path per fabric and refuses duplicates even
//!   across path respellings; draining visits every fabric per cycle
//!   with a bounded batch quantum, so one flapping fabric cannot starve
//!   the rest. Because damping policies are suffix-closed, the bounded
//!   interleaved drain commits *exactly* the epochs a solo replay would.
//! - [`FleetReport`] — per-fabric status plus `Sum`-based rollups of
//!   [`ControllerMetrics`](tagger_ctrl::ControllerMetrics) and
//!   [`AuditMetrics`](tagger_audit::AuditMetrics), rendered as operator
//!   text or seed-deterministic JSON.
//! - [`run_soak`] — the chaos-soak drill: every fabric under a distinct
//!   seeded fault schedule, graded on audit certification, journal
//!   recoverability, quarantine consistency, and southbound convergence,
//!   emitting a byte-stable [`ReadinessReport`].
//! - [`net`] — the framed TCP ingest front (DESIGN §15): a
//!   resynchronizing wire codec, a threaded server with per-client
//!   sequence dedupe and `Backpressure` instead of drops, a bounded
//!   retry client, and a seeded chaos transport proxy — events arrive
//!   exactly once, and networked journals are byte-identical to a solo
//!   replay.
//!
//! [`DampingPolicy`]: tagger_ctrl::DampingPolicy

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

mod error;
mod fabric;
pub mod net;
mod registry;
mod report;
mod soak;

pub use error::FleetError;
pub use fabric::{Damping, Fabric, FabricId, FabricSpec};
pub use registry::{Fleet, FleetConfig};
pub use report::{percentile_us, FabricStatus, FleetReport};
pub use soak::{
    run_soak, soak_schedule, FabricReadiness, ReadinessReport, SoakConfig, SoakOutcome,
};
