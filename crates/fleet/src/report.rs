//! Fleet snapshots: per-fabric status lines plus one-place rollups,
//! rendered as deterministic text or JSON.
//!
//! Two audiences, two renders. [`FleetReport::render`] is the operator
//! view: it includes wall-clock latency summaries, which vary run to
//! run. [`FleetReport::to_json`] is the machine view and carries *only*
//! seed-deterministic fields (counts, epochs, flags) — given the same
//! specs and seeds it is byte-identical across runs, so it can be
//! diffed, golden-tested, and asserted on in CI. Timing belongs in
//! `BENCH_fleetd.json`, not here.

use crate::fabric::Fabric;
use std::fmt::Write as _;
use tagger_audit::AuditMetrics;
use tagger_ctrl::ControllerMetrics;

/// Point-in-time status of one fabric, decoupled from the live
/// [`Fabric`] so reports can outlive drains.
#[derive(Clone, Debug)]
pub struct FabricStatus {
    /// Fabric id (registration order).
    pub id: u32,
    /// Fabric name.
    pub name: String,
    /// Committed epoch.
    pub epoch: u64,
    /// Rules in the committed snapshot.
    pub rules: usize,
    /// Live watchdog quarantines on the fabric's ELP.
    pub quarantines: usize,
    /// Events waiting in the ingest queue.
    pub queued: usize,
    /// Events accepted over the fabric's lifetime.
    pub ingested: u64,
    /// Ingest attempts refused with `QueueFull` (backpressure pushes the
    /// caller absorbed and retried).
    pub queue_rejections: u64,
    /// Damped batches processed.
    pub batches: u64,
    /// Epochs committed (excluding bootstrap).
    pub commits: u64,
    /// Batches rolled back.
    pub rollbacks: u64,
    /// Commits the independent audit refused to certify.
    pub audit_violations: u64,
    /// Southbound faults the chaos schedule injected.
    pub faults_injected: u64,
    /// Southbound tables equal the committed snapshot.
    pub converged: bool,
    /// The fabric controller's cumulative metrics.
    pub ctrl: ControllerMetrics,
    /// The fabric audit loop's cumulative metrics.
    pub audit: AuditMetrics,
    /// Stage latency per committed epoch, µs (wall-clock; excluded from
    /// the JSON render).
    pub epoch_latencies_us: Vec<u64>,
}

impl FabricStatus {
    /// Captures a fabric's current status.
    pub fn capture(fabric: &Fabric) -> FabricStatus {
        FabricStatus {
            id: fabric.id().0,
            name: fabric.name().to_string(),
            epoch: fabric.controller().committed().epoch,
            rules: fabric.controller().committed().rules.num_rules(),
            quarantines: fabric.controller().state().quarantines.len(),
            queued: fabric.queued(),
            ingested: fabric.ingested(),
            queue_rejections: fabric.queue_rejections(),
            batches: fabric.batches(),
            commits: fabric.commits(),
            rollbacks: fabric.rollbacks(),
            audit_violations: fabric.audit_violations(),
            faults_injected: fabric.faults_injected(),
            converged: fabric.converged(),
            ctrl: fabric.controller().metrics().clone(),
            audit: fabric.audit_metrics().clone(),
            epoch_latencies_us: fabric.epoch_latencies_us().to_vec(),
        }
    }
}

/// A whole-fleet snapshot: every fabric's status, in id order, plus the
/// `Sum`-based rollups that answer "how is the fleet doing" in one
/// place.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Per-fabric status, in fabric-id order.
    pub fabrics: Vec<FabricStatus>,
    /// Every fabric's controller metrics, summed.
    pub ctrl_rollup: ControllerMetrics,
    /// Every fabric's audit metrics, summed.
    pub audit_rollup: AuditMetrics,
}

impl FleetReport {
    /// Builds a report from per-fabric captures, computing the rollups.
    pub fn capture(fabrics: impl Iterator<Item = FabricStatus>) -> FleetReport {
        let fabrics: Vec<FabricStatus> = fabrics.collect();
        let ctrl_rollup = fabrics.iter().map(|f| f.ctrl.clone()).sum();
        let audit_rollup = fabrics.iter().map(|f| f.audit.clone()).sum();
        FleetReport {
            fabrics,
            ctrl_rollup,
            audit_rollup,
        }
    }

    /// True when every fabric is converged with zero audit violations.
    pub fn healthy(&self) -> bool {
        self.fabrics
            .iter()
            .all(|f| f.converged && f.audit_violations == 0)
    }

    /// Every fabric's epoch latencies, concatenated in id order — the
    /// series fleet percentiles are taken over.
    pub fn all_latencies_us(&self) -> Vec<u64> {
        self.fabrics
            .iter()
            .flat_map(|f| f.epoch_latencies_us.iter().copied())
            .collect()
    }

    /// Operator text: one status line per fabric plus the rollups.
    /// Includes wall-clock latency summaries, so it is *not* byte-stable
    /// across runs; use [`FleetReport::to_json`] for that.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "fleet status ({} fabrics)", self.fabrics.len());
        for f in &self.fabrics {
            let _ = writeln!(
                out,
                "  [{}] {:<16} epoch {:>4}  rules {:>5}  quarantines {:>2}  \
                 queued {:>4}  pushback {:>3}  commits {:>4}  rollbacks {:>3}  \
                 faults {:>4}  audit {}  {}",
                f.id,
                f.name,
                f.epoch,
                f.rules,
                f.quarantines,
                f.queued,
                f.queue_rejections,
                f.commits,
                f.rollbacks,
                f.faults_injected,
                if f.audit_violations == 0 {
                    "ok"
                } else {
                    "FAIL"
                },
                if f.converged { "converged" } else { "DIVERGED" },
            );
        }
        let lat = self.all_latencies_us();
        if !lat.is_empty() {
            let _ = writeln!(
                out,
                "  epoch latency µs    p50 {} / p99 {} / max {}",
                percentile_us(&lat, 50),
                percentile_us(&lat, 99),
                lat.iter().max().copied().unwrap_or(0),
            );
        }
        out.push_str("\nfleet rollup\n");
        for line in self.ctrl_rollup.report().lines().skip(1) {
            let _ = writeln!(out, "{line}");
        }
        for line in self.audit_rollup.report().lines().skip(1) {
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Machine JSON, two-space indented with a trailing newline.
    /// Deterministic: only seed-stable fields, no wall-clock values.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"fabrics\": [");
        for (i, f) in self.fabrics.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"id\": {},", f.id);
            let _ = writeln!(out, "      \"name\": {},", json_str(&f.name));
            let _ = writeln!(out, "      \"epoch\": {},", f.epoch);
            let _ = writeln!(out, "      \"rules\": {},", f.rules);
            let _ = writeln!(out, "      \"quarantines\": {},", f.quarantines);
            let _ = writeln!(out, "      \"queued\": {},", f.queued);
            let _ = writeln!(out, "      \"ingested\": {},", f.ingested);
            let _ = writeln!(out, "      \"queue_rejections\": {},", f.queue_rejections);
            let _ = writeln!(out, "      \"batches\": {},", f.batches);
            let _ = writeln!(out, "      \"commits\": {},", f.commits);
            let _ = writeln!(out, "      \"rollbacks\": {},", f.rollbacks);
            let _ = writeln!(out, "      \"flaps_damped\": {},", f.ctrl.flaps_damped);
            let _ = writeln!(out, "      \"faults_injected\": {},", f.faults_injected);
            let _ = writeln!(out, "      \"audit_violations\": {},", f.audit_violations);
            let _ = writeln!(
                out,
                "      \"certificates_issued\": {},",
                f.audit.certificates_issued
            );
            let _ = writeln!(out, "      \"converged\": {}", f.converged);
            out.push_str("    }");
        }
        out.push_str("\n  ],\n");
        let _ = writeln!(
            out,
            "  \"rollup\": {{\n    \"events\": {},\n    \"epochs_committed\": {},\n    \
             \"rollbacks\": {},\n    \"flaps_damped\": {},\n    \"epochs_audited\": {},\n    \
             \"certificates_issued\": {},\n    \"counterexamples_found\": {}\n  }},",
            self.ctrl_rollup.events,
            self.ctrl_rollup.epochs_committed,
            self.ctrl_rollup.rollbacks,
            self.ctrl_rollup.flaps_damped,
            self.audit_rollup.epochs_audited,
            self.audit_rollup.certificates_issued,
            self.audit_rollup.counterexamples_found,
        );
        let _ = writeln!(out, "  \"healthy\": {}", self.healthy());
        out.push_str("}\n");
        out
    }
}

/// Nearest-rank percentile over an unsorted series (`p` in 0..=100).
/// Returns 0 for an empty series.
pub fn percentile_us(series: &[u64], p: usize) -> u64 {
    if series.is_empty() {
        return 0;
    }
    let mut sorted = series.to_vec();
    sorted.sort_unstable();
    let rank = (p * sorted.len()).div_ceil(100).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// JSON string escaping (quotes, backslashes, control characters).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn status(id: u32, name: &str) -> FabricStatus {
        FabricStatus {
            id,
            name: name.to_string(),
            epoch: 3,
            rules: 120,
            quarantines: 1,
            queued: 0,
            ingested: 9,
            queue_rejections: 2,
            batches: 4,
            commits: 3,
            rollbacks: 1,
            audit_violations: 0,
            faults_injected: 2,
            converged: true,
            ctrl: ControllerMetrics {
                events: 9,
                epochs_committed: 3,
                rollbacks: 1,
                flaps_damped: 5,
                ..ControllerMetrics::default()
            },
            audit: {
                let mut m = AuditMetrics::default();
                m.epochs_audited = 4;
                m.certificates_issued = 4;
                m
            },
            epoch_latencies_us: vec![10, 30, 20],
        }
    }

    #[test]
    fn rollups_sum_across_fabrics() {
        let report = FleetReport::capture([status(0, "a"), status(1, "b")].into_iter());
        assert_eq!(report.ctrl_rollup.events, 18);
        assert_eq!(report.ctrl_rollup.epochs_committed, 6);
        assert_eq!(report.audit_rollup.certificates_issued, 8);
        assert!(report.healthy());
        assert_eq!(report.all_latencies_us().len(), 6);
    }

    #[test]
    fn unhealthy_when_any_fabric_diverges_or_fails_audit() {
        let mut bad = status(1, "b");
        bad.audit_violations = 1;
        let report = FleetReport::capture([status(0, "a"), bad].into_iter());
        assert!(!report.healthy());
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn json_is_deterministic_and_omits_wall_clock() {
        let mk = || FleetReport::capture([status(0, "spine \"x\""), status(1, "b")].into_iter());
        let a = mk().to_json();
        assert_eq!(a, mk().to_json(), "same inputs must render identically");
        assert!(a.contains("\"spine \\\"x\\\"\""));
        assert!(a.contains("\"healthy\": true"));
        assert!(!a.contains("latency"), "JSON must stay seed-stable:\n{a}");
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile_us(&[], 99), 0);
        assert_eq!(percentile_us(&[7], 50), 7);
        let series: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&series, 50), 50);
        assert_eq!(percentile_us(&series, 99), 99);
        assert_eq!(percentile_us(&series, 100), 100);
    }
}
