//! The chaos-soak harness: dozens of fabrics, each under its own seeded
//! fault schedule, driven concurrently through one fleet — then graded.
//!
//! The drill is the fleet's pre-deployment gate. Every fabric gets a
//! distinct seeded event schedule (flap storms, bounded concurrent link
//! failures, watchdog trips/clears, resyncs) *and* a distinct seeded
//! chaos schedule on its southbound, the streams are interleaved through
//! the bounded fair ingest front, and at the end every fabric must be:
//!
//! - **certified** — a fresh independent auditor re-proves the final
//!   committed tables deadlock-free (Theorem 5.1, decompiled from TCAM);
//! - **recoverable** — replaying its journal from disk reconverges to
//!   the live epoch and tables with no unprocessed tail;
//! - **quarantine-consistent** — the recovered quarantine set equals the
//!   live one;
//! - **converged** — the (chaotic) southbound's tables equal the
//!   committed snapshot.
//!
//! Every schedule ends with a healing tail (links restored, quarantines
//! cleared, final resync), so "ready" is decidable: an unhealed fabric
//! would legitimately carry quarantines. The [`ReadinessReport`] carries
//! only seed-deterministic fields, so its rendering is byte-stable given
//! a seed — CI pins one and diffs.

use crate::error::FleetError;
use crate::fabric::{Damping, FabricSpec};
use crate::registry::{Fleet, FleetConfig};
use crate::report::FleetReport;
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::fmt::Write as _;
use std::path::PathBuf;
use tagger_ctrl::{ChaosConfig, CtrlEvent};
use tagger_topo::{ClosConfig, Topology};

/// Soak drill parameters.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Fabrics to register (each with its own seeded schedules).
    pub fabrics: usize,
    /// Master seed; fabric seeds derive from it, so one number pins the
    /// whole drill.
    pub seed: u64,
    /// Approximate events generated per fabric (the healing tail adds a
    /// few more).
    pub events_per_fabric: usize,
    /// Southbound chaos refusal rate (timeout/partial rates follow
    /// [`ChaosConfig::new`]).
    pub fail_rate: f64,
    /// Journal directory for the drill.
    pub dir: PathBuf,
}

impl SoakConfig {
    /// The CI drill: 8 fabrics, 48 events each, 25% chaos, rooted at
    /// `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SoakConfig {
            fabrics: 8,
            seed: 1,
            events_per_fabric: 48,
            fail_rate: 0.25,
            dir: dir.into(),
        }
    }
}

/// One fabric's final grade.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FabricReadiness {
    /// Fabric name.
    pub name: String,
    /// Events the schedule fed it.
    pub ingested: u64,
    /// Damped batches processed.
    pub batches: u64,
    /// Epochs committed.
    pub commits: u64,
    /// Batches rolled back.
    pub rollbacks: u64,
    /// Southbound faults its chaos schedule injected.
    pub faults_injected: u64,
    /// Commits the riding audit refused to certify (must be 0).
    pub audit_violations: u64,
    /// Final tables re-certified by a fresh independent auditor.
    pub certified: bool,
    /// Journal replays to the live epoch/tables with no tail.
    pub recoverable: bool,
    /// Recovered quarantines equal live quarantines.
    pub quarantine_consistent: bool,
    /// Southbound tables equal the committed snapshot.
    pub converged: bool,
}

impl FabricReadiness {
    /// All four gates plus a clean audit trail.
    pub fn ready(&self) -> bool {
        self.audit_violations == 0
            && self.certified
            && self.recoverable
            && self.quarantine_consistent
            && self.converged
    }
}

/// The drill's verdict: per-fabric grades plus the knobs that produced
/// them. Rendering is byte-stable given the config (every field is
/// seed-deterministic; no wall-clock values).
#[derive(Clone, Debug)]
pub struct ReadinessReport {
    /// Master seed the drill ran under.
    pub seed: u64,
    /// Chaos refusal rate.
    pub fail_rate: f64,
    /// Per-fabric grades, in fabric-id order.
    pub fabrics: Vec<FabricReadiness>,
}

impl ReadinessReport {
    /// True when every fabric passed every gate.
    pub fn all_ready(&self) -> bool {
        self.fabrics.iter().all(FabricReadiness::ready)
    }

    /// Fabrics that passed.
    pub fn ready_count(&self) -> usize {
        self.fabrics.iter().filter(|f| f.ready()).count()
    }

    /// The byte-stable text report CI asserts on.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "tagger-fleetd readiness report (seed {}, fail_rate {:.2}, {} fabrics)",
            self.seed,
            self.fail_rate,
            self.fabrics.len()
        );
        for f in &self.fabrics {
            let yn = |b: bool| if b { "yes" } else { "NO" };
            let _ = writeln!(
                out,
                "  {:<10} ingested {:>4}  batches {:>4}  commits {:>4}  rollbacks {:>3}  \
                 faults {:>4}  certified {}  recoverable {}  quarantine-consistent {}  \
                 converged {}  {}",
                f.name,
                f.ingested,
                f.batches,
                f.commits,
                f.rollbacks,
                f.faults_injected,
                yn(f.certified),
                yn(f.recoverable),
                yn(f.quarantine_consistent),
                yn(f.converged),
                if f.ready() { "READY" } else { "NOT-READY" },
            );
        }
        let _ = writeln!(
            out,
            "verdict: {}/{} fabrics ready — {}",
            self.ready_count(),
            self.fabrics.len(),
            if self.all_ready() {
                "FLEET CERTIFIED"
            } else {
                "FLEET NOT READY"
            }
        );
        out
    }
}

/// Everything the drill produced: the verdict, the final fleet snapshot
/// (for metrics rollups and latency series), and the drained fleet
/// itself for further inspection.
pub struct SoakOutcome {
    /// The graded verdict.
    pub readiness: ReadinessReport,
    /// Final fleet snapshot (metrics, latencies — the bench's raw data).
    pub snapshot: FleetReport,
    /// Total fair drain cycles the drill ran.
    pub drain_cycles: u64,
}

/// Derives fabric `i`'s private seed from the master seed
/// (SplitMix64-style, so neighbouring fabrics get unrelated streams).
fn fabric_seed(master: u64, i: u64) -> u64 {
    let mut z = master.wrapping_add(i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates one fabric's seeded soak schedule over `topo`:
/// `events_per_fabric` events of mixed kinds, then a healing tail that
/// restores every downed link, clears every quarantine, and resyncs.
///
/// This is the scenario library's `baseline` mix
/// ([`tagger_scenario::schedule`]) — the generator lives there so
/// `.scn`-driven drills and the fleet daemon draw from the same seeded
/// streams. Invariants (at most 2 links down, at most 1 quarantine,
/// exact healing tail) are the library's contract.
pub fn soak_schedule(topo: &Topology, seed: u64, events: usize) -> Vec<CtrlEvent> {
    let baseline = tagger_scenario::schedule::by_name("baseline")
        .expect("scenario schedule library always ships a baseline mix");
    tagger_scenario::schedule::events(baseline, topo, seed, events)
}

/// Runs the drill: registers `cfg.fabrics` fabrics (each with a derived
/// seed for both its event schedule and its chaos southbound),
/// interleaves all schedules through the bounded fair ingest front —
/// draining as it goes, exactly like the live daemon — then drains to
/// empty and grades every fabric.
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakOutcome, FleetError> {
    let topo = ClosConfig::small().build();
    let mut fleet_cfg = FleetConfig::new(&cfg.dir);
    fleet_cfg.queue_cap = cfg.events_per_fabric + 16;
    let mut fleet = Fleet::new(fleet_cfg);

    // Distinct damping policies across the fleet: the drill should
    // exercise all of them, and per-fabric damping must not leak across
    // fabrics.
    let dampings = [Damping::Flap, Damping::FlapCapped(4), Damping::None];
    // Event mixes cycle through the scenario library, so one drill
    // exercises every shipped storm profile (baseline, flap-storm,
    // partition-prone, watchdog-churn) across the fleet.
    let mixes = tagger_scenario::schedule::library();
    let mut schedules: Vec<(String, Vec<CtrlEvent>)> = Vec::with_capacity(cfg.fabrics);
    for i in 0..cfg.fabrics {
        let seed = fabric_seed(cfg.seed, i as u64);
        let name = format!("soak-{i}");
        let spec = FabricSpec::new(&name, topo.clone())
            .with_chaos(ChaosConfig::new(seed, cfg.fail_rate))
            .with_damping(dampings[i % dampings.len()]);
        fleet.register(spec)?;
        let mix = &mixes[i % mixes.len()];
        schedules.push((
            name,
            tagger_scenario::schedule::events(mix, &topo, seed, cfg.events_per_fabric),
        ));
    }

    // Interleave: each round feeds every fabric a small seeded slice of
    // its schedule, then runs one fair drain cycle — so fabrics make
    // progress while others are still ingesting, like the live daemon.
    let mut cursor = vec![0usize; schedules.len()];
    let mut mix = StdRng::seed_from_u64(cfg.seed ^ 0x50AC);
    let mut drain_cycles = 0u64;
    loop {
        let mut fed = false;
        for (i, (name, schedule)) in schedules.iter().enumerate() {
            let chunk = mix.random_range(1..4usize);
            for _ in 0..chunk {
                if cursor[i] < schedule.len() {
                    fleet.ingest(name, schedule[cursor[i]].clone())?;
                    cursor[i] += 1;
                    fed = true;
                }
            }
        }
        fleet.drain_cycle()?;
        drain_cycles += 1;
        if !fed {
            break;
        }
    }
    while fleet.drain_cycle()? > 0 {
        drain_cycles += 1;
    }

    let mut fabrics = Vec::with_capacity(fleet.len());
    for fabric in fleet.fabrics() {
        let (recoverable, quarantine_consistent) = fabric.verify_recovery();
        fabrics.push(FabricReadiness {
            name: fabric.name().to_string(),
            ingested: fabric.ingested(),
            batches: fabric.batches(),
            commits: fabric.commits(),
            rollbacks: fabric.rollbacks(),
            faults_injected: fabric.faults_injected(),
            audit_violations: fabric.audit_violations(),
            certified: fabric.certify(),
            recoverable,
            quarantine_consistent,
            converged: fabric.converged(),
        });
    }
    Ok(SoakOutcome {
        readiness: ReadinessReport {
            seed: cfg.seed,
            fail_rate: cfg.fail_rate,
            fabrics,
        },
        snapshot: fleet.snapshot(),
        drain_cycles,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tagger-soak-{}-{name}", std::process::id()))
    }

    #[test]
    fn schedules_are_seed_deterministic_and_healed() {
        let topo = ClosConfig::small().build();
        let a = soak_schedule(&topo, 7, 40);
        let b = soak_schedule(&topo, 7, 40);
        assert_eq!(a, b, "same seed must generate the same schedule");
        assert_ne!(a, soak_schedule(&topo, 8, 40));
        assert!(a.len() >= 40);
        assert_eq!(a.last(), Some(&CtrlEvent::Resync));
        // The tail heals: downs and ups balance, trips and clears balance.
        let mut down = std::collections::BTreeSet::new();
        let mut quarantine = std::collections::BTreeSet::new();
        for e in &a {
            match e {
                CtrlEvent::LinkDown(l) => {
                    down.insert(l.index());
                }
                CtrlEvent::LinkUp(l) => {
                    down.remove(&l.index());
                }
                trip @ CtrlEvent::WatchdogTrip { .. } => {
                    // Attribution redirects the quarantine; the heal
                    // balance is over effective targets.
                    let (switch, port, tag) = trip.effective_quarantine().unwrap();
                    quarantine.insert((switch.0, port.0, tag));
                }
                CtrlEvent::WatchdogClear { switch, port, tag } => {
                    quarantine.remove(&(switch.0, port.0, tag.0));
                }
                _ => {}
            }
        }
        assert!(down.is_empty(), "unhealed links: {down:?}");
        assert!(
            quarantine.is_empty(),
            "unhealed quarantines: {quarantine:?}"
        );
    }

    #[test]
    fn fabric_seeds_differ() {
        let seeds: std::collections::BTreeSet<u64> = (0..32).map(|i| fabric_seed(1, i)).collect();
        assert_eq!(seeds.len(), 32);
    }

    #[test]
    fn small_soak_certifies_every_fabric() {
        let dir = tmp("small");
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = SoakConfig::new(&dir);
        cfg.fabrics = 3;
        cfg.events_per_fabric = 16;
        cfg.seed = 42;
        let outcome = run_soak(&cfg).unwrap();
        assert!(
            outcome.readiness.all_ready(),
            "{}",
            outcome.readiness.render()
        );
        assert_eq!(outcome.readiness.fabrics.len(), 3);
        assert!(outcome.snapshot.ctrl_rollup.epochs_committed > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
